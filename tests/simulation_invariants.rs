//! Invariants of the simulated multicore executor against the real PTAS.

use pcmax::prelude::*;
use pcmax::ptas::{dp_trace, rounded_problem, DpProblem};
use pcmax::simcore::simulate_trace;
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    (prop::collection::vec(1u64..=40, 4..=20), 2usize..=5)
        .prop_map(|(times, m)| Instance::new(times, m).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulated_time_is_bounded_by_work_and_critical_path(inst in arb_instance()) {
        let eps = EpsilonParams::new(0.3).unwrap();
        let target = lower_bound(&inst);
        let (problem, _, _) =
            rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES);
        let trace = dp_trace(&problem).unwrap();
        for p in [1usize, 3, 8, 64] {
            let zero_overhead = pcmax::simcore::SimParams {
                processors: p,
                barrier_overhead: 0,
                dispatch_overhead: 0,
            };
            let r = simulate_trace(&trace, &zero_overhead);
            prop_assert!(r.time <= r.sequential_time, "P={p}");
            prop_assert!(r.time >= r.critical_path, "P={p}");
            prop_assert!(r.time >= r.sequential_time / p as u64, "work law, P={p}");
        }
    }

    #[test]
    fn speedup_never_exceeds_processor_count(inst in arb_instance()) {
        for p in [2usize, 4, 16] {
            let report = simulate_ptas(&inst, 0.3, SimParams::with_processors(p)).unwrap();
            prop_assert!(report.speedup() <= p as f64 + 1e-9);
        }
    }

    #[test]
    fn overheads_only_slow_the_simulation_down(inst in arb_instance()) {
        let cheap = SimParams { processors: 4, barrier_overhead: 0, dispatch_overhead: 0 };
        let costly = SimParams { processors: 4, barrier_overhead: 50, dispatch_overhead: 3 };
        let a = simulate_ptas(&inst, 0.3, cheap).unwrap();
        let b = simulate_ptas(&inst, 0.3, costly).unwrap();
        prop_assert!(a.time() <= b.time());
    }

    #[test]
    fn probe_sequence_matches_real_bisection(inst in arb_instance()) {
        let report = simulate_ptas(&inst, 0.3, SimParams::with_processors(2)).unwrap();
        let real = Ptas::new(0.3).unwrap().solve_detailed(&inst).unwrap();
        prop_assert_eq!(report.probes.len(), real.log.evaluations());
    }
}

#[test]
fn sixteen_core_speedup_lands_in_the_papers_range_on_fig2_family() {
    // Calibration pin: U(1,10) at m=20, n=100 gave the paper ~11.7× on 16
    // cores; the simulated executor must stay in that neighbourhood.
    let inst = generate(Family::new(20, 100, Distribution::U1To10), 1);
    let report = simulate_ptas(&inst, 0.3, SimParams::with_processors(16)).unwrap();
    let s = report.speedup();
    assert!((9.0..=16.0).contains(&s), "16-core speedup drifted: {s}");
}
