//! Cross-validation of the independent exact solvers (combinatorial
//! branch-and-bound vs the simplex-based MILP) and of the PTAS's certified
//! target against the true optimum.

use pcmax::prelude::*;
use proptest::prelude::*;

/// Small instances the MILP solver handles comfortably.
fn small_instance() -> impl Strategy<Value = Instance> {
    (prop::collection::vec(1u64..=15, 2..=8), 2usize..=3)
        .prop_map(|(times, m)| Instance::new(times, m).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn milp_and_branch_and_bound_agree(inst in small_instance()) {
        let bb = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assert!(bb.proven);
        let (milp_schedule, milp_opt) =
            AssignmentIp::default().solve_detailed(&inst).unwrap();
        milp_schedule.validate(&inst).unwrap();
        prop_assert_eq!(milp_opt, bb.best);
        prop_assert_eq!(milp_schedule.makespan(&inst), milp_opt);
    }

    #[test]
    fn ptas_certified_target_is_a_lower_bound_on_opt(inst in small_instance()) {
        let out = Ptas::new(0.3).unwrap().solve_detailed(&inst).unwrap();
        let bb = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assert!(bb.proven);
        // The bisection's converged target never exceeds the true optimum
        // (infeasible probes are proofs; see DESIGN.md §4).
        prop_assert!(out.target <= bb.best,
            "target {} > opt {}", out.target, bb.best);
    }

    #[test]
    fn exact_solver_is_idempotent(inst in small_instance()) {
        let a = BranchAndBound::default().solve_detailed(&inst).unwrap();
        let b = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assert_eq!(a.best, b.best);
        prop_assert_eq!(a.schedule, b.schedule);
    }
}

#[test]
fn all_exact_paths_agree_on_fixed_instances() {
    for (times, m) in [
        (vec![4u64, 5, 6, 7, 8], 2usize),
        (vec![5, 5, 4, 4, 3, 3, 3], 3),
        (vec![10, 9, 8, 1, 1], 2),
        (vec![7, 7, 7, 7], 2),
        (vec![1, 1, 1, 1, 1, 1, 1], 3),
    ] {
        let inst = Instance::new(times.clone(), m).unwrap();
        let bb = BranchAndBound::default().solve_detailed(&inst).unwrap();
        assert!(bb.proven);
        let (_, milp_opt) = AssignmentIp::default().solve_detailed(&inst).unwrap();
        assert_eq!(bb.best, milp_opt, "times={times:?} m={m}");
    }
}

#[test]
fn lp_relaxation_never_exceeds_ilp_optimum() {
    let inst = Instance::new(vec![9, 7, 5, 4, 2], 2).unwrap();
    let model = pcmax::milp::formulation::assignment_model(&inst);
    let relax = model.lp.solve().unwrap();
    let bb = BranchAndBound::default().solve_detailed(&inst).unwrap();
    assert!(relax.objective <= bb.best as f64 + 1e-6);
    // The relaxation is at least the area bound.
    assert!(relax.objective >= inst.total_time() as f64 / inst.machines() as f64 - 1e-6);
}
