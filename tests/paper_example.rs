//! End-to-end verification of the worked example in Section III of the
//! paper: `ε = 0.3` (k = 4, k² = 16 classes), target `T = 30`, two long jobs
//! of one rounded size and three of another, the 12-entry DP table of
//! Table I, and the anti-diagonal level structure of Figure 1.

use pcmax::parallel::{ParallelDp, ScopedDp};
use pcmax::ptas::dp::DpSolver;
use pcmax::ptas::{DpProblem, EpsilonParams, IterativeDp, MemoizedDp};

fn paper_problem() -> DpProblem {
    // N has two non-zero classes; with unit ⌈30/16⌉ = 2 the jobs of original
    // size 6 land in class 3 (rounded size 6) and size 11 in class 5
    // (rounded size 10).
    let mut counts = vec![0u32; 16];
    counts[2] = 2;
    counts[4] = 3;
    DpProblem::new(counts, 2, 30, 4)
}

#[test]
fn epsilon_03_gives_k4_and_16_classes() {
    let p = EpsilonParams::new(0.3).unwrap();
    assert_eq!(p.k, 4);
    assert_eq!(p.classes(), 16);
}

#[test]
fn dp_table_has_12_entries_in_6_levels() {
    let table = paper_problem().build_table().unwrap();
    assert_eq!(table.len, 12); // (2+1)·(3+1), Table I
    assert_eq!(table.levels(), 6); // n' = 5 long jobs, levels 0..=5
    let widths: Vec<usize> = table.level_buckets().iter().map(Vec::len).collect();
    assert_eq!(widths, vec![1, 2, 3, 3, 2, 1]); // Figure 1's anti-diagonals
}

#[test]
fn level_two_holds_the_three_independent_subproblems() {
    // OPT(2,0), OPT(1,1), OPT(0,2) are mutually independent (Equation 11).
    let table = paper_problem().build_table().unwrap();
    let buckets = table.level_buckets();
    let level2: Vec<Vec<u32>> = buckets[2]
        .iter()
        .map(|&i| table.decode(i as usize))
        .collect();
    assert_eq!(level2, vec![vec![0, 2], vec![1, 1], vec![2, 0]]);
}

#[test]
fn every_solver_computes_opt_equal_two() {
    // {6,6,10,10,10} within capacity 30: {10,10,10} + {6,6} -> 2 machines.
    let problem = paper_problem();
    let solvers: Vec<Box<dyn DpSolver>> = vec![
        Box::new(IterativeDp),
        Box::new(MemoizedDp),
        Box::new(ParallelDp::default()),
        Box::new(ParallelDp::faithful()),
        Box::new(ScopedDp::new(3)),
    ];
    for solver in &solvers {
        let out = solver.solve(&problem).unwrap();
        assert_eq!(out.machines, 2, "{}", solver.name());
        let witness = out.schedule.expect("feasible on 4 machines");
        assert_eq!(witness.len(), 2);
    }
}

#[test]
fn full_ptas_on_the_example_jobs() {
    use pcmax::prelude::*;
    // The example's original jobs plus a couple of short ones.
    let inst = Instance::new(vec![6, 6, 11, 11, 11, 2, 1], 2).unwrap();
    let out = Ptas::new(0.3).unwrap().solve_detailed(&inst).unwrap();
    out.schedule.validate(&inst).unwrap();
    let exact = BranchAndBound::default().solve_detailed(&inst).unwrap();
    assert!(exact.proven);
    // Optimum is 24 = ceil(48/2): e.g. {11, 11, 2} vs {11, 6, 6, 1}.
    assert_eq!(exact.best, 24);
    assert!(out.schedule.makespan(&inst) as f64 <= 1.3 * 24.0);
}

#[test]
fn configuration_set_matches_the_papers_seven_vectors() {
    // Projected to the two active classes, C (without the zero vector) is
    // exactly the paper's list extended by (0,3) — the paper's Equation (7)
    // omits (0,3) although three rounded-10 jobs fit in T = 30; our DFS
    // enumerates it, and OPT(N) = 2 relies on it.
    let problem = paper_problem();
    let table = problem.build_table().unwrap();
    let mut configs: Vec<(u32, u32)> = problem
        .configs_with_offsets(&table)
        .into_iter()
        .map(|(c, _)| (c[0], c[1]))
        .collect();
    configs.sort();
    assert_eq!(
        configs,
        vec![
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 0),
            (1, 1),
            (1, 2),
            (2, 0),
            (2, 1)
        ]
    );
}
