//! Property-based invariants that every scheduling algorithm in the
//! workspace must satisfy, on randomized instances.

use pcmax::prelude::*;
use proptest::prelude::*;

/// Random instances: 1..=24 jobs with times 1..=60, on 1..=6 machines.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (prop::collection::vec(1u64..=60, 1..=24), 1usize..=6)
        .prop_map(|(times, m)| Instance::new(times, m).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_registered_comparators_produce_valid_schedules(inst in arb_instance()) {
        // Enumerate the engine registry rather than a hard-coded list, so
        // new polynomial solvers are covered the moment they are registered.
        // (The exponential solvers — exact, milp, fptas — are exercised on
        // suitably small instances in crates/engine/tests.)
        for spec in comparators() {
            let solver = spec.build(&SolverParams::default()).unwrap();
            let report = solver.solve(&SolveRequest::new(&inst)).unwrap();
            report.schedule.validate(&inst).unwrap();
            prop_assert_eq!(report.makespan, report.schedule.makespan(&inst));
            prop_assert!(report.makespan >= lower_bound(&inst), "{}", spec.name);
            prop_assert!(report.makespan <= upper_bound(&inst), "{}", spec.name);
        }
    }

    #[test]
    fn ls_respects_graham_bound(inst in arb_instance()) {
        let ms = Ls.makespan(&inst).unwrap() as f64;
        let opt = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assume!(opt.proven);
        let m = inst.machines() as f64;
        prop_assert!(ms <= (2.0 - 1.0 / m) * opt.best as f64 + 1e-9);
    }

    #[test]
    fn lpt_respects_four_thirds_bound(inst in arb_instance()) {
        let ms = Lpt.makespan(&inst).unwrap() as f64;
        let opt = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assume!(opt.proven);
        let m = inst.machines() as f64;
        prop_assert!(ms <= (4.0/3.0 - 1.0/(3.0*m)) * opt.best as f64 + 1e-9);
    }

    #[test]
    fn ptas_respects_epsilon_guarantee(inst in arb_instance()) {
        let ms = Ptas::new(0.3).unwrap().makespan(&inst).unwrap() as f64;
        let opt = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assume!(opt.proven);
        // 1 + eps plus the integer-rounding slack of k units.
        prop_assert!(
            ms <= 1.3 * opt.best as f64 + 4.0,
            "ms = {ms}, opt = {}", opt.best
        );
    }

    #[test]
    fn parallel_ptas_matches_sequential_exactly(inst in arb_instance()) {
        let seq = Ptas::new(0.3).unwrap().solve_detailed(&inst).unwrap();
        let par = ParallelPtas::new(0.3).unwrap()
            .driver().solve_detailed(&inst).unwrap();
        prop_assert_eq!(seq.target, par.target);
        prop_assert_eq!(seq.schedule.makespan(&inst), par.schedule.makespan(&inst));
    }

    #[test]
    fn multifit_never_below_area_bound(inst in arb_instance()) {
        let ms = Multifit::default().makespan(&inst).unwrap();
        prop_assert!(ms >= inst.mean_load_ceil().min(inst.max_time()));
    }

    #[test]
    fn bounds_bracket_every_heuristic(inst in arb_instance()) {
        let b = MakespanBounds::of(&inst);
        prop_assert!(b.lower <= b.upper);
        for ms in [
            Ls.makespan(&inst).unwrap(),
            Lpt.makespan(&inst).unwrap(),
        ] {
            prop_assert!(ms <= b.upper);
            prop_assert!(ms >= b.lower);
        }
    }
}
