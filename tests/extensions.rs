//! Cross-crate invariants of the extension algorithms (Sahni FPTAS,
//! speculative bisection, PRAM cost model) against the core solvers.

use pcmax::prelude::*;
use pcmax::ptas::dp::DpSolver as _;
use pcmax::ptas::{rounded_problem, DpProblem};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    (prop::collection::vec(1u64..=30, 2..=14), 2usize..=4)
        .prop_map(|(times, m)| Instance::new(times, m).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fptas_beats_the_ptas_guarantee(inst in arb_instance()) {
        let opt = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assume!(opt.proven);
        let fptas = FixedMachinesFptas::new(0.1).unwrap().makespan(&inst).unwrap();
        prop_assert!(fptas as f64 <= 1.1 * opt.best as f64 + 1e-9);
        // Exact mode is exactly optimal.
        let exact_dp = FixedMachinesFptas::exact().makespan(&inst).unwrap();
        prop_assert_eq!(exact_dp, opt.best);
    }

    #[test]
    fn speculative_is_sound_for_random_instances(inst in arb_instance()) {
        let opt = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assume!(opt.proven);
        for width in [1usize, 3] {
            let algo = SpeculativePtas::new(0.3, width).unwrap();
            let (schedule, target, _) = algo.solve_detailed(&inst).unwrap();
            schedule.validate(&inst).unwrap();
            prop_assert!(target <= opt.best, "width {width}");
            prop_assert!(schedule.makespan(&inst) as f64 <= 1.25 * target as f64 + 4.0);
        }
    }

    #[test]
    fn pram_dp_matches_cpu_dp(inst in arb_instance()) {
        let eps = EpsilonParams::new(0.3).unwrap();
        let target = lower_bound(&inst);
        let (problem, _, _) =
            rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES);
        let pram_cost = wavefront_dp(&problem).unwrap();
        let cpu = pcmax::ptas::IterativeDp.solve(&problem).unwrap();
        prop_assert_eq!(pram_cost.machines, cpu.machines);
        // Brent on one processor is at least the total work.
        prop_assert!(brent_time(&pram_cost.pram, 1) >= pram_cost.pram.work);
    }

    #[test]
    fn fptas_is_monotone_in_machines(
        times in prop::collection::vec(1u64..=20, 2..=10)
    ) {
        let a = FixedMachinesFptas::exact()
            .makespan(&Instance::new(times.clone(), 2).unwrap()).unwrap();
        let b = FixedMachinesFptas::exact()
            .makespan(&Instance::new(times, 3).unwrap()).unwrap();
        prop_assert!(b <= a, "more machines can only help");
    }
}

#[test]
fn all_solvers_agree_on_one_shared_instance() {
    let inst = Instance::new(vec![11, 9, 8, 7, 6, 5, 4, 3, 2, 1], 3).unwrap();
    let bb = BranchAndBound::default().solve_detailed(&inst).unwrap();
    assert!(bb.proven);
    let fptas = FixedMachinesFptas::exact().makespan(&inst).unwrap();
    let (_, milp) = AssignmentIp::default().solve_detailed(&inst).unwrap();
    assert_eq!(bb.best, fptas);
    assert_eq!(bb.best, milp);
    // And the PRAM DP agrees with the CPU DP on the final probe.
    let eps = EpsilonParams::new(0.3).unwrap();
    let ptas_out = Ptas::new(0.3).unwrap().solve_detailed(&inst).unwrap();
    let (problem, _, _) = pcmax::ptas::rounded_problem(
        &inst,
        &eps,
        ptas_out.target,
        pcmax::ptas::DpProblem::DEFAULT_MAX_ENTRIES,
    );
    assert_eq!(
        wavefront_dp(&problem).unwrap().machines,
        pcmax::ptas::IterativeDp.solve(&problem).unwrap().machines
    );
}
