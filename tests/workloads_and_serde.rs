//! Workload-generator determinism and JSON round-trips across crate
//! boundaries (via the dependency-free `pcmax_core::json` codec).

use pcmax::core::json;
use pcmax::prelude::*;
use pcmax::workloads::{paper_families, ExperimentSet};
use proptest::prelude::*;

#[test]
fn the_24_paper_families_generate_valid_instances() {
    for family in paper_families() {
        let inst = generate(family, 42);
        assert_eq!(inst.jobs(), family.jobs);
        assert_eq!(inst.machines(), family.machines);
        let (lo, hi) = family.dist.interval(family.machines, family.jobs);
        assert!(inst.times().iter().all(|&t| (lo..=hi).contains(&t)));
    }
}

#[test]
fn experiment_sets_are_replayable() {
    let a = ExperimentSet::fig2(3).materialize();
    let b = ExperimentSet::fig2(3).materialize();
    for (fa, fb) in a.iter().zip(&b) {
        assert_eq!(fa.family, fb.family);
        assert_eq!(fa.instances, fb.instances);
    }
}

#[test]
fn instance_and_schedule_roundtrip_through_json() {
    let inst = generate(Family::new(5, 12, Distribution::U1To100), 7);
    let text = json::to_string(&inst);
    let back: Instance = json::from_str(&text).unwrap();
    assert_eq!(inst, back);

    let schedule = Lpt.schedule(&inst).unwrap();
    let text = json::to_string(&schedule);
    let back: Schedule = json::from_str(&text).unwrap();
    assert_eq!(schedule, back);
    assert_eq!(back.makespan(&inst), schedule.makespan(&inst));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generation_is_a_pure_function_of_family_and_seed(
        m in 1usize..=30, n in 1usize..=120, seed in any::<u64>()
    ) {
        let family = Family::new(m, n, Distribution::U1To100);
        prop_assert_eq!(generate(family, seed), generate(family, seed));
    }

    #[test]
    fn adversarial_instances_expose_lpt(m in 3usize..=12, seed in any::<u64>()) {
        let inst = pcmax::workloads::lpt_adversarial(m, seed);
        prop_assert_eq!(inst.jobs(), 2 * m + 1);
        let lpt = Lpt.makespan(&inst).unwrap();
        prop_assert!(lpt >= lower_bound(&inst));
    }

    #[test]
    fn deterministic_graham_instance_hits_the_exact_lpt_ratio(m in 2usize..=10) {
        let inst = pcmax::workloads::special::lpt_worst_case_deterministic(m);
        let lpt = Lpt.makespan(&inst).unwrap();
        prop_assert_eq!(lpt, (4 * m - 1) as u64);
        let exact = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assert!(exact.proven);
        prop_assert_eq!(exact.best, (3 * m) as u64);
    }
}
