//! # pcmax — parallel approximation algorithms for `P||Cmax`
//!
//! A Rust reproduction of *Ghalami & Grosu, "A Parallel Approximation
//! Algorithm for Scheduling Parallel Identical Machines"* (IPPS/IPDPS
//! Workshops 2017): the Hochbaum–Shmoys PTAS for minimum-makespan scheduling
//! on identical machines, its wavefront-parallel dynamic program for
//! shared-memory multicores, the classical baselines (LS, LPT, MULTIFIT),
//! an exact branch-and-bound solver and a from-scratch MILP stack standing
//! in for CPLEX, and a simulated multicore executor that reproduces the
//! paper's speedup figures on any host.
//!
//! This crate is the umbrella: it re-exports the public API of every
//! workspace crate. Depend on the individual crates if you only need one
//! piece.
//!
//! ## Quick start
//!
//! ```
//! use pcmax::prelude::*;
//!
//! // 12 jobs, 3 identical machines.
//! let inst = Instance::new(vec![27, 19, 19, 14, 13, 12, 11, 9, 7, 5, 3, 2], 3).unwrap();
//!
//! // The parallel PTAS with epsilon = 0.3 (the paper's configuration).
//! let schedule = ParallelPtas::new(0.3).unwrap().schedule(&inst).unwrap();
//! schedule.validate(&inst).unwrap();
//!
//! // Certified within (1 + eps) of optimal.
//! let exact = BranchAndBound::default().solve_detailed(&inst).unwrap();
//! assert!(exact.proven);
//! assert!((schedule.makespan(&inst) as f64) <= 1.3 * exact.best as f64);
//! ```
//!
//! ## The solver engine
//!
//! Every solver is also reachable through the engine registry by a stable
//! name (`"ls"`, `"lpt"`, `"multifit"`, `"ptas"`, `"par-ptas"`,
//! `"spec-ptas"`, `"fptas"`, `"exact"`, `"milp"`), with budgets,
//! cancellation and structured statistics:
//!
//! ```
//! use pcmax::prelude::*;
//!
//! let inst = Instance::new(vec![9, 8, 7, 7, 6, 5, 5, 4, 3], 3).unwrap();
//! let solver = pcmax::engine::build("par-ptas", &SolverParams::default()).unwrap();
//! let report = solver.solve(&SolveRequest::new(&inst).with_budget(Budget::unlimited())).unwrap();
//! report.schedule.validate(&inst).unwrap();
//! assert!(report.stats.bisection_probes >= 1);
//! ```

pub use pcmax_baselines as baselines;
pub use pcmax_core as core;
pub use pcmax_engine as engine;
pub use pcmax_exact as exact;
pub use pcmax_fptas as fptas;
pub use pcmax_milp as milp;
pub use pcmax_parallel as parallel;
pub use pcmax_pram as pram;
pub use pcmax_ptas as ptas;
pub use pcmax_simcore as simcore;
pub use pcmax_workloads as workloads;

/// The commonly used types and algorithms in one import.
pub mod prelude {
    pub use pcmax_baselines::{Lpt, Ls, Multifit};
    pub use pcmax_core::{
        lower_bound, upper_bound, ApproxRatio, Budget, CancelToken, Instance, MakespanBounds,
        Schedule, Scheduler, SolveReport, SolveRequest, SolveStats, Solver,
    };
    pub use pcmax_engine::{
        comparators, registry, Guarantee, SolverKind, SolverParams, SolverSpec,
    };
    pub use pcmax_exact::BranchAndBound;
    pub use pcmax_fptas::FixedMachinesFptas;
    pub use pcmax_milp::AssignmentIp;
    pub use pcmax_parallel::{ParallelDp, ParallelPtas, ScopedDp, SpeculativePtas};
    pub use pcmax_pram::{brent_time, wavefront_dp, Pram};
    pub use pcmax_ptas::{EpsilonParams, Ptas};
    pub use pcmax_simcore::{simulate_ptas, speedup_curve, SimParams};
    pub use pcmax_workloads::{generate, Distribution, Family};
}
