//! End-to-end tests of the `pcmax` binary: spawn the real executable and
//! check its stdout/exit codes.

use std::process::Command;

fn pcmax(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pcmax"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn bounds_prints_lb_and_ub() {
    let out = pcmax(&[
        "bounds", "--dist", "U(1,10)", "-m", "2", "-n", "6", "--seed", "1",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("LB=") && stdout.contains("UB="), "{stdout}");
}

#[test]
fn generate_emits_parseable_instance_json() {
    let out = pcmax(&["generate", "--dist", "U(1,100)", "-m", "3", "-n", "7"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let inst: pcmax_core::Instance = pcmax_core::json::from_str(&stdout).unwrap();
    assert_eq!(inst.jobs(), 7);
    assert_eq!(inst.machines(), 3);
}

#[test]
fn solve_reads_instance_from_file() {
    let inst = pcmax_core::Instance::new(vec![5, 4, 3, 2, 1], 2).unwrap();
    let path = std::env::temp_dir().join("pcmax_e2e_solve.json");
    std::fs::write(&path, pcmax_core::json::to_string(&inst)).unwrap();
    let out = pcmax(&[
        "solve",
        "-i",
        path.to_str().unwrap(),
        "--algo",
        "exact",
        "--schedule",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("makespan 8"), "{stdout}"); // 15/2 -> 8
    assert!(stdout.contains("machine 0"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_flags_fail_with_usage() {
    let out = pcmax(&["solve", "-i", "x.json", "--frobnicate"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_command_fails() {
    let out = pcmax(&[]);
    assert!(!out.status.success());
}

#[test]
fn simulate_prints_a_speedup_row_per_proc_count() {
    let out = pcmax(&[
        "simulate", "--dist", "U(1,10)", "-m", "4", "-n", "16", "--procs", "1,2,4",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.lines().count(),
        4, // header + 3 rows
        "{stdout}"
    );
}

#[test]
fn custom_uniform_distribution_roundtrips() {
    let out = pcmax(&["generate", "--dist", "U(7,9)", "-m", "2", "-n", "20"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let inst: pcmax_core::Instance = pcmax_core::json::from_str(&stdout).unwrap();
    assert!(inst.times().iter().all(|&t| (7..=9).contains(&t)));
}

#[test]
fn trace_writes_chrome_json_and_prints_the_summary() {
    let path = std::env::temp_dir().join("pcmax_e2e_trace.json");
    let out = pcmax(&[
        "trace",
        "par-ptas",
        "--dist",
        "U(1,100)",
        "-m",
        "10",
        "-n",
        "50",
        "--threads",
        "4",
        "--out",
        path.to_str().unwrap(),
        "--summary",
    ]);
    assert!(out.status.success(), "{:?}", String::from_utf8(out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("makespan"), "{stdout}");
    assert!(stdout.contains("busy%"), "summary table printed: {stdout}");

    let text = std::fs::read_to_string(&path).unwrap();
    let stats = pcmax_trace::chrome::validate(&text).unwrap();
    assert!(stats.events > 0, "trace must not be empty");
    assert!(stats.complete_spans > 0, "spans must close");
    // The acceptance path: bisection probes, wavefront levels and worker
    // chunks all appear in one exported timeline.
    for name in ["\"probe\"", "\"level\"", "\"chunk\""] {
        assert!(text.contains(name), "missing {name} spans in {path:?}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn compare_prints_pool_health_columns() {
    let out = pcmax(&["compare", "--dist", "U(1,10)", "-m", "2", "-n", "8"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("busy%"), "{stdout}");
    assert!(stdout.contains("parks"), "{stdout}");
}

#[test]
fn every_registry_name_is_reachable_from_the_command_line() {
    for algo in pcmax_engine::names() {
        let out = pcmax(&[
            "solve", "--dist", "U(1,10)", "-m", "2", "-n", "6", "--algo", algo,
        ]);
        assert!(out.status.success(), "--algo {algo} failed");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("makespan"), "--algo {algo}: {stdout}");
    }
}
