//! `pcmax` — command-line interface for the scheduling toolkit.
//!
//! ```text
//! pcmax generate --dist "U(1,100)" -m 10 -n 50 --seed 1 > inst.json
//! pcmax bounds   -i inst.json
//! pcmax solve    -i inst.json --algo pptas --eps 0.3
//! pcmax compare  -i inst.json
//! pcmax simulate -i inst.json --procs 1,2,4,8,16
//! pcmax trace par-ptas inst.json --out trace.json --summary
//! ```

mod args;
mod commands;
mod io;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv).and_then(commands::run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
