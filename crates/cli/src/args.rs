//! Hand-rolled argument parsing (no external CLI dependency).

use pcmax_workloads::Distribution;

/// Top-level usage text.
pub const USAGE: &str = "\
usage: pcmax <command> [options]

commands:
  generate   generate a seeded instance as JSON on stdout
  bounds     print the LB/UB makespan bounds of an instance
  solve      solve an instance with one algorithm
  compare    run every algorithm on an instance and tabulate
  simulate   simulated speedup curve of the parallel PTAS
  trace      solve once with span tracing and export the timeline
  metrics    run a workload mix and print the solver scoreboard from the
             process metrics registry, optionally exporting the registry
  serve      run the pcmax-wire/1 scheduling daemon on the session engine
  client     submit solves to (or shut down) a running daemon
  serve-bench  closed-loop load test against an in-process daemon

common options:
  -i FILE           read the instance from a JSON file ('-' = stdin)
  --dist D          distribution: U(1,10) U(1,100) U(1,2m-1) U(1,10n)
                    U(m,2m-1) U(95,105) or U(lo,hi)
  -m M, -n N        machines / jobs (with --dist)
  --seed S          RNG seed (default 1)
  --speed-max S     draw machine speeds from U(1,S): a Q||Cmax instance
  --shuffle         shuffle the arrival order (online experiments)

solve options:
  --algo A          engine registry name: ls | lpt | multifit | ptas | par-ptas |
                    spec-ptas | fptas | exact | milp | ptas-q | lpt-q | ls-online
                    (aliases: pptas, spec, qptas, speed-lpt, online)
  --eps E           PTAS accuracy (default 0.3)
  --threads T       worker threads for the parallel solvers
  --budget B        search-node budget for exact/milp
  --schedule        also print the full per-machine assignment

compare options:
  --family F        restrict the comparison to one scenario: p | q | online
                    (default: q when the instance has speeds, else p)
  --metrics FILE    also persist a JSON metrics-registry snapshot to FILE

metrics options:
  --families LIST   comma-separated scenario families (default p,q,online)
  --count C         instances per family (default 3)
  --eps E           PTAS accuracy (default 0.3)
  --threads T       worker threads for the parallel solvers
  --seed S          base RNG seed for the workload mix (default 1)
  --format F        registry export format: prom | json (default json)
  --out FILE        write the export to FILE (without --out, an explicit
                    --format dumps the export to stdout after the table)

simulate options:
  --procs LIST      comma-separated processor counts (default 1,2,4,8,16)
  --eps E           PTAS accuracy (default 0.3)

trace usage:
  pcmax trace <algo> [instance.json] [common options]
  --out FILE        write a Chrome-trace / Perfetto JSON timeline to FILE
  --summary         print the ASCII per-worker utilization summary
                    (default when --out is not given)

serve options:
  --addr A          listen address (default 127.0.0.1:7077)
  --workers W       engine worker threads (default: one per core)
  --capacity C      max in-flight submissions before shedding (default 256)
  --cache N         instance-profile cache capacity (default 4096)

client usage:
  pcmax client solve <algo> [instance.json] [common options]
  pcmax client shutdown        stop the daemon and print its bye totals
  --addr A          daemon address (default 127.0.0.1:7077)
  --eps E           accuracy forwarded to approximation solvers (default 0.3)
  --threads T       worker threads forwarded to parallel solvers
  --timeout-ms MS   per-request budget; queue time counts
  --repeat R        send the instance R times (repeats hit the server cache)

serve-bench options:
  --clients C       closed-loop client connections (default 4)
  --requests R      total requests across all clients (default 1000)
  --algo A          solver every request uses (default pptas)
  --eps E           accuracy (default 0.4)
  --seed S          instance-pool base seed (default 7)
  --per-family K    instances generated per workload family (default 2)
  --workers W       engine worker threads (default: one per core)
  --capacity C      admission bound (default 256)
  --out FILE        also write the JSON load report to FILE";

/// Where the instance comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// JSON file path (`-` = stdin).
    File(String),
    /// Generated from a family.
    Generated {
        /// Processing-time distribution.
        dist: Distribution,
        /// Number of machines.
        machines: usize,
        /// Number of jobs.
        jobs: usize,
        /// RNG seed.
        seed: u64,
        /// With `Some(s)`, machine speeds come from `U(1,s)` (a `Q||Cmax`
        /// instance); `None` keeps identical machines.
        speed_max: Option<u64>,
        /// Re-order jobs by an independent Fisher–Yates shuffle so the index
        /// order is a random arrival stream (online experiments).
        shuffle: bool,
    },
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `pcmax generate`
    Generate(Source),
    /// `pcmax bounds`
    Bounds(Source),
    /// `pcmax solve`
    Solve {
        /// Instance source.
        source: Source,
        /// Algorithm name.
        algo: String,
        /// PTAS accuracy.
        eps: f64,
        /// Thread count for the parallel PTAS.
        threads: Option<usize>,
        /// Node budget for the exact solvers.
        budget: Option<u64>,
        /// Print the full assignment.
        schedule: bool,
    },
    /// `pcmax compare`
    Compare {
        /// Instance source.
        source: Source,
        /// Scenario filter (`p` / `q` / `online`); `None` infers from the
        /// instance.
        family: Option<String>,
        /// Persist a JSON metrics-registry snapshot to this path.
        metrics: Option<String>,
    },
    /// `pcmax simulate`
    Simulate {
        /// Instance source.
        source: Source,
        /// Processor counts.
        procs: Vec<usize>,
        /// PTAS accuracy.
        eps: f64,
    },
    /// `pcmax metrics`
    Metrics {
        /// Scenario families to run (`p` / `q` / `online`).
        families: Vec<String>,
        /// Instances per family.
        count: usize,
        /// PTAS accuracy.
        eps: f64,
        /// Thread count for the parallel solvers.
        threads: Option<usize>,
        /// Base RNG seed for the workload mix.
        seed: u64,
        /// Registry export format (`prom` / `json`); `None` when the flag
        /// was not given (scoreboard only, unless `--out` asks for a file).
        format: Option<String>,
        /// Export file path.
        out: Option<String>,
    },
    /// `pcmax trace`
    Trace {
        /// Instance source.
        source: Source,
        /// Algorithm name (positional, before the flags).
        algo: String,
        /// PTAS accuracy.
        eps: f64,
        /// Thread count for the parallel PTAS.
        threads: Option<usize>,
        /// Chrome-trace JSON output path.
        out: Option<String>,
        /// Print the ASCII utilization summary.
        summary: bool,
    },
    /// `pcmax serve`
    Serve {
        /// Listen address.
        addr: String,
        /// Engine worker threads; `None` = one per core.
        workers: Option<usize>,
        /// Max in-flight submissions before load shedding.
        capacity: usize,
        /// Instance-profile cache capacity.
        cache: usize,
    },
    /// `pcmax client solve`
    ClientSolve {
        /// Daemon address.
        addr: String,
        /// Solver name (positional, before the flags).
        algo: String,
        /// Instance source.
        source: Source,
        /// Accuracy forwarded to approximation solvers.
        eps: f64,
        /// Worker threads forwarded to parallel solvers.
        threads: Option<usize>,
        /// Per-request budget in milliseconds (queue time counts).
        timeout_ms: Option<u64>,
        /// How many times to send the instance (repeats hit the cache).
        repeat: usize,
    },
    /// `pcmax client shutdown`
    ClientShutdown {
        /// Daemon address.
        addr: String,
    },
    /// `pcmax serve-bench`
    ServeBench {
        /// Closed-loop client connections.
        clients: usize,
        /// Total requests across all clients.
        requests: usize,
        /// Solver every request uses.
        algo: String,
        /// Accuracy.
        eps: f64,
        /// Instance-pool base seed.
        seed: u64,
        /// Instances generated per workload family.
        per_family: usize,
        /// Engine worker threads; `None` = one per core.
        workers: Option<usize>,
        /// Admission bound.
        capacity: usize,
        /// Also write the JSON load report here.
        out: Option<String>,
    },
}

/// Default daemon address shared by `serve` and `client`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7077";

/// Parses a distribution name as printed by `Distribution::to_string`.
pub fn parse_dist(s: &str) -> Result<Distribution, String> {
    let canon = s.replace(' ', "");
    Ok(match canon.as_str() {
        "U(1,10)" => Distribution::U1To10,
        "U(1,100)" => Distribution::U1To100,
        "U(1,2m-1)" => Distribution::U1TwoMMinus1,
        "U(1,10n)" => Distribution::U1To10N,
        "U(m,2m-1)" => Distribution::UMTo2MMinus1,
        "U(95,105)" => Distribution::U95To105,
        other => {
            // U(lo,hi)
            let inner = other
                .strip_prefix("U(")
                .and_then(|x| x.strip_suffix(')'))
                .ok_or_else(|| format!("unknown distribution {s}"))?;
            let (lo, hi) = inner
                .split_once(',')
                .ok_or_else(|| format!("bad interval {s}"))?;
            let lo: u64 = lo.parse().map_err(|e| format!("bad lo: {e}"))?;
            let hi: u64 = hi.parse().map_err(|e| format!("bad hi: {e}"))?;
            if lo < 1 || lo > hi {
                return Err(format!("bad interval U({lo},{hi}): need 1 <= lo <= hi"));
            }
            Distribution::Uniform { lo, hi }
        }
    })
}

struct Flags<'a> {
    argv: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(argv: &'a [String]) -> Self {
        Self {
            argv,
            used: vec![false; argv.len()],
        }
    }

    fn value(&mut self, names: &[&str]) -> Result<Option<String>, String> {
        for i in 0..self.argv.len() {
            if !self.used[i] && names.contains(&self.argv[i].as_str()) {
                let v = self
                    .argv
                    .get(i + 1)
                    .ok_or_else(|| format!("{} needs a value", self.argv[i]))?;
                self.used[i] = true;
                self.used[i + 1] = true;
                return Ok(Some(v.clone()));
            }
        }
        Ok(None)
    }

    fn flag(&mut self, name: &str) -> bool {
        for i in 0..self.argv.len() {
            if !self.used[i] && self.argv[i] == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn finish(self) -> Result<(), String> {
        for (i, used) in self.used.iter().enumerate() {
            if !used {
                return Err(format!("unexpected argument {}", self.argv[i]));
            }
        }
        Ok(())
    }
}

fn parse_source(flags: &mut Flags<'_>) -> Result<Source, String> {
    if let Some(path) = flags.value(&["-i", "--input"])? {
        return Ok(Source::File(path));
    }
    let dist = parse_dist(
        &flags
            .value(&["--dist"])?
            .ok_or("need either -i FILE or --dist/-m/-n")?,
    )?;
    let machines = flags
        .value(&["-m", "--machines"])?
        .ok_or("--dist needs -m")?
        .parse()
        .map_err(|e| format!("bad -m: {e}"))?;
    let jobs = flags
        .value(&["-n", "--jobs"])?
        .ok_or("--dist needs -n")?
        .parse()
        .map_err(|e| format!("bad -n: {e}"))?;
    let seed = flags
        .value(&["--seed"])?
        .map(|s| s.parse::<u64>())
        .transpose()
        .map_err(|e| format!("bad --seed: {e}"))?
        .unwrap_or(1);
    let speed_max = flags
        .value(&["--speed-max"])?
        .map(|s| s.parse::<u64>())
        .transpose()
        .map_err(|e| format!("bad --speed-max: {e}"))?;
    if speed_max == Some(0) {
        return Err("--speed-max must be at least 1".into());
    }
    let shuffle = flags.flag("--shuffle");
    if shuffle && speed_max.is_some() {
        return Err("--shuffle and --speed-max are mutually exclusive".into());
    }
    Ok(Source::Generated {
        dist,
        machines,
        jobs,
        seed,
        speed_max,
        shuffle,
    })
}

/// Parses `pcmax trace <algo> [instance-file] [flags]`: the algorithm is a
/// positional argument, an optional second positional names an instance
/// file, and the usual `-i`/`--dist` source flags still work.
fn parse_trace(rest: &[String]) -> Result<Command, String> {
    let (algo, rest) = rest.split_first().ok_or("trace needs an algorithm name")?;
    if algo.starts_with('-') {
        return Err("trace needs an algorithm name before any flags".into());
    }
    let (positional, rest) = match rest.split_first() {
        Some((p, r)) if !p.starts_with('-') => (Some(p.clone()), r),
        _ => (None, rest),
    };
    let mut flags = Flags::new(rest);
    let source = match positional {
        Some(path) => Source::File(path),
        None => parse_source(&mut flags)?,
    };
    let eps = flags
        .value(&["--eps"])?
        .map(|s| s.parse::<f64>())
        .transpose()
        .map_err(|e| format!("bad --eps: {e}"))?
        .unwrap_or(0.3);
    let threads = flags
        .value(&["--threads"])?
        .map(|s| s.parse::<usize>())
        .transpose()
        .map_err(|e| format!("bad --threads: {e}"))?;
    let out = flags.value(&["--out", "-o"])?;
    // Without an export path the summary is the only useful output.
    let summary = flags.flag("--summary") || out.is_none();
    flags.finish()?;
    Ok(Command::Trace {
        source,
        algo: algo.clone(),
        eps,
        threads,
        out,
        summary,
    })
}

/// Parses `pcmax client solve <algo> [instance-file] [flags]` and
/// `pcmax client shutdown [--addr A]`.
fn parse_client(rest: &[String]) -> Result<Command, String> {
    let (action, rest) = rest
        .split_first()
        .ok_or("client needs an action: solve | shutdown")?;
    match action.as_str() {
        "shutdown" => {
            let mut flags = Flags::new(rest);
            let addr = flags
                .value(&["--addr"])?
                .unwrap_or_else(|| DEFAULT_ADDR.into());
            flags.finish()?;
            Ok(Command::ClientShutdown { addr })
        }
        "solve" => {
            let (algo, rest) = rest
                .split_first()
                .ok_or("client solve needs a solver name")?;
            if algo.starts_with('-') {
                return Err("client solve needs a solver name before any flags".into());
            }
            let (positional, rest) = match rest.split_first() {
                Some((p, r)) if !p.starts_with('-') => (Some(p.clone()), r),
                _ => (None, rest),
            };
            let mut flags = Flags::new(rest);
            let source = match positional {
                Some(path) => Source::File(path),
                None => parse_source(&mut flags)?,
            };
            let addr = flags
                .value(&["--addr"])?
                .unwrap_or_else(|| DEFAULT_ADDR.into());
            let eps = flags
                .value(&["--eps"])?
                .map(|s| s.parse::<f64>())
                .transpose()
                .map_err(|e| format!("bad --eps: {e}"))?
                .unwrap_or(0.3);
            let threads = flags
                .value(&["--threads"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --threads: {e}"))?;
            let timeout_ms = flags
                .value(&["--timeout-ms"])?
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|e| format!("bad --timeout-ms: {e}"))?;
            let repeat = flags
                .value(&["--repeat"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --repeat: {e}"))?
                .unwrap_or(1);
            if repeat == 0 {
                return Err("--repeat must be at least 1".into());
            }
            flags.finish()?;
            Ok(Command::ClientSolve {
                addr,
                algo: algo.clone(),
                source,
                eps,
                threads,
                timeout_ms,
                repeat,
            })
        }
        other => Err(format!(
            "unknown client action {other} (known: solve, shutdown)"
        )),
    }
}

/// Parses the full argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let (cmd, rest) = argv.split_first().ok_or("missing command")?;
    if cmd == "trace" {
        return parse_trace(rest);
    }
    if cmd == "client" {
        return parse_client(rest);
    }
    let mut flags = Flags::new(rest);
    let parsed = match cmd.as_str() {
        "generate" => Command::Generate(parse_source(&mut flags)?),
        "bounds" => Command::Bounds(parse_source(&mut flags)?),
        "compare" => {
            let source = parse_source(&mut flags)?;
            let family = flags.value(&["--family"])?;
            let metrics = flags.value(&["--metrics"])?;
            Command::Compare {
                source,
                family,
                metrics,
            }
        }
        "metrics" => {
            let families: Vec<String> = flags
                .value(&["--families"])?
                .unwrap_or_else(|| "p,q,online".into())
                .split(',')
                .map(|f| f.trim().to_string())
                .filter(|f| !f.is_empty())
                .collect();
            if families.is_empty() {
                return Err("--families needs at least one family".into());
            }
            let count = flags
                .value(&["--count"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --count: {e}"))?
                .unwrap_or(3);
            if count == 0 {
                return Err("--count must be at least 1".into());
            }
            let eps = flags
                .value(&["--eps"])?
                .map(|s| s.parse::<f64>())
                .transpose()
                .map_err(|e| format!("bad --eps: {e}"))?
                .unwrap_or(0.3);
            let threads = flags
                .value(&["--threads"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --threads: {e}"))?;
            let seed = flags
                .value(&["--seed"])?
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|e| format!("bad --seed: {e}"))?
                .unwrap_or(1);
            let format = flags.value(&["--format"])?;
            if let Some(f) = &format {
                if f != "prom" && f != "json" {
                    return Err(format!("bad --format {f} (known: prom, json)"));
                }
            }
            let out = flags.value(&["--out", "-o"])?;
            Command::Metrics {
                families,
                count,
                eps,
                threads,
                seed,
                format,
                out,
            }
        }
        "solve" => {
            let source = parse_source(&mut flags)?;
            let algo = flags.value(&["--algo"])?.unwrap_or_else(|| "pptas".into());
            let eps = flags
                .value(&["--eps"])?
                .map(|s| s.parse::<f64>())
                .transpose()
                .map_err(|e| format!("bad --eps: {e}"))?
                .unwrap_or(0.3);
            let threads = flags
                .value(&["--threads"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --threads: {e}"))?;
            let budget = flags
                .value(&["--budget"])?
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|e| format!("bad --budget: {e}"))?;
            let schedule = flags.flag("--schedule");
            Command::Solve {
                source,
                algo,
                eps,
                threads,
                budget,
                schedule,
            }
        }
        "simulate" => {
            let source = parse_source(&mut flags)?;
            let procs = flags
                .value(&["--procs"])?
                .unwrap_or_else(|| "1,2,4,8,16".into())
                .split(',')
                .map(|p| p.trim().parse::<usize>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| format!("bad --procs: {e}"))?;
            let eps = flags
                .value(&["--eps"])?
                .map(|s| s.parse::<f64>())
                .transpose()
                .map_err(|e| format!("bad --eps: {e}"))?
                .unwrap_or(0.3);
            Command::Simulate { source, procs, eps }
        }
        "serve" => {
            let addr = flags
                .value(&["--addr"])?
                .unwrap_or_else(|| DEFAULT_ADDR.into());
            let workers = flags
                .value(&["--workers"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --workers: {e}"))?;
            if workers == Some(0) {
                return Err("--workers must be at least 1".into());
            }
            let capacity = flags
                .value(&["--capacity"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --capacity: {e}"))?
                .unwrap_or(256);
            let cache = flags
                .value(&["--cache"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --cache: {e}"))?
                .unwrap_or(4096);
            Command::Serve {
                addr,
                workers,
                capacity,
                cache,
            }
        }
        "serve-bench" => {
            let clients = flags
                .value(&["--clients"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --clients: {e}"))?
                .unwrap_or(4);
            let requests = flags
                .value(&["--requests"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --requests: {e}"))?
                .unwrap_or(1000);
            if clients == 0 || requests == 0 {
                return Err("--clients and --requests must be at least 1".into());
            }
            let algo = flags.value(&["--algo"])?.unwrap_or_else(|| "pptas".into());
            let eps = flags
                .value(&["--eps"])?
                .map(|s| s.parse::<f64>())
                .transpose()
                .map_err(|e| format!("bad --eps: {e}"))?
                .unwrap_or(0.4);
            let seed = flags
                .value(&["--seed"])?
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|e| format!("bad --seed: {e}"))?
                .unwrap_or(7);
            let per_family = flags
                .value(&["--per-family"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --per-family: {e}"))?
                .unwrap_or(2);
            if per_family == 0 {
                return Err("--per-family must be at least 1".into());
            }
            let workers = flags
                .value(&["--workers"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --workers: {e}"))?;
            if workers == Some(0) {
                return Err("--workers must be at least 1".into());
            }
            let capacity = flags
                .value(&["--capacity"])?
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|e| format!("bad --capacity: {e}"))?
                .unwrap_or(256);
            let out = flags.value(&["--out", "-o"])?;
            Command::ServeBench {
                clients,
                requests,
                algo,
                eps,
                seed,
                per_family,
                workers,
                capacity,
                out,
            }
        }
        other => return Err(format!("unknown command {other}")),
    };
    flags.finish()?;
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate_with_family() {
        let cmd = parse(&argv("generate --dist U(1,100) -m 10 -n 50 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate(Source::Generated {
                dist: Distribution::U1To100,
                machines: 10,
                jobs: 50,
                seed: 7,
                speed_max: None,
                shuffle: false,
            })
        );
    }

    #[test]
    fn parses_uniform_and_online_sources() {
        let cmd = parse(&argv("generate --dist U(1,100) -m 4 -n 20 --speed-max 5")).unwrap();
        match cmd {
            Command::Generate(Source::Generated {
                speed_max, shuffle, ..
            }) => {
                assert_eq!(speed_max, Some(5));
                assert!(!shuffle);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("generate --dist U(1,100) -m 4 -n 20 --shuffle")).unwrap();
        assert!(matches!(
            cmd,
            Command::Generate(Source::Generated { shuffle: true, .. })
        ));
        assert!(
            parse(&argv(
                "generate --dist U(1,10) -m 2 -n 4 --speed-max 3 --shuffle"
            ))
            .is_err(),
            "speeds and shuffling are mutually exclusive"
        );
        assert!(parse(&argv("generate --dist U(1,10) -m 2 -n 4 --speed-max 0")).is_err());
    }

    #[test]
    fn parses_compare_family_filter() {
        let cmd = parse(&argv("compare -i inst.json --family q")).unwrap();
        match cmd {
            Command::Compare {
                source,
                family,
                metrics,
            } => {
                assert_eq!(source, Source::File("inst.json".into()));
                assert_eq!(family.as_deref(), Some("q"));
                assert_eq!(metrics, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("compare -i inst.json")).unwrap();
        assert!(matches!(cmd, Command::Compare { family: None, .. }));
    }

    #[test]
    fn parses_compare_metrics_snapshot_path() {
        let cmd = parse(&argv("compare -i inst.json --metrics snap.json")).unwrap();
        match cmd {
            Command::Compare { metrics, .. } => {
                assert_eq!(metrics.as_deref(), Some("snap.json"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_metrics_with_defaults() {
        let cmd = parse(&argv("metrics")).unwrap();
        match cmd {
            Command::Metrics {
                families,
                count,
                eps,
                threads,
                seed,
                format,
                out,
            } => {
                assert_eq!(families, vec!["p", "q", "online"]);
                assert_eq!(count, 3);
                assert_eq!(eps, 0.3);
                assert_eq!(threads, None);
                assert_eq!(seed, 1);
                assert_eq!(format, None);
                assert_eq!(out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_metrics_with_export_flags() {
        let cmd = parse(&argv(
            "metrics --families p,q --count 2 --threads 2 --seed 9 --format prom --out m.prom",
        ))
        .unwrap();
        match cmd {
            Command::Metrics {
                families,
                count,
                threads,
                seed,
                format,
                out,
                ..
            } => {
                assert_eq!(families, vec!["p", "q"]);
                assert_eq!(count, 2);
                assert_eq!(threads, Some(2));
                assert_eq!(seed, 9);
                assert_eq!(format.as_deref(), Some("prom"));
                assert_eq!(out.as_deref(), Some("m.prom"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("metrics --format yaml")).is_err());
        assert!(parse(&argv("metrics --count 0")).is_err());
        assert!(parse(&argv("metrics --families ,")).is_err());
    }

    #[test]
    fn parses_solve_with_defaults() {
        let cmd = parse(&argv("solve -i inst.json")).unwrap();
        match cmd {
            Command::Solve {
                source,
                algo,
                eps,
                threads,
                budget,
                schedule,
            } => {
                assert_eq!(source, Source::File("inst.json".into()));
                assert_eq!(algo, "pptas");
                assert_eq!(eps, 0.3);
                assert_eq!(threads, None);
                assert_eq!(budget, None);
                assert!(!schedule);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_custom_uniform() {
        assert_eq!(
            parse_dist("U(5,42)").unwrap(),
            Distribution::Uniform { lo: 5, hi: 42 }
        );
        assert!(parse_dist("gaussian").is_err());
    }

    #[test]
    fn parses_simulate_procs() {
        let cmd = parse(&argv("simulate -i - --procs 2,4,8")).unwrap();
        match cmd {
            Command::Simulate { procs, .. } => assert_eq!(procs, vec![2, 4, 8]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_command_and_stray_args() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("bounds -i x.json --bogus")).is_err());
        assert!(
            parse(&argv("generate --dist U(1,10)")).is_err(),
            "missing -m/-n"
        );
    }

    #[test]
    fn parses_trace_with_positional_algo_and_file() {
        let cmd = parse(&argv("trace par-ptas inst.json --out t.json")).unwrap();
        match cmd {
            Command::Trace {
                source,
                algo,
                out,
                summary,
                ..
            } => {
                assert_eq!(source, Source::File("inst.json".into()));
                assert_eq!(algo, "par-ptas");
                assert_eq!(out.as_deref(), Some("t.json"));
                assert!(!summary, "--out without --summary stays quiet");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_defaults_to_summary_and_accepts_generated_sources() {
        let cmd = parse(&argv("trace pptas --dist U(1,100) -m 4 -n 20 --threads 2")).unwrap();
        match cmd {
            Command::Trace {
                source,
                threads,
                out,
                summary,
                ..
            } => {
                assert!(matches!(source, Source::Generated { machines: 4, .. }));
                assert_eq!(threads, Some(2));
                assert_eq!(out, None);
                assert!(summary, "no --out means the summary is the output");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("trace")).is_err(), "algo is mandatory");
        assert!(
            parse(&argv("trace --out t.json")).is_err(),
            "flags cannot replace the positional algo"
        );
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        let cmd = parse(&argv("serve")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: DEFAULT_ADDR.into(),
                workers: None,
                capacity: 256,
                cache: 4096,
            }
        );
        let cmd = parse(&argv(
            "serve --addr 127.0.0.1:9000 --workers 2 --capacity 32 --cache 64",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "127.0.0.1:9000".into(),
                workers: Some(2),
                capacity: 32,
                cache: 64,
            }
        );
        assert!(parse(&argv("serve --workers 0")).is_err());
    }

    #[test]
    fn parses_client_solve_and_shutdown() {
        let cmd = parse(&argv(
            "client solve pptas --dist U(1,100) -m 4 -n 20 --repeat 3 --timeout-ms 500",
        ))
        .unwrap();
        match cmd {
            Command::ClientSolve {
                addr,
                algo,
                source,
                repeat,
                timeout_ms,
                ..
            } => {
                assert_eq!(addr, DEFAULT_ADDR);
                assert_eq!(algo, "pptas");
                assert!(matches!(source, Source::Generated { machines: 4, .. }));
                assert_eq!(repeat, 3);
                assert_eq!(timeout_ms, Some(500));
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("client solve lpt inst.json --addr 127.0.0.1:9000")).unwrap();
        match cmd {
            Command::ClientSolve { addr, source, .. } => {
                assert_eq!(addr, "127.0.0.1:9000");
                assert_eq!(source, Source::File("inst.json".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv("client shutdown")).unwrap();
        assert_eq!(
            cmd,
            Command::ClientShutdown {
                addr: DEFAULT_ADDR.into()
            }
        );
        assert!(parse(&argv("client")).is_err(), "action is mandatory");
        assert!(parse(&argv("client solve")).is_err(), "solver is mandatory");
        assert!(parse(&argv("client frobnicate")).is_err());
        assert!(parse(&argv("client solve lpt inst.json --repeat 0")).is_err());
    }

    #[test]
    fn parses_serve_bench_with_defaults() {
        let cmd = parse(&argv("serve-bench")).unwrap();
        match cmd {
            Command::ServeBench {
                clients,
                requests,
                algo,
                eps,
                seed,
                per_family,
                workers,
                capacity,
                out,
            } => {
                assert_eq!(clients, 4);
                assert_eq!(requests, 1000);
                assert_eq!(algo, "pptas");
                assert_eq!(eps, 0.4);
                assert_eq!(seed, 7);
                assert_eq!(per_family, 2);
                assert_eq!(workers, None);
                assert_eq!(capacity, 256);
                assert_eq!(out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(&argv(
            "serve-bench --clients 2 --requests 50 --algo lpt --out r.json",
        ))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::ServeBench {
                clients: 2,
                requests: 50,
                ..
            }
        ));
        assert!(parse(&argv("serve-bench --requests 0")).is_err());
        assert!(parse(&argv("serve-bench --per-family 0")).is_err());
    }

    #[test]
    fn seed_defaults_to_one() {
        let cmd = parse(&argv("bounds --dist U(1,10) -m 2 -n 4")).unwrap();
        match cmd {
            Command::Bounds(Source::Generated { seed, .. }) => assert_eq!(seed, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
