//! Instance input/output for the CLI.

use crate::args::Source;
use pcmax_core::{json, Instance};
use pcmax_workloads::online::shuffled_arrivals;
use pcmax_workloads::uniform::{generate_uniform, SpeedFamily};
use pcmax_workloads::{generate, Family};
use std::io::Read;

/// Materializes the instance a command refers to.
pub fn load(source: &Source) -> Result<Instance, String> {
    match source {
        Source::File(path) => {
            let raw = if path == "-" {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("reading stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
            };
            if path.ends_with(".txt") || path.ends_with(".dat") {
                pcmax_workloads::parse_text(&raw).map_err(|e| e.to_string())
            } else {
                json::from_str(&raw).map_err(|e| format!("parsing instance JSON: {e}"))
            }
        }
        Source::Generated {
            dist,
            machines,
            jobs,
            seed,
            speed_max,
            shuffle,
        } => {
            let family = Family::new(*machines, *jobs, *dist);
            Ok(match speed_max {
                Some(s) => generate_uniform(SpeedFamily::new(family, *s), *seed),
                None if *shuffle => shuffled_arrivals(family, *seed),
                None => generate(family, *seed),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_workloads::Distribution;

    #[test]
    fn loads_generated_source() {
        let src = Source::Generated {
            dist: Distribution::U1To10,
            machines: 3,
            jobs: 9,
            seed: 5,
            speed_max: None,
            shuffle: false,
        };
        let inst = load(&src).unwrap();
        assert_eq!(inst.jobs(), 9);
        assert_eq!(inst.machines(), 3);
        assert!(!inst.is_uniform());
    }

    #[test]
    fn speed_max_and_shuffle_change_the_generated_instance() {
        let src = |speed_max, shuffle| Source::Generated {
            dist: Distribution::U1To100,
            machines: 3,
            jobs: 12,
            seed: 5,
            speed_max,
            shuffle,
        };
        let plain = load(&src(None, false)).unwrap();
        let uniform = load(&src(Some(4), false)).unwrap();
        assert!(uniform.is_uniform());
        assert_eq!(uniform.times(), plain.times(), "speeds never perturb sizes");
        let shuffled = load(&src(None, true)).unwrap();
        assert_ne!(shuffled.times(), plain.times(), "arrival order differs");
    }

    #[test]
    fn loads_instance_from_file() {
        let inst = Instance::new(vec![3, 5, 8], 2).unwrap();
        let path = std::env::temp_dir().join("pcmax_cli_io_test.json");
        std::fs::write(&path, json::to_string(&inst)).unwrap();
        let loaded = load(&Source::File(path.to_string_lossy().into_owned())).unwrap();
        assert_eq!(loaded, inst);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn loads_text_format_by_extension() {
        let path = std::env::temp_dir().join("pcmax_cli_io_test.txt");
        std::fs::write(&path, "2 3\n4 5 6\n").unwrap();
        let inst = load(&Source::File(path.to_string_lossy().into_owned())).unwrap();
        assert_eq!(inst.machines(), 2);
        assert_eq!(inst.times(), &[4, 5, 6]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = load(&Source::File("/nonexistent/x.json".into())).unwrap_err();
        assert!(err.contains("reading"));
    }
}
