//! Command implementations, all routed through the engine registry
//! (`pcmax-engine`): `solve` builds whatever `--algo` names, `compare`
//! enumerates every polynomial comparator the registry knows about. Every
//! solve goes through the submission-based session engine
//! ([`pcmax_engine::Engine`]); `serve`, `client` and `serve-bench` drive
//! the same engine over the `pcmax-wire/1` daemon.

use crate::args::{Command, Source};
use crate::io::load;
use pcmax_core::wire::{WireOutcome, WireSolve};
use pcmax_core::{json, ApproxRatio, Budget, Instance, MakespanBounds, Schedule, SolveReport};
use pcmax_engine::{
    comparators_for, lookup, Engine, EngineConfig, ScenarioKind, SolverKind, SolverParams,
    Submission,
};
use pcmax_metrics::{export, family, Family, Histogram, Snapshot};
use pcmax_simcore::{simulate_ptas, SimParams};
use pcmax_workloads::Distribution;
use std::time::Instant;

/// Runs `f` against a short-lived one-worker session engine and shuts it
/// down afterwards. The CLI's one-shot commands (and its strictly
/// sequential sweeps) submit and wait on every handle, so one worker keeps
/// the solve order — and therefore every metrics delta taken around a
/// solve — deterministic.
fn with_engine<T>(f: impl FnOnce(&Engine) -> Result<T, String>) -> Result<T, String> {
    let engine = Engine::with_config(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let out = f(&engine);
    engine.shutdown();
    out
}

/// Submits and blocks for the report, flattening both failure layers
/// (admission and solve) into the CLI's error strings.
fn submit_wait(engine: &Engine, sub: Submission) -> Result<SolveReport, String> {
    engine
        .submit(sub)
        .map_err(|e| e.to_string())?
        .wait()
        .map_err(|e| e.to_string())
}

/// Per-solver distribution of `makespan / denominator`, in permille
/// (ratio 1.234 records as 1234) — the scoreboard's quality column. Fed by
/// the `pcmax metrics` workload mix, where the denominator is the same
/// per-instance reference `pcmax compare` uses.
static SOLVE_RATIO_PERMILLE: Family<Histogram> = family(
    "pcmax_solve_ratio_permille",
    "Approximation ratio per solver, in permille of the per-instance reference",
    "solver",
);

/// Dispatches a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Generate(source) => {
            let inst = load(&source)?;
            println!("{}", json::to_string_pretty(&inst));
            Ok(())
        }
        Command::Bounds(source) => {
            let inst = load(&source)?;
            let b = MakespanBounds::of(&inst);
            println!(
                "n={} m={} total={} max={} LB={} UB={}",
                inst.jobs(),
                inst.machines(),
                inst.total_time(),
                inst.max_time(),
                b.lower,
                b.upper
            );
            Ok(())
        }
        Command::Solve {
            source,
            algo,
            eps,
            threads,
            budget,
            schedule,
        } => {
            let inst = load(&source)?;
            let (s, label) = solve_one(&inst, &algo, eps, threads, budget)?;
            println!("{label}: makespan {}", s.makespan(&inst));
            if schedule {
                print_schedule(&inst, &s);
                print!("{}", pcmax_core::render_gantt(&inst, &s, 60));
            }
            Ok(())
        }
        Command::Compare {
            source,
            family,
            metrics,
        } => {
            let inst = load(&source)?;
            compare(&inst, family.as_deref(), metrics.as_deref())
        }
        Command::Metrics {
            families,
            count,
            eps,
            threads,
            seed,
            format,
            out,
        } => metrics_run(
            &families,
            count,
            eps,
            threads,
            seed,
            format.as_deref(),
            out.as_deref(),
        ),
        Command::Simulate { source, procs, eps } => {
            let inst = load(&source)?;
            println!("{:<8}{:>10}", "procs", "speedup");
            for p in procs {
                let r = simulate_ptas(&inst, eps, SimParams::with_processors(p))
                    .map_err(|e| e.to_string())?;
                println!("{p:<8}{:>10.2}", r.speedup());
            }
            Ok(())
        }
        Command::Trace {
            source,
            algo,
            eps,
            threads,
            out,
            summary,
        } => {
            let inst = load(&source)?;
            trace(&inst, &algo, eps, threads, out.as_deref(), summary)
        }
        Command::Serve {
            addr,
            workers,
            capacity,
            cache,
        } => serve(addr, workers, capacity, cache),
        Command::ClientSolve {
            addr,
            algo,
            source,
            eps,
            threads,
            timeout_ms,
            repeat,
        } => {
            let inst = load(&source)?;
            client_solve(&addr, &algo, &inst, eps, threads, timeout_ms, repeat)
        }
        Command::ClientShutdown { addr } => client_shutdown(&addr),
        Command::ServeBench {
            clients,
            requests,
            algo,
            eps,
            seed,
            per_family,
            workers,
            capacity,
            out,
        } => serve_bench(
            clients,
            requests,
            &algo,
            eps,
            seed,
            per_family,
            workers,
            capacity,
            out.as_deref(),
        ),
    }
}

/// Runs the `pcmax-wire/1` daemon until a client sends `shutdown`.
fn serve(
    addr: String,
    workers: Option<usize>,
    capacity: usize,
    cache: usize,
) -> Result<(), String> {
    let mut engine = EngineConfig::default();
    if let Some(w) = workers {
        engine.workers = w;
    }
    engine.capacity = capacity;
    engine.cache_capacity = cache;
    let server = pcmax_serve::Server::bind(pcmax_serve::ServerConfig { addr, engine })
        .map_err(|e| format!("serve: {e}"))?;
    let local = server.local_addr().map_err(|e| format!("serve: {e}"))?;
    println!("pcmax-serve listening on {local} (pcmax-wire/1)");
    let totals = server.run().map_err(|e| format!("serve: {e}"))?;
    println!(
        "bye: served {} | cancelled {} | cache hits {} misses {}",
        totals.served, totals.cancelled, totals.cache_hits, totals.cache_misses
    );
    Ok(())
}

/// Sends `repeat` solve frames for one instance and prints each response
/// as one compact-JSON line (repeats exercise the server-side profile
/// cache: the second response reports `cache_hit: true`).
fn client_solve(
    addr: &str,
    algo: &str,
    inst: &Instance,
    eps: f64,
    threads: Option<usize>,
    timeout_ms: Option<u64>,
    repeat: usize,
) -> Result<(), String> {
    let mut client =
        pcmax_serve::Client::connect(addr).map_err(|e| format!("client: connect {addr}: {e}"))?;
    for _ in 0..repeat {
        let response = client
            .solve(WireSolve {
                solver: algo.to_string(),
                eps,
                threads,
                timeout_ms,
                instance: inst.clone(),
            })
            .map_err(|e| format!("client: {e}"))?;
        println!("{}", json::to_string(&response));
        if let WireOutcome::Error { code, message } = &response.outcome {
            return Err(format!("client: solve failed ({code}): {message}"));
        }
    }
    Ok(())
}

/// Shuts a running daemon down and prints its `bye` frame.
fn client_shutdown(addr: &str) -> Result<(), String> {
    let client =
        pcmax_serve::Client::connect(addr).map_err(|e| format!("client: connect {addr}: {e}"))?;
    let bye = client.shutdown().map_err(|e| format!("client: {e}"))?;
    println!("{}", json::to_string(&bye));
    Ok(())
}

/// Closed-loop load test against an in-process daemon; prints the report
/// as compact JSON (and optionally persists it).
#[allow(clippy::too_many_arguments)]
fn serve_bench(
    clients: usize,
    requests: usize,
    algo: &str,
    eps: f64,
    seed: u64,
    per_family: usize,
    workers: Option<usize>,
    capacity: usize,
    out: Option<&str>,
) -> Result<(), String> {
    let mut engine = EngineConfig::default();
    if let Some(w) = workers {
        engine.workers = w;
    }
    engine.capacity = capacity;
    let report = pcmax_serve::run_loadtest(&pcmax_serve::LoadtestConfig {
        clients,
        requests,
        solver: algo.to_string(),
        eps,
        seed,
        per_family,
        engine,
    })
    .map_err(|e| format!("serve-bench: {e}"))?;
    println!(
        "{} requests over {clients} client(s): {} ok, {} cancelled, {} errors | \
         p50 {}us p99 {}us | {:.1} req/s | cache hits {} / misses {}",
        report.requests,
        report.ok,
        report.cancelled,
        report.errors,
        report.p50_micros,
        report.p99_micros,
        report.throughput_rps,
        report.cache_hits,
        report.cache_misses,
    );
    println!("{}", report.to_json());
    if let Some(path) = out {
        let text = report.to_json();
        std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path} ({} bytes, load report)", text.len());
    }
    if report.ok != report.requests {
        return Err(format!(
            "serve-bench: {} of {} responses dropped or failed ({} errors, {} cancelled)",
            report.requests - report.ok,
            report.requests,
            report.errors,
            report.cancelled
        ));
    }
    Ok(())
}

/// Solves once with the in-tree trace runtime attached, then exports the
/// merged timeline as Chrome-trace JSON (`--out`) and/or renders the ASCII
/// per-worker utilization summary (`--summary`).
fn trace(
    inst: &Instance,
    algo: &str,
    eps: f64,
    threads: Option<usize>,
    out: Option<&str>,
    summary: bool,
) -> Result<(), String> {
    let spec = lookup(algo).ok_or_else(|| {
        format!(
            "unknown algorithm {algo} (known: {})",
            pcmax_engine::names().join(", ")
        )
    })?;
    let params = SolverParams {
        epsilon: eps,
        threads,
        width: threads.unwrap_or(4),
        ..SolverParams::default()
    };
    // The trace session wraps the whole submission, so engine-side events
    // (queue park/wake, worker lanes) land in the same timeline as the
    // solver's own spans. Dropping the session on error clears the rings.
    let session = pcmax_trace::Session::start()
        .ok_or_else(|| "trace: a trace session is already active in this process".to_string())?;
    let report = with_engine(|engine| {
        submit_wait(
            engine,
            Submission::new(inst.clone(), spec.name)
                .with_params(params)
                .with_trace(std::sync::Arc::new(pcmax_trace::GlobalSink)),
        )
    })?;
    let timeline = session.finish();
    timeline.validate()?;
    println!(
        "{}: makespan {} | {} events on {} threads",
        spec.name,
        report.makespan,
        timeline.total_events(),
        timeline.lanes.len()
    );
    if let Some(path) = out {
        let text = pcmax_trace::chrome::to_json_string(&timeline);
        std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote {path} ({} bytes) — open with ui.perfetto.dev",
            text.len()
        );
    }
    if summary {
        print!("{}", pcmax_trace::summary::render(&timeline));
    }
    Ok(())
}

fn solve_one(
    inst: &Instance,
    algo: &str,
    eps: f64,
    threads: Option<usize>,
    budget: Option<u64>,
) -> Result<(Schedule, String), String> {
    let spec = lookup(algo).ok_or_else(|| {
        format!(
            "unknown algorithm {algo} (known: {})",
            pcmax_engine::names().join(", ")
        )
    })?;
    let params = SolverParams {
        epsilon: eps,
        threads,
        node_budget: budget,
        width: threads.unwrap_or(4),
    };
    let report = with_engine(|engine| {
        let mut sub = Submission::new(inst.clone(), spec.name).with_params(params);
        if let Some(b) = budget {
            sub = sub.with_budget(Budget::unlimited().nodes(b));
        }
        submit_wait(engine, sub)
    })?;

    let mut label = match spec.kind {
        SolverKind::DualApprox | SolverKind::FixedMachines => format!("{}(eps={eps})", spec.name),
        _ => spec.name.to_string(),
    };
    if report.proven_optimal {
        if report.stats.bb_nodes > 0 {
            label.push_str(&format!(
                " (proven optimal, {} nodes)",
                report.stats.bb_nodes
            ));
        } else {
            label.push_str(" (proven optimal)");
        }
    } else if let Some(t) = report.certified_target {
        match spec.kind {
            SolverKind::Exact => label.push_str(&format!(
                " (budget hit: incumbent {}, lower bound {t})",
                report.makespan
            )),
            _ => label.push_str(&format!(" (certified target {t})")),
        }
    }
    Ok((report.schedule, label))
}

/// Maps a `--family` value to the scenario it names.
fn parse_family(family: &str) -> Result<ScenarioKind, String> {
    match family.to_ascii_lowercase().as_str() {
        "p" | "identical" | "pcmax" => Ok(ScenarioKind::Identical),
        "q" | "uniform" | "qcmax" => Ok(ScenarioKind::Uniform),
        "online" | "ls-online" => Ok(ScenarioKind::Online),
        other => Err(format!("unknown --family {other} (known: p, q, online)")),
    }
}

/// Sum of a counter metric across all its labels (e.g. the per-worker busy
/// counters of one family).
fn counter_sum(snap: &Snapshot, name: &str) -> u64 {
    snap.samples
        .iter()
        .filter(|s| s.name == name)
        .filter_map(|s| match s.value {
            pcmax_metrics::SampleValue::Counter(v) => Some(v),
            _ => None,
        })
        .sum()
}

fn compare(inst: &Instance, family: Option<&str>, metrics: Option<&str>) -> Result<(), String> {
    let scenario = match family {
        Some(f) => parse_family(f)?,
        // Speeds on the instance imply the uniform comparison set; otherwise
        // the paper's identical-machine harness.
        None => {
            if inst.is_uniform() {
                ScenarioKind::Uniform
            } else {
                ScenarioKind::Identical
            }
        }
    };
    let params = SolverParams::default();

    struct Row {
        name: String,
        scenario: &'static str,
        makespan: u64,
        certified: Option<u64>,
        dt: std::time::Duration,
        busy_pct: String,
        parks: String,
    }
    let mut rows: Vec<Row> = Vec::new();
    let (denom, denom_label) = with_engine(|engine| {
        for spec in comparators_for(scenario) {
            // Pool health comes from the always-on metrics registry
            // (per-solver deltas around each strictly sequential solve — the
            // one-worker engine guarantees the order). The profile cache is
            // off so no solver inherits another's DP work and the timing
            // column stays an honest per-solver measurement.
            let before = pcmax_metrics::snapshot();
            let t0 = Instant::now();
            let report = submit_wait(
                engine,
                Submission::new(inst.clone(), spec.name)
                    .with_params(params.clone())
                    .without_cache(),
            )?;
            let dt = t0.elapsed();
            let after = pcmax_metrics::snapshot();
            let name = match spec.kind {
                SolverKind::DualApprox => format!("{}(eps={})", spec.name, params.epsilon),
                _ => spec.name.to_string(),
            };
            let busy = counter_sum(&after, "pcmax_worker_busy_nanos_total")
                .saturating_sub(counter_sum(&before, "pcmax_worker_busy_nanos_total"));
            let extent = counter_sum(&after, "pcmax_pool_extent_nanos_total")
                .saturating_sub(counter_sum(&before, "pcmax_pool_extent_nanos_total"));
            let busy_pct = if extent > 0 {
                format!("{:.1}", busy as f64 / extent as f64 * 100.0)
            } else {
                "-".to_string()
            };
            let parks = if report.stats.pool_wakes > 0 || report.stats.pool_parks > 0 {
                debug_assert_eq!(report.stats.pool_parks, report.stats.pool_wakes);
                report.stats.pool_parks.to_string()
            } else {
                "-".to_string()
            };
            rows.push(Row {
                name,
                scenario: spec.scenario.label(),
                makespan: report.makespan,
                certified: report.certified_target,
                dt,
                busy_pct,
                parks,
            });
        }

        // The ratio denominator: the identical-machine scenarios have an
        // exact solver; for Q||Cmax no exact solver is registered, so the
        // best certified target among the dual approximations (a proven
        // lower bound on OPT) stands in.
        match scenario {
            ScenarioKind::Uniform => {
                let certified = rows.iter().filter_map(|r| r.certified).max();
                Ok(match certified {
                    Some(t) => (t, " (certified lower bound)"),
                    None => (
                        MakespanBounds::of(inst).lower.max(1),
                        " (trivial lower bound)",
                    ),
                })
            }
            _ => {
                let exact = submit_wait(
                    engine,
                    Submission::new(inst.clone(), "exact").without_cache(),
                )?;
                Ok(if exact.proven_optimal {
                    (exact.makespan, "")
                } else {
                    (
                        exact.certified_target.unwrap_or(exact.makespan),
                        " (lower bound)",
                    )
                })
            }
        }
    })?;

    println!(
        "n={} m={} [{}] | denominator {}{}",
        inst.jobs(),
        inst.machines(),
        scenario.label(),
        denom,
        denom_label
    );
    println!(
        "{:<22}{:<10}{:>10}{:>9}{:>12}{:>8}{:>7}",
        "algorithm", "scenario", "makespan", "ratio", "time", "busy%", "parks"
    );
    for r in rows {
        println!(
            "{:<22}{:<10}{:>10}{:>9.3}{:>12.2?}{:>8}{:>7}",
            r.name,
            r.scenario,
            r.makespan,
            ApproxRatio::new(r.makespan, denom).value(),
            r.dt,
            r.busy_pct,
            r.parks
        );
    }
    if let Some(path) = metrics {
        let text = export::to_json_string(&pcmax_metrics::snapshot());
        std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path} ({} bytes, metrics snapshot)", text.len());
    }
    Ok(())
}

/// Runs a seeded workload mix through every comparator of the requested
/// families via the session engine (which meters every solve), then
/// prints a per-solver scoreboard
/// (solve counts, ratio quality, latency quantiles) straight from the
/// process metrics registry, optionally exporting the registry in
/// Prometheus or JSON form.
fn metrics_run(
    families: &[String],
    count: usize,
    eps: f64,
    threads: Option<usize>,
    seed: u64,
    format: Option<&str>,
    out: Option<&str>,
) -> Result<(), String> {
    // A clean measurement window: the scoreboard describes this mix only.
    pcmax_metrics::reset();
    let params = SolverParams {
        epsilon: eps,
        threads,
        width: threads.unwrap_or(4),
        ..SolverParams::default()
    };
    let mut solves = 0usize;
    with_engine(|engine| {
        for fam in families {
            let scenario = parse_family(fam)?;
            for i in 0..count {
                let source = Source::Generated {
                    dist: Distribution::U1To10,
                    machines: 3,
                    jobs: 12,
                    seed: seed.wrapping_add(i as u64),
                    speed_max: matches!(scenario, ScenarioKind::Uniform).then_some(4),
                    shuffle: matches!(scenario, ScenarioKind::Online),
                };
                let inst = load(&source)?;
                let mut results = Vec::new();
                for spec in comparators_for(scenario) {
                    // Cache off: the scoreboard's latency quantiles are
                    // per-solver measurements, not cache-hit measurements.
                    let report = submit_wait(
                        engine,
                        Submission::new(inst.clone(), spec.name)
                            .with_params(params.clone())
                            .without_cache(),
                    )?;
                    solves += 1;
                    results.push((spec.name, report));
                }
                // Ratio denominator, mirroring `compare`: exact OPT where an
                // exact solver is registered, else the best certified lower
                // bound among the dual approximations.
                let denom = match scenario {
                    ScenarioKind::Uniform => results
                        .iter()
                        .filter_map(|(_, r)| r.certified_target)
                        .max()
                        .unwrap_or_else(|| MakespanBounds::of(&inst).lower),
                    _ => {
                        let exact = submit_wait(
                            engine,
                            Submission::new(inst.clone(), "exact").without_cache(),
                        )?;
                        exact.makespan
                    }
                }
                .max(1);
                for (name, report) in &results {
                    SOLVE_RATIO_PERMILLE
                        .with_label(name)
                        .observe(report.makespan.saturating_mul(1000) / denom);
                }
            }
        }
        Ok(())
    })?;

    let snap = pcmax_metrics::snapshot();
    println!(
        "{} solves across {} family(ies), {} instances each | eps={eps}",
        solves,
        families.len(),
        count
    );
    print_scoreboard(&snap);

    let export_text = |fmt: &str| match fmt {
        "prom" => export::to_prometheus(&snap),
        _ => export::to_json_string(&snap),
    };
    if let Some(path) = out {
        let fmt = format.unwrap_or("json");
        let text = export_text(fmt);
        std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path} ({} bytes, {fmt} format)", text.len());
    } else if let Some(fmt) = format {
        print!("{}", export_text(fmt));
    }
    Ok(())
}

/// Renders the solver scoreboard from a registry snapshot: one row per
/// solver that recorded at least one latency observation, with the ratio
/// and latency quantile estimates of the aggregated histograms.
fn print_scoreboard(snap: &Snapshot) {
    println!(
        "{:<12}{:<10}{:>7}{:>8}{:>8}{:>10}{:>10}{:>10}{:>10}",
        "solver", "scenario", "solves", "ratio", "r-p90", "p50ms", "p90ms", "p99ms", "maxms"
    );
    let ms = |nanos: f64| nanos / 1e6;
    for sample in &snap.samples {
        if sample.name != "pcmax_solve_latency_nanos" {
            continue;
        }
        let Some((_, solver)) = &sample.label else {
            continue;
        };
        let pcmax_metrics::SampleValue::Histogram(lat) = &sample.value else {
            continue;
        };
        if lat.count() == 0 {
            continue;
        }
        let scenario = lookup(solver).map_or("-", |s| s.scenario.label());
        let ratio = snap.histogram("pcmax_solve_ratio_permille", Some(solver));
        let fmt_ratio = |r: Option<f64>| match r {
            Some(permille) => format!("{:.3}", permille / 1000.0),
            None => "-".to_string(),
        };
        println!(
            "{:<12}{:<10}{:>7}{:>8}{:>8}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
            solver,
            scenario,
            lat.count(),
            fmt_ratio(ratio.and_then(|r| r.mean())),
            fmt_ratio(ratio.and_then(|r| r.quantile(0.9))),
            ms(lat.quantile(0.5).unwrap_or(0.0)),
            ms(lat.quantile(0.9).unwrap_or(0.0)),
            ms(lat.quantile(0.99).unwrap_or(0.0)),
            ms(lat.max as f64),
        );
    }
}

fn print_schedule(inst: &Instance, s: &Schedule) {
    let loads = s.loads(inst);
    for (machine, jobs) in s.jobs_per_machine().iter().enumerate() {
        let times: Vec<u64> = jobs.iter().map(|&j| inst.time(j)).collect();
        println!(
            "machine {machine}: jobs {jobs:?} times {times:?} load {}",
            loads[machine]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Source;
    use pcmax_engine::registry;
    use pcmax_workloads::Distribution;

    fn tiny() -> Source {
        Source::Generated {
            dist: Distribution::U1To10,
            machines: 2,
            jobs: 8,
            seed: 3,
            speed_max: None,
            shuffle: false,
        }
    }

    fn tiny_uniform() -> Source {
        Source::Generated {
            dist: Distribution::U1To10,
            machines: 2,
            jobs: 8,
            seed: 3,
            speed_max: Some(3),
            shuffle: false,
        }
    }

    /// `compare` and `trace` start process-global trace sessions; tests that
    /// run them must not overlap.
    fn trace_serial() -> std::sync::MutexGuard<'static, ()> {
        use std::sync::{Mutex, OnceLock, PoisonError};
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn every_registry_name_and_alias_resolves() {
        let inst = load(&tiny()).unwrap();
        for spec in registry() {
            for name in std::iter::once(&spec.name).chain(spec.aliases) {
                let (s, label) = solve_one(&inst, name, 0.3, None, None).unwrap();
                s.validate(&inst).unwrap();
                assert!(
                    label.starts_with(spec.name),
                    "label {label:?} should lead with the primary name {}",
                    spec.name
                );
            }
        }
        let err = solve_one(&inst, "quantum", 0.3, None, None).unwrap_err();
        assert!(err.contains("unknown algorithm"), "got {err}");
        assert!(err.contains("par-ptas"), "error lists known names: {err}");
    }

    #[test]
    fn exact_labels_announce_proof_or_budget() {
        let inst = Instance::new(vec![9, 8, 7, 7, 6, 5, 5, 4, 3], 3).unwrap();
        let (_, label) = solve_one(&inst, "exact", 0.3, None, None).unwrap();
        assert!(label.contains("proven optimal"), "got {label}");
        let (_, label) = solve_one(&inst, "exact", 0.3, None, Some(1)).unwrap();
        assert!(label.contains("budget hit"), "got {label}");
    }

    #[test]
    fn run_smoke_tests_every_command() {
        let _serial = trace_serial();
        run(Command::Bounds(tiny())).unwrap();
        run(Command::Compare {
            source: tiny(),
            family: None,
            metrics: None,
        })
        .unwrap();
        run(Command::Metrics {
            families: vec!["p".into()],
            count: 1,
            eps: 0.3,
            threads: Some(2),
            seed: 5,
            format: None,
            out: None,
        })
        .unwrap();
        run(Command::Simulate {
            source: tiny(),
            procs: vec![1, 2],
            eps: 0.3,
        })
        .unwrap();
        run(Command::Solve {
            source: tiny(),
            algo: "pptas".into(),
            eps: 0.3,
            threads: Some(2),
            budget: None,
            schedule: true,
        })
        .unwrap();
        run(Command::Trace {
            source: tiny(),
            algo: "lpt".into(),
            eps: 0.3,
            threads: None,
            out: None,
            summary: true,
        })
        .unwrap();
    }

    #[test]
    fn compare_covers_every_scenario_family() {
        let _serial = trace_serial();
        // Uniform instances pick the Q comparators by inference and via the
        // explicit filter; the online family runs on a shuffled stream.
        run(Command::Compare {
            source: tiny_uniform(),
            family: None,
            metrics: None,
        })
        .unwrap();
        run(Command::Compare {
            source: tiny_uniform(),
            family: Some("q".into()),
            metrics: None,
        })
        .unwrap();
        run(Command::Compare {
            source: Source::Generated {
                dist: Distribution::U1To10,
                machines: 2,
                jobs: 8,
                seed: 3,
                speed_max: None,
                shuffle: true,
            },
            family: Some("online".into()),
            metrics: None,
        })
        .unwrap();
        let err = run(Command::Compare {
            source: tiny(),
            family: Some("galactic".into()),
            metrics: None,
        })
        .unwrap_err();
        assert!(err.contains("unknown --family"), "got {err}");
    }

    #[test]
    fn solve_handles_the_new_scenario_algorithms() {
        let inst = load(&tiny_uniform()).unwrap();
        let (s, label) = solve_one(&inst, "ptas-q", 0.3, None, None).unwrap();
        s.validate(&inst).unwrap();
        assert!(label.contains("certified target"), "got {label}");
        let (s, label) = solve_one(&inst, "lpt-q", 0.3, None, None).unwrap();
        s.validate(&inst).unwrap();
        assert!(label.starts_with("lpt-q"), "got {label}");
        let (s, _) = solve_one(&inst, "ls-online", 0.3, None, None).unwrap();
        s.validate(&inst).unwrap();
    }

    #[test]
    fn metrics_run_exports_validating_snapshots() {
        let _serial = trace_serial();
        let json_path = std::env::temp_dir().join("pcmax_cli_metrics_test.json");
        let prom_path = std::env::temp_dir().join("pcmax_cli_metrics_test.prom");
        run(Command::Metrics {
            families: vec!["p".into(), "q".into(), "online".into()],
            count: 1,
            eps: 0.5,
            threads: Some(2),
            seed: 7,
            format: None,
            out: Some(json_path.to_str().unwrap().into()),
        })
        .unwrap();
        let text = std::fs::read_to_string(&json_path).unwrap();
        let snap = export::from_json_str(&text).unwrap();
        export::validate_snapshot(&snap).unwrap();
        // The scoreboard inputs all made it into the export: per-solver
        // latency and ratio histograms for every family's comparators.
        for solver in ["ls", "lpt", "par-ptas", "ptas-q", "ls-online"] {
            let lat = snap
                .histogram("pcmax_solve_latency_nanos", Some(solver))
                .unwrap_or_else(|| panic!("no latency histogram for {solver}"));
            assert!(lat.count() > 0, "{solver} latency is empty");
            let ratio = snap
                .histogram("pcmax_solve_ratio_permille", Some(solver))
                .unwrap_or_else(|| panic!("no ratio histogram for {solver}"));
            // Every comparator is at least 1.0x the reference.
            assert!(
                ratio.quantile(0.5).unwrap() >= 500.0,
                "{solver} ratio p50 below bucket of 1000 permille"
            );
        }
        assert_eq!(snap.counter("pcmax_solve_outcomes_total", Some("ok")), {
            let solves = snap
                .samples
                .iter()
                .filter(|s| s.name == "pcmax_solve_latency_nanos")
                .filter_map(|s| match &s.value {
                    pcmax_metrics::SampleValue::Histogram(h) => Some(h.count()),
                    _ => None,
                })
                .sum::<u64>();
            Some(solves)
        });

        run(Command::Metrics {
            families: vec!["p".into()],
            count: 1,
            eps: 0.5,
            threads: Some(2),
            seed: 7,
            format: Some("prom".into()),
            out: Some(prom_path.to_str().unwrap().into()),
        })
        .unwrap();
        let text = std::fs::read_to_string(&prom_path).unwrap();
        let stats = export::validate_prometheus(&text).unwrap();
        assert!(stats.histograms > 0, "prometheus export has no histograms");
        let _ = std::fs::remove_file(&json_path);
        let _ = std::fs::remove_file(&prom_path);
    }

    #[test]
    fn compare_metrics_flag_persists_a_snapshot() {
        let _serial = trace_serial();
        let path = std::env::temp_dir().join("pcmax_cli_compare_metrics.json");
        run(Command::Compare {
            source: tiny(),
            family: None,
            metrics: Some(path.to_str().unwrap().into()),
        })
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let snap = export::from_json_str(&text).unwrap();
        export::validate_snapshot(&snap).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_exports_chrome_json_that_revalidates() {
        let _serial = trace_serial();
        let inst = load(&Source::Generated {
            dist: Distribution::U1To100,
            machines: 4,
            jobs: 24,
            seed: 11,
            speed_max: None,
            shuffle: false,
        })
        .unwrap();
        let path = std::env::temp_dir().join("pcmax_cli_trace_test.json");
        trace(
            &inst,
            "par-ptas",
            0.3,
            Some(2),
            Some(path.to_str().unwrap()),
            false,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let stats = pcmax_trace::chrome::validate(&text).unwrap();
        assert!(stats.events > 0, "exported trace must not be empty");
        let _ = std::fs::remove_file(&path);

        let err = trace(&inst, "quantum", 0.3, None, None, true).unwrap_err();
        assert!(err.contains("unknown algorithm"), "got {err}");
    }
}
