//! Command implementations, all routed through the engine registry
//! (`pcmax-engine`): `solve` builds whatever `--algo` names, `compare`
//! enumerates every polynomial comparator the registry knows about.

use crate::args::Command;
use crate::io::load;
use pcmax_core::{
    json, ApproxRatio, Budget, Instance, MakespanBounds, Schedule, SolveRequest, Solver,
};
use pcmax_engine::{
    build as registry_build, comparators_for, lookup, ScenarioKind, SolverKind, SolverParams,
};
use pcmax_simcore::{simulate_ptas, SimParams};
use std::time::Instant;

/// Dispatches a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Generate(source) => {
            let inst = load(&source)?;
            println!("{}", json::to_string_pretty(&inst));
            Ok(())
        }
        Command::Bounds(source) => {
            let inst = load(&source)?;
            let b = MakespanBounds::of(&inst);
            println!(
                "n={} m={} total={} max={} LB={} UB={}",
                inst.jobs(),
                inst.machines(),
                inst.total_time(),
                inst.max_time(),
                b.lower,
                b.upper
            );
            Ok(())
        }
        Command::Solve {
            source,
            algo,
            eps,
            threads,
            budget,
            schedule,
        } => {
            let inst = load(&source)?;
            let (s, label) = solve_one(&inst, &algo, eps, threads, budget)?;
            println!("{label}: makespan {}", s.makespan(&inst));
            if schedule {
                print_schedule(&inst, &s);
                print!("{}", pcmax_core::render_gantt(&inst, &s, 60));
            }
            Ok(())
        }
        Command::Compare { source, family } => {
            let inst = load(&source)?;
            compare(&inst, family.as_deref())
        }
        Command::Simulate { source, procs, eps } => {
            let inst = load(&source)?;
            println!("{:<8}{:>10}", "procs", "speedup");
            for p in procs {
                let r = simulate_ptas(&inst, eps, SimParams::with_processors(p))
                    .map_err(|e| e.to_string())?;
                println!("{p:<8}{:>10.2}", r.speedup());
            }
            Ok(())
        }
        Command::Trace {
            source,
            algo,
            eps,
            threads,
            out,
            summary,
        } => {
            let inst = load(&source)?;
            trace(&inst, &algo, eps, threads, out.as_deref(), summary)
        }
    }
}

/// Solves once with the in-tree trace runtime attached, then exports the
/// merged timeline as Chrome-trace JSON (`--out`) and/or renders the ASCII
/// per-worker utilization summary (`--summary`).
fn trace(
    inst: &Instance,
    algo: &str,
    eps: f64,
    threads: Option<usize>,
    out: Option<&str>,
    summary: bool,
) -> Result<(), String> {
    let spec = lookup(algo).ok_or_else(|| {
        format!(
            "unknown algorithm {algo} (known: {})",
            pcmax_engine::names().join(", ")
        )
    })?;
    let params = SolverParams {
        epsilon: eps,
        threads,
        width: threads.unwrap_or(4),
        ..SolverParams::default()
    };
    let solver = spec.build(&params).map_err(|e| e.to_string())?;
    let mut req = SolveRequest::new(inst);
    if let Some(t) = threads {
        req = req.with_threads(t);
    }
    let (report, timeline) =
        pcmax_engine::solve_traced(solver.as_ref(), &req).map_err(|e| e.to_string())?;
    timeline.validate()?;
    println!(
        "{}: makespan {} | {} events on {} threads",
        spec.name,
        report.makespan,
        timeline.total_events(),
        timeline.lanes.len()
    );
    if let Some(path) = out {
        let text = pcmax_trace::chrome::to_json_string(&timeline);
        std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote {path} ({} bytes) — open with ui.perfetto.dev",
            text.len()
        );
    }
    if summary {
        print!("{}", pcmax_trace::summary::render(&timeline));
    }
    Ok(())
}

fn solve_one(
    inst: &Instance,
    algo: &str,
    eps: f64,
    threads: Option<usize>,
    budget: Option<u64>,
) -> Result<(Schedule, String), String> {
    let spec = lookup(algo).ok_or_else(|| {
        format!(
            "unknown algorithm {algo} (known: {})",
            pcmax_engine::names().join(", ")
        )
    })?;
    let params = SolverParams {
        epsilon: eps,
        threads,
        node_budget: budget,
        width: threads.unwrap_or(4),
    };
    let solver = spec.build(&params).map_err(|e| e.to_string())?;
    let mut req = SolveRequest::new(inst);
    if let Some(b) = budget {
        req = req.with_budget(Budget::unlimited().nodes(b));
    }
    if let Some(t) = threads {
        req = req.with_threads(t);
    }
    let report = solver.solve(&req).map_err(|e| e.to_string())?;

    let mut label = match spec.kind {
        SolverKind::DualApprox | SolverKind::FixedMachines => format!("{}(eps={eps})", spec.name),
        _ => spec.name.to_string(),
    };
    if report.proven_optimal {
        if report.stats.bb_nodes > 0 {
            label.push_str(&format!(
                " (proven optimal, {} nodes)",
                report.stats.bb_nodes
            ));
        } else {
            label.push_str(" (proven optimal)");
        }
    } else if let Some(t) = report.certified_target {
        match spec.kind {
            SolverKind::Exact => label.push_str(&format!(
                " (budget hit: incumbent {}, lower bound {t})",
                report.makespan
            )),
            _ => label.push_str(&format!(" (certified target {t})")),
        }
    }
    Ok((report.schedule, label))
}

/// Maps a `--family` value to the scenario it names.
fn parse_family(family: &str) -> Result<ScenarioKind, String> {
    match family.to_ascii_lowercase().as_str() {
        "p" | "identical" | "pcmax" => Ok(ScenarioKind::Identical),
        "q" | "uniform" | "qcmax" => Ok(ScenarioKind::Uniform),
        "online" | "ls-online" => Ok(ScenarioKind::Online),
        other => Err(format!("unknown --family {other} (known: p, q, online)")),
    }
}

fn compare(inst: &Instance, family: Option<&str>) -> Result<(), String> {
    let scenario = match family {
        Some(f) => parse_family(f)?,
        // Speeds on the instance imply the uniform comparison set; otherwise
        // the paper's identical-machine harness.
        None => {
            if inst.is_uniform() {
                ScenarioKind::Uniform
            } else {
                ScenarioKind::Identical
            }
        }
    };
    let params = SolverParams::default();

    struct Row {
        name: String,
        scenario: &'static str,
        makespan: u64,
        certified: Option<u64>,
        dt: std::time::Duration,
        busy_pct: String,
        parks: String,
    }
    let mut rows: Vec<Row> = Vec::new();
    for spec in comparators_for(scenario) {
        let solver = spec.build(&params).map_err(|e| e.to_string())?;
        let req = SolveRequest::new(inst);
        let t0 = Instant::now();
        // Each solve runs under its own trace session (they are strictly
        // sequential here) so the table can report measured worker
        // utilization, not just counters.
        let (report, timeline) =
            pcmax_engine::solve_traced(solver.as_ref(), &req).map_err(|e| e.to_string())?;
        let dt = t0.elapsed();
        let name = match spec.kind {
            SolverKind::DualApprox => format!("{}(eps={})", spec.name, params.epsilon),
            _ => spec.name.to_string(),
        };
        let util = pcmax_trace::summary::utilization(&timeline);
        let (busy, extent) = util.iter().fold((0u64, 0u64), |(b, e), r| {
            (b + r.busy_nanos, e + r.extent_nanos)
        });
        let busy_pct = if extent > 0 {
            format!("{:.1}", busy as f64 / extent as f64 * 100.0)
        } else {
            "-".to_string()
        };
        let parks = if report.stats.pool_wakes > 0 || report.stats.pool_parks > 0 {
            debug_assert_eq!(report.stats.pool_parks, report.stats.pool_wakes);
            report.stats.pool_parks.to_string()
        } else {
            "-".to_string()
        };
        rows.push(Row {
            name,
            scenario: spec.scenario.label(),
            makespan: report.makespan,
            certified: report.certified_target,
            dt,
            busy_pct,
            parks,
        });
    }

    // The ratio denominator: the identical-machine scenarios have an exact
    // solver; for Q||Cmax no exact solver is registered, so the best
    // certified target among the dual approximations (a proven lower bound
    // on OPT) stands in.
    let (denom, denom_label) = match scenario {
        ScenarioKind::Uniform => {
            let certified = rows.iter().filter_map(|r| r.certified).max();
            match certified {
                Some(t) => (t, " (certified lower bound)"),
                None => (
                    MakespanBounds::of(inst).lower.max(1),
                    " (trivial lower bound)",
                ),
            }
        }
        _ => {
            let exact = registry_build("exact", &SolverParams::default())
                .and_then(|s| s.solve(&SolveRequest::new(inst)))
                .map_err(|e| e.to_string())?;
            if exact.proven_optimal {
                (exact.makespan, "")
            } else {
                (
                    exact.certified_target.unwrap_or(exact.makespan),
                    " (lower bound)",
                )
            }
        }
    };

    println!(
        "n={} m={} [{}] | denominator {}{}",
        inst.jobs(),
        inst.machines(),
        scenario.label(),
        denom,
        denom_label
    );
    println!(
        "{:<22}{:<10}{:>10}{:>9}{:>12}{:>8}{:>7}",
        "algorithm", "scenario", "makespan", "ratio", "time", "busy%", "parks"
    );
    for r in rows {
        println!(
            "{:<22}{:<10}{:>10}{:>9.3}{:>12.2?}{:>8}{:>7}",
            r.name,
            r.scenario,
            r.makespan,
            ApproxRatio::new(r.makespan, denom).value(),
            r.dt,
            r.busy_pct,
            r.parks
        );
    }
    Ok(())
}

fn print_schedule(inst: &Instance, s: &Schedule) {
    let loads = s.loads(inst);
    for (machine, jobs) in s.jobs_per_machine().iter().enumerate() {
        let times: Vec<u64> = jobs.iter().map(|&j| inst.time(j)).collect();
        println!(
            "machine {machine}: jobs {jobs:?} times {times:?} load {}",
            loads[machine]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Source;
    use pcmax_engine::registry;
    use pcmax_workloads::Distribution;

    fn tiny() -> Source {
        Source::Generated {
            dist: Distribution::U1To10,
            machines: 2,
            jobs: 8,
            seed: 3,
            speed_max: None,
            shuffle: false,
        }
    }

    fn tiny_uniform() -> Source {
        Source::Generated {
            dist: Distribution::U1To10,
            machines: 2,
            jobs: 8,
            seed: 3,
            speed_max: Some(3),
            shuffle: false,
        }
    }

    /// `compare` and `trace` start process-global trace sessions; tests that
    /// run them must not overlap.
    fn trace_serial() -> std::sync::MutexGuard<'static, ()> {
        use std::sync::{Mutex, OnceLock, PoisonError};
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn every_registry_name_and_alias_resolves() {
        let inst = load(&tiny()).unwrap();
        for spec in registry() {
            for name in std::iter::once(&spec.name).chain(spec.aliases) {
                let (s, label) = solve_one(&inst, name, 0.3, None, None).unwrap();
                s.validate(&inst).unwrap();
                assert!(
                    label.starts_with(spec.name),
                    "label {label:?} should lead with the primary name {}",
                    spec.name
                );
            }
        }
        let err = solve_one(&inst, "quantum", 0.3, None, None).unwrap_err();
        assert!(err.contains("unknown algorithm"), "got {err}");
        assert!(err.contains("par-ptas"), "error lists known names: {err}");
    }

    #[test]
    fn exact_labels_announce_proof_or_budget() {
        let inst = Instance::new(vec![9, 8, 7, 7, 6, 5, 5, 4, 3], 3).unwrap();
        let (_, label) = solve_one(&inst, "exact", 0.3, None, None).unwrap();
        assert!(label.contains("proven optimal"), "got {label}");
        let (_, label) = solve_one(&inst, "exact", 0.3, None, Some(1)).unwrap();
        assert!(label.contains("budget hit"), "got {label}");
    }

    #[test]
    fn run_smoke_tests_every_command() {
        let _serial = trace_serial();
        run(Command::Bounds(tiny())).unwrap();
        run(Command::Compare {
            source: tiny(),
            family: None,
        })
        .unwrap();
        run(Command::Simulate {
            source: tiny(),
            procs: vec![1, 2],
            eps: 0.3,
        })
        .unwrap();
        run(Command::Solve {
            source: tiny(),
            algo: "pptas".into(),
            eps: 0.3,
            threads: Some(2),
            budget: None,
            schedule: true,
        })
        .unwrap();
        run(Command::Trace {
            source: tiny(),
            algo: "lpt".into(),
            eps: 0.3,
            threads: None,
            out: None,
            summary: true,
        })
        .unwrap();
    }

    #[test]
    fn compare_covers_every_scenario_family() {
        let _serial = trace_serial();
        // Uniform instances pick the Q comparators by inference and via the
        // explicit filter; the online family runs on a shuffled stream.
        run(Command::Compare {
            source: tiny_uniform(),
            family: None,
        })
        .unwrap();
        run(Command::Compare {
            source: tiny_uniform(),
            family: Some("q".into()),
        })
        .unwrap();
        run(Command::Compare {
            source: Source::Generated {
                dist: Distribution::U1To10,
                machines: 2,
                jobs: 8,
                seed: 3,
                speed_max: None,
                shuffle: true,
            },
            family: Some("online".into()),
        })
        .unwrap();
        let err = run(Command::Compare {
            source: tiny(),
            family: Some("galactic".into()),
        })
        .unwrap_err();
        assert!(err.contains("unknown --family"), "got {err}");
    }

    #[test]
    fn solve_handles_the_new_scenario_algorithms() {
        let inst = load(&tiny_uniform()).unwrap();
        let (s, label) = solve_one(&inst, "ptas-q", 0.3, None, None).unwrap();
        s.validate(&inst).unwrap();
        assert!(label.contains("certified target"), "got {label}");
        let (s, label) = solve_one(&inst, "lpt-q", 0.3, None, None).unwrap();
        s.validate(&inst).unwrap();
        assert!(label.starts_with("lpt-q"), "got {label}");
        let (s, _) = solve_one(&inst, "ls-online", 0.3, None, None).unwrap();
        s.validate(&inst).unwrap();
    }

    #[test]
    fn trace_exports_chrome_json_that_revalidates() {
        let _serial = trace_serial();
        let inst = load(&Source::Generated {
            dist: Distribution::U1To100,
            machines: 4,
            jobs: 24,
            seed: 11,
            speed_max: None,
            shuffle: false,
        })
        .unwrap();
        let path = std::env::temp_dir().join("pcmax_cli_trace_test.json");
        trace(
            &inst,
            "par-ptas",
            0.3,
            Some(2),
            Some(path.to_str().unwrap()),
            false,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let stats = pcmax_trace::chrome::validate(&text).unwrap();
        assert!(stats.events > 0, "exported trace must not be empty");
        let _ = std::fs::remove_file(&path);

        let err = trace(&inst, "quantum", 0.3, None, None, true).unwrap_err();
        assert!(err.contains("unknown algorithm"), "got {err}");
    }
}
