//! Command implementations.

use crate::args::Command;
use crate::io::load;
use pcmax_baselines::{Lpt, Ls, Multifit};
use pcmax_core::{ApproxRatio, Instance, MakespanBounds, Schedule, Scheduler};
use pcmax_exact::BranchAndBound;
use pcmax_milp::AssignmentIp;
use pcmax_parallel::ParallelPtas;
use pcmax_ptas::Ptas;
use pcmax_simcore::{simulate_ptas, SimParams};
use std::time::Instant;

/// Dispatches a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Generate(source) => {
            let inst = load(&source)?;
            println!(
                "{}",
                serde_json::to_string_pretty(&inst).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        Command::Bounds(source) => {
            let inst = load(&source)?;
            let b = MakespanBounds::of(&inst);
            println!(
                "n={} m={} total={} max={} LB={} UB={}",
                inst.jobs(),
                inst.machines(),
                inst.total_time(),
                inst.max_time(),
                b.lower,
                b.upper
            );
            Ok(())
        }
        Command::Solve {
            source,
            algo,
            eps,
            threads,
            budget,
            schedule,
        } => {
            let inst = load(&source)?;
            let (s, label) = solve_one(&inst, &algo, eps, threads, budget)?;
            println!("{label}: makespan {}", s.makespan(&inst));
            if schedule {
                print_schedule(&inst, &s);
                print!("{}", pcmax_core::render_gantt(&inst, &s, 60));
            }
            Ok(())
        }
        Command::Compare(source) => {
            let inst = load(&source)?;
            compare(&inst)
        }
        Command::Simulate { source, procs, eps } => {
            let inst = load(&source)?;
            println!("{:<8}{:>10}", "procs", "speedup");
            for p in procs {
                let r = simulate_ptas(&inst, eps, SimParams::with_processors(p))
                    .map_err(|e| e.to_string())?;
                println!("{p:<8}{:>10.2}", r.speedup());
            }
            Ok(())
        }
    }
}

fn solve_one(
    inst: &Instance,
    algo: &str,
    eps: f64,
    threads: Option<usize>,
    budget: Option<u64>,
) -> Result<(Schedule, String), String> {
    let err = |e: pcmax_core::Error| e.to_string();
    Ok(match algo {
        "ls" => (Ls.schedule(inst).map_err(err)?, "LS".into()),
        "lpt" => (Lpt.schedule(inst).map_err(err)?, "LPT".into()),
        "multifit" => (
            Multifit::default().schedule(inst).map_err(err)?,
            "MULTIFIT".into(),
        ),
        "ptas" => (
            Ptas::new(eps).map_err(err)?.schedule(inst).map_err(err)?,
            format!("PTAS(eps={eps})"),
        ),
        "pptas" => {
            let solver = match threads {
                Some(t) => ParallelPtas::with_threads(eps, t).map_err(err)?,
                None => ParallelPtas::new(eps).map_err(err)?,
            };
            (
                solver.schedule(inst).map_err(err)?,
                format!("ParallelPTAS(eps={eps})"),
            )
        }
        "fptas" => (
            pcmax_fptas::FixedMachinesFptas::new(eps)
                .map_err(err)?
                .schedule(inst)
                .map_err(err)?,
            format!("Sahni-FPTAS(eps={eps})"),
        ),
        "spec" => (
            pcmax_parallel::SpeculativePtas::new(eps, threads.unwrap_or(4))
                .map_err(err)?
                .schedule(inst)
                .map_err(err)?,
            format!("SpeculativePTAS(eps={eps})"),
        ),
        "exact" => {
            let solver = match budget {
                Some(b) => BranchAndBound::with_budget(b),
                None => BranchAndBound::default(),
            };
            let out = solver.solve_detailed(inst).map_err(err)?;
            let label = if out.proven {
                format!("exact (proven optimal, {} nodes)", out.nodes)
            } else {
                format!(
                    "exact (budget hit: incumbent {}, lower bound {})",
                    out.best, out.lower_bound
                )
            };
            (out.schedule, label)
        }
        "milp" => {
            let (s, opt) = AssignmentIp::default()
                .solve_detailed(inst)
                .map_err(err)?;
            (s, format!("assignment MILP (optimal {opt})"))
        }
        other => return Err(format!("unknown algorithm {other}")),
    })
}

fn compare(inst: &Instance) -> Result<(), String> {
    let exact = BranchAndBound::default()
        .solve_detailed(inst)
        .map_err(|e| e.to_string())?;
    let denom = if exact.proven {
        exact.best
    } else {
        exact.lower_bound
    };
    println!(
        "n={} m={} | optimum {}{}",
        inst.jobs(),
        inst.machines(),
        denom,
        if exact.proven { "" } else { " (lower bound)" }
    );
    println!(
        "{:<22}{:>10}{:>9}{:>12}",
        "algorithm", "makespan", "ratio", "time"
    );
    let algos: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("LS", Box::new(Ls)),
        ("LPT", Box::new(Lpt)),
        ("MULTIFIT", Box::new(Multifit::default())),
        ("PTAS(0.3)", Box::new(Ptas::new(0.3).unwrap())),
        (
            "ParallelPTAS(0.3)",
            Box::new(ParallelPtas::new(0.3).unwrap()),
        ),
    ];
    for (name, algo) in &algos {
        let t0 = Instant::now();
        let s = algo.schedule(inst).map_err(|e| e.to_string())?;
        let dt = t0.elapsed();
        let ms = s.makespan(inst);
        println!(
            "{name:<22}{ms:>10}{:>9.3}{:>12.2?}",
            ApproxRatio::new(ms, denom).value(),
            dt
        );
    }
    Ok(())
}

fn print_schedule(inst: &Instance, s: &Schedule) {
    let loads = s.loads(inst);
    for (machine, jobs) in s.jobs_per_machine().iter().enumerate() {
        let times: Vec<u64> = jobs.iter().map(|&j| inst.time(j)).collect();
        println!("machine {machine}: jobs {jobs:?} times {times:?} load {}", loads[machine]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Source;
    use pcmax_workloads::Distribution;

    fn tiny() -> Source {
        Source::Generated {
            dist: Distribution::U1To10,
            machines: 2,
            jobs: 8,
            seed: 3,
        }
    }

    #[test]
    fn every_algorithm_name_resolves() {
        let inst = load(&tiny()).unwrap();
        for algo in ["ls", "lpt", "multifit", "ptas", "pptas", "fptas", "spec", "exact", "milp"] {
            let (s, _) = solve_one(&inst, algo, 0.3, None, None).unwrap();
            s.validate(&inst).unwrap();
        }
        assert!(solve_one(&inst, "quantum", 0.3, None, None).is_err());
    }

    #[test]
    fn run_smoke_tests_every_command() {
        run(Command::Bounds(tiny())).unwrap();
        run(Command::Compare(tiny())).unwrap();
        run(Command::Simulate {
            source: tiny(),
            procs: vec![1, 2],
            eps: 0.3,
        })
        .unwrap();
        run(Command::Solve {
            source: tiny(),
            algo: "pptas".into(),
            eps: 0.3,
            threads: Some(2),
            budget: None,
            schedule: true,
        })
        .unwrap();
    }
}
