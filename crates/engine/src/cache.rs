//! The engine-owned instance-profile cache.
//!
//! [`ProfileMemo`] is the concrete [`ProfileCache`] the session engine
//! attaches to every cached submission: a bounded FIFO memo from the rounded
//! `(m, ε, class-vector)` fingerprint ([`pcmax_core::ProfileKey`]) to the
//! memoized DP verdict ([`pcmax_core::ProfileVerdict`]). The map lives
//! behind the audited [`pcmax_parallel::sync::Mutex`], so the audit
//! explorer can interleave worker threads *through* the cache and prove the
//! session/cache seam race-free — the same seam discipline as the wavefront
//! pool.
//!
//! What a hit saves and what it must not skip: the verdict carries machine
//! counts and witness *configs* only — per-instance witness reconstruction
//! (mapping configs back to this request's concrete job ids) always re-runs
//! under the caller's own `Budget`/`CancelToken`, and per-solve stats are
//! counted fresh. A hit is a DP shortcut, never a reused answer.

use pcmax_core::{ProfileCache, ProfileKey, ProfileVerdict};
use pcmax_metrics::Gauge;
use pcmax_parallel::sync::{self, AtomicCounter};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;

/// Entries resident in the engine profile cache (last engine to update
/// wins; the daemon runs one engine per process).
static CACHE_ENTRIES: Gauge = Gauge::new(
    "pcmax_profile_cache_entries",
    "Entries resident in the engine instance-profile cache",
);

/// A bounded FIFO memo of DP verdicts keyed by instance profile.
///
/// Thread-safe (implements [`ProfileCache`], which is `Send + Sync`);
/// eviction is oldest-inserted-first, so a long-running daemon's resident
/// set follows the traffic mix. Refreshing an existing key replaces the
/// verdict in place without extending its lifetime.
#[derive(Debug)]
pub struct ProfileMemo {
    capacity: usize,
    state: sync::Mutex<MemoState>,
    hits: AtomicCounter,
    misses: AtomicCounter,
}

#[derive(Debug, Default)]
struct MemoState {
    map: HashMap<ProfileKey, ProfileVerdict>,
    order: VecDeque<ProfileKey>,
}

impl ProfileMemo {
    /// A memo holding at most `capacity` verdicts (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: sync::Mutex::new(MemoState::default()),
            hits: AtomicCounter::new(0),
            misses: AtomicCounter::new(0),
        }
    }

    /// Number of resident verdicts.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the memo holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum resident verdicts before FIFO eviction kicks in.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found a verdict, over the memo's lifetime.
    pub fn hits(&self) -> u64 {
        // audit:allow(relaxed): monotonic statistic, read for reporting only.
        self.hits.load(Ordering::Relaxed) as u64
    }

    /// Lookups that missed, over the memo's lifetime.
    pub fn misses(&self) -> u64 {
        // audit:allow(relaxed): monotonic statistic, read for reporting only.
        self.misses.load(Ordering::Relaxed) as u64
    }

    /// Drops every resident verdict (the lifetime hit/miss totals stay).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.map.clear();
        st.order.clear();
        CACHE_ENTRIES.set(0.0);
    }
}

impl ProfileCache for ProfileMemo {
    fn get(&self, key: &ProfileKey) -> Option<ProfileVerdict> {
        let found = self.state.lock().map.get(key).cloned();
        let ctr = if found.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        // audit:allow(relaxed): monotonic statistic; ordering carries no data.
        ctr.fetch_add(1, Ordering::Relaxed);
        found
    }

    fn put(&self, key: ProfileKey, verdict: ProfileVerdict) {
        let mut st = self.state.lock();
        // Refresh in place without extending the key's FIFO lifetime.
        if let std::collections::hash_map::Entry::Occupied(mut e) = st.map.entry(key.clone()) {
            e.insert(verdict);
            return;
        }
        while st.map.len() >= self.capacity {
            match st.order.pop_front() {
                Some(oldest) => {
                    st.map.remove(&oldest);
                }
                None => break,
            }
        }
        st.order.push_back(key.clone());
        st.map.insert(key, verdict);
        CACHE_ENTRIES.set(st.map.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(machines: u32) -> ProfileKey {
        ProfileKey {
            scenario: "p",
            eps_micros: 300_000,
            machines,
            caps_units: vec![16],
            counts: vec![1, 2, 3],
        }
    }

    #[test]
    fn get_put_roundtrip_counts_hits_and_misses() {
        let memo = ProfileMemo::new(8);
        assert!(memo.get(&key(2)).is_none());
        memo.put(key(2), ProfileVerdict::Infeasible { machines: 3 });
        match memo.get(&key(2)) {
            Some(ProfileVerdict::Infeasible { machines }) => assert_eq!(machines, 3),
            other => panic!("expected the stored verdict, got {other:?}"),
        }
        assert_eq!((memo.hits(), memo.misses()), (1, 1));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let memo = ProfileMemo::new(2);
        memo.put(key(1), ProfileVerdict::Infeasible { machines: 1 });
        memo.put(key(2), ProfileVerdict::Infeasible { machines: 2 });
        memo.put(key(3), ProfileVerdict::Infeasible { machines: 3 });
        assert_eq!(memo.len(), 2);
        assert!(memo.get(&key(1)).is_none(), "oldest entry evicted");
        assert!(memo.get(&key(2)).is_some() && memo.get(&key(3)).is_some());
    }

    #[test]
    fn refresh_replaces_without_growing() {
        let memo = ProfileMemo::new(2);
        memo.put(key(1), ProfileVerdict::Infeasible { machines: 1 });
        memo.put(
            key(1),
            ProfileVerdict::Feasible {
                machines: 1,
                configs: vec![vec![1, 0, 0]],
            },
        );
        assert_eq!(memo.len(), 1);
        assert!(matches!(
            memo.get(&key(1)),
            Some(ProfileVerdict::Feasible { .. })
        ));
    }

    #[test]
    fn clear_resets_entries_but_not_totals() {
        let memo = ProfileMemo::new(4);
        memo.put(key(1), ProfileVerdict::Infeasible { machines: 1 });
        let _ = memo.get(&key(1));
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.hits(), 1);
    }
}
