//! The submission-based session engine: one API surface for every solve.
//!
//! [`Engine::submit`] replaces the three parallel one-shot entry points the
//! registry used to export (`solve`, `solve_traced`, `solve_metered`) with a
//! single pipeline: a [`Submission`] names a registry solver, owns its
//! [`Instance`], and composes observers (a [`TraceSink`], the always-on
//! metrics registry, per-solve [`SolveStats`]) instead of picking an entry
//! point per concern. Submitting returns a [`SolveHandle`] with non-blocking
//! [`poll`](SolveHandle::poll), blocking [`wait`](SolveHandle::wait) and
//! handle-owned [`cancel`](SolveHandle::cancel).
//!
//! Behind the surface sits a persistent worker pool (shared across
//! sessions — solver instances are built once per parameterization and
//! reused) fed by a bounded FIFO admission queue. Admission is enforced at
//! `submit`: beyond `capacity` in-flight submissions the engine answers
//! [`Error::Overloaded`] instead of queueing unboundedly, and each accepted
//! job runs under its *own* [`Budget`] and [`CancelToken`] — a queued job
//! whose deadline passed or whose token was cancelled fails fast when a
//! worker picks it up, it never occupies the pool.
//!
//! Every blocking point goes through [`pcmax_parallel::sync`]: worker
//! park/wake on the queue condvar uses the same `trace_park`/`trace_wake`
//! seam as the wavefront pool (so daemon park/wake totals stay balanced and
//! auditable), and the queue, the job slots and the profile cache are all
//! built from audited primitives — the audit explorer can interleave an
//! entire engine lifecycle and race-check the session/cache seam.
//!
//! Cached submissions share the engine's [`ProfileMemo`]: the rounded
//! instance-profile fingerprint memoizes DP verdicts across requests, while
//! witness reconstruction and stats stay per-request (see [`crate::cache`]).

use crate::cache::ProfileMemo;
use crate::{lookup, record_metered, SolverParams, SolverSpec};
use pcmax_core::profile::eps_micros;
use pcmax_core::{
    Budget, CancelToken, Error, Instance, Result, SolveReport, SolveRequest, Solver, TraceSink,
};
use pcmax_metrics::{Counter, Gauge};
use pcmax_parallel::sync;
use std::collections::VecDeque;
use std::sync::Arc;

/// Jobs waiting in the engine admission queue (excludes running jobs).
static QUEUE_DEPTH: Gauge = Gauge::new(
    "pcmax_engine_queue_depth",
    "Jobs waiting in the engine admission queue",
);

/// Submissions accepted by the admission queue.
static ADMITTED: Counter = Counter::new(
    "pcmax_engine_admitted_total",
    "Submissions accepted by the engine admission queue",
);

/// Submissions rejected because the admission queue was at capacity.
static REJECTED: Counter = Counter::new(
    "pcmax_engine_rejected_total",
    "Submissions rejected because the engine admission queue was full",
);

/// How the engine is sized. The default matches the daemon's
/// thread-per-core layout with room for a connection's worth of queued
/// work per worker.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Persistent worker threads. `0` builds an accept-only engine whose
    /// queue never drains — useful for deterministic admission tests.
    pub workers: usize,
    /// Maximum in-flight submissions (queued + running) before `submit`
    /// rejects with [`Error::Overloaded`].
    pub capacity: usize,
    /// Verdicts the shared [`ProfileMemo`] retains before FIFO eviction.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            workers,
            capacity: 256,
            cache_capacity: 4096,
        }
    }
}

/// One unit of work for the session engine: a registry solver name, an
/// owned instance, and the composable per-solve observers.
pub struct Submission {
    instance: Instance,
    solver: String,
    params: SolverParams,
    budget: Budget,
    cancel: CancelToken,
    trace: Option<Arc<dyn TraceSink>>,
    use_cache: bool,
}

impl Submission {
    /// A submission solving `instance` with the registry solver named
    /// `solver` (primary name or alias), default parameters, an unlimited
    /// budget, a fresh cancel token, no trace sink, and the engine's
    /// profile cache enabled.
    pub fn new(instance: Instance, solver: impl Into<String>) -> Self {
        Self {
            instance,
            solver: solver.into(),
            params: SolverParams::default(),
            budget: Budget::unlimited(),
            cancel: CancelToken::new(),
            trace: None,
            use_cache: true,
        }
    }

    /// Sets the solver construction parameters (ε, threads, node budget,
    /// speculation width). `params.threads` also pins the solve request.
    pub fn with_params(mut self, params: SolverParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the per-request budget; the clock starts at submission, so time
    /// spent queued counts against the deadline.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Shares `token` as the submission's cancel token (for callers that
    /// cancel a batch as one); [`SolveHandle::cancel`] raises this token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a trace-sink observer: the solve's `req.trace_span` /
    /// instant / counter emissions land in `sink`.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Opts this submission out of the engine's shared profile cache (the
    /// solve neither reads nor writes memoized verdicts).
    pub fn without_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }
}

impl std::fmt::Debug for Submission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Submission")
            .field("solver", &self.solver)
            .field("jobs", &self.instance.jobs())
            .field("machines", &self.instance.machines())
            .field("use_cache", &self.use_cache)
            .finish()
    }
}

/// Non-blocking progress states of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolvePoll {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is solving it.
    Running,
    /// Finished; [`SolveHandle::wait`] returns without blocking.
    Done,
}

/// Slot state shared between one handle and the worker pool.
#[derive(Debug)]
enum SlotState {
    Queued,
    Running,
    /// `Option` so `wait` can move the result out exactly once.
    Done(Option<Result<SolveReport>>),
}

#[derive(Debug)]
struct Slot {
    state: sync::Mutex<SlotState>,
    done: sync::Condvar,
}

impl Slot {
    fn finish(&self, result: Result<SolveReport>) {
        *self.state.lock() = SlotState::Done(Some(result));
        self.done.notify_all();
    }
}

/// The caller's side of one accepted submission.
#[derive(Debug)]
pub struct SolveHandle {
    id: u64,
    slot: Arc<Slot>,
    cancel: CancelToken,
}

impl SolveHandle {
    /// Engine-unique submission id (also the wire-protocol correlation id).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation. The solve observes the token at its next
    /// budget gate and [`wait`](Self::wait) then returns
    /// [`Error::Cancelled`]; a cancel that loses the race to a finished
    /// solve is a no-op.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the submission's cancel token, for detached cancellation
    /// (e.g. a daemon's `cancel` frame arriving on another thread).
    pub fn canceller(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Current progress, without blocking.
    pub fn poll(&self) -> SolvePoll {
        match &*self.slot.state.lock() {
            SlotState::Queued => SolvePoll::Queued,
            SlotState::Running => SolvePoll::Running,
            SlotState::Done(_) => SolvePoll::Done,
        }
    }

    /// Blocks until the solve finishes and returns its result. Consumes the
    /// handle: the report moves out, it is never cloned or reused.
    pub fn wait(self) -> Result<SolveReport> {
        let mut st = self.slot.state.lock();
        loop {
            match &mut *st {
                SlotState::Done(result) => {
                    return result
                        .take()
                        .unwrap_or_else(|| unreachable!("solve result taken twice"));
                }
                _ => st = self.slot.done.wait(st),
            }
        }
    }
}

struct Job {
    submission: Submission,
    slot: Arc<Slot>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Queued + running; the admission bound.
    in_flight: usize,
    /// `false` once shutdown began: submissions are refused, workers drain
    /// and exit.
    open: bool,
    next_id: u64,
    served: u64,
}

struct Shared {
    queue: sync::Mutex<QueueState>,
    ready: sync::Condvar,
    capacity: usize,
    cache: Arc<ProfileMemo>,
    /// Built solver instances shared across sessions, keyed by
    /// `(name, ε in µs, threads, node budget, width)`.
    solvers: sync::Mutex<Vec<(SolverFingerprint, Arc<dyn Solver>)>>,
}

type SolverFingerprint = (&'static str, u64, Option<usize>, Option<u64>, usize);

/// Lifetime totals returned by [`Engine::shutdown`] — the numbers the
/// daemon's `bye` frame reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Submissions a worker ran to completion (any outcome class).
    pub served: u64,
    /// Submissions still queued at shutdown, failed with
    /// [`Error::Cancelled`].
    pub cancelled: u64,
    /// Profile-cache lookups that hit.
    pub cache_hits: u64,
    /// Profile-cache lookups that missed.
    pub cache_misses: u64,
}

/// The session engine: persistent workers, bounded admission, shared
/// profile cache. See the [module docs](self) for the full contract.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<(std::thread::JoinHandle<()>, sync::SpawnId)>,
}

impl Engine {
    /// An engine with the default configuration (one worker per core).
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// An engine sized by `config`.
    pub fn with_config(config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: sync::Mutex::new(QueueState {
                jobs: VecDeque::new(),
                in_flight: 0,
                open: true,
                next_id: 0,
                served: 0,
            }),
            ready: sync::Condvar::new(),
            capacity: config.capacity.max(1),
            cache: Arc::new(ProfileMemo::new(config.cache_capacity)),
            solvers: sync::Mutex::new(Vec::new()),
        });
        let mut workers = Vec::with_capacity(config.workers);
        for worker in 0..config.workers {
            let pool = Arc::clone(&shared);
            let (task, spawn_id) = sync::fork(move || worker_loop(&pool, worker));
            workers.push((std::thread::spawn(task), spawn_id));
        }
        Self { shared, workers }
    }

    /// Submits a solve. Returns the handle on admission, or
    /// [`Error::Overloaded`] when `capacity` submissions are already in
    /// flight (the caller should shed or retry later — nothing was queued).
    pub fn submit(&self, submission: Submission) -> Result<SolveHandle> {
        let mut q = self.shared.queue.lock();
        if !q.open {
            return Err(Error::BadModel("engine: submit after shutdown".into()));
        }
        if q.in_flight >= self.shared.capacity {
            REJECTED.inc();
            return Err(Error::Overloaded {
                capacity: self.shared.capacity,
            });
        }
        q.next_id += 1;
        q.in_flight += 1;
        let id = q.next_id;
        let slot = Arc::new(Slot {
            state: sync::Mutex::new(SlotState::Queued),
            done: sync::Condvar::new(),
        });
        let cancel = submission.cancel.clone();
        q.jobs.push_back(Job {
            submission,
            slot: Arc::clone(&slot),
        });
        QUEUE_DEPTH.set(q.jobs.len() as f64);
        ADMITTED.inc();
        drop(q);
        self.shared.ready.notify_one();
        Ok(SolveHandle { id, slot, cancel })
    }

    /// The engine's shared instance-profile cache.
    pub fn cache(&self) -> &ProfileMemo {
        &self.shared.cache
    }

    /// Submissions workers ran to completion so far.
    pub fn served(&self) -> u64 {
        self.shared.queue.lock().served
    }

    /// Stops admission, fails still-queued jobs with [`Error::Cancelled`],
    /// joins the workers (running solves finish first) and returns the
    /// lifetime totals.
    pub fn shutdown(mut self) -> EngineTotals {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> EngineTotals {
        let drained = {
            let mut q = self.shared.queue.lock();
            q.open = false;
            let drained: Vec<Job> = q.jobs.drain(..).collect();
            q.in_flight -= drained.len();
            QUEUE_DEPTH.set(0.0);
            drained
        };
        self.shared.ready.notify_all();
        let cancelled = drained.len() as u64;
        for job in drained {
            job.slot.finish(Err(Error::Cancelled));
        }
        for (handle, spawn_id) in self.workers.drain(..) {
            if let Err(panic) = sync::join_with(spawn_id, || handle.join()) {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
        EngineTotals {
            served: self.shared.queue.lock().served,
            cancelled,
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .finish()
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    while let Some(job) = next_job(shared, worker) {
        run_job(shared, job);
        let mut q = shared.queue.lock();
        q.in_flight -= 1;
        q.served += 1;
    }
}

/// Blocks until a job is available or the queue is closed and drained. The
/// queue guard is handed to the condvar (`q = wait(q)`), so the sleeper
/// never holds a lock its waker needs.
fn next_job(shared: &Shared, worker: usize) -> Option<Job> {
    let mut q = shared.queue.lock();
    loop {
        if let Some(job) = q.jobs.pop_front() {
            QUEUE_DEPTH.set(q.jobs.len() as f64);
            return Some(job);
        }
        if !q.open {
            return None;
        }
        sync::trace_park(worker);
        q = shared.ready.wait(q);
        sync::trace_wake(worker);
    }
}

fn run_job(shared: &Shared, job: Job) {
    *job.slot.state.lock() = SlotState::Running;
    let result = execute(shared, &job);
    job.slot.finish(result);
}

fn execute(shared: &Shared, job: &Job) -> Result<SolveReport> {
    let sub = &job.submission;
    let spec = lookup(&sub.solver).ok_or_else(|| Error::UnknownSolver {
        name: sub.solver.clone(),
    })?;
    let solver = solver_for(shared, spec, &sub.params)?;
    let mut req = SolveRequest::new(&sub.instance)
        .with_budget(sub.budget.clone())
        .with_cancel(sub.cancel.clone());
    if let Some(threads) = sub.params.threads {
        req = req.with_threads(threads);
    }
    if let Some(sink) = &sub.trace {
        req = req.with_trace(Arc::clone(sink));
    }
    if sub.use_cache {
        req = req.with_cache(Arc::clone(&shared.cache) as Arc<dyn pcmax_core::ProfileCache>);
    }
    let start = std::time::Instant::now();
    let result = solver.solve(&req);
    record_metered(spec.name, start, &result);
    result
}

/// Returns the shared solver instance for `(spec, params)`, building and
/// memoizing it on first use — the "pool sharing" seam: a parallel solver's
/// configuration is constructed once and reused by every session.
fn solver_for(
    shared: &Shared,
    spec: &'static SolverSpec,
    params: &SolverParams,
) -> Result<Arc<dyn Solver>> {
    let fp: SolverFingerprint = (
        spec.name,
        eps_micros(params.epsilon),
        params.threads,
        params.node_budget,
        params.width,
    );
    let mut built = shared.solvers.lock();
    if let Some((_, solver)) = built.iter().find(|(key, _)| *key == fp) {
        return Ok(Arc::clone(solver));
    }
    let solver: Arc<dyn Solver> = Arc::from(spec.build(params)?);
    built.push((fp, Arc::clone(&solver)));
    Ok(solver)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> Instance {
        Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3], 4).unwrap()
    }

    fn small_engine() -> Engine {
        Engine::with_config(EngineConfig {
            workers: 2,
            capacity: 16,
            cache_capacity: 64,
        })
    }

    #[test]
    fn submit_solves_and_validates_across_solvers() {
        let engine = small_engine();
        let inst = instance();
        for name in ["lpt", "ptas", "par-ptas"] {
            let handle = engine
                .submit(Submission::new(inst.clone(), name))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let report = handle.wait().unwrap_or_else(|e| panic!("{name}: {e}"));
            report.schedule.validate(&inst).unwrap();
            assert_eq!(report.makespan, report.schedule.makespan(&inst), "{name}");
        }
        let totals = engine.shutdown();
        assert_eq!(totals.served, 3);
        assert_eq!(totals.cancelled, 0);
    }

    #[test]
    fn submit_matches_direct_solver_output() {
        let engine = small_engine();
        let inst = instance();
        let direct = crate::build("ptas", &SolverParams::default())
            .unwrap()
            .solve(&SolveRequest::new(&inst))
            .unwrap();
        let via_engine = engine
            .submit(Submission::new(inst.clone(), "ptas"))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(via_engine.makespan, direct.makespan);
        assert_eq!(via_engine.certified_target, direct.certified_target);
        assert_eq!(
            via_engine.schedule.assignment(),
            direct.schedule.assignment()
        );
    }

    #[test]
    fn poll_reaches_done_and_wait_returns_without_blocking() {
        let engine = small_engine();
        let handle = engine.submit(Submission::new(instance(), "lpt")).unwrap();
        while handle.poll() != SolvePoll::Done {
            std::thread::yield_now();
        }
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn handle_cancel_cancels_the_solve() {
        let engine = small_engine();
        let sub = Submission::new(instance(), "ptas");
        // Raise the token before submitting: the solve's first budget gate
        // observes it regardless of scheduling.
        let handle = engine.submit(sub).unwrap();
        handle.cancel();
        match handle.wait() {
            Err(Error::Cancelled) | Ok(_) => {} // Ok iff the solve won the race
            Err(other) => panic!("expected Cancelled (or a completed solve), got {other:?}"),
        }
    }

    #[test]
    fn pre_cancelled_token_fails_deterministically() {
        let engine = small_engine();
        let token = CancelToken::new();
        token.cancel();
        let handle = engine
            .submit(Submission::new(instance(), "ptas").with_cancel(token))
            .unwrap();
        assert!(matches!(handle.wait(), Err(Error::Cancelled)));
    }

    #[test]
    fn admission_rejects_beyond_capacity_and_shutdown_drains() {
        // No workers: the queue fills deterministically.
        let engine = Engine::with_config(EngineConfig {
            workers: 0,
            capacity: 2,
            cache_capacity: 64,
        });
        let a = engine.submit(Submission::new(instance(), "lpt")).unwrap();
        let b = engine.submit(Submission::new(instance(), "lpt")).unwrap();
        match engine.submit(Submission::new(instance(), "lpt")) {
            Err(Error::Overloaded { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let totals = engine.shutdown();
        assert_eq!(totals.cancelled, 2);
        assert!(matches!(a.wait(), Err(Error::Cancelled)));
        assert!(matches!(b.wait(), Err(Error::Cancelled)));
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let mut engine = small_engine();
        engine.shutdown_inner();
        assert!(matches!(
            engine.submit(Submission::new(instance(), "lpt")),
            Err(Error::BadModel(_))
        ));
    }

    #[test]
    fn unknown_solver_fails_the_handle_not_the_engine() {
        let engine = small_engine();
        let handle = engine
            .submit(Submission::new(instance(), "no-such-algo"))
            .unwrap();
        assert!(matches!(
            handle.wait(),
            Err(Error::UnknownSolver { name }) if name == "no-such-algo"
        ));
        // The engine keeps serving.
        assert!(engine
            .submit(Submission::new(instance(), "lpt"))
            .unwrap()
            .wait()
            .is_ok());
    }

    #[test]
    fn repeat_submissions_hit_the_shared_profile_cache() {
        let engine = small_engine();
        let inst = instance();
        let cold = engine
            .submit(Submission::new(inst.clone(), "ptas"))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(cold.stats.cache_hits, 0, "cold run cannot hit");
        assert!(cold.stats.cache_misses > 0);
        assert!(!engine.cache().is_empty());
        let warm = engine
            .submit(Submission::new(inst.clone(), "ptas"))
            .unwrap()
            .wait()
            .unwrap();
        assert!(warm.stats.cache_hits > 0, "warm run must report its hits");
        assert_eq!(warm.stats.cache_misses, 0);
        assert_eq!(warm.makespan, cold.makespan);
        assert_eq!(warm.schedule.assignment(), cold.schedule.assignment());
    }

    #[test]
    fn without_cache_opts_out() {
        let engine = small_engine();
        let inst = instance();
        for _ in 0..2 {
            let report = engine
                .submit(Submission::new(inst.clone(), "ptas").without_cache())
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(report.stats.cache_hits, 0);
            assert_eq!(report.stats.cache_misses, 0);
        }
        assert!(engine.cache().is_empty());
    }

    #[test]
    fn solver_instances_are_shared_across_sessions() {
        let engine = small_engine();
        let inst = instance();
        for _ in 0..3 {
            engine
                .submit(Submission::new(inst.clone(), "par-ptas"))
                .unwrap()
                .wait()
                .unwrap();
        }
        assert_eq!(
            engine.shared.solvers.lock().len(),
            1,
            "one parameterization, one shared instance"
        );
    }

    #[test]
    fn budget_deadline_counts_queue_time() {
        let engine = Engine::with_config(EngineConfig {
            workers: 1,
            capacity: 16,
            cache_capacity: 64,
        });
        let handle = engine.submit(
            Submission::new(instance(), "ptas")
                .with_budget(Budget::with_timeout(std::time::Duration::ZERO)),
        );
        assert!(matches!(
            handle.unwrap().wait(),
            Err(Error::BudgetExhausted { .. })
        ));
    }
}
