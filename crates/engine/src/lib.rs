//! The solver registry: stable names to boxed [`Solver`] constructors for
//! every `P||Cmax` algorithm in the workspace.
//!
//! The CLI (`pcmax solve --algo <name>`), the comparison command and the
//! bench harness all enumerate *this* table instead of hard-coding solver
//! lists, so adding an algorithm here makes it reachable everywhere at once.
//!
//! Stable names (aliases in parentheses):
//!
//! | name        | algorithm                                   | guarantee          |
//! |-------------|---------------------------------------------|--------------------|
//! | `ls`        | Graham list scheduling                      | `2 − 1/m`          |
//! | `lpt`       | longest processing time first               | `4/3 − 1/(3m)`     |
//! | `multifit`  | Coffman–Garey–Johnson MULTIFIT              | `1.22 + 2⁻⁷`       |
//! | `ptas`      | sequential Hochbaum–Shmoys PTAS             | `1 + ε`            |
//! | `par-ptas` (`pptas`) | wavefront-parallel PTAS (the paper) | `1 + ε`            |
//! | `spec-ptas` (`spec`) | speculative `w`-ary bisection PTAS  | `1 + ε`            |
//! | `exact` (`ip`, `bb`) | combinatorial branch-and-bound     | optimal (anytime)  |
//! | `milp` (`ip-milp`)   | assignment-IP via from-scratch MILP | optimal           |
//! | `fptas` (`sahni`)    | Sahni's fixed-`m` FPTAS             | `1 + ε`           |
//!
//! Beyond `P||Cmax`, the chassis scenarios register here too (each row's
//! [`ScenarioKind`] says which model it targets):
//!
//! | name        | scenario   | algorithm                              | guarantee |
//! |-------------|------------|----------------------------------------|-----------|
//! | `ptas-q`    | `Q||Cmax`  | chassis dual approximation, speed caps | `T* ≤ OPT` certified |
//! | `lpt-q`     | `Q||Cmax`  | LPT on the earliest-finishing machine  | `2`       |
//! | `ls-online` | online     | greedy list scheduling over arrivals   | `2 − 1/m` |
//!
//! **Running solvers** goes through the submission-based [`session`] layer:
//! [`Engine::submit`] takes a [`Submission`] (registry name + owned
//! instance + composable observers) and returns a [`SolveHandle`] with
//! `poll`/`wait`/`cancel`. The legacy one-shot entry points
//! [`solve_traced`] and [`solve_metered`] are deprecated wrappers kept for
//! one release.

pub mod cache;
pub mod session;

pub use cache::ProfileMemo;
pub use session::{Engine, EngineConfig, EngineTotals, SolveHandle, SolvePoll, Submission};

use pcmax_baselines::{Lpt, Ls, LsOnline, Multifit, SpeedLpt};
use pcmax_core::{Error, Result, SolveReport, SolveRequest, Solver};
use pcmax_exact::BranchAndBound;
use pcmax_fptas::FixedMachinesFptas;
use pcmax_metrics::{family, Family, Gauge, Histogram};
use pcmax_milp::AssignmentIp;
use pcmax_parallel::{ParallelDp, ParallelPtas, SpeculativePtas};
use pcmax_ptas::{Ptas, QPtas};

/// Construction-time parameters shared by every registry constructor.
/// Fields irrelevant to a solver are ignored (ε for LS, threads for exact…).
#[derive(Debug, Clone)]
pub struct SolverParams {
    /// Relative error for the PTAS family and the FPTAS.
    pub epsilon: f64,
    /// Worker threads for the parallel solvers (`None` = all cores).
    pub threads: Option<usize>,
    /// Search-node budget for the exact and MILP solvers.
    pub node_budget: Option<u64>,
    /// Concurrent probes per round for the speculative PTAS.
    pub width: usize,
}

impl Default for SolverParams {
    fn default() -> Self {
        Self {
            epsilon: 0.3,
            threads: None,
            node_budget: None,
            width: 4,
        }
    }
}

impl SolverParams {
    /// Params with relative error `epsilon`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }
}

/// Broad class of a registered solver. The bench harness and the CLI use
/// this to pick solver sets by property (e.g. "every polynomial
/// approximation algorithm") instead of hard-coding name lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Constant-factor heuristic; scales to any instance shape.
    Heuristic,
    /// Dual-approximation `(1+ε)`-scheme (the PTAS family).
    DualApprox,
    /// Polynomial only when the machine count is a fixed constant.
    FixedMachines,
    /// Proves optimality (possibly within a node budget).
    Exact,
}

/// The scheduling model a registered solver targets. Every solver accepts
/// identical-machine instances (speeds default to 1); this kind records what
/// the algorithm is *designed* for, so the CLI can group comparison output
/// and filter solver sets per instance family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Identical parallel machines (`P||Cmax`) — the paper's model.
    Identical,
    /// Uniform machines (`Q||Cmax`): per-machine integer speeds.
    Uniform,
    /// Online list scheduling: jobs committed in arrival (index) order.
    Online,
}

impl ScenarioKind {
    /// Human-readable scenario label for tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::Identical => "P||Cmax",
            ScenarioKind::Uniform => "Q||Cmax",
            ScenarioKind::Online => "online",
        }
    }
}

/// The worst-case guarantee a registered solver carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Guarantee {
    /// Approximation ratio `makespan ≤ ratio · OPT`.
    Ratio(f64),
    /// `(1 + ε)`-approximation for the configured ε.
    Epsilon,
    /// Proven optimal (within budget).
    Optimal,
}

impl Guarantee {
    /// An upper bound on the makespan this guarantee permits against a known
    /// optimum, for the configured `epsilon`. The PTAS family's bound
    /// carries the integer rounding slack `k = ⌈1/ε⌉` of the dual
    /// approximation (the FPTAS is strictly within `(1+ε)·OPT`, which the
    /// looser bound also covers).
    pub fn makespan_bound(&self, opt: u64, epsilon: f64) -> f64 {
        match self {
            Guarantee::Ratio(r) => r * opt as f64,
            Guarantee::Epsilon => {
                let k = (1.0 / epsilon).ceil();
                (1.0 + epsilon) * opt as f64 + k
            }
            Guarantee::Optimal => opt as f64,
        }
    }
}

/// One registry row: the stable name, its aliases, and a constructor.
pub struct SolverSpec {
    /// Stable primary name (`"ls"`, `"ptas"`, …).
    pub name: &'static str,
    /// Accepted alternative names.
    pub aliases: &'static [&'static str],
    /// One-line description for `--help` output.
    pub summary: &'static str,
    /// Broad algorithm class.
    pub kind: SolverKind,
    /// Scheduling model the solver targets.
    pub scenario: ScenarioKind,
    /// Worst-case guarantee.
    pub guarantee: Guarantee,
    build: fn(&SolverParams) -> Result<Box<dyn Solver>>,
}

impl SolverSpec {
    /// Instantiates the solver with `params`.
    pub fn build(&self, params: &SolverParams) -> Result<Box<dyn Solver>> {
        (self.build)(params)
    }

    /// Whether `name` (case-insensitively) names this spec.
    pub fn matches(&self, name: &str) -> bool {
        self.name.eq_ignore_ascii_case(name)
            || self.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Debug for SolverSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverSpec")
            .field("name", &self.name)
            .field("aliases", &self.aliases)
            .field("guarantee", &self.guarantee)
            .finish()
    }
}

static REGISTRY: &[SolverSpec] = &[
    SolverSpec {
        name: "ls",
        kind: SolverKind::Heuristic,
        scenario: ScenarioKind::Identical,
        aliases: &[],
        summary: "Graham list scheduling (2 - 1/m approximation)",
        guarantee: Guarantee::Ratio(2.0),
        build: |_| Ok(Box::new(Ls)),
    },
    SolverSpec {
        name: "lpt",
        kind: SolverKind::Heuristic,
        scenario: ScenarioKind::Identical,
        aliases: &[],
        summary: "longest processing time first (4/3 - 1/(3m))",
        guarantee: Guarantee::Ratio(4.0 / 3.0),
        build: |_| Ok(Box::new(Lpt)),
    },
    SolverSpec {
        name: "multifit",
        kind: SolverKind::Heuristic,
        scenario: ScenarioKind::Identical,
        aliases: &[],
        summary: "MULTIFIT dual bin packing (1.22 + 2^-7)",
        guarantee: Guarantee::Ratio(1.23),
        build: |_| Ok(Box::new(Multifit::default())),
    },
    SolverSpec {
        name: "ptas",
        kind: SolverKind::DualApprox,
        scenario: ScenarioKind::Identical,
        aliases: &[],
        summary: "sequential Hochbaum-Shmoys PTAS (1 + eps)",
        guarantee: Guarantee::Epsilon,
        build: |p| Ok(Box::new(Ptas::new(p.epsilon)?)),
    },
    SolverSpec {
        name: "par-ptas",
        kind: SolverKind::DualApprox,
        scenario: ScenarioKind::Identical,
        aliases: &["pptas"],
        summary: "wavefront-parallel PTAS, Algorithm 3 of the paper (1 + eps)",
        guarantee: Guarantee::Epsilon,
        build: |p| {
            Ok(Box::new(match p.threads {
                Some(t) => ParallelPtas::with_threads(p.epsilon, t)?,
                None => ParallelPtas::new(p.epsilon)?,
            }))
        },
    },
    SolverSpec {
        name: "spec-ptas",
        kind: SolverKind::DualApprox,
        scenario: ScenarioKind::Identical,
        aliases: &["spec"],
        summary: "speculative w-ary bisection PTAS (1 + eps)",
        guarantee: Guarantee::Epsilon,
        build: |p| Ok(Box::new(SpeculativePtas::new(p.epsilon, p.width)?)),
    },
    SolverSpec {
        name: "exact",
        kind: SolverKind::Exact,
        scenario: ScenarioKind::Identical,
        aliases: &["ip", "bb"],
        summary: "combinatorial branch-and-bound, anytime (optimal)",
        guarantee: Guarantee::Optimal,
        build: |p| {
            Ok(Box::new(match p.node_budget {
                Some(b) => BranchAndBound::with_budget(b.max(1)),
                None => BranchAndBound::default(),
            }))
        },
    },
    SolverSpec {
        name: "milp",
        kind: SolverKind::Exact,
        scenario: ScenarioKind::Identical,
        aliases: &["ip-milp"],
        summary: "assignment integer program via from-scratch MILP (optimal)",
        guarantee: Guarantee::Optimal,
        build: |_| Ok(Box::new(AssignmentIp::default())),
    },
    SolverSpec {
        name: "fptas",
        kind: SolverKind::FixedMachines,
        scenario: ScenarioKind::Identical,
        aliases: &["sahni"],
        summary: "Sahni's fixed-m FPTAS (1 + eps; eps = 0 is exact)",
        guarantee: Guarantee::Epsilon,
        build: |p| Ok(Box::new(FixedMachinesFptas::new(p.epsilon)?)),
    },
    SolverSpec {
        name: "ptas-q",
        kind: SolverKind::DualApprox,
        scenario: ScenarioKind::Uniform,
        aliases: &["qptas"],
        summary: "chassis dual approximation for Q||Cmax (certified target)",
        guarantee: Guarantee::Epsilon,
        build: |p| match p.threads {
            Some(t) => Ok(Box::new(QPtas::with_engine(
                p.epsilon,
                ParallelDp::with_threads(t),
            )?)),
            None => Ok(Box::new(QPtas::new(p.epsilon)?)),
        },
    },
    SolverSpec {
        name: "lpt-q",
        kind: SolverKind::Heuristic,
        scenario: ScenarioKind::Uniform,
        aliases: &["speed-lpt"],
        summary: "LPT on the earliest-finishing uniform machine (2-approx)",
        guarantee: Guarantee::Ratio(2.0),
        build: |_| Ok(Box::new(SpeedLpt)),
    },
    SolverSpec {
        name: "ls-online",
        kind: SolverKind::Heuristic,
        scenario: ScenarioKind::Online,
        aliases: &["online"],
        summary: "online greedy list scheduling over the arrival order (2 - 1/m)",
        guarantee: Guarantee::Ratio(2.0),
        build: |_| Ok(Box::new(LsOnline)),
    },
];

/// The full registry, in canonical order.
pub fn registry() -> &'static [SolverSpec] {
    REGISTRY
}

/// Resolves `name` (primary or alias, case-insensitive) to its spec.
pub fn lookup(name: &str) -> Option<&'static SolverSpec> {
    REGISTRY.iter().find(|s| s.matches(name))
}

/// Builds the solver registered under `name` with `params`.
pub fn build(name: &str, params: &SolverParams) -> Result<Box<dyn Solver>> {
    match lookup(name) {
        Some(spec) => spec.build(params),
        None => Err(Error::UnknownSolver {
            name: name.to_string(),
        }),
    }
}

/// All primary registry names, in canonical order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|s| s.name).collect()
}

/// Runs `solver` on `req` with the in-tree trace runtime attached and
/// returns the report together with the merged per-thread timeline.
///
/// The trace session is process-global (one active at a time): the request
/// gets a [`pcmax_trace::GlobalSink`] so solver-level `req.trace_span`
/// emissions and the deep wavefront hooks (per-level spans, worker chunk
/// spans, park/wake instants) all land in the same timeline. A second
/// concurrent call fails with [`Error::BadModel`] instead of silently
/// interleaving two solves into one trace.
#[deprecated(
    note = "submit through `session::Engine` with a `pcmax_trace::GlobalSink` \
            observer (start the `pcmax_trace::Session` around the submission)"
)]
pub fn solve_traced(
    solver: &dyn Solver,
    req: &SolveRequest<'_>,
) -> Result<(SolveReport, pcmax_trace::Timeline)> {
    let session = pcmax_trace::Session::start().ok_or_else(|| {
        Error::BadModel("trace: a trace session is already active in this process".into())
    })?;
    let mut traced = req.clone();
    traced.trace = Some(std::sync::Arc::new(pcmax_trace::GlobalSink));
    match solver.solve(&traced) {
        Ok(report) => Ok((report, session.finish())),
        // Dropping the session disables tracing and clears the rings, so a
        // failed solve does not wedge the process-global runtime.
        Err(e) => Err(e),
    }
}

/// Per-solver solve latency, in nanoseconds.
static SOLVE_LATENCY_NANOS: Family<Histogram> = family(
    "pcmax_solve_latency_nanos",
    "End-to-end solve latency per registry solver, in nanoseconds",
    "solver",
);

/// Per-outcome solve counts (`ok`, `budget-exhausted`, `cancelled`,
/// `invalid-witness`, `error`).
static SOLVE_OUTCOMES: Family<pcmax_metrics::Counter> = family(
    "pcmax_solve_outcomes_total",
    "Solve completions per outcome class",
    "outcome",
);

/// Latest DP-phase throughput per solver, from
/// [`SolveStats::dp_phase_cells_per_sec`].
///
/// [`SolveStats::dp_phase_cells_per_sec`]: pcmax_core::SolveStats::dp_phase_cells_per_sec
static DP_CELLS_PER_SEC: Family<Gauge> = family(
    "pcmax_dp_cells_per_sec",
    "Latest DP-phase cells/sec per registry solver",
    "solver",
);

/// Outcome-class label for a solve result, shared by [`solve_metered`] and
/// the scoreboard.
pub fn outcome_label(result: &Result<SolveReport>) -> &'static str {
    match result {
        Ok(_) => "ok",
        Err(Error::BudgetExhausted { .. }) => "budget-exhausted",
        Err(Error::Cancelled) => "cancelled",
        Err(Error::InvalidWitness { .. }) => "invalid-witness",
        Err(_) => "error",
    }
}

/// Runs `solver` on `req` and aggregates the solve into the process-wide
/// metrics registry under `name` (a registry primary name): latency
/// histogram, outcome counter, and — when the solve reports a DP phase —
/// the cells/sec gauge. The report itself is returned unchanged, so
/// metering composes with any caller (results are bit-identical with
/// metrics enabled, disabled, or absent; a pinned test asserts it).
#[deprecated(note = "submit through `session::Engine`, which meters every solve")]
pub fn solve_metered(
    name: &str,
    solver: &dyn Solver,
    req: &SolveRequest<'_>,
) -> Result<SolveReport> {
    let start = std::time::Instant::now();
    let result = solver.solve(req);
    record_metered(name, start, &result);
    result
}

/// Shared metering tail of the session engine and the deprecated
/// [`solve_metered`] wrapper: aggregates one finished solve (started at
/// `start`) into the process-wide registry under `name`.
pub(crate) fn record_metered(name: &str, start: std::time::Instant, result: &Result<SolveReport>) {
    SOLVE_LATENCY_NANOS
        .with_label(name)
        .observe(start.elapsed().as_nanos() as u64);
    SOLVE_OUTCOMES.with_label(outcome_label(result)).inc();
    if let Ok(report) = result {
        if let Some(rate) = report.stats.dp_phase_cells_per_sec() {
            DP_CELLS_PER_SEC.with_label(name).set(rate);
        }
    }
}

/// The solvers the experiment harness compares against the optimum: every
/// polynomial approximation algorithm that scales to the paper's shapes
/// (heuristics and the PTAS family; the fixed-`m` FPTAS and the exact
/// solvers are excluded — the latter provide the denominator).
pub fn comparators() -> impl Iterator<Item = &'static SolverSpec> {
    comparators_for(ScenarioKind::Identical)
}

/// The comparison set for an arbitrary scenario: the polynomial
/// approximation solvers (heuristics and dual approximations) registered
/// for that scheduling model.
pub fn comparators_for(scenario: ScenarioKind) -> impl Iterator<Item = &'static SolverSpec> {
    REGISTRY.iter().filter(move |s| {
        s.scenario == scenario && matches!(s.kind, SolverKind::Heuristic | SolverKind::DualApprox)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::{Instance, Scheduler, SolveRequest};

    #[test]
    fn every_primary_name_resolves_and_builds() {
        let inst = Instance::new(vec![9, 7, 6, 5, 4, 3, 2, 1], 3).unwrap();
        for spec in registry() {
            let solver = spec.build(&SolverParams::default()).unwrap();
            let report = solver.solve(&SolveRequest::new(&inst)).unwrap();
            report.schedule.validate(&inst).unwrap();
            assert_eq!(
                report.makespan,
                report.schedule.makespan(&inst),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn aliases_resolve_to_the_same_spec() {
        assert_eq!(lookup("pptas").unwrap().name, "par-ptas");
        assert_eq!(lookup("spec").unwrap().name, "spec-ptas");
        assert_eq!(lookup("ip").unwrap().name, "exact");
        assert_eq!(lookup("ip-milp").unwrap().name, "milp");
        assert_eq!(lookup("PTAS").unwrap().name, "ptas", "case-insensitive");
    }

    #[test]
    fn unknown_name_is_a_dedicated_error() {
        match build("no-such-algo", &SolverParams::default()) {
            Err(Error::UnknownSolver { name }) => assert_eq!(name, "no-such-algo"),
            Err(other) => panic!("expected UnknownSolver, got {other:?}"),
            Ok(_) => panic!("expected UnknownSolver, got a solver"),
        }
    }

    #[test]
    fn names_are_unique_across_primaries_and_aliases() {
        let mut all: Vec<&str> = Vec::new();
        for spec in registry() {
            all.push(spec.name);
            all.extend(spec.aliases);
        }
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len(), "duplicate registry name");
    }

    #[test]
    fn boxed_solvers_still_speak_the_legacy_scheduler_api() {
        let inst = Instance::new(vec![5, 4, 3, 2, 1], 2).unwrap();
        let solver = build("lpt", &SolverParams::default()).unwrap();
        let schedule = solver.schedule(&inst).unwrap();
        schedule.validate(&inst).unwrap();
        assert_eq!(Scheduler::name(&solver), "LPT");
    }

    #[test]
    fn epsilon_flows_through_to_the_ptas() {
        let inst = Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3], 4).unwrap();
        let loose = build("ptas", &SolverParams::with_epsilon(0.5)).unwrap();
        let tight = build("ptas", &SolverParams::with_epsilon(0.1)).unwrap();
        let l = loose.solve(&SolveRequest::new(&inst)).unwrap();
        let t = tight.solve(&SolveRequest::new(&inst)).unwrap();
        assert!(t.makespan <= l.makespan + 2);
        assert!(build("ptas", &SolverParams::with_epsilon(-1.0)).is_err());
    }

    #[test]
    fn comparators_are_the_polynomial_approximation_solvers() {
        let names: Vec<&str> = comparators().map(|s| s.name).collect();
        assert!(names.contains(&"lpt") && names.contains(&"par-ptas"));
        assert!(!names.contains(&"exact") && !names.contains(&"milp"));
        assert!(
            !names.contains(&"fptas"),
            "fixed-m FPTAS cannot scale to m=20"
        );
        assert!(
            !names.contains(&"ptas-q") && !names.contains(&"ls-online"),
            "the P||Cmax harness stays scenario-pure"
        );
    }

    #[test]
    fn comparators_partition_by_scenario() {
        let q: Vec<&str> = comparators_for(ScenarioKind::Uniform)
            .map(|s| s.name)
            .collect();
        assert_eq!(q, ["ptas-q", "lpt-q"]);
        let online: Vec<&str> = comparators_for(ScenarioKind::Online)
            .map(|s| s.name)
            .collect();
        assert_eq!(online, ["ls-online"]);
    }

    #[test]
    fn scenario_rows_solve_uniform_instances() {
        let inst = Instance::with_speeds(vec![9, 7, 6, 5, 4, 3, 2, 1], vec![3, 2, 1]).unwrap();
        for name in ["ptas-q", "lpt-q", "ls-online"] {
            let solver = build(name, &SolverParams::default()).unwrap();
            let report = solver.solve(&SolveRequest::new(&inst)).unwrap();
            report.schedule.validate(&inst).unwrap();
            assert_eq!(report.makespan, report.schedule.makespan(&inst), "{name}");
        }
    }

    #[test]
    fn ptas_q_threads_param_selects_the_parallel_engine() {
        let inst = Instance::with_speeds(vec![30, 11, 11, 7, 6, 2], vec![4, 2]).unwrap();
        let mut params = SolverParams::with_epsilon(0.2);
        params.threads = Some(3);
        let parallel = build("ptas-q", &params).unwrap();
        let serial = build("ptas-q", &SolverParams::with_epsilon(0.2)).unwrap();
        let p = parallel.solve(&SolveRequest::new(&inst)).unwrap();
        let s = serial.solve(&SolveRequest::new(&inst)).unwrap();
        assert_eq!(p.makespan, s.makespan);
        assert_eq!(p.certified_target, s.certified_target);
    }

    #[test]
    fn scenario_labels_are_stable() {
        assert_eq!(lookup("ptas").unwrap().scenario.label(), "P||Cmax");
        assert_eq!(lookup("qptas").unwrap().scenario.label(), "Q||Cmax");
        assert_eq!(lookup("online").unwrap().scenario.label(), "online");
    }

    #[test]
    fn guarantee_bounds_are_ordered() {
        let opt = 100;
        assert_eq!(Guarantee::Optimal.makespan_bound(opt, 0.3), 100.0);
        assert!(Guarantee::Ratio(2.0).makespan_bound(opt, 0.3) >= 199.0);
        let eps = Guarantee::Epsilon.makespan_bound(opt, 0.3);
        assert!(eps > 100.0 && eps < 200.0);
    }
}
