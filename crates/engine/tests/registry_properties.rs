//! Satellite property test: every solver in the registry, on random small
//! instances, produces a valid schedule covering every job whose makespan
//! respects the guarantee the registry advertises for it.

use pcmax_core::{Instance, SolveRequest, Time};
use pcmax_engine::{registry, SolverParams};
use pcmax_exact::BranchAndBound;
use proptest::prelude::*;

/// Proven optimum via the combinatorial branch-and-bound (unlimited budget;
/// instances here are small enough that it always proves).
fn proven_opt(inst: &Instance) -> Time {
    let out = BranchAndBound::default().solve_detailed(inst).unwrap();
    assert!(out.proven, "branch-and-bound must prove on tiny instances");
    out.best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_registered_solver_respects_its_guarantee(
        times in prop::collection::vec(1u64..=30, 1..=7),
        machines in 1usize..=3,
    ) {
        let inst = Instance::new(times, machines).unwrap();
        let opt = proven_opt(&inst);
        let params = SolverParams::default();
        for spec in registry() {
            let solver = spec.build(&params).unwrap();
            let report = solver
                .solve(&SolveRequest::new(&inst))
                .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name));

            // The schedule is well-formed and covers every job.
            report.schedule.validate(&inst).unwrap();
            prop_assert_eq!(
                report.schedule.jobs(),
                inst.jobs(),
                "{} must cover all jobs",
                spec.name
            );
            prop_assert_eq!(
                report.makespan,
                report.schedule.makespan(&inst),
                "{} must report its schedule's makespan",
                spec.name
            );

            // No solver beats the proven optimum, and each stays within the
            // guarantee the registry advertises.
            prop_assert!(report.makespan >= opt, "{} beat the optimum", spec.name);
            let bound = spec.guarantee.makespan_bound(opt, params.epsilon);
            prop_assert!(
                report.makespan as f64 <= bound + 1e-9,
                "{}: makespan {} exceeds guarantee bound {} (opt {})",
                spec.name,
                report.makespan,
                bound,
                opt
            );

            // A certificate, when present, never exceeds the makespan and
            // lower-bounds the proven optimum it certifies against.
            if let Some(target) = report.certified_target {
                prop_assert!(target <= report.makespan, "{}", spec.name);
                prop_assert!(target <= opt, "{} certified above OPT", spec.name);
            }
            if report.proven_optimal {
                prop_assert_eq!(report.makespan, opt, "{} claimed a false optimum", spec.name);
            }
        }
    }
}
