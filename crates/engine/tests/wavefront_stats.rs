//! The wavefront hot-path counters (levels swept, cells, pool park/wake,
//! kernel allocations) surface through the engine registry's `SolveReport`
//! for the parallel PTAS — and stay zero for the sequential one.

use pcmax_core::{Instance, SolveRequest};
use pcmax_engine::{build, SolverParams};

fn instance() -> Instance {
    Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3, 23, 29], 4).unwrap()
}

#[test]
fn parallel_ptas_reports_wavefront_counters() {
    let inst = instance();
    let params = SolverParams {
        threads: Some(4),
        ..SolverParams::default()
    };
    let solver = build("par-ptas", &params).unwrap();
    let report = solver.solve(&SolveRequest::new(&inst)).unwrap();
    let stats = &report.stats;
    assert!(stats.dp_cells > 0, "wavefront must count its DP cells");
    assert!(stats.dp_levels_swept > 0, "wavefront must count its levels");
    assert_eq!(
        stats.pool_parks, stats.pool_wakes,
        "every entered pool wait must return"
    );
    assert!(
        stats.dp_kernel_allocs <= 4 * stats.bisection_probes.max(1),
        "cell kernel must not allocate beyond per-worker buffers"
    );
    assert!(
        stats.dp_cells_per_sec().is_some(),
        "throughput must be derivable from the report"
    );
}

#[test]
fn sequential_ptas_leaves_wavefront_counters_zero() {
    let inst = instance();
    let solver = build("ptas", &SolverParams::default()).unwrap();
    let report = solver.solve(&SolveRequest::new(&inst)).unwrap();
    assert_eq!(report.stats.dp_cells, 0);
    assert_eq!(report.stats.dp_levels_swept, 0);
    assert_eq!(report.stats.pool_parks, 0);
    assert_eq!(report.stats.pool_wakes, 0);
    assert!(report.stats.dp_cells_per_sec().is_none());
}
