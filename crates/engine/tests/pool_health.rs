//! Pool health after wind-down: every park the persistent pool enters must
//! be matched by a wake (no worker left asleep, no spurious wake counted),
//! and the traced solve path must surface per-worker utilization so
//! `pcmax compare` can print it.

use pcmax_core::{Instance, SolveRequest};
use pcmax_engine::{build, SolverParams};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

fn instance() -> Instance {
    // Same shape as the wavefront_stats suite: known to drive the rounded DP
    // (instances where LPT certifies the lower bound skip the wavefront
    // entirely and leave every pool counter at zero).
    Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3, 23, 29], 4).unwrap()
}

/// The trace runtime is a process-global singleton; tests that start a
/// session must not overlap.
fn trace_serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn pool_parks_equal_wakes_after_wind_down_across_thread_counts() {
    let inst = instance();
    for threads in [2, 4] {
        let params = SolverParams {
            threads: Some(threads),
            ..SolverParams::default()
        };
        let solver = build("par-ptas", &params).unwrap();
        let report = solver.solve(&SolveRequest::new(&inst)).unwrap();
        assert!(report.stats.dp_levels_swept > 0, "threads = {threads}");
        assert_eq!(
            report.stats.pool_parks, report.stats.pool_wakes,
            "threads = {threads}: a park without a wake means a worker was \
             left asleep (or a wake was counted outside the barrier protocol)"
        );
    }
}

#[test]
fn kernel_allocations_stay_per_worker_not_per_cell() {
    // The runtime counterpart of the `alloc-hot` lint: the cell kernel may
    // allocate its per-worker buffers once per bisection probe, never per
    // cell. A per-cell allocation would scale the counter with dp_cells
    // (thousands here); per-worker scales with threads × probes.
    let inst = instance();
    for threads in [2, 4] {
        let params = SolverParams {
            threads: Some(threads),
            ..SolverParams::default()
        };
        let solver = build("par-ptas", &params).unwrap();
        let report = solver.solve(&SolveRequest::new(&inst)).unwrap();
        assert!(report.stats.dp_cells > 100, "threads = {threads}");
        assert!(
            report.stats.dp_kernel_allocs <= threads as u64 * report.stats.bisection_probes.max(1),
            "threads = {threads}: {} kernel allocations for {} probes — the \
             kernel is allocating per cell, not per worker",
            report.stats.dp_kernel_allocs,
            report.stats.bisection_probes
        );
    }
}

#[test]
fn traced_parallel_solve_yields_per_worker_utilization() {
    let _serial = trace_serial();
    let inst = instance();
    let params = SolverParams {
        threads: Some(4),
        ..SolverParams::default()
    };
    let solver = build("par-ptas", &params).unwrap();
    // Trace via the primitive request hook rather than the session engine:
    // this test pins the strict `lane parks == stats.pool_parks` equality
    // of the *solver pool* seam, and an engine worker's own queue parks
    // would land in the same timeline.
    let session = pcmax_trace::Session::start().expect("no session active");
    let req = SolveRequest::new(&inst).with_trace(Arc::new(pcmax_trace::GlobalSink));
    let report = solver.solve(&req).unwrap();
    let timeline = session.finish();
    timeline.validate().unwrap();
    assert!(report.stats.dp_cells > 0);

    let lanes = pcmax_trace::summary::utilization(&timeline);
    assert!(!lanes.is_empty(), "traced solve must produce thread lanes");
    let busy: u64 = lanes.iter().map(|l| l.busy_nanos).sum();
    assert!(busy > 0, "some lane must have measured busy time");

    // The timeline's park/wake instants must agree with the pool counters
    // the stats path reports — same seam, same sites.
    let parks: usize = lanes.iter().map(|l| l.parks).sum();
    assert_eq!(parks as u64, report.stats.pool_parks);

    // The rendered summary is what `pcmax compare` prints; it must mention
    // every lane and the busy column.
    let rendered = pcmax_trace::summary::render(&timeline);
    assert!(rendered.contains("busy"));
}

#[test]
fn second_concurrent_trace_session_is_rejected() {
    let _serial = trace_serial();
    let inst = instance();
    let solver = build("lpt", &SolverParams::default()).unwrap();
    let session = pcmax_trace::Session::start().expect("no session active");
    // The trace runtime is a process-global singleton: while one session is
    // live, a second caller cannot start recording.
    assert!(pcmax_trace::Session::start().is_none());
    drop(session.finish());

    // After wind-down the traced path works again.
    let session = pcmax_trace::Session::start().expect("wind-down must release the runtime");
    let req = SolveRequest::new(&inst).with_trace(Arc::new(pcmax_trace::GlobalSink));
    let report = solver.solve(&req).unwrap();
    let timeline = session.finish();
    assert!(report.makespan > 0);
    timeline.validate().unwrap();
}
