//! Pinned guarantee: metrics are observation-only. Recording must never
//! steer a solver — the same request solved with metrics enabled and
//! disabled returns bit-identical reports (schedule, makespan, certified
//! target, optimality claim).

use pcmax_core::{Instance, SolveReport};
use pcmax_engine::{comparators_for, Engine, EngineConfig, ScenarioKind, SolverParams, Submission};
use std::sync::Mutex;

/// One metered solve through the session engine (the cache is off so every
/// run does the full work, keeping the on/off comparison symmetric).
fn submit(engine: &Engine, inst: &Instance, name: &str, params: &SolverParams) -> SolveReport {
    engine
        .submit(
            Submission::new(inst.clone(), name)
                .with_params(params.clone())
                .without_cache(),
        )
        .unwrap_or_else(|e| panic!("{name}: submit: {e}"))
        .wait()
        .unwrap_or_else(|e| panic!("{name}: solve: {e}"))
}

/// Serialises the tests in this file around the process-global enable
/// flag, and restores the entry state on drop (panic included).
static ENABLE_FLAG: Mutex<()> = Mutex::new(());

struct RestoreEnabled(bool);

impl Drop for RestoreEnabled {
    fn drop(&mut self) {
        pcmax_metrics::set_enabled(self.0);
    }
}

#[test]
fn solver_reports_are_bit_identical_with_metrics_on_and_off() {
    let _serial = ENABLE_FLAG.lock().unwrap_or_else(|p| p.into_inner());
    let _restore = RestoreEnabled(pcmax_metrics::enabled());

    // Large enough to drive the PTAS family through a real DP sweep.
    let inst = Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3, 23, 29], 4).unwrap();
    let params = SolverParams {
        epsilon: 0.3,
        threads: Some(2),
        ..SolverParams::default()
    };
    let engine = Engine::with_config(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    for spec in comparators_for(ScenarioKind::Identical) {
        pcmax_metrics::set_enabled(true);
        let on = submit(&engine, &inst, spec.name, &params);

        pcmax_metrics::set_enabled(false);
        let off = submit(&engine, &inst, spec.name, &params);

        assert_eq!(
            on.makespan, off.makespan,
            "{}: makespan diverged",
            spec.name
        );
        assert_eq!(
            on.schedule, off.schedule,
            "{}: schedule diverged",
            spec.name
        );
        assert_eq!(
            on.certified_target, off.certified_target,
            "{}: certified target diverged",
            spec.name
        );
        assert_eq!(
            on.proven_optimal, off.proven_optimal,
            "{}: optimality claim diverged",
            spec.name
        );
    }
    engine.shutdown();
}

#[test]
fn disabled_recording_is_invisible_in_the_snapshot() {
    let _serial = ENABLE_FLAG.lock().unwrap_or_else(|p| p.into_inner());
    let _restore = RestoreEnabled(pcmax_metrics::enabled());

    let inst = Instance::new(vec![5, 4, 3, 2, 1], 2).unwrap();
    let params = SolverParams::default();
    let spec = comparators_for(ScenarioKind::Identical).next().unwrap();

    pcmax_metrics::set_enabled(false);
    let before = pcmax_metrics::snapshot();
    let engine = Engine::with_config(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    submit(&engine, &inst, spec.name, &params);
    engine.shutdown();
    let after = pcmax_metrics::snapshot();

    let count_of = |snap: &pcmax_metrics::Snapshot| {
        snap.histogram("pcmax_solve_latency_nanos", Some(spec.name))
            .map_or(0, |h| h.count())
    };
    assert_eq!(
        count_of(&before),
        count_of(&after),
        "a disabled solve still recorded a latency observation"
    );
}
