//! Satellite budget/cancellation test: every registered solver honours a
//! pre-cancelled token, and tiny budgets surface as the dedicated
//! budget-exhausted error (or an anytime incumbent) — never a hang or panic.

use pcmax_core::{Budget, CancelToken, Error, Instance, SolveRequest};
use pcmax_engine::{build, registry, SolverParams};

fn instance() -> Instance {
    Instance::new(vec![9, 8, 7, 7, 6, 5, 5, 4, 3], 3).unwrap()
}

#[test]
fn precancelled_token_stops_every_registered_solver() {
    let inst = instance();
    for spec in registry() {
        let solver = spec.build(&SolverParams::default()).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let req = SolveRequest::new(&inst).with_cancel(cancel);
        match solver.solve(&req) {
            Err(Error::Cancelled) => {}
            Err(other) => panic!("{}: expected Cancelled, got {other:?}", spec.name),
            Ok(_) => panic!("{}: expected Cancelled, got a schedule", spec.name),
        }
    }
}

#[test]
fn ptas_entry_budget_is_a_dedicated_error() {
    let inst = instance();
    // One entry of budget: the first probe consumes it, the next check trips.
    let req = SolveRequest::new(&inst).with_budget(Budget::unlimited().entries(1));
    for name in ["ptas", "par-ptas", "spec-ptas"] {
        let solver = build(name, &SolverParams::default()).unwrap();
        match solver.solve(&req) {
            Err(Error::BudgetExhausted {
                incumbent,
                lower_bound,
            }) => assert!(lower_bound <= incumbent, "{name}"),
            Err(other) => panic!("{name}: expected BudgetExhausted, got {other:?}"),
            Ok(_) => panic!("{name}: expected BudgetExhausted, got a schedule"),
        }
    }
}

#[test]
fn expired_deadline_is_a_dedicated_error() {
    let inst = instance();
    let req = SolveRequest::new(&inst).with_budget(Budget::with_timeout(std::time::Duration::ZERO));
    let solver = build("ptas", &SolverParams::default()).unwrap();
    assert!(matches!(
        solver.solve(&req),
        Err(Error::BudgetExhausted { .. })
    ));
}

#[test]
fn exact_tiny_node_budget_returns_anytime_incumbent() {
    let inst = instance();
    let req = SolveRequest::new(&inst).with_budget(Budget::unlimited().nodes(1));
    let report = build("exact", &SolverParams::default())
        .unwrap()
        .solve(&req)
        .unwrap();
    report.schedule.validate(&inst).unwrap();
    assert_eq!(report.makespan, report.schedule.makespan(&inst));
    // One node cannot prove optimality here, but the incumbent and its
    // proven lower bound still bracket the optimum.
    assert!(!report.proven_optimal);
    assert!(report.certified_target.unwrap() <= report.makespan);
}

#[test]
fn milp_tiny_node_budget_is_a_dedicated_error() {
    let inst = instance();
    let req = SolveRequest::new(&inst).with_budget(Budget::unlimited().nodes(1));
    match build("milp", &SolverParams::default()).unwrap().solve(&req) {
        Err(Error::BudgetExhausted { .. }) => {}
        Err(other) => panic!("expected BudgetExhausted, got {other:?}"),
        Ok(_) => panic!("expected BudgetExhausted, got a schedule"),
    }
}

#[test]
fn unlimited_requests_still_succeed_for_every_solver() {
    let inst = instance();
    for spec in registry() {
        let report = spec
            .build(&SolverParams::default())
            .unwrap()
            .solve(&SolveRequest::new(&inst))
            .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name));
        report.schedule.validate(&inst).unwrap();
    }
}
