//! `repro` — regenerate every figure and table of the paper.
//!
//! ```text
//! repro fig2 [--reps N] [--json FILE]    Figure 2 (m=20, n=100, 3 panels)
//! repro fig3 [--reps N] [--json FILE]    Figure 3 (m=10, n=50)
//! repro fig4 [--reps N] [--json FILE]    Figure 4 (m=10, n=30)
//! repro fig5 [--json FILE]               Figure 5 (ratios, both panels)
//! repro tables                           Tables II and III (instance sets)
//! repro families [--reps N]              mean ratios across all 24 families
//! repro all  [--reps N] [--paper]        everything above
//! ```
//!
//! `--paper` restores the paper's 20 instances per family (slow on one
//! core); the default is 5.

use pcmax_bench::experiments::{speedup_figure, SpeedupConfig, SpeedupFigure};
use pcmax_bench::ratios::{ratio_figure, RatioFigure};
use pcmax_bench::report::{render_ratios, render_speedup};
use pcmax_bench::tables::{best_case_instances, worst_case_instances};
use pcmax_core::json::{self, Value};
use pcmax_workloads::ExperimentSet;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Args {
    command: String,
    reps: usize,
    json: Option<String>,
    paper: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        command,
        reps: 5,
        json: None,
        paper: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value".to_string())?;
                parsed.reps = v.parse().map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--json" => {
                parsed.json = Some(args.next().ok_or("--json needs a path".to_string())?);
            }
            "--paper" => parsed.paper = true,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if parsed.paper {
        parsed.reps = 20;
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: repro <fig2|fig3|fig4|fig5|tables|families|all> [--reps N] [--paper] [--json FILE]"
        .to_string()
}

struct JsonOutput {
    speedup_figures: Vec<SpeedupFigure>,
    ratio_figures: Vec<RatioFigure>,
}

impl JsonOutput {
    fn to_json(&self) -> Value {
        json::object(vec![
            (
                "speedup_figures",
                Value::Array(
                    self.speedup_figures
                        .iter()
                        .map(SpeedupFigure::to_json)
                        .collect(),
                ),
            ),
            (
                "ratio_figures",
                Value::Array(
                    self.ratio_figures
                        .iter()
                        .map(RatioFigure::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let config = SpeedupConfig::default();
    let mut json = JsonOutput {
        speedup_figures: Vec::new(),
        ratio_figures: Vec::new(),
    };
    let all = args.command == "all";

    if all || args.command == "fig2" {
        let fig = speedup_figure("Figure 2", ExperimentSet::fig2(args.reps), &config)?;
        print!("{}", render_speedup(&fig));
        json.speedup_figures.push(fig);
    }
    if all || args.command == "fig3" {
        let fig = speedup_figure("Figure 3", ExperimentSet::fig3(args.reps), &config)?;
        print!("{}", render_speedup(&fig));
        json.speedup_figures.push(fig);
    }
    if all || args.command == "fig4" {
        let fig = speedup_figure("Figure 4", ExperimentSet::fig4(args.reps), &config)?;
        print!("{}", render_speedup(&fig));
        json.speedup_figures.push(fig);
    }
    if all || args.command == "tables" {
        println!("== Table II: best-case instances ==");
        for c in best_case_instances() {
            println!(
                "{:<5}{:<46} n={:<4} m={}",
                c.label,
                c.description,
                c.instance.jobs(),
                c.instance.machines()
            );
        }
        println!("\n== Table III: worst-case instances ==");
        for c in worst_case_instances() {
            println!(
                "{:<5}{:<46} n={:<4} m={}",
                c.label,
                c.description,
                c.instance.jobs(),
                c.instance.machines()
            );
        }
        println!();
    }
    if all || args.command == "families" {
        let rows =
            pcmax_bench::families::family_ratio_sweep(args.reps.min(5), 0xFA_77, 20_000_000)?;
        print!("{}", pcmax_bench::families::render_family_ratios(&rows));
        println!();
    }
    if all || args.command == "fig5" {
        let a = ratio_figure(
            "Figure 5(a): actual approximation ratios, best cases",
            &best_case_instances(),
            0.3,
        )?;
        print!("{}", render_ratios(&a));
        let b = ratio_figure(
            "Figure 5(b): actual approximation ratios, worst cases",
            &worst_case_instances(),
            0.3,
        )?;
        print!("{}", render_ratios(&b));
        json.ratio_figures.push(a);
        json.ratio_figures.push(b);
    }
    if !all
        && !["fig2", "fig3", "fig4", "fig5", "tables", "families"].contains(&args.command.as_str())
    {
        return Err(usage().into());
    }

    if let Some(path) = &args.json {
        std::fs::write(path, json.to_json().to_string_pretty())?;
        eprintln!("wrote {path}");
    }
    Ok(())
}
