//! Minimal micro-benchmark runner for the `benches/` targets (all declared
//! with `harness = false`). Each target is a plain binary: it warms up,
//! times the closure with [`time_stable`], and prints one aligned line per
//! benchmark — no external benchmarking framework required.
//!
//! [`time_stable`]: crate::timing::time_stable

use crate::timing::time_stable;
use std::fmt::Display;

/// A named group of related measurements (one per bench target, usually).
pub struct Group {
    name: String,
    min_secs: f64,
}

/// Starts a group; prints its header immediately.
pub fn group(name: &str) -> Group {
    println!("== {name} ==");
    Group {
        name: name.to_string(),
        min_secs: 0.3,
    }
}

impl Group {
    /// Overrides the minimum measurement time per benchmark (seconds).
    pub fn min_secs(mut self, secs: f64) -> Self {
        self.min_secs = secs;
        self
    }

    /// Runs one benchmark: a warm-up call, then repeated timed runs.
    pub fn bench<R>(&self, name: &str, label: impl Display, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let per_run = time_stable(self.min_secs, f);
        println!(
            "{:<52}{:>14}",
            format!("{}/{name}/{label}", self.name),
            format_time(per_run)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.3} us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(format_time(2.5), "2.500 s");
        assert_eq!(format_time(0.0025), "2.500 ms");
        assert_eq!(format_time(0.0000025), "2.500 us");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0u64;
        group("test")
            .min_secs(0.0)
            .bench("noop", "x", || calls += 1);
        assert!(calls >= 2, "warm-up plus at least one timed run");
    }
}
