//! Wall-clock timing helpers for the harness.

use std::time::Instant;

/// Runs `f` once and returns `(result, seconds)`.
pub fn time_secs<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Runs `f` repeatedly until `min_total` seconds have elapsed (at least
/// once), returning the mean seconds per run. Stabilizes sub-millisecond
/// measurements without pulling Criterion into the binary.
pub fn time_stable<R>(min_total: f64, mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    let mut runs = 0u32;
    loop {
        std::hint::black_box(f());
        runs += 1;
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed >= min_total || runs >= 1000 {
            return elapsed / runs as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_secs_returns_result_and_nonnegative_time() {
        let (v, s) = time_secs(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn time_stable_averages() {
        let per_run = time_stable(0.01, || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert!(per_run > 0.0 && per_run < 0.01);
    }
}
