//! The best/worst-case instance sets of Tables II and III.
//!
//! The paper's prose describes — but does not print — the two tables'
//! contents: the best cases for the parallel PTAS's actual approximation
//! ratio include the LPT-adversarial family (`n = 2m+1`, `U(m, 2m−1)`) and
//! small-value families, while the worst cases include the narrow-range
//! family `U(95, 105)` and large-value families. These reconstructions are
//! fixed here (with pinned seeds) so the Fig. 5 experiment is replayable.

use pcmax_core::Instance;
use pcmax_workloads::{generate, lpt_adversarial, narrow_range, Distribution, Family};

/// A named instance of the best/worst-case experiment.
#[derive(Debug, Clone)]
pub struct CaseInstance {
    /// Instance label (I1..I6 best, I1'..I6' worst).
    pub label: String,
    /// Human-readable family description.
    pub description: String,
    /// The instance itself.
    pub instance: Instance,
}

fn case(label: &str, description: &str, instance: Instance) -> CaseInstance {
    CaseInstance {
        label: label.to_string(),
        description: description.to_string(),
        instance,
    }
}

/// Table II: the six best-case instances I1..I6 (largest LPT-vs-PTAS gap).
pub fn best_case_instances() -> Vec<CaseInstance> {
    vec![
        case(
            "I1",
            "m=10 n=21 U(m,2m-1) (LPT-adversarial)",
            lpt_adversarial(10, 21),
        ),
        case(
            "I2",
            "m=20 n=41 U(m,2m-1) (LPT-adversarial)",
            lpt_adversarial(20, 41),
        ),
        case(
            "I3",
            "m=10 n=30 U(1,10)",
            generate(Family::new(10, 30, Distribution::U1To10), 303),
        ),
        case(
            "I4",
            "m=10 n=21 U(m,2m-1) (LPT-adversarial)",
            lpt_adversarial(10, 99),
        ),
        case(
            "I5",
            "m=20 n=50 U(1,2m-1)",
            generate(Family::new(20, 50, Distribution::U1TwoMMinus1), 505),
        ),
        case(
            "I6",
            "m=10 n=23 deterministic Graham LPT worst case",
            pcmax_workloads::special::lpt_worst_case_deterministic(10),
        ),
    ]
}

/// Table III: the six worst-case instances I1'..I6' (smallest LPT-vs-PTAS
/// gap; narrow ranges where rounding cannot separate job sizes).
pub fn worst_case_instances() -> Vec<CaseInstance> {
    vec![
        case("I1'", "m=10 n=30 U(95,105)", narrow_range(10, 30, 11)),
        case("I2'", "m=10 n=50 U(95,105)", narrow_range(10, 50, 12)),
        case("I3'", "m=12 n=30 U(95,105)", narrow_range(12, 30, 24)),
        case(
            "I4'",
            "m=10 n=30 U(1,100)",
            generate(Family::new(10, 30, Distribution::U1To100), 914),
        ),
        case("I5'", "m=10 n=25 U(95,105)", narrow_range(10, 25, 15)),
        case("I6'", "m=20 n=55 U(95,105)", narrow_range(20, 55, 26)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_cases_each() {
        assert_eq!(best_case_instances().len(), 6);
        assert_eq!(worst_case_instances().len(), 6);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<String> = best_case_instances()
            .into_iter()
            .chain(worst_case_instances())
            .map(|c| c.label)
            .collect();
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }

    #[test]
    fn instances_are_deterministic() {
        let a = best_case_instances();
        let b = best_case_instances();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.instance, y.instance);
        }
    }

    #[test]
    fn adversarial_cases_have_2m_plus_1_jobs() {
        let cases = best_case_instances();
        assert_eq!(cases[0].instance.jobs(), 21);
        assert_eq!(cases[1].instance.jobs(), 41);
    }
}
