//! The cross-family ratio sweep: Section V's claim that "for all other
//! instances in our experiments our parallel approximation algorithm obtains
//! actual approximation ratios at least as good as those of LPT". This
//! experiment runs all 24 paper families and tabulates mean ratios for every
//! polynomial approximation solver in the engine registry.

use pcmax_core::{stats, Budget, Result, SolveRequest};
use pcmax_engine::{build as registry_build, comparators, SolverParams};
use pcmax_workloads::{generate_batch, paper_families, Family};

/// Mean ratios for one family, one entry per compared registry solver.
#[derive(Debug, Clone)]
pub struct FamilyRatioRow {
    /// The family.
    pub family: Family,
    /// Registry names of the compared solvers (column order).
    pub solvers: Vec<&'static str>,
    /// Mean ratio per solver, aligned with `solvers`.
    pub ratios: Vec<f64>,
    /// Fraction of instances whose optimum was proven (unproven instances
    /// use the exact solver's lower bound, making ratios upper bounds).
    pub proven_frac: f64,
}

impl FamilyRatioRow {
    /// The mean ratio of the registry solver `name` (`None` if absent).
    pub fn ratio_of(&self, name: &str) -> Option<f64> {
        self.solvers
            .iter()
            .position(|s| s.eq_ignore_ascii_case(name))
            .map(|i| self.ratios[i])
    }
}

/// Runs the sweep over all 24 paper families with `reps` instances each.
pub fn family_ratio_sweep(
    reps: usize,
    base_seed: u64,
    ip_budget: u64,
) -> Result<Vec<FamilyRatioRow>> {
    family_ratio_sweep_over(&paper_families(), reps, base_seed, ip_budget)
}

/// Runs the sweep over an explicit family list (tests use a light subset;
/// the harness uses all 24).
pub fn family_ratio_sweep_over(
    families: &[Family],
    reps: usize,
    base_seed: u64,
    ip_budget: u64,
) -> Result<Vec<FamilyRatioRow>> {
    let params = SolverParams::default();
    let exact = registry_build("exact", &params)?;
    let solvers: Vec<(&'static str, _)> = comparators()
        .map(|spec| Ok((spec.name, spec.build(&params)?)))
        .collect::<Result<_>>()?;
    let mut rows = Vec::new();
    for &family in families {
        let instances = generate_batch(family, base_seed, reps);
        let mut per_solver: Vec<Vec<f64>> = vec![Vec::new(); solvers.len()];
        let mut proven = 0usize;
        for inst in &instances {
            let req = SolveRequest::new(inst).with_budget(Budget::unlimited().nodes(ip_budget));
            let out = exact.solve(&req)?;
            let denom = if out.proven_optimal {
                proven += 1;
                out.makespan
            } else {
                out.certified_target.unwrap_or(out.makespan)
            } as f64;
            for (i, (_, solver)) in solvers.iter().enumerate() {
                let ms = solver.solve(&SolveRequest::new(inst))?.makespan;
                per_solver[i].push(ms as f64 / denom);
            }
        }
        rows.push(FamilyRatioRow {
            family,
            solvers: solvers.iter().map(|(n, _)| *n).collect(),
            ratios: per_solver
                .iter()
                .map(|r| stats::mean(r).unwrap_or(1.0))
                .collect(),
            proven_frac: proven as f64 / instances.len().max(1) as f64,
        });
    }
    Ok(rows)
}

/// Plain-text rendering of the sweep.
pub fn render_family_ratios(rows: &[FamilyRatioRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== mean actual approximation ratios across the 24 paper families =="
    );
    let solvers: Vec<&str> = rows.first().map(|r| r.solvers.clone()).unwrap_or_default();
    let header: String = solvers.iter().map(|s| format!("{s:>10}")).collect();
    let _ = writeln!(out, "{:<26}{header}{:>10}", "family", "proven");
    let mut pptas_no_worse = 0;
    for r in rows {
        let cells: String = r.ratios.iter().map(|v| format!("{v:>10.3}")).collect();
        let _ = writeln!(
            out,
            "{:<26}{cells}{:>9.0}%",
            r.family.to_string(),
            r.proven_frac * 100.0
        );
        if let (Some(pptas), Some(lpt)) = (r.ratio_of("par-ptas"), r.ratio_of("lpt")) {
            if pptas <= lpt + 1e-9 {
                pptas_no_worse += 1;
            }
        }
    }
    let _ = writeln!(
        out,
        "\nPPTAS at least as good as LPT on {pptas_no_worse}/{} families \
         (the paper reports 'almost all')",
        rows.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_on_a_small_configuration() {
        // A light subset (m = 10 only, small n) keeps this fast in debug
        // builds; the release harness runs all 24 families. Unproven
        // denominators just make the ratio assertions looser.
        use pcmax_workloads::Distribution;
        let families: Vec<Family> = Distribution::figure_families()
            .into_iter()
            .map(|d| Family::new(10, 30, d))
            .collect();
        let rows = family_ratio_sweep_over(&families, 1, 99, 100_000).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            let pptas = r.ratio_of("par-ptas").unwrap();
            let ls = r.ratio_of("ls").unwrap();
            assert!(pptas >= 0.99, "{}: {}", r.family, pptas);
            assert!(ls >= pptas - 0.35, "LS should not dominate");
        }
        let text = render_family_ratios(&rows);
        assert!(text.contains("families"));
    }
}
