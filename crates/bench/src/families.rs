//! The cross-family ratio sweep: Section V's claim that "for all other
//! instances in our experiments our parallel approximation algorithm obtains
//! actual approximation ratios at least as good as those of LPT". This
//! experiment runs all 24 paper families and tabulates mean ratios.

use pcmax_baselines::{Lpt, Ls};
use pcmax_core::{stats, Result, Scheduler};
use pcmax_exact::BranchAndBound;
use pcmax_parallel::ParallelPtas;
use pcmax_workloads::{generate_batch, paper_families, Family};
use serde::Serialize;

/// Mean ratios for one family.
#[derive(Debug, Clone, Serialize)]
pub struct FamilyRatioRow {
    /// The family.
    pub family: Family,
    /// Mean parallel-PTAS ratio.
    pub pptas: f64,
    /// Mean LPT ratio.
    pub lpt: f64,
    /// Mean LS ratio.
    pub ls: f64,
    /// Fraction of instances whose optimum was proven (unproven instances
    /// use the exact solver's lower bound, making ratios upper bounds).
    pub proven_frac: f64,
}

/// Runs the sweep over all 24 paper families with `reps` instances each.
pub fn family_ratio_sweep(reps: usize, base_seed: u64, ip_budget: u64) -> Result<Vec<FamilyRatioRow>> {
    family_ratio_sweep_over(&paper_families(), reps, base_seed, ip_budget)
}

/// Runs the sweep over an explicit family list (tests use a light subset;
/// the harness uses all 24).
pub fn family_ratio_sweep_over(
    families: &[Family],
    reps: usize,
    base_seed: u64,
    ip_budget: u64,
) -> Result<Vec<FamilyRatioRow>> {
    let pptas = ParallelPtas::new(0.3)?;
    let exact = BranchAndBound::with_budget(ip_budget);
    let mut rows = Vec::new();
    for &family in families {
        let instances = generate_batch(family, base_seed, reps);
        let mut r_pptas = Vec::new();
        let mut r_lpt = Vec::new();
        let mut r_ls = Vec::new();
        let mut proven = 0usize;
        for inst in &instances {
            let out = exact.solve_detailed(inst)?;
            let denom = if out.proven {
                proven += 1;
                out.best
            } else {
                out.lower_bound
            } as f64;
            r_pptas.push(pptas.makespan(inst)? as f64 / denom);
            r_lpt.push(Lpt.makespan(inst)? as f64 / denom);
            r_ls.push(Ls.makespan(inst)? as f64 / denom);
        }
        rows.push(FamilyRatioRow {
            family,
            pptas: stats::mean(&r_pptas).unwrap_or(1.0),
            lpt: stats::mean(&r_lpt).unwrap_or(1.0),
            ls: stats::mean(&r_ls).unwrap_or(1.0),
            proven_frac: proven as f64 / instances.len().max(1) as f64,
        });
    }
    Ok(rows)
}

/// Plain-text rendering of the sweep.
pub fn render_family_ratios(rows: &[FamilyRatioRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== mean actual approximation ratios across the 24 paper families =="
    );
    let _ = writeln!(
        out,
        "{:<26}{:>9}{:>9}{:>9}{:>10}",
        "family", "PPTAS", "LPT", "LS", "proven"
    );
    let mut pptas_no_worse = 0;
    for r in rows {
        let _ = writeln!(
            out,
            "{:<26}{:>9.3}{:>9.3}{:>9.3}{:>9.0}%",
            r.family.to_string(),
            r.pptas,
            r.lpt,
            r.ls,
            r.proven_frac * 100.0
        );
        if r.pptas <= r.lpt + 1e-9 {
            pptas_no_worse += 1;
        }
    }
    let _ = writeln!(
        out,
        "\nPPTAS at least as good as LPT on {pptas_no_worse}/{} families \
         (the paper reports 'almost all')",
        rows.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_on_a_small_configuration() {
        // A light subset (m = 10 only, small n) keeps this fast in debug
        // builds; the release harness runs all 24 families. Unproven
        // denominators just make the ratio assertions looser.
        use pcmax_workloads::Distribution;
        let families: Vec<Family> = Distribution::figure_families()
            .into_iter()
            .map(|d| Family::new(10, 30, d))
            .collect();
        let rows = family_ratio_sweep_over(&families, 1, 99, 100_000).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.pptas >= 0.99, "{}: {}", r.family, r.pptas);
            assert!(r.ls >= r.pptas - 0.35, "LS should not dominate");
        }
        let text = render_family_ratios(&rows);
        assert!(text.contains("families"));
    }
}
