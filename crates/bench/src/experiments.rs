//! The speedup/running-time experiments of Figures 2, 3 and 4.
//!
//! Per instance family (the four distributions at a fixed `(m, n)` shape):
//!
//! * **sequential PTAS time** — measured wall-clock of the registry's
//!   `ptas` solver,
//! * **IP time** — measured wall-clock of the registry's `exact` solver
//!   (the CPLEX substitute; its node budget set through the engine's
//!   [`Budget`], exactly like a MIP time limit),
//! * **parallel time at `P` cores** — the measured sequential PTAS time
//!   divided by the *simulated* speedup of the wavefront DP on `P`
//!   processors (`pcmax-simcore`; see DESIGN.md §2 — the build host need not
//!   have `P` physical cores),
//! * **speedup vs PTAS / vs IP** — ratios of the above, averaged over the
//!   seeded instances of the family.

use pcmax_core::json::{self, Value};
use pcmax_core::{stats, Budget, Instance, Result, Scheduler, SolveRequest};
use pcmax_engine::{build as registry_build, SolverParams};
use pcmax_simcore::{simulate_ptas, SimParams};
use pcmax_workloads::{ExperimentSet, Family};

use crate::timing::{time_secs, time_stable};

/// One family's averaged measurements.
#[derive(Debug, Clone)]
pub struct FamilyRow {
    /// The instance family.
    pub family: Family,
    /// Processor counts of the sweep (the paper uses 2..16).
    pub procs: Vec<usize>,
    /// Mean simulated speedup of the parallel algorithm vs the sequential
    /// PTAS, per processor count.
    pub speedup_vs_ptas: Vec<f64>,
    /// Mean speedup vs the IP (exact) solver, per processor count.
    pub speedup_vs_ip: Vec<f64>,
    /// Mean measured IP wall-clock seconds.
    pub time_ip_s: f64,
    /// Mean measured sequential PTAS wall-clock seconds.
    pub time_ptas_s: f64,
    /// Mean derived parallel wall-clock seconds per processor count.
    pub time_par_s: Vec<f64>,
    /// Fraction of instances where the IP solver proved optimality within
    /// its budget (CPLEX-style time limit).
    pub ip_proven_frac: f64,
}

fn f64_array(items: &[f64]) -> Value {
    Value::Array(items.iter().map(|&v| Value::Float(v)).collect())
}

impl FamilyRow {
    /// JSON rendering for `repro --json`.
    pub fn to_json(&self) -> Value {
        json::object(vec![
            ("family", Value::Str(self.family.to_string())),
            (
                "procs",
                json::u64_array(self.procs.iter().map(|&p| p as u64)),
            ),
            ("speedup_vs_ptas", f64_array(&self.speedup_vs_ptas)),
            ("speedup_vs_ip", f64_array(&self.speedup_vs_ip)),
            ("time_ip_s", Value::Float(self.time_ip_s)),
            ("time_ptas_s", Value::Float(self.time_ptas_s)),
            ("time_par_s", f64_array(&self.time_par_s)),
            ("ip_proven_frac", Value::Float(self.ip_proven_frac)),
        ])
    }
}

/// A full speedup figure: one row per family at a fixed `(m, n)` shape.
#[derive(Debug, Clone)]
pub struct SpeedupFigure {
    /// Figure label ("Figure 2" etc).
    pub label: String,
    /// The experiment shape.
    pub machines: usize,
    /// Number of jobs.
    pub jobs: usize,
    /// Instances per family that were averaged.
    pub reps: usize,
    /// Rows per family.
    pub rows: Vec<FamilyRow>,
}

impl SpeedupFigure {
    /// JSON rendering for `repro --json`.
    pub fn to_json(&self) -> Value {
        json::object(vec![
            ("label", Value::Str(self.label.clone())),
            ("machines", Value::UInt(self.machines as u64)),
            ("jobs", Value::UInt(self.jobs as u64)),
            ("reps", Value::UInt(self.reps as u64)),
            (
                "rows",
                Value::Array(self.rows.iter().map(FamilyRow::to_json).collect()),
            ),
        ])
    }
}

/// Configuration of a speedup experiment run.
#[derive(Debug, Clone)]
pub struct SpeedupConfig {
    /// Processor counts to sweep.
    pub procs: Vec<usize>,
    /// PTAS accuracy (the paper fixes 0.3).
    pub epsilon: f64,
    /// Node budget for the IP solver per instance.
    pub ip_budget: u64,
}

impl Default for SpeedupConfig {
    fn default() -> Self {
        Self {
            procs: vec![2, 4, 8, 16],
            epsilon: 0.3,
            ip_budget: 40_000_000,
        }
    }
}

/// Runs one speedup figure over `set` (e.g. [`ExperimentSet::fig2`]).
pub fn speedup_figure(
    label: &str,
    set: ExperimentSet,
    config: &SpeedupConfig,
) -> Result<SpeedupFigure> {
    let mut rows = Vec::new();
    for family_instances in set.materialize() {
        rows.push(family_row(
            family_instances.family,
            &family_instances.instances,
            config,
        )?);
    }
    Ok(SpeedupFigure {
        label: label.to_string(),
        machines: set.machines,
        jobs: set.jobs,
        reps: set.reps,
        rows,
    })
}

fn family_row(family: Family, instances: &[Instance], config: &SpeedupConfig) -> Result<FamilyRow> {
    let params = SolverParams::with_epsilon(config.epsilon);
    let ptas = registry_build("ptas", &params)?;
    let ip = registry_build("exact", &params)?;

    let mut ip_times = Vec::new();
    let mut ptas_times = Vec::new();
    let mut proven = 0usize;
    // speedups[i][j] = simulated speedup of instance j at procs[i].
    let mut speedups = vec![Vec::new(); config.procs.len()];

    for inst in instances {
        let req = SolveRequest::new(inst).with_budget(Budget::unlimited().nodes(config.ip_budget));
        let (out, ip_s) = time_secs(|| ip.solve(&req));
        if out?.proven_optimal {
            proven += 1;
        }
        ip_times.push(ip_s);
        // Surface a PTAS failure once, outside the timing loop, so the
        // timed closure below stays infallible without unwinding.
        ptas.schedule(inst)?;
        // The PTAS is fast; stabilize with repeated runs.
        let ptas_s = time_stable(0.05, || {
            let _ = ptas.schedule(inst);
        });
        ptas_times.push(ptas_s);
        for (i, &p) in config.procs.iter().enumerate() {
            let report = simulate_ptas(inst, config.epsilon, SimParams::with_processors(p))?;
            speedups[i].push(report.speedup());
        }
    }

    let time_ip_s = stats::mean(&ip_times).unwrap_or(0.0);
    let time_ptas_s = stats::mean(&ptas_times).unwrap_or(0.0);
    let mut speedup_vs_ptas = Vec::new();
    let mut speedup_vs_ip = Vec::new();
    let mut time_par_s = Vec::new();
    for (i, _) in config.procs.iter().enumerate() {
        let s = stats::mean(&speedups[i]).unwrap_or(1.0);
        speedup_vs_ptas.push(s);
        // Parallel wall time = sequential PTAS time shrunk by the simulated
        // speedup; per-instance IP/parallel ratios averaged.
        let per_instance_vs_ip: Vec<f64> = instances
            .iter()
            .enumerate()
            .map(|(j, _)| ip_times[j] / (ptas_times[j] / speedups[i][j]))
            .collect();
        speedup_vs_ip.push(stats::mean(&per_instance_vs_ip).unwrap_or(1.0));
        time_par_s.push(time_ptas_s / s);
    }

    Ok(FamilyRow {
        family,
        procs: config.procs.clone(),
        speedup_vs_ptas,
        speedup_vs_ip,
        time_ip_s,
        time_ptas_s,
        time_par_s,
        ip_proven_frac: proven as f64 / instances.len().max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_figure_runs_end_to_end() {
        let set = ExperimentSet {
            machines: 4,
            jobs: 12,
            reps: 2,
            base_seed: 7,
        };
        let config = SpeedupConfig {
            procs: vec![2, 4],
            epsilon: 0.3,
            ip_budget: 1_000_000,
        };
        let fig = speedup_figure("test", set, &config).unwrap();
        assert_eq!(fig.rows.len(), 4);
        for row in &fig.rows {
            assert_eq!(row.speedup_vs_ptas.len(), 2);
            assert_eq!(row.speedup_vs_ip.len(), 2);
            assert!(row.time_ptas_s > 0.0);
            for &s in &row.speedup_vs_ptas {
                assert!(s > 0.0 && s <= 4.0 + 1e-9);
            }
        }
        let v = fig.to_json();
        assert_eq!(v.get("machines").and_then(|m| m.as_u64()), Some(4));
    }
}
