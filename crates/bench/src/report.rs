//! Plain-text rendering of the experiment results (the "rows/series the
//! paper reports") plus JSON persistence.

use crate::experiments::SpeedupFigure;
use crate::ratios::RatioFigure;
use std::fmt::Write as _;

/// Renders a speedup figure as three aligned panels, mirroring the paper's
/// (a) speedup vs PTAS, (b) speedup vs IP, (c) running times.
pub fn render_speedup(fig: &SpeedupFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {} (m={}, n={}, {} instances/family, eps=0.3) ==",
        fig.label, fig.machines, fig.jobs, fig.reps
    );
    let procs = fig
        .rows
        .first()
        .map(|r| r.procs.clone())
        .unwrap_or_default();
    let header: String = procs
        .iter()
        .map(|p| format!("{:>8}", format!("P={p}")))
        .collect();

    let _ = writeln!(out, "\n(a) average speedup vs sequential PTAS");
    let _ = writeln!(out, "{:<22}{header}", "family");
    for row in &fig.rows {
        let cells: String = row
            .speedup_vs_ptas
            .iter()
            .map(|s| format!("{s:>8.2}"))
            .collect();
        let _ = writeln!(out, "{:<22}{cells}", row.family.dist.to_string());
    }

    let _ = writeln!(out, "\n(b) average speedup vs IP (exact solver)");
    let _ = writeln!(out, "{:<22}{header}", "family");
    for row in &fig.rows {
        let cells: String = row
            .speedup_vs_ip
            .iter()
            .map(|s| format!("{s:>8.1}"))
            .collect();
        let _ = writeln!(
            out,
            "{:<22}{cells}  (IP proven: {:.0}%)",
            row.family.dist.to_string(),
            row.ip_proven_frac * 100.0
        );
    }

    let _ = writeln!(out, "\n(c) average running times [s]");
    let _ = writeln!(out, "{:<22}{:>10}{:>10}{}", "family", "IP", "PTAS", header);
    for row in &fig.rows {
        let cells: String = row.time_par_s.iter().map(|t| format!("{t:>8.4}")).collect();
        let _ = writeln!(
            out,
            "{:<22}{:>10.3}{:>10.4}{cells}",
            row.family.dist.to_string(),
            row.time_ip_s,
            row.time_ptas_s
        );
    }
    out
}

/// Renders a ratio figure (one panel of Fig. 5) plus its Table II/III-style
/// instance listing. The solver columns come from the figure itself, which
/// enumerated the engine registry.
pub fn render_ratios(fig: &RatioFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", fig.label);
    let header: String = fig.solvers.iter().map(|s| format!("{s:>10}")).collect();
    let _ = writeln!(out, "{:<5}{:<46}{:>9}{header}", "inst", "family", "OPT");
    for c in &fig.cases {
        let opt = if c.optimum_proven {
            format!("{}", c.optimum)
        } else {
            format!("{}*", c.optimum)
        };
        let cells: String = c
            .ratios
            .iter()
            .map(|r| format!("{:>10.3}", r.ratio))
            .collect();
        let _ = writeln!(out, "{:<5}{:<46}{opt:>9}{cells}", c.label, c.description);
    }
    if fig.cases.iter().any(|c| !c.optimum_proven) {
        let _ = writeln!(
            out,
            "(* = exact solver hit its budget; denominator is its proven lower bound,\n     so these ratios are upper bounds)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::FamilyRow;
    use crate::ratios::{RatioCase, SolverRatio};
    use pcmax_workloads::{Distribution, Family};

    #[test]
    fn speedup_rendering_contains_all_panels() {
        let fig = SpeedupFigure {
            label: "Figure X".into(),
            machines: 4,
            jobs: 8,
            reps: 1,
            rows: vec![FamilyRow {
                family: Family::new(4, 8, Distribution::U1To10),
                procs: vec![2, 4],
                speedup_vs_ptas: vec![1.5, 2.5],
                speedup_vs_ip: vec![10.0, 20.0],
                time_ip_s: 1.0,
                time_ptas_s: 0.1,
                time_par_s: vec![0.066, 0.04],
                ip_proven_frac: 1.0,
            }],
        };
        let s = render_speedup(&fig);
        assert!(s.contains("(a)") && s.contains("(b)") && s.contains("(c)"));
        assert!(s.contains("U(1,10)"));
        assert!(s.contains("P=2"));
    }

    #[test]
    fn ratio_rendering_flags_unproven() {
        let fig = RatioFigure {
            label: "panel".into(),
            solvers: vec!["par-ptas", "lpt", "ls"],
            cases: vec![RatioCase {
                label: "I1".into(),
                description: "d".into(),
                optimum: 100,
                optimum_proven: false,
                ratios: vec![
                    SolverRatio {
                        solver: "par-ptas",
                        ratio: 1.01,
                    },
                    SolverRatio {
                        solver: "lpt",
                        ratio: 1.1,
                    },
                    SolverRatio {
                        solver: "ls",
                        ratio: 1.3,
                    },
                ],
            }],
        };
        let s = render_ratios(&fig);
        assert!(s.contains("100*"));
        assert!(s.contains("upper bounds"));
        assert!(s.contains("par-ptas") && s.contains("lpt"));
    }
}
