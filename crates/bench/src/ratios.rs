//! The actual-approximation-ratio experiment of Figure 5: every polynomial
//! approximation solver in the engine registry, divided by the optimal
//! makespan from the exact solver.

use crate::tables::CaseInstance;
use pcmax_core::json::{self, Value};
use pcmax_core::{ApproxRatio, Result, SolveRequest};
use pcmax_engine::{build as registry_build, comparators, SolverParams};

/// One comparator's measured ratio on one instance.
#[derive(Debug, Clone)]
pub struct SolverRatio {
    /// Registry name of the solver.
    pub solver: &'static str,
    /// Its makespan divided by the (proven) optimum.
    pub ratio: f64,
}

/// One instance's measured ratios.
#[derive(Debug, Clone)]
pub struct RatioCase {
    /// Instance label (I1..I6 / I1'..I6').
    pub label: String,
    /// Family description.
    pub description: String,
    /// Optimal (or best-proven-bound) makespan used as the denominator.
    pub optimum: u64,
    /// Whether the exact solver proved optimality. If false the denominator
    /// is the solver's proven *lower bound*, making the ratios upper bounds.
    pub optimum_proven: bool,
    /// Per-solver ratios, in registry order.
    pub ratios: Vec<SolverRatio>,
}

impl RatioCase {
    /// The measured ratio of the registry solver `name` (`None` if absent).
    pub fn ratio_of(&self, name: &str) -> Option<f64> {
        self.ratios
            .iter()
            .find(|r| r.solver.eq_ignore_ascii_case(name))
            .map(|r| r.ratio)
    }
}

/// A full ratio figure (one of Fig. 5's two panels).
#[derive(Debug, Clone)]
pub struct RatioFigure {
    /// Panel label.
    pub label: String,
    /// Registry names of the compared solvers (column order).
    pub solvers: Vec<&'static str>,
    /// Per-instance rows.
    pub cases: Vec<RatioCase>,
}

impl RatioFigure {
    /// JSON rendering for `repro --json`.
    pub fn to_json(&self) -> Value {
        json::object(vec![
            ("label", Value::Str(self.label.clone())),
            (
                "solvers",
                Value::Array(
                    self.solvers
                        .iter()
                        .map(|s| Value::Str(s.to_string()))
                        .collect(),
                ),
            ),
            (
                "cases",
                Value::Array(
                    self.cases
                        .iter()
                        .map(|c| {
                            json::object(vec![
                                ("label", Value::Str(c.label.clone())),
                                ("description", Value::Str(c.description.clone())),
                                ("optimum", Value::UInt(c.optimum)),
                                ("optimum_proven", Value::Bool(c.optimum_proven)),
                                (
                                    "ratios",
                                    Value::Object(
                                        c.ratios
                                            .iter()
                                            .map(|r| (r.solver.to_string(), Value::Float(r.ratio)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs the ratio experiment over `cases` with PTAS accuracy `epsilon`,
/// comparing every solver the registry marks as a polynomial approximation
/// algorithm ([`comparators`]).
pub fn ratio_figure(label: &str, cases: &[CaseInstance], epsilon: f64) -> Result<RatioFigure> {
    let params = SolverParams::with_epsilon(epsilon);
    let exact = registry_build("exact", &params)?;
    let solvers: Vec<(&'static str, _)> = comparators()
        .map(|spec| Ok((spec.name, spec.build(&params)?)))
        .collect::<Result<_>>()?;
    let mut rows = Vec::new();
    for c in cases {
        let out = exact.solve(&SolveRequest::new(&c.instance))?;
        // Denominator: the proven optimum, or the proven lower bound when the
        // budget ran out (then the reported ratios are upper bounds).
        let denom = if out.proven_optimal {
            out.makespan
        } else {
            out.certified_target.unwrap_or(out.makespan)
        };
        let mut ratios = Vec::new();
        for (name, solver) in &solvers {
            let ms = solver.solve(&SolveRequest::new(&c.instance))?.makespan;
            ratios.push(SolverRatio {
                solver: name,
                ratio: ApproxRatio::new(ms, denom).value(),
            });
        }
        rows.push(RatioCase {
            label: c.label.clone(),
            description: c.description.clone(),
            optimum: denom,
            optimum_proven: out.proven_optimal,
            ratios,
        });
    }
    Ok(RatioFigure {
        label: label.to_string(),
        solvers: solvers.iter().map(|(n, _)| *n).collect(),
        cases: rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::best_case_instances;

    #[test]
    fn ratios_are_at_least_one_when_proven() {
        // Use only the deterministic Graham case to keep the test fast.
        let cases: Vec<CaseInstance> = best_case_instances()
            .into_iter()
            .filter(|c| c.label == "I6")
            .collect();
        let fig = ratio_figure("test", &cases, 0.3).unwrap();
        // Columns come straight from the registry, not a hard-coded list.
        assert_eq!(
            fig.solvers,
            pcmax_engine::comparators()
                .map(|s| s.name)
                .collect::<Vec<_>>()
        );
        let row = &fig.cases[0];
        assert!(row.optimum_proven);
        let pptas = row.ratio_of("par-ptas").unwrap();
        let lpt = row.ratio_of("lpt").unwrap();
        assert!(pptas >= 1.0 - 1e-12);
        assert!(lpt >= pptas - 1e-12);
        // Graham's construction: LPT ratio is exactly (4m−1)/(3m) = 1.3.
        assert!((lpt - 1.3).abs() < 1e-9, "{lpt}");
        // The PTAS with ε = 0.3 certifies ≤ 1.25; on this instance it should
        // be optimal or near-optimal.
        assert!(pptas <= 1.25 + 1e-9);
        // The parallel PTAS computes the same schedule as the sequential one.
        assert_eq!(row.ratio_of("ptas"), Some(pptas));
    }
}
