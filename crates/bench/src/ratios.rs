//! The actual-approximation-ratio experiment of Figure 5: the parallel PTAS
//! (same ratios as the sequential PTAS — they compute identical schedules),
//! LPT and LS, each divided by the optimal makespan from the exact solver.

use crate::tables::CaseInstance;
use pcmax_baselines::{Lpt, Ls};
use pcmax_core::{ApproxRatio, Result, Scheduler};
use pcmax_exact::BranchAndBound;
use pcmax_parallel::ParallelPtas;
use serde::Serialize;

/// One instance's measured ratios.
#[derive(Debug, Clone, Serialize)]
pub struct RatioCase {
    /// Instance label (I1..I6 / I1'..I6').
    pub label: String,
    /// Family description.
    pub description: String,
    /// Optimal (or best-proven-bound) makespan used as the denominator.
    pub optimum: u64,
    /// Whether the exact solver proved optimality. If false the denominator
    /// is the solver's proven *lower bound*, making the ratios upper bounds.
    pub optimum_proven: bool,
    /// Parallel PTAS makespan / optimum.
    pub ratio_parallel_ptas: f64,
    /// LPT makespan / optimum.
    pub ratio_lpt: f64,
    /// LS makespan / optimum.
    pub ratio_ls: f64,
}

/// A full ratio figure (one of Fig. 5's two panels).
#[derive(Debug, Clone, Serialize)]
pub struct RatioFigure {
    /// Panel label.
    pub label: String,
    /// Per-instance rows.
    pub cases: Vec<RatioCase>,
}

/// Runs the ratio experiment over `cases` with PTAS accuracy `epsilon`.
pub fn ratio_figure(label: &str, cases: &[CaseInstance], epsilon: f64) -> Result<RatioFigure> {
    let pptas = ParallelPtas::new(epsilon)?;
    let exact = BranchAndBound::default();
    let mut rows = Vec::new();
    for c in cases {
        let out = exact.solve_detailed(&c.instance)?;
        // Denominator: the proven optimum, or the proven lower bound when the
        // budget ran out (then the reported ratios are upper bounds).
        let denom = if out.proven { out.best } else { out.lower_bound };
        let pptas_ms = pptas.makespan(&c.instance)?;
        let lpt_ms = Lpt.makespan(&c.instance)?;
        let ls_ms = Ls.makespan(&c.instance)?;
        rows.push(RatioCase {
            label: c.label.clone(),
            description: c.description.clone(),
            optimum: denom,
            optimum_proven: out.proven,
            ratio_parallel_ptas: ApproxRatio::new(pptas_ms, denom).value(),
            ratio_lpt: ApproxRatio::new(lpt_ms, denom).value(),
            ratio_ls: ApproxRatio::new(ls_ms, denom).value(),
        });
    }
    Ok(RatioFigure {
        label: label.to_string(),
        cases: rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::best_case_instances;

    #[test]
    fn ratios_are_at_least_one_when_proven() {
        // Use only the deterministic Graham case to keep the test fast.
        let cases: Vec<CaseInstance> = best_case_instances()
            .into_iter()
            .filter(|c| c.label == "I6")
            .collect();
        let fig = ratio_figure("test", &cases, 0.3).unwrap();
        let row = &fig.cases[0];
        assert!(row.optimum_proven);
        assert!(row.ratio_parallel_ptas >= 1.0 - 1e-12);
        assert!(row.ratio_lpt >= row.ratio_parallel_ptas - 1e-12);
        // Graham's construction: LPT ratio is exactly (4m−1)/(3m) = 1.3.
        assert!((row.ratio_lpt - 1.3).abs() < 1e-9, "{}", row.ratio_lpt);
        // The PTAS with ε = 0.3 certifies ≤ 1.25; on this instance it should
        // be optimal or near-optimal.
        assert!(row.ratio_parallel_ptas <= 1.25 + 1e-9);
    }
}
