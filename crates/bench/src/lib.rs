//! Experiment harness regenerating every figure and table of the paper's
//! evaluation (Section V). See DESIGN.md §7 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! cargo run -p pcmax-bench --release --bin repro -- all
//! cargo run -p pcmax-bench --release --bin repro -- fig2 --reps 5 --json out.json
//! ```

pub mod experiments;
pub mod families;
pub mod micro;
pub mod ratios;
pub mod report;
pub mod tables;
pub mod timing;

pub use experiments::{speedup_figure, FamilyRow, SpeedupFigure};
pub use families::{family_ratio_sweep, render_family_ratios, FamilyRatioRow};
pub use ratios::{ratio_figure, RatioCase, RatioFigure, SolverRatio};
pub use tables::{best_case_instances, worst_case_instances, CaseInstance};
pub use timing::time_secs;
