//! Ablation: the three DP evaluation orders — iterative dense bottom-up,
//! memoized top-down (only reachable states; the shape of Algorithm 2) and
//! the wavefront-parallel sweep (Algorithm 3).

use pcmax_bench::micro;
use pcmax_parallel::ParallelDp;
use pcmax_ptas::dp::DpSolver;
use pcmax_ptas::{rounded_problem, DpProblem, EpsilonParams, IterativeDp, MemoizedDp};
use pcmax_workloads::{generate, Distribution, Family};

fn representative_problem() -> DpProblem {
    let inst = generate(Family::new(20, 100, Distribution::U1To100), 1);
    let eps = EpsilonParams::new(0.3).unwrap();
    let target = pcmax_core::lower_bound(&inst);
    rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES).0
}

fn main() {
    let group = micro::group("ablation_dp");
    let problem = representative_problem();
    group.bench("iterative", "m20n100", || {
        IterativeDp.solve(&problem).unwrap()
    });
    group.bench("memoized", "m20n100", || {
        MemoizedDp.solve(&problem).unwrap()
    });
    let parallel = ParallelDp::default();
    group.bench("parallel", "m20n100", || parallel.solve(&problem).unwrap());
}
