//! Ablation: the three DP evaluation orders — iterative dense bottom-up,
//! memoized top-down (only reachable states; the shape of Algorithm 2) and
//! the wavefront-parallel sweep (Algorithm 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_parallel::ParallelDp;
use pcmax_ptas::dp::DpSolver;
use pcmax_ptas::{rounded_problem, DpProblem, EpsilonParams, IterativeDp, MemoizedDp};
use pcmax_workloads::{generate, Distribution, Family};
use std::time::Duration;

fn representative_problem() -> DpProblem {
    let inst = generate(Family::new(20, 100, Distribution::U1To100), 1);
    let eps = EpsilonParams::new(0.3).unwrap();
    let target = pcmax_core::lower_bound(&inst);
    rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES).0
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dp");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let problem = representative_problem();
    group.bench_with_input(BenchmarkId::new("iterative", "m20n100"), &problem, |b, p| {
        b.iter(|| IterativeDp.solve(p).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("memoized", "m20n100"), &problem, |b, p| {
        b.iter(|| MemoizedDp.solve(p).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("parallel", "m20n100"), &problem, |b, p| {
        let solver = ParallelDp::default();
        b.iter(|| solver.solve(p).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
