//! Micro-benchmark for the wavefront DP hot path: DP cells per second of
//! the persistent-pool level-major executor (`dp-parallel`) against the
//! pre-PR spawn-per-level row-major executor (`dp-parallel-spawn`) on the
//! paper's U(1,100) family, both pinned to 4 worker threads.
//!
//! ```text
//! cargo bench -p pcmax-bench --bench wavefront -- [--smoke] \
//!     [--json FILE] [--check FILE] [--min-secs S] [--trace FILE]
//! ```
//!
//! * `--json FILE`  — write the measurements as JSON (the tracked baseline
//!   `BENCH_wavefront.json` is produced this way).
//! * `--check FILE` — load a baseline and fail (exit 1) if the persistent
//!   executor's speedup over the spawn-per-level baseline regressed by more
//!   than 25% for any case measured in both runs. The gate compares
//!   *speedups*, not raw cells/sec, so it is machine-normalized: CI hardware
//!   may be slower than the machine that wrote the baseline, but the ratio
//!   between the two executors on identical inputs should hold.
//! * `--smoke`      — only run the small fixed case (the CI `bench-smoke`
//!   job uses this together with `--check`).
//! * `--trace FILE` — additionally run one traced end-to-end PTAS solve of
//!   the first measured case and write its Chrome-trace timeline to FILE.
//!
//! Alongside the executor micro-benchmark, each case runs one full
//! `ParallelPtas` solve and reports two throughputs: cells over the *total*
//! solve wall (bisection + reconstruction included — the figure
//! `SolveStats::dp_cells_per_sec` has always produced) and cells over the
//! dp *phase* wall only (`dp_phase_cells_per_sec`). The micro-benchmark
//! times nothing but the DP sweep, so the phase-scoped figure is the one
//! comparable to the executor columns.

use pcmax_bench::timing::time_stable;
use pcmax_core::json::{self, Value};
use pcmax_core::{SolveRequest, Solver};
use pcmax_parallel::{LevelStrategy, ParallelDp, ParallelPtas};
use pcmax_ptas::dp::{DpProblem, DpSolver};
use pcmax_ptas::{rounded_problem, EpsilonParams};
use pcmax_workloads::{generate, Distribution, Family};
use std::process::ExitCode;

/// Threads both executors are pinned to (the acceptance point of the PR).
const THREADS: usize = 4;

/// Regression tolerance on the persistent/spawn-per-level speedup ratio.
const TOLERANCE: f64 = 0.25;

struct Case {
    name: &'static str,
    machines: usize,
    jobs: usize,
    epsilon: f64,
    smoke: bool,
}

/// The paper's U(1,100) workload at the Figure-2 scale, plus a small fixed
/// instance for the CI smoke gate.
const CASES: &[Case] = &[
    Case {
        name: "u100-m20-n100-eps0.3",
        machines: 20,
        jobs: 100,
        epsilon: 0.3,
        smoke: false,
    },
    Case {
        name: "smoke-u100-m10-n50-eps0.3",
        machines: 10,
        jobs: 50,
        epsilon: 0.3,
        smoke: true,
    },
];

struct Measurement {
    name: &'static str,
    cells: u64,
    persistent_cps: f64,
    spawn_cps: f64,
    /// Full-solve throughput over the *total* wall (bisection included).
    solve_total_cps: Option<f64>,
    /// Full-solve throughput over the dp phase wall only — the figure
    /// comparable to the executor micro-benchmark columns above.
    solve_dp_phase_cps: Option<f64>,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.persistent_cps / self.spawn_cps
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("case", Value::Str(self.name.to_string())),
            ("cells", Value::UInt(self.cells)),
            (
                "persistent_cells_per_sec",
                Value::Float(self.persistent_cps),
            ),
            (
                "spawn_per_level_cells_per_sec",
                Value::Float(self.spawn_cps),
            ),
            ("speedup", Value::Float(self.speedup())),
        ];
        if let Some(cps) = self.solve_total_cps {
            fields.push(("solve_cells_per_sec_total_wall", Value::Float(cps)));
        }
        if let Some(cps) = self.solve_dp_phase_cps {
            fields.push(("solve_cells_per_sec_dp_phase", Value::Float(cps)));
        }
        json::object(fields)
    }
}

fn rounded(case: &Case) -> DpProblem {
    let inst = generate(
        Family::new(case.machines, case.jobs, Distribution::U1To100),
        1,
    );
    let eps = EpsilonParams::new(case.epsilon).expect("valid epsilon");
    let target = pcmax_core::lower_bound(&inst);
    rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES).0
}

fn measure(case: &Case, min_secs: f64) -> Measurement {
    let problem = rounded(case);
    let cells = (problem.build_table().expect("guarded size").len - 1) as u64;

    let persistent = ParallelDp::with_threads(THREADS);
    let spawn = ParallelDp {
        threads: Some(THREADS),
        strategy: LevelStrategy::SpawnPerLevel,
        ..ParallelDp::default()
    };

    // The two executors must agree before their speeds are worth comparing.
    let a = persistent.solve(&problem).expect("persistent solve");
    let b = spawn.solve(&problem).expect("spawn-per-level solve");
    assert_eq!(a, b, "{}: executors diverged", case.name);

    // Best-of-3: the min per-run time filters scheduler noise, which matters
    // for the ratio gate far more than absolute accuracy does.
    let best = |f: &mut dyn FnMut()| {
        (0..3)
            .map(|_| time_stable(min_secs, &mut *f))
            .fold(f64::INFINITY, f64::min)
    };
    let t_persistent = best(&mut || {
        persistent.solve(&problem).expect("solve");
    });
    let t_spawn = best(&mut || {
        spawn.solve(&problem).expect("solve");
    });

    // One end-to-end PTAS solve for the two report-level throughputs: the
    // total-wall figure divides by bisection + reconstruction too, so only
    // the dp-phase figure compares like with like against the columns above.
    let inst = generate(
        Family::new(case.machines, case.jobs, Distribution::U1To100),
        1,
    );
    let solver = ParallelPtas::with_threads(case.epsilon, THREADS).expect("valid epsilon");
    let report = solver
        .solve(&SolveRequest::new(&inst))
        .expect("end-to-end solve");

    Measurement {
        name: case.name,
        cells,
        persistent_cps: cells as f64 / t_persistent,
        spawn_cps: cells as f64 / t_spawn,
        solve_total_cps: report.stats.dp_cells_per_sec(),
        solve_dp_phase_cps: report.stats.dp_phase_cells_per_sec(),
    }
}

/// Runs one traced end-to-end PTAS solve of `case` and writes the merged
/// timeline as Chrome-trace JSON to `path`.
fn write_trace(case: &Case, path: &str) {
    let inst = generate(
        Family::new(case.machines, case.jobs, Distribution::U1To100),
        1,
    );
    let solver = ParallelPtas::with_threads(case.epsilon, THREADS).expect("valid epsilon");
    let session = pcmax_trace::Session::start().expect("no other trace session active");
    let req = SolveRequest::new(&inst).with_trace(std::sync::Arc::new(pcmax_trace::GlobalSink));
    solver.solve(&req).expect("traced end-to-end solve");
    let timeline = session.finish();
    std::fs::write(path, pcmax_trace::chrome::to_json_string(&timeline)).expect("write trace");
    println!("wrote {path} ({} trace events)", timeline.total_events());
}

fn check_against(baseline: &Value, current: &[Measurement]) -> Result<(), String> {
    let cases = baseline
        .get("cases")
        .and_then(Value::as_array)
        .ok_or("baseline JSON has no `cases` array")?;
    let mut compared = 0usize;
    for m in current {
        let Some(base) = cases
            .iter()
            .find(|c| c.get("case").and_then(Value::as_str) == Some(m.name))
        else {
            continue;
        };
        let base_speedup = base
            .get("speedup")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("baseline case {} has no `speedup`", m.name))?;
        compared += 1;
        let floor = base_speedup * (1.0 - TOLERANCE);
        println!(
            "check {:<28} baseline x{base_speedup:.2}  current x{:.2}  floor x{floor:.2}",
            m.name,
            m.speedup()
        );
        if m.speedup() < floor {
            return Err(format!(
                "{}: speedup regressed to x{:.2} (baseline x{base_speedup:.2}, \
                 floor x{floor:.2})",
                m.name,
                m.speedup()
            ));
        }
    }
    if compared == 0 {
        return Err("no case overlapped with the baseline — gate is vacuous".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut min_secs = 0.3f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => json_path = args.next(),
            "--check" => check_path = args.next(),
            "--trace" => trace_path = args.next(),
            "--min-secs" => {
                min_secs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--min-secs needs a number");
            }
            // `cargo bench` forwards its own flags (e.g. --bench) to the
            // target; ignore anything we do not recognize.
            _ => {}
        }
    }

    println!("== wavefront ({THREADS} threads) ==");
    let mut results = Vec::new();
    for case in CASES.iter().filter(|c| !smoke || c.smoke) {
        let m = measure(case, min_secs);
        println!(
            "{:<28} {:>10} cells   persistent {:>12.0} cells/s   spawn-per-level \
             {:>12.0} cells/s   x{:.2}",
            m.name,
            m.cells,
            m.persistent_cps,
            m.spawn_cps,
            m.speedup()
        );
        if let (Some(total), Some(phase)) = (m.solve_total_cps, m.solve_dp_phase_cps) {
            println!(
                "{:<28} full solve: {total:>12.0} cells/s over total wall   \
                 {phase:>12.0} cells/s in the dp phase",
                ""
            );
        }
        results.push(m);
    }

    if let Some(path) = &trace_path {
        let case = CASES
            .iter()
            .find(|c| !smoke || c.smoke)
            .expect("at least one case selected");
        write_trace(case, path);
    }

    if let Some(path) = json_path {
        let doc = json::object(vec![
            ("bench", Value::Str("wavefront".to_string())),
            ("threads", Value::UInt(THREADS as u64)),
            ("tolerance", Value::Float(TOLERANCE)),
            (
                "cases",
                Value::Array(results.iter().map(Measurement::to_json).collect()),
            ),
        ]);
        std::fs::write(&path, doc.to_string_pretty()).expect("write json");
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = json::parse(&text).expect("baseline parses");
        match check_against(&baseline, &results) {
            Ok(()) => println!("bench-smoke gate: OK (within {:.0}%)", TOLERANCE * 100.0),
            Err(msg) => {
                eprintln!("bench-smoke gate FAILED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
