//! Figure 5 / Tables II-III micro-benchmark: every comparator solver of the
//! approximation-ratio experiment (enumerated from the engine registry) plus
//! the exact solver, on the best-case and worst-case instance sets. Full
//! ratio tables: `cargo run -p pcmax-bench --release --bin repro -- fig5`.

use pcmax_bench::micro;
use pcmax_bench::tables::{best_case_instances, worst_case_instances};
use pcmax_core::{Budget, Scheduler, SolveRequest};
use pcmax_engine::{build, comparators, SolverParams};

fn main() {
    let group = micro::group("fig5_ratio_cases").min_secs(0.2);
    let params = SolverParams::default();
    let cases: Vec<_> = best_case_instances()
        .into_iter()
        .chain(worst_case_instances())
        // One representative per table keeps the bench wall-clock sane.
        .filter(|c| c.label == "I1" || c.label == "I1'")
        .collect();
    for case in &cases {
        let inst = &case.instance;
        for spec in comparators() {
            let solver = spec.build(&params).unwrap();
            group.bench(spec.name, &case.label, || solver.schedule(inst).unwrap());
        }
        let ip = build("exact", &params).unwrap();
        group.bench("ip", &case.label, || {
            let req = SolveRequest::new(inst).with_budget(Budget::unlimited().nodes(2_000_000));
            ip.solve(&req).unwrap()
        });
    }
}
