//! Figure 5 / Tables II-III micro-benchmark: the four algorithms compared in
//! the approximation-ratio experiment, on the best-case and worst-case
//! instance sets. Full ratio tables:
//! `cargo run -p pcmax-bench --release --bin repro -- fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_baselines::{Lpt, Ls};
use pcmax_bench::tables::{best_case_instances, worst_case_instances};
use pcmax_core::Scheduler;
use pcmax_exact::BranchAndBound;
use pcmax_parallel::ParallelPtas;
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_ratio_cases");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let cases: Vec<_> = best_case_instances()
        .into_iter()
        .chain(worst_case_instances())
        // One representative per table keeps the bench wall-clock sane.
        .filter(|c| c.label == "I1" || c.label == "I1'")
        .collect();
    for case in &cases {
        let inst = &case.instance;
        group.bench_with_input(
            BenchmarkId::new("parallel_ptas", &case.label),
            inst,
            |b, inst| {
                let a = ParallelPtas::new(0.3).unwrap();
                b.iter(|| a.schedule(inst).unwrap());
            },
        );
        group.bench_with_input(BenchmarkId::new("lpt", &case.label), inst, |b, inst| {
            b.iter(|| Lpt.schedule(inst).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ls", &case.label), inst, |b, inst| {
            b.iter(|| Ls.schedule(inst).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ip", &case.label), inst, |b, inst| {
            let ip = BranchAndBound::with_budget(2_000_000);
            b.iter(|| ip.solve_detailed(inst).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
