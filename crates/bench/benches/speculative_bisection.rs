//! Extension bench: speculative w-ary bisection vs plain binary bisection
//! inside the parallel PTAS. Wider search trades redundant DP probes for
//! fewer sequential rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_core::Scheduler;
use pcmax_parallel::{ParallelPtas, SpeculativePtas};
use pcmax_workloads::{generate, Distribution, Family};
use std::time::Duration;

fn bench_speculative(c: &mut Criterion) {
    let mut group = c.benchmark_group("speculative_bisection");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let inst = generate(Family::new(10, 30, Distribution::U1To100), 1);
    group.bench_with_input(BenchmarkId::new("binary", "m10n30"), &inst, |b, inst| {
        let algo = ParallelPtas::new(0.3).unwrap();
        b.iter(|| algo.schedule(inst).unwrap())
    });
    for width in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("speculative", format!("w{width}")),
            &inst,
            |b, inst| {
                let algo = SpeculativePtas::new(0.3, width).unwrap();
                b.iter(|| algo.schedule(inst).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_speculative);
criterion_main!(benches);
