//! Extension bench: speculative w-ary bisection vs plain binary bisection
//! inside the parallel PTAS. Wider search trades redundant DP probes for
//! fewer sequential rounds.

use pcmax_bench::micro;
use pcmax_core::Scheduler;
use pcmax_engine::{build, SolverParams};
use pcmax_workloads::{generate, Distribution, Family};

fn main() {
    let group = micro::group("speculative_bisection");
    let inst = generate(Family::new(10, 30, Distribution::U1To100), 1);
    let binary = build("par-ptas", &SolverParams::default()).unwrap();
    group.bench("binary", "m10n30", || binary.schedule(&inst).unwrap());
    for width in [2usize, 4, 8] {
        let params = SolverParams {
            width,
            ..SolverParams::default()
        };
        let spec = build("spec-ptas", &params).unwrap();
        group.bench("speculative", format!("w{width}"), || {
            spec.schedule(&inst).unwrap()
        });
    }
}
