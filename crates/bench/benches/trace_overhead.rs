//! Pins the cost of the trace hooks while tracing is *disabled* — the
//! zero-cost-when-off guarantee the wavefront hot path relies on. Every
//! hook starts with one relaxed atomic load; with no session active that
//! load must be the whole story, so a disabled hook has to cost a few
//! nanoseconds at most. The bench fails (exit 1) if any hook exceeds the
//! budget, which would mean someone added work in front of the enabled
//! check.
//!
//! ```text
//! cargo bench -p pcmax-bench --bench trace_overhead
//! ```

use pcmax_bench::timing::time_stable;
use std::hint::black_box;
use std::process::ExitCode;

/// Ops per timed batch (time_stable caps at 1000 batches, so per-op figures
/// come from dividing the batch time).
const OPS: u64 = 1_000_000;

/// Generous per-op ceiling for a disabled hook, in nanoseconds. A relaxed
/// load plus branch is well under 5ns on anything modern; 50ns still passes
/// on noisy shared CI machines while catching accidental work (allocation,
/// TLS registration, time reads) ahead of the enabled check.
const BUDGET_NANOS: f64 = 50.0;

fn per_op_nanos(mut f: impl FnMut(u64)) -> f64 {
    let batch = time_stable(0.2, || {
        for i in 0..OPS {
            f(black_box(i));
        }
    });
    batch / OPS as f64 * 1e9
}

fn main() -> ExitCode {
    assert!(
        !pcmax_trace::enabled(),
        "this bench measures the disabled path; no session may be active"
    );

    let cases: &[(&str, f64)] = &[
        (
            "span_enter",
            per_op_nanos(|i| pcmax_trace::span_enter("level", i)),
        ),
        (
            "span_exit",
            per_op_nanos(|_| pcmax_trace::span_exit("level")),
        ),
        (
            "span guard",
            per_op_nanos(|i| {
                let _g = pcmax_trace::span("level", i);
            }),
        ),
        ("instant", per_op_nanos(|i| pcmax_trace::instant("park", i))),
        (
            "counter",
            per_op_nanos(|i| pcmax_trace::counter("dp-cells", i)),
        ),
    ];

    println!("== trace_overhead (tracing disabled) ==");
    let mut ok = true;
    for (name, nanos) in cases {
        let verdict = if *nanos <= BUDGET_NANOS {
            "ok"
        } else {
            "OVER BUDGET"
        };
        println!("{name:<12} {nanos:>8.2} ns/op   budget {BUDGET_NANOS:.0} ns   {verdict}");
        ok &= *nanos <= BUDGET_NANOS;
    }
    if !ok {
        eprintln!("disabled trace hooks exceed the {BUDGET_NANOS:.0} ns/op budget");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
