//! Ablation: bucketed level iteration vs the paper-literal full-table scan
//! per level (Lines 11-12 of Algorithm 3), and the static round-robin
//! scoped-thread executor. Quantifies the O(sigma * n') scan overhead the
//! paper's formulation carries.

use pcmax_bench::micro;
use pcmax_parallel::{ParallelDp, ScopedDp};
use pcmax_ptas::dp::DpSolver;
use pcmax_ptas::{rounded_problem, DpProblem, EpsilonParams};
use pcmax_workloads::{generate, Distribution, Family};

fn representative_problem() -> DpProblem {
    let inst = generate(Family::new(10, 30, Distribution::U1To100), 1);
    let eps = EpsilonParams::new(0.3).unwrap();
    let target = pcmax_core::lower_bound(&inst);
    rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES).0
}

fn main() {
    let group = micro::group("ablation_levels");
    let problem = representative_problem();
    let bucketed = ParallelDp::default();
    group.bench("bucketed", "m10n30", || bucketed.solve(&problem).unwrap());
    let faithful = ParallelDp::faithful();
    group.bench("faithful", "m10n30", || faithful.solve(&problem).unwrap());
    let scoped = ScopedDp::new(2);
    group.bench("scoped_static", "m10n30", || {
        scoped.solve(&problem).unwrap()
    });
}
