//! Ablation: bucketed level iteration vs the paper-literal full-table scan
//! per level (Lines 11-12 of Algorithm 3), and the static round-robin
//! scoped-thread executor. Quantifies the O(sigma * n') scan overhead the
//! paper's formulation carries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_parallel::{ParallelDp, ScopedDp};
use pcmax_ptas::dp::DpSolver;
use pcmax_ptas::{rounded_problem, DpProblem, EpsilonParams};
use pcmax_workloads::{generate, Distribution, Family};
use std::time::Duration;

fn representative_problem() -> DpProblem {
    let inst = generate(Family::new(10, 30, Distribution::U1To100), 1);
    let eps = EpsilonParams::new(0.3).unwrap();
    let target = pcmax_core::lower_bound(&inst);
    rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES).0
}

fn bench_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_levels");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let problem = representative_problem();
    group.bench_with_input(BenchmarkId::new("bucketed", "m10n30"), &problem, |b, p| {
        let solver = ParallelDp::default();
        b.iter(|| solver.solve(p).unwrap());
    });
    group.bench_with_input(BenchmarkId::new("faithful", "m10n30"), &problem, |b, p| {
        let solver = ParallelDp::faithful();
        b.iter(|| solver.solve(p).unwrap());
    });
    group.bench_with_input(
        BenchmarkId::new("scoped_static", "m10n30"),
        &problem,
        |b, p| {
            let solver = ScopedDp::new(2);
            b.iter(|| solver.solve(p).unwrap());
        },
    );
    group.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
