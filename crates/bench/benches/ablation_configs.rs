//! Ablation: one global configuration set filtered per entry (this
//! implementation) vs regenerating C_v for every entry (Line 17 of
//! Algorithm 3, what the paper's implementation does).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_ptas::dp::DpSolver;
use pcmax_ptas::{rounded_problem, DpProblem, EpsilonParams, IterativeDp, RegenerateConfigsDp};
use pcmax_workloads::{generate, Distribution, Family};
use std::time::Duration;

fn representative_problem() -> DpProblem {
    let inst = generate(Family::new(10, 30, Distribution::U1To100), 1);
    let eps = EpsilonParams::new(0.3).unwrap();
    let target = pcmax_core::lower_bound(&inst);
    rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES).0
}

fn bench_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_configs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let problem = representative_problem();
    group.bench_with_input(
        BenchmarkId::new("global_filtered", "m10n30"),
        &problem,
        |b, p| b.iter(|| IterativeDp.solve(p).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("regenerate_per_entry", "m10n30"),
        &problem,
        |b, p| b.iter(|| RegenerateConfigsDp.solve(p).unwrap()),
    );
    group.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);
