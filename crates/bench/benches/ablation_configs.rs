//! Ablation: one global configuration set filtered per entry (this
//! implementation) vs regenerating C_v for every entry (Line 17 of
//! Algorithm 3, what the paper's implementation does).

use pcmax_bench::micro;
use pcmax_ptas::dp::DpSolver;
use pcmax_ptas::{rounded_problem, DpProblem, EpsilonParams, IterativeDp, RegenerateConfigsDp};
use pcmax_workloads::{generate, Distribution, Family};

fn representative_problem() -> DpProblem {
    let inst = generate(Family::new(10, 30, Distribution::U1To100), 1);
    let eps = EpsilonParams::new(0.3).unwrap();
    let target = pcmax_core::lower_bound(&inst);
    rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES).0
}

fn main() {
    let group = micro::group("ablation_configs");
    let problem = representative_problem();
    group.bench("global_filtered", "m10n30", || {
        IterativeDp.solve(&problem).unwrap()
    });
    group.bench("regenerate_per_entry", "m10n30", || {
        RegenerateConfigsDp.solve(&problem).unwrap()
    });
}
