//! Ablation: the epsilon/time trade-off of the PTAS. The paper fixes
//! eps = 0.3; this sweep shows why (k = ceil(1/eps) size classes blow the
//! DP table up superpolynomially as eps shrinks).

use pcmax_bench::micro;
use pcmax_core::Scheduler;
use pcmax_engine::{build, SolverParams};
use pcmax_workloads::{generate, Distribution, Family};

fn main() {
    let group = micro::group("ablation_epsilon");
    let inst = generate(Family::new(10, 30, Distribution::U1To100), 1);
    for eps in [0.5, 0.34, 0.3, 0.25] {
        let ptas = build("ptas", &SolverParams::with_epsilon(eps)).unwrap();
        group.bench("ptas", format!("eps{eps}"), || {
            ptas.schedule(&inst).unwrap()
        });
    }
}
