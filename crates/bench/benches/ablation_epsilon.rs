//! Ablation: the epsilon/time trade-off of the PTAS. The paper fixes
//! eps = 0.3; this sweep shows why (k = ceil(1/eps) size classes blow the
//! DP table up superpolynomially as eps shrinks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_core::Scheduler;
use pcmax_ptas::Ptas;
use pcmax_workloads::{generate, Distribution, Family};
use std::time::Duration;

fn bench_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_epsilon");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let inst = generate(Family::new(10, 30, Distribution::U1To100), 1);
    for eps in [0.5, 0.34, 0.3, 0.25] {
        group.bench_with_input(
            BenchmarkId::new("ptas", format!("eps{eps}")),
            &inst,
            |b, inst| {
                let ptas = Ptas::new(eps).unwrap();
                b.iter(|| ptas.schedule(inst).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_epsilon);
criterion_main!(benches);
