//! Figure 2 micro-benchmark (m=20, n=100): the computational kernels behind
//! the speedup figure — the sequential PTAS, the real rayon-parallel PTAS
//! and the exact (IP) solver on one representative instance per family.
//!
//! The full figure (averaged series over all processor counts) is produced
//! by `cargo run -p pcmax-bench --release --bin repro -- fig2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_core::Scheduler;
use pcmax_exact::BranchAndBound;
use pcmax_parallel::ParallelPtas;
use pcmax_ptas::Ptas;
use pcmax_workloads::{generate, Distribution, Family};
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_m20_n100");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for dist in Distribution::figure_families() {
        let inst = generate(Family::new(20, 100, dist), 1);
        let label = dist.to_string();
        group.bench_with_input(BenchmarkId::new("ptas_seq", &label), &inst, |b, inst| {
            let ptas = Ptas::new(0.3).unwrap();
            b.iter(|| ptas.schedule(inst).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ptas_par", &label), &inst, |b, inst| {
            let ptas = ParallelPtas::new(0.3).unwrap();
            b.iter(|| ptas.schedule(inst).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ip_exact", &label), &inst, |b, inst| {
            let ip = BranchAndBound::with_budget(2_000_000);
            b.iter(|| ip.solve_detailed(inst).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
