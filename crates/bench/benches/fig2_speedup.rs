//! Figure 2 micro-benchmark (m=20, n=100): the computational kernels behind
//! the speedup figure — every PTAS-family solver in the engine registry plus
//! the exact (IP) solver on one representative instance per family.
//!
//! The full figure (averaged series over all processor counts) is produced
//! by `cargo run -p pcmax-bench --release --bin repro -- fig2`.

use pcmax_bench::micro;
use pcmax_core::{Budget, Scheduler, SolveRequest};
use pcmax_engine::{build, SolverParams};
use pcmax_workloads::{generate, Distribution, Family};

fn main() {
    {
        let group = micro::group("fig2_m20_n100");
        let params = SolverParams::default();
        let ptas = build("ptas", &params).unwrap();
        let pptas = build("par-ptas", &params).unwrap();
        let ip = build("exact", &params).unwrap();
        for dist in Distribution::figure_families() {
            {
                let inst = generate(Family::new(20, 100, dist), 1);
                let label = dist.to_string();
                group.bench("ptas_seq", &label, || ptas.schedule(&inst).unwrap());
                group.bench("ptas_par", &label, || pptas.schedule(&inst).unwrap());
                group.bench("ip_exact", &label, || {
                    let req =
                        SolveRequest::new(&inst).with_budget(Budget::unlimited().nodes(2_000_000));
                    ip.solve(&req).unwrap()
                });
            }
        }
    }
}
