//! Figure 4 micro-benchmark (m=10, n=30): kernels behind the speedup figure.
//! Full figure: `cargo run -p pcmax-bench --release --bin repro -- fig4`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_core::Scheduler;
use pcmax_exact::BranchAndBound;
use pcmax_parallel::ParallelPtas;
use pcmax_ptas::Ptas;
use pcmax_workloads::{generate, Distribution, Family};
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_m10_n30");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for dist in Distribution::figure_families() {
        let inst = generate(Family::new(10, 30, dist), 1);
        let label = dist.to_string();
        group.bench_with_input(BenchmarkId::new("ptas_seq", &label), &inst, |b, inst| {
            let ptas = Ptas::new(0.3).unwrap();
            b.iter(|| ptas.schedule(inst).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ptas_par", &label), &inst, |b, inst| {
            let ptas = ParallelPtas::new(0.3).unwrap();
            b.iter(|| ptas.schedule(inst).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ip_exact", &label), &inst, |b, inst| {
            let ip = BranchAndBound::with_budget(2_000_000);
            b.iter(|| ip.solve_detailed(inst).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
