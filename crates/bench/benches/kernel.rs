//! Micro-benchmark for the batched wavefront **cell kernel**: DP cells per
//! second of the bucketed sweep, isolated from table construction and
//! witness extraction, across three kernel columns —
//!
//! * `scalar` — the pre-batching per-cell kernel ([`CellKernel::Scalar`]),
//! * `lane`   — the strip kernel pinned to the portable fixed-width lane
//!   loops (`simd::force_portable(true)`),
//! * `native` — the strip kernel under the widest ISA the CPU offers
//!   (compile-time intrinsics or the runtime AVX2 trampoline; the JSON
//!   records which via `isa`),
//!
//! each at 1/2/4 worker threads, over a `u100-m*-n*-eps*` grid whose
//! largest case exceeds 10⁶ DP cells — the tracked cases in
//! `BENCH_wavefront.json` (≤1139 cells) are far too small to measure
//! throughput honestly.
//!
//! ```text
//! cargo bench -p pcmax-bench --bench kernel -- [--smoke] [--list] \
//!     [--json FILE] [--check FILE] [--min-secs S]
//! ```
//!
//! * `--list`       — print each case's table size and exit (grid design aid).
//! * `--json FILE`  — write measurements (tracked `BENCH_kernel.json`).
//! * `--check FILE` — regression gate: fail if the single-threaded
//!   native/scalar speedup regressed by more than 25% for any case in both
//!   runs. Like the `wavefront` gate this compares *ratios*, so it is
//!   machine-normalized.
//! * `--smoke`      — only the small fixed case (CI `bench-smoke`).
//!
//! Every timed sweep is first checked bit-identical against the serial
//! generic engine on the same rounded problem.

use pcmax_bench::timing::time_stable;
use pcmax_core::json::{self, Value};
use pcmax_parallel::wavefront::bucketed_sweep_space_with;
use pcmax_parallel::{simd, CellKernel, Chunking};
use pcmax_ptas::dp::DpProblem;
use pcmax_ptas::space::{PcmaxSpace, SerialEngine, SpaceEngine};
use pcmax_ptas::table::DpScratch;
use pcmax_ptas::{rounded_problem, EpsilonParams};
use pcmax_workloads::{generate, Distribution, Family};
use std::process::ExitCode;

/// Worker-thread columns; the last is the PR's acceptance point.
const THREAD_COUNTS: &[usize] = &[1, 2, 4];

/// Regression tolerance on the native/scalar speedup ratio.
const TOLERANCE: f64 = 0.25;

struct Case {
    name: &'static str,
    machines: usize,
    jobs: usize,
    epsilon: f64,
    smoke: bool,
}

/// The paper's U(1,100) workload, scaled from the CI smoke case up to a
/// table of more than 10⁶ cells. σ only grows when `T` stays near the largest
/// job size (small `n/m`) — otherwise every job falls below the `ε·T` long
/// threshold and the table collapses — so the grid scales `m` with `n` and
/// trims ε rather than inflating `n` alone.
const CASES: &[Case] = &[
    Case {
        name: "smoke-u100-m10-n50-eps0.3",
        machines: 10,
        jobs: 50,
        epsilon: 0.3,
        smoke: true,
    },
    Case {
        name: "u100-m20-n100-eps0.3",
        machines: 20,
        jobs: 100,
        epsilon: 0.3,
        smoke: false,
    },
    Case {
        name: "u100-m40-n120-eps0.35",
        machines: 40,
        jobs: 120,
        epsilon: 0.35,
        smoke: false,
    },
    Case {
        name: "u100-m30-n90-eps0.3",
        machines: 30,
        jobs: 90,
        epsilon: 0.3,
        smoke: false,
    },
];

struct Column {
    threads: usize,
    scalar_cps: f64,
    lane_cps: f64,
    native_cps: f64,
}

struct Measurement {
    name: &'static str,
    cells: u64,
    columns: Vec<Column>,
}

impl Measurement {
    /// Native-over-scalar speedup at **one** thread — the machine-normalized
    /// figure the `--check` gate compares. Single-threaded deliberately: at
    /// higher thread counts the barrier and park/wake costs are shared by
    /// both kernels and drown the ratio in scheduler noise, while the pool
    /// itself is already gated by the `wavefront` bench.
    fn speedup(&self) -> f64 {
        let first = self.columns.first().expect("at least one thread count");
        first.native_cps / first.scalar_cps
    }

    fn to_json(&self) -> Value {
        json::object(vec![
            ("case", Value::Str(self.name.to_string())),
            ("cells", Value::UInt(self.cells)),
            (
                "columns",
                Value::Array(
                    self.columns
                        .iter()
                        .map(|c| {
                            json::object(vec![
                                ("threads", Value::UInt(c.threads as u64)),
                                ("scalar_cells_per_sec", Value::Float(c.scalar_cps)),
                                ("lane_cells_per_sec", Value::Float(c.lane_cps)),
                                ("native_cells_per_sec", Value::Float(c.native_cps)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("speedup", Value::Float(self.speedup())),
        ])
    }
}

fn rounded(case: &Case) -> DpProblem {
    let inst = generate(
        Family::new(case.machines, case.jobs, Distribution::U1To100),
        1,
    );
    let eps = EpsilonParams::new(case.epsilon).expect("valid epsilon");
    let target = pcmax_core::lower_bound(&inst);
    rounded_problem(&inst, &eps, target, DpProblem::DEFAULT_MAX_ENTRIES).0
}

fn measure(case: &Case, min_secs: f64) -> Measurement {
    let problem = rounded(case);
    let mut scratch = DpScratch::new();

    // Reference values from the serial generic engine, once.
    let mut reference = problem.build_table().expect("guarded size");
    let ref_configs = problem.configs_with_offsets(&reference);
    SerialEngine.sweep(&mut reference, &PcmaxSpace::new(&ref_configs), &mut scratch);
    let want = reference.values_row_major();
    let cells = (reference.len - 1) as u64;

    let mut table = problem
        .build_level_major_table_in(&mut scratch)
        .expect("guarded size");
    let configs = problem.configs_with_offsets(&table);
    let space = PcmaxSpace::new(&configs);

    // The sweep rewrites every cell, so re-sweeping the same table in place
    // is sound — and it is exactly the kernel-only measurement we want.
    let mut sweep = |threads: usize, kernel: CellKernel| -> f64 {
        table.values[0] = 0;
        bucketed_sweep_space_with(
            &mut table,
            &space,
            threads,
            &mut scratch,
            kernel,
            Chunking::default(),
        );
        assert_eq!(
            table.values_row_major(),
            want,
            "{}: {kernel:?} kernel diverged from the serial engine",
            case.name
        );
        // Best-of-3: the min per-run time filters scheduler noise, which
        // matters for the ratio gate far more than absolute accuracy does.
        let secs = (0..3)
            .map(|_| {
                time_stable(min_secs, || {
                    table.values[0] = 0;
                    bucketed_sweep_space_with(
                        &mut table,
                        &space,
                        threads,
                        &mut scratch,
                        kernel,
                        Chunking::default(),
                    );
                })
            })
            .fold(f64::INFINITY, f64::min);
        cells as f64 / secs
    };

    let mut columns = Vec::new();
    for &threads in THREAD_COUNTS {
        let scalar_cps = sweep(threads, CellKernel::Scalar);
        simd::force_portable(true);
        let lane_cps = sweep(threads, CellKernel::Strip);
        simd::force_portable(false);
        let native_cps = sweep(threads, CellKernel::Strip);
        columns.push(Column {
            threads,
            scalar_cps,
            lane_cps,
            native_cps,
        });
    }

    Measurement {
        name: case.name,
        cells,
        columns,
    }
}

fn check_against(baseline: &Value, current: &[Measurement]) -> Result<(), String> {
    let cases = baseline
        .get("cases")
        .and_then(Value::as_array)
        .ok_or("baseline JSON has no `cases` array")?;
    let mut compared = 0usize;
    for m in current {
        let Some(base) = cases
            .iter()
            .find(|c| c.get("case").and_then(Value::as_str) == Some(m.name))
        else {
            continue;
        };
        let base_speedup = base
            .get("speedup")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("baseline case {} has no `speedup`", m.name))?;
        compared += 1;
        let floor = base_speedup * (1.0 - TOLERANCE);
        println!(
            "check {:<24} baseline x{base_speedup:.2}  current x{:.2}  floor x{floor:.2}",
            m.name,
            m.speedup()
        );
        if m.speedup() < floor {
            return Err(format!(
                "{}: native/scalar speedup regressed to x{:.2} (baseline \
                 x{base_speedup:.2}, floor x{floor:.2})",
                m.name,
                m.speedup()
            ));
        }
    }
    if compared == 0 {
        return Err("no case overlapped with the baseline — gate is vacuous".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut list = false;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut min_secs = 0.3f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--list" => list = true,
            "--json" => json_path = args.next(),
            "--check" => check_path = args.next(),
            "--min-secs" => {
                min_secs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--min-secs needs a number");
            }
            // `cargo bench` forwards its own flags; ignore the rest.
            _ => {}
        }
    }

    if list {
        for case in CASES {
            let problem = rounded(case);
            match problem.build_table() {
                Ok(table) => println!(
                    "{:<24} {:>10} cells   dims {:?}",
                    case.name,
                    table.len - 1,
                    table.dims
                ),
                Err(e) => println!("{:<24} oversize: {e}", case.name),
            }
        }
        return ExitCode::SUCCESS;
    }

    println!("== kernel (isa: {}) ==", simd::kernel_isa());
    let mut results = Vec::new();
    for case in CASES.iter().filter(|c| !smoke || c.smoke) {
        let m = measure(case, min_secs);
        println!("{:<24} {:>10} cells", m.name, m.cells);
        for c in &m.columns {
            println!(
                "  {} threads: scalar {:>12.0}   lane {:>12.0}   native {:>12.0} cells/s",
                c.threads, c.scalar_cps, c.lane_cps, c.native_cps
            );
        }
        println!("  native/scalar speedup at 1 thread: x{:.2}", m.speedup());
        results.push(m);
    }

    if let Some(path) = json_path {
        let doc = json::object(vec![
            ("bench", Value::Str("kernel".to_string())),
            ("isa", Value::Str(simd::kernel_isa().to_string())),
            ("tolerance", Value::Float(TOLERANCE)),
            (
                "cases",
                Value::Array(results.iter().map(Measurement::to_json).collect()),
            ),
        ]);
        std::fs::write(&path, doc.to_string_pretty()).expect("write json");
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = json::parse(&text).expect("baseline parses");
        match check_against(&baseline, &results) {
            Ok(()) => println!("bench-smoke gate: OK (within {:.0}%)", TOLERANCE * 100.0),
            Err(msg) => {
                eprintln!("bench-smoke gate FAILED: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
