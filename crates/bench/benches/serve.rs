//! Load-tests `pcmax-serve` end to end over real TCP and pins the serving
//! contract: every request admitted is answered (zero dropped responses),
//! and the instance-profile cache turns repeat traffic into a measurable
//! throughput win. Two runs of the in-crate load harness share one binary:
//!
//! * **cold** — the instance pool is at least as large as the request
//!   count, so no instance is ever revisited (the only hits left are
//!   cross-instance: distinct instances whose rounded profiles collide,
//!   which is the fingerprint working as designed);
//! * **warm** — a small pool is lapped dozens of times, so nearly every
//!   solve after the first lap is served from the memo.
//!
//! The speedup figure is `warm.throughput / cold.throughput` on the same
//! machine within the same process — the cache is the only variable.
//!
//! ```text
//! cargo bench -p pcmax-bench --bench serve -- [--smoke] \
//!     [--json FILE] [--check FILE]
//! ```
//!
//! * `--smoke`      — 10× fewer requests (the CI `bench-smoke` gate);
//!   structural gates still apply, the speedup floor is waived (too few
//!   laps to amortize noise).
//! * `--json FILE`  — write measurements (tracked `BENCH_serve.json`).
//! * `--check FILE` — gate mode: the baseline must parse and carry both
//!   runs; the pass/fail verdict stays absolute (throughput figures do
//!   not transfer between machines, the zero-drop/speedup contract does).

use pcmax_core::json::{self, Value};
use pcmax_serve::{run_loadtest, LoadReport, LoadtestConfig};
use std::process::ExitCode;

/// Mixed-family requests per run (all 24 paper families in the pool).
const REQUESTS: usize = 1200;

/// Concurrent wire clients.
const CLIENTS: usize = 4;

/// Minimum warm-over-cold throughput ratio in full mode. Cache hits skip
/// entire DP probes, so the real ratio sits well above this; the floor only
/// needs to separate "cache works" from "cache does nothing".
const SPEEDUP_FLOOR: f64 = 1.05;

fn config(requests: usize, per_family: usize) -> LoadtestConfig {
    LoadtestConfig {
        clients: CLIENTS,
        requests,
        per_family,
        seed: 7,
        ..LoadtestConfig::default()
    }
}

fn run(label: &str, cfg: &LoadtestConfig) -> LoadReport {
    let report = run_loadtest(cfg).expect("loadtest run");
    println!(
        "{label:<5} {} req  ok {}  cache-hit {}  p50 {} us  p99 {} us  {:.1} req/s",
        report.requests,
        report.ok,
        report.cache_hit_responses,
        report.p50_micros,
        report.p99_micros,
        report.throughput_rps
    );
    report
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--json" => json_path = args.next(),
            "--check" => check_path = args.next(),
            // `cargo bench` forwards its own flags; ignore the rest.
            _ => {}
        }
    }
    let requests = if smoke { REQUESTS / 10 } else { REQUESTS };

    println!("== serve ==");
    // Cold: pool ≥ requests, so the stride walk never revisits an instance.
    let cold = run("cold", &config(requests, requests.div_ceil(24)));
    // Warm: 48 instances lapped `requests / 48` times.
    let warm = run("warm", &config(requests, 2));
    let speedup = if cold.throughput_rps > 0.0 {
        warm.throughput_rps / cold.throughput_rps
    } else {
        0.0
    };
    println!("cache speedup: x{speedup:.2} (warm over cold)");

    let mut ok = true;
    for (label, r) in [("cold", &cold), ("warm", &warm)] {
        if r.ok != r.requests || r.requests != requests as u64 {
            eprintln!(
                "{label}: dropped responses — {} requests, {} ok, {} errors",
                r.requests, r.ok, r.errors
            );
            ok = false;
        }
        if r.served != requests as u64 {
            eprintln!(
                "{label}: server bye counted {} served for {requests} requests",
                r.served
            );
            ok = false;
        }
        if r.parks != r.wakes {
            eprintln!(
                "{label}: unbalanced pool after shutdown — {} parks, {} wakes",
                r.parks, r.wakes
            );
            ok = false;
        }
    }
    if warm.cache_hit_responses <= (requests / 2) as u64 {
        eprintln!(
            "warm: only {} of {requests} responses were cache hits — the \
             lapped pool must be served mostly from the memo",
            warm.cache_hit_responses
        );
        ok = false;
    }
    if !smoke && speedup < SPEEDUP_FLOOR {
        eprintln!("cache speedup x{speedup:.2} under the x{SPEEDUP_FLOOR:.2} floor");
        ok = false;
    }

    if let Some(path) = json_path {
        let parse = |r: &LoadReport| json::parse(&r.to_json()).expect("report JSON parses");
        let doc = json::object(vec![
            ("bench", Value::Str("serve".to_string())),
            ("requests", Value::UInt(requests as u64)),
            ("clients", Value::UInt(CLIENTS as u64)),
            ("cold", parse(&cold)),
            ("warm", parse(&warm)),
            ("speedup", Value::Float(speedup)),
        ]);
        std::fs::write(&path, doc.to_string_pretty()).expect("write json");
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = json::parse(&text).expect("baseline parses");
        let base_speedup = baseline
            .get("speedup")
            .and_then(Value::as_f64)
            .expect("baseline JSON has a `speedup` figure");
        println!("check speedup: baseline x{base_speedup:.2}  current x{speedup:.2}");
        for run in ["cold", "warm"] {
            assert!(
                baseline.get(run).is_some(),
                "baseline JSON is missing the `{run}` run"
            );
        }
    }

    if !ok {
        eprintln!("serve bench FAILED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
