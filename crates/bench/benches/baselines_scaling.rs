//! Scaling of the classical baselines with instance size: LS and LPT are
//! O(n log n)-ish and MULTIFIT adds a bisection factor, so they stay in
//! microseconds where the PTAS pays for its guarantee in milliseconds.

use pcmax_bench::micro;
use pcmax_core::Scheduler;
use pcmax_engine::{registry, SolverKind, SolverParams};
use pcmax_workloads::{generate, Distribution, Family};

fn main() {
    let group = micro::group("baselines_scaling").min_secs(0.2);
    let params = SolverParams::default();
    for n in [100usize, 1000, 10_000] {
        let inst = generate(Family::new(32, n, Distribution::U1To100), 1);
        for spec in registry()
            .iter()
            .filter(|s| s.kind == SolverKind::Heuristic)
        {
            let solver = spec.build(&params).unwrap();
            group.bench(spec.name, n, || solver.schedule(&inst).unwrap());
        }
    }
}
