//! Scaling of the classical baselines with instance size: LS and LPT are
//! O(n log n)-ish and MULTIFIT adds a bisection factor, so they stay in
//! microseconds where the PTAS pays for its guarantee in milliseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcmax_baselines::{Lpt, Ls, Multifit};
use pcmax_core::Scheduler;
use pcmax_workloads::{generate, Distribution, Family};
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_scaling");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for n in [100usize, 1000, 10_000] {
        let inst = generate(Family::new(32, n, Distribution::U1To100), 1);
        group.bench_with_input(BenchmarkId::new("ls", n), &inst, |b, inst| {
            b.iter(|| Ls.schedule(inst).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lpt", n), &inst, |b, inst| {
            b.iter(|| Lpt.schedule(inst).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("multifit", n), &inst, |b, inst| {
            b.iter(|| Multifit::default().schedule(inst).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
