//! Pins the cost of metric recording — the always-on layer's contract is
//! one relaxed atomic add per event when enabled and a single relaxed
//! load when disabled, so every op must land well inside a 50 ns/event
//! budget even on noisy shared machines. The bench fails (exit 1) if any
//! op exceeds the budget, which would mean someone put work (allocation,
//! registry locking, time reads) on the record path.
//!
//! ```text
//! cargo bench -p pcmax-bench --bench metrics_overhead -- \
//!     [--json FILE] [--check FILE]
//! ```
//!
//! * `--json FILE`  — write measurements (tracked `BENCH_metrics.json`).
//! * `--check FILE` — gate mode: the baseline must parse and overlap the
//!   current op set; the pass/fail verdict itself stays the absolute
//!   budget (nanosecond figures do not transfer between machines, the
//!   contract does).

use pcmax_bench::timing::time_stable;
use pcmax_core::json::{self, Value};
use pcmax_metrics::{family, Counter, Family, Gauge, Histogram};
use std::hint::black_box;
use std::process::ExitCode;

/// Ops per timed batch.
const OPS: u64 = 1_000_000;

/// Per-op ceiling, in nanoseconds — the acceptance budget for one
/// recording call. A sharded relaxed add is single-digit nanoseconds on
/// anything modern; 50 ns still passes on contended CI boxes while
/// catching accidental slow-path work.
const BUDGET_NANOS: f64 = 50.0;

static BENCH_COUNTER: Counter = Counter::new("bench_overhead_total", "overhead bench counter");
static BENCH_GAUGE: Gauge = Gauge::new("bench_overhead_gauge", "overhead bench gauge");
static BENCH_HISTOGRAM: Histogram =
    Histogram::new("bench_overhead_nanos", "overhead bench histogram");
static BENCH_FAMILY: Family<Counter> = family(
    "bench_overhead_family_total",
    "overhead bench family",
    "worker",
);

fn per_op_nanos(mut f: impl FnMut(u64)) -> f64 {
    let batch = time_stable(0.2, || {
        for i in 0..OPS {
            f(black_box(i));
        }
    });
    batch / OPS as f64 * 1e9
}

struct Case {
    op: &'static str,
    enabled: bool,
    nanos: f64,
}

fn measure() -> Vec<Case> {
    let mut cases = Vec::new();
    pcmax_metrics::set_enabled(true);
    // Resolve the family child once, outside the loop — the pattern the
    // alloc-hot lint enforces at the call sites.
    let child = BENCH_FAMILY.with_label("0");
    cases.push(Case {
        op: "counter_inc",
        enabled: true,
        nanos: per_op_nanos(|_| BENCH_COUNTER.inc()),
    });
    cases.push(Case {
        op: "counter_inc_by",
        enabled: true,
        nanos: per_op_nanos(|i| BENCH_COUNTER.inc_by(i & 7)),
    });
    cases.push(Case {
        op: "gauge_set",
        enabled: true,
        nanos: per_op_nanos(|i| BENCH_GAUGE.set(i as f64)),
    });
    cases.push(Case {
        op: "histogram_observe",
        enabled: true,
        nanos: per_op_nanos(|i| BENCH_HISTOGRAM.observe(i)),
    });
    cases.push(Case {
        op: "family_child_inc",
        enabled: true,
        nanos: per_op_nanos(|_| child.inc()),
    });

    pcmax_metrics::set_enabled(false);
    cases.push(Case {
        op: "counter_inc_disabled",
        enabled: false,
        nanos: per_op_nanos(|_| BENCH_COUNTER.inc()),
    });
    cases.push(Case {
        op: "histogram_observe_disabled",
        enabled: false,
        nanos: per_op_nanos(|i| BENCH_HISTOGRAM.observe(i)),
    });
    pcmax_metrics::set_enabled(true);
    cases
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next(),
            "--check" => check_path = args.next(),
            // `cargo bench` forwards its own flags; ignore the rest.
            _ => {}
        }
    }

    println!("== metrics_overhead ==");
    let cases = measure();
    let mut ok = true;
    for c in &cases {
        let verdict = if c.nanos <= BUDGET_NANOS {
            "ok"
        } else {
            "OVER BUDGET"
        };
        println!(
            "{:<28} {:>8.2} ns/op   budget {BUDGET_NANOS:.0} ns   {verdict}",
            c.op, c.nanos
        );
        ok &= c.nanos <= BUDGET_NANOS;
    }

    if let Some(path) = json_path {
        let doc = json::object(vec![
            ("bench", Value::Str("metrics_overhead".to_string())),
            ("budget_nanos", Value::Float(BUDGET_NANOS)),
            (
                "cases",
                Value::Array(
                    cases
                        .iter()
                        .map(|c| {
                            json::object(vec![
                                ("op", Value::Str(c.op.to_string())),
                                ("enabled", Value::Bool(c.enabled)),
                                ("nanos_per_op", Value::Float(c.nanos)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(&path, doc.to_string_pretty()).expect("write json");
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = json::parse(&text).expect("baseline parses");
        let base_cases = baseline
            .get("cases")
            .and_then(Value::as_array)
            .expect("baseline JSON has a `cases` array");
        let mut compared = 0usize;
        for c in &cases {
            let Some(base) = base_cases
                .iter()
                .find(|b| b.get("op").and_then(Value::as_str) == Some(c.op))
            else {
                continue;
            };
            let base_nanos = base
                .get("nanos_per_op")
                .and_then(Value::as_f64)
                .expect("baseline case has `nanos_per_op`");
            compared += 1;
            println!(
                "check {:<28} baseline {base_nanos:>8.2} ns   current {:>8.2} ns",
                c.op, c.nanos
            );
        }
        if compared == 0 {
            eprintln!("metrics gate FAILED: no op overlapped with the baseline");
            return ExitCode::FAILURE;
        }
        println!("metrics gate: {compared} ops compared against {path}");
    }

    if !ok {
        eprintln!("metric recording exceeds the {BUDGET_NANOS:.0} ns/op budget");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
