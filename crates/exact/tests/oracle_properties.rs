//! Property tests for the bin-packing feasibility oracle and the exact
//! solver against a brute-force reference.

use pcmax_core::Instance;
use pcmax_exact::{BranchAndBound, FeasibilityOracle, PackingVerdict};
use proptest::prelude::*;

fn brute_feasible(times: &[u64], m: usize, cap: u64) -> bool {
    fn rec(times: &[u64], loads: &mut Vec<u64>, cap: u64) -> bool {
        match times.split_first() {
            None => true,
            Some((&t, rest)) => {
                for i in 0..loads.len() {
                    if loads[i] + t <= cap {
                        loads[i] += t;
                        if rec(rest, loads, cap) {
                            loads[i] -= t;
                            return true;
                        }
                        loads[i] -= t;
                    }
                    if loads[i] == 0 {
                        break;
                    }
                }
                false
            }
        }
    }
    rec(times, &mut vec![0; m], cap)
}

fn brute_opt(times: &[u64], m: usize) -> u64 {
    if times.is_empty() {
        return 0;
    }
    let lb = times
        .iter()
        .sum::<u64>()
        .div_ceil(m as u64)
        .max(*times.iter().max().unwrap());
    let mut sorted = times.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    (lb..).find(|&cap| brute_feasible(&sorted, m, cap)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn oracle_agrees_with_brute_force(
        times in prop::collection::vec(1u64..=20, 1..=10),
        m in 1usize..=4,
        cap_offset in 0u64..=8,
    ) {
        let inst = Instance::new(times.clone(), m).unwrap();
        let cap = pcmax_core::lower_bound(&inst) + cap_offset;
        let mut oracle = FeasibilityOracle::new(&inst, 10_000_000);
        let got = oracle.feasible(cap);
        let mut sorted = times.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let want = brute_feasible(&sorted, m, cap);
        match (got, want) {
            (PackingVerdict::Feasible(assignment), true) => {
                // Verify packing validity.
                let mut loads = vec![0u64; m];
                let ids = inst.jobs_by_decreasing_time();
                for (p, &bin) in assignment.iter().enumerate() {
                    loads[bin] += inst.time(ids[p]);
                }
                prop_assert!(loads.iter().all(|&w| w <= cap));
            }
            (PackingVerdict::Infeasible, false) => {}
            (got, want) => prop_assert!(false,
                "mismatch: oracle {got:?} vs brute {want} (times={times:?} m={m} cap={cap})"),
        }
    }

    #[test]
    fn solver_finds_the_true_optimum(
        times in prop::collection::vec(1u64..=20, 1..=9),
        m in 1usize..=4,
    ) {
        let inst = Instance::new(times.clone(), m).unwrap();
        let out = BranchAndBound::default().solve_detailed(&inst).unwrap();
        prop_assert!(out.proven);
        prop_assert_eq!(out.best, brute_opt(&times, m), "times={:?} m={}", times, m);
    }

    #[test]
    fn budget_variations_never_change_a_proven_answer(
        times in prop::collection::vec(1u64..=15, 1..=8),
        m in 2usize..=3,
    ) {
        let inst = Instance::new(times, m).unwrap();
        let big = BranchAndBound::default().solve_detailed(&inst).unwrap();
        let small = BranchAndBound::with_budget(100_000).solve_detailed(&inst).unwrap();
        prop_assert!(big.proven);
        if small.proven {
            prop_assert_eq!(small.best, big.best);
        } else {
            prop_assert!(small.best >= big.best);
            prop_assert!(small.lower_bound <= big.best);
        }
    }

    #[test]
    fn incumbent_always_within_the_reported_bounds(
        times in prop::collection::vec(1u64..=500, 1..=30),
        m in 1usize..=8,
    ) {
        let inst = Instance::new(times, m).unwrap();
        let out = BranchAndBound::with_budget(200_000).solve_detailed(&inst).unwrap();
        out.schedule.validate(&inst).unwrap();
        prop_assert_eq!(out.schedule.makespan(&inst), out.best);
        prop_assert!(out.lower_bound <= out.best);
        prop_assert!(out.lower_bound >= pcmax_core::lower_bound(&inst));
    }
}
