//! Combinatorial lower bounds for `P||Cmax` beyond the area/longest-job
//! bound — used to warm-start the search and to strengthen the proven lower
//! bound reported on budget exhaustion.

use pcmax_core::{Instance, Time};

/// The classical pigeonhole family of bounds: among the `(g−1)·m + 1`
/// largest jobs, some machine receives at least `g` of them, so the sum of
/// the `g` smallest jobs in that prefix is a lower bound on the makespan.
/// `g = 1` degenerates to `max tⱼ`; `g = 2` is the familiar
/// "`t_{(m)} + t_{(m+1)}`" bound.
pub fn pigeonhole_bound(inst: &Instance, group: usize) -> Option<Time> {
    let m = inst.machines();
    let g = group;
    if g == 0 {
        return None;
    }
    let prefix_len = (g - 1) * m + 1;
    if inst.jobs() < prefix_len {
        return None;
    }
    let ids = inst.jobs_by_decreasing_time();
    // The g smallest of the prefix are its last g entries.
    Some(
        ids[prefix_len - g..prefix_len]
            .iter()
            .map(|&j| inst.time(j))
            .sum(),
    )
}

/// The strongest available combinatorial lower bound: the max of the
/// area bound, the longest job, and the pigeonhole bounds for all feasible
/// group sizes.
pub fn combinatorial_lower_bound(inst: &Instance) -> Time {
    let mut best = pcmax_core::lower_bound(inst);
    let mut g = 2;
    while let Some(b) = pigeonhole_bound(inst, g) {
        best = best.max(b);
        g += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::Instance;

    #[test]
    fn group_two_bound_on_a_pair_heavy_instance() {
        // m = 2, jobs {10, 9, 8, 1}: the 3 largest are {10,9,8}; two of them
        // share a machine, so C_max >= 9 + 8 = 17. The area bound is only 14.
        let inst = Instance::new(vec![10, 9, 8, 1], 2).unwrap();
        assert_eq!(pigeonhole_bound(&inst, 2), Some(17));
        assert_eq!(combinatorial_lower_bound(&inst), 17);
        assert!(combinatorial_lower_bound(&inst) > pcmax_core::lower_bound(&inst));
    }

    #[test]
    fn group_one_is_the_longest_job() {
        let inst = Instance::new(vec![7, 3, 2], 2).unwrap();
        assert_eq!(pigeonhole_bound(&inst, 1), Some(7));
    }

    #[test]
    fn too_few_jobs_yields_none() {
        let inst = Instance::new(vec![5, 5], 2).unwrap();
        assert_eq!(pigeonhole_bound(&inst, 2), None);
    }

    #[test]
    fn bound_never_exceeds_the_optimum() {
        use crate::BranchAndBound;
        for (times, m) in [
            (vec![10u64, 9, 8, 1], 2usize),
            (vec![5, 5, 4, 4, 3, 3, 3], 3),
            (vec![9, 7, 6, 5, 4, 4, 3, 2, 2, 1], 3),
            (vec![13, 11, 9, 8, 8, 7, 5, 4, 2, 2], 4),
        ] {
            let inst = Instance::new(times.clone(), m).unwrap();
            let out = BranchAndBound::default().solve_detailed(&inst).unwrap();
            assert!(out.proven);
            let lb = combinatorial_lower_bound(&inst);
            assert!(
                lb <= out.best,
                "times={times:?} m={m}: lb {lb} > opt {}",
                out.best
            );
        }
    }

    #[test]
    fn three_group_bound_fires_on_triple_heavy_instances() {
        // m = 2, 5 jobs {6,6,6,6,6}: top 2m+1 = 5 jobs, three share ->
        // C_max >= 18. Area bound = 15.
        let inst = Instance::new(vec![6; 5], 2).unwrap();
        assert_eq!(pigeonhole_bound(&inst, 3), Some(18));
        assert_eq!(combinatorial_lower_bound(&inst), 18);
    }
}
