//! Search over the makespan with the packing oracle — the exact solver.
//!
//! The solver is *anytime*, like a MIP solver with a time limit: it always
//! returns its incumbent schedule together with the best proven lower bound,
//! and a flag saying whether optimality was proven. The search proceeds in
//! phases:
//!
//! 1. probe the combinatorial lower bound `LB` directly (most instances with
//!    many jobs per machine achieve it),
//! 2. bisect on `[LB, LPT]` while probes resolve within their budget slice,
//! 3. if a probe stalls, fall back to *descending* probes from the incumbent
//!    (each success improves the incumbent; the first proven-infeasible
//!    probe closes the gap).

use crate::binpack::{FeasibilityOracle, PackingVerdict};
use crate::bounds::combinatorial_lower_bound;
use crate::improve::local_search;
use pcmax_baselines::Lpt;
use pcmax_core::{
    Instance, Result, Schedule, Scheduler, SolveReport, SolveRequest, SolveStats, Solver, Time,
};
use std::time::Instant;

/// Exact branch-and-bound solver for `P||Cmax` (the "IP" baseline).
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBound {
    /// Total search-node budget across the whole solve (the "time limit").
    pub node_budget: u64,
    /// Budget slice per feasibility probe; a stalled probe triggers the
    /// descending phase rather than burning the whole budget.
    pub probe_budget: u64,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        Self {
            node_budget: 200_000_000,
            probe_budget: 20_000_000,
        }
    }
}

/// Result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactOutput {
    /// The incumbent schedule (optimal iff `proven`).
    pub schedule: Schedule,
    /// Makespan of the incumbent.
    pub best: Time,
    /// Best proven lower bound on the optimum (`= best` iff `proven`).
    pub lower_bound: Time,
    /// Whether `best` was proven optimal.
    pub proven: bool,
    /// Branch-and-bound nodes expanded.
    pub nodes: u64,
    /// Feasibility probes attempted.
    pub probes: usize,
}

impl ExactOutput {
    /// The optimality gap `(best − lower_bound) / lower_bound`.
    pub fn gap(&self) -> f64 {
        if self.lower_bound == 0 {
            return 0.0;
        }
        (self.best - self.lower_bound) as f64 / self.lower_bound as f64
    }
}

impl BranchAndBound {
    /// Solver with an explicit total node budget (probe slices = 1/10th).
    pub fn with_budget(node_budget: u64) -> Self {
        Self {
            node_budget,
            probe_budget: (node_budget / 10).max(1),
        }
    }

    /// Full solve with statistics.
    pub fn solve_detailed(&self, inst: &Instance) -> Result<ExactOutput> {
        // Warm start: LPT polished by move/swap local search; start the
        // bracket at the strongest combinatorial lower bound.
        let warm = local_search(inst, &Lpt.schedule(inst)?)?;
        let mut upper = warm.makespan(inst);
        let mut lower = combinatorial_lower_bound(inst);
        let mut best = warm;
        let mut remaining = self.node_budget;
        let mut nodes = 0u64;
        let mut probes = 0usize;
        let mut stalled = false;

        let probe = |cap: Time, remaining: &mut u64, nodes: &mut u64| -> PackingVerdict {
            let slice = self.probe_budget.min(*remaining);
            let mut oracle = FeasibilityOracle::new(inst, slice);
            let verdict = oracle.feasible(cap);
            *remaining -= oracle.nodes().min(slice);
            *nodes += oracle.nodes();
            verdict
        };

        // Phase 1 + 2: LB-first, then bisection.
        let mut first = true;
        while lower < upper && remaining > 0 {
            let cap = if first { lower } else { (lower + upper) / 2 };
            first = false;
            probes += 1;
            match probe(cap, &mut remaining, &mut nodes) {
                PackingVerdict::Feasible(assignment) => {
                    best = assignment_to_schedule(inst, &assignment)?;
                    upper = best.makespan(inst).min(cap);
                }
                PackingVerdict::Infeasible => lower = cap + 1,
                PackingVerdict::BudgetExhausted => {
                    stalled = true;
                    break;
                }
            }
        }

        // Phase 3: descending incumbent improvement after a stall.
        if stalled {
            while lower < upper && remaining > 0 {
                let cap = upper - 1;
                probes += 1;
                match probe(cap, &mut remaining, &mut nodes) {
                    PackingVerdict::Feasible(assignment) => {
                        best = assignment_to_schedule(inst, &assignment)?;
                        upper = best.makespan(inst).min(cap);
                    }
                    PackingVerdict::Infeasible => {
                        lower = upper; // cap = upper−1 impossible ⇒ upper optimal
                    }
                    PackingVerdict::BudgetExhausted => break,
                }
            }
        }

        Ok(ExactOutput {
            best: best.makespan(inst),
            schedule: best,
            lower_bound: lower.min(upper),
            proven: lower >= upper,
            nodes,
            probes,
        })
    }
}

impl Solver for BranchAndBound {
    fn solver_name(&self) -> &'static str {
        "IP"
    }

    /// Anytime semantics under a budget: a request-level node limit shrinks
    /// the search budget, and the solver still returns its incumbent with
    /// `proven_optimal = false` rather than erroring out.
    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        req.check_cancelled()?;
        let start = Instant::now();
        let solver = match req.budget.node_limit {
            Some(limit) => Self::with_budget(limit.min(self.node_budget).max(1)),
            None => *self,
        };
        let search_span = req.trace_span("search", solver.node_budget);
        let out = solver.solve_detailed(req.instance)?;
        drop(search_span);
        let stats = SolveStats {
            bb_nodes: out.nodes,
            bisection_probes: out.probes as u64,
            wall: start.elapsed(),
            ..SolveStats::default()
        };
        Ok(SolveReport {
            makespan: out.best,
            certified_target: Some(out.lower_bound),
            proven_optimal: out.proven,
            schedule: out.schedule,
            stats,
        })
    }
}

/// Translates the oracle's decreasing-order assignment back to job ids.
fn assignment_to_schedule(inst: &Instance, assignment: &[usize]) -> Result<Schedule> {
    let ids_desc = inst.jobs_by_decreasing_time();
    let mut map = vec![0usize; inst.jobs()];
    for (p, &bin) in assignment.iter().enumerate() {
        map[ids_desc[p]] = bin;
    }
    Schedule::from_assignment(map, inst.machines())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::Instance;

    fn solve(times: Vec<u64>, m: usize) -> ExactOutput {
        BranchAndBound::default()
            .solve_detailed(&Instance::new(times, m).unwrap())
            .unwrap()
    }

    fn opt(times: Vec<u64>, m: usize) -> u64 {
        let out = solve(times, m);
        assert!(out.proven, "expected a proven optimum");
        out.best
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(opt(vec![5], 1), 5);
        assert_eq!(opt(vec![5, 4, 3], 1), 12);
        assert_eq!(opt(vec![5, 4, 3], 3), 5);
        assert_eq!(opt(vec![5, 4, 3], 10), 5);
    }

    #[test]
    fn graham_lpt_worst_case_is_solved_to_optimality() {
        // m = 3: jobs {5,5,4,4,3,3,3}; LPT gives 11, optimum is 9.
        assert_eq!(opt(vec![5, 5, 4, 4, 3, 3, 3], 3), 9);
    }

    #[test]
    fn perfect_partition() {
        assert_eq!(opt(vec![4, 5, 6, 7, 8], 2), 15);
    }

    #[test]
    fn off_by_one_partition() {
        // sum = 31 -> lower bound 16; {8,7} vs {6,5,4,1}: 15/16 -> 16.
        assert_eq!(opt(vec![4, 5, 6, 7, 8, 1], 2), 16);
    }

    #[test]
    fn schedule_matches_reported_optimum() {
        let inst = Instance::new(vec![9, 7, 6, 5, 4, 4, 3, 2, 2, 1], 3).unwrap();
        let out = BranchAndBound::default().solve_detailed(&inst).unwrap();
        out.schedule.validate(&inst).unwrap();
        assert_eq!(out.schedule.makespan(&inst), out.best);
        assert_eq!(out.best, 15); // sum = 43, ceil(43/3) = 15, achievable
        assert!(out.proven);
        assert_eq!(out.gap(), 0.0);
    }

    #[test]
    fn never_below_lower_bound_and_never_above_lpt() {
        use pcmax_baselines::Lpt;
        use pcmax_core::lower_bound;
        for (times, m) in [
            (vec![13u64, 11, 7, 5, 3, 2, 2], 3usize),
            (vec![10, 10, 9, 8, 1, 1, 1, 1], 4),
            (vec![6, 6, 6, 5, 5, 5, 4], 2),
        ] {
            let inst = Instance::new(times, m).unwrap();
            let out = BranchAndBound::default().solve_detailed(&inst).unwrap();
            assert!(out.best >= lower_bound(&inst));
            assert!(out.best <= Lpt.makespan(&inst).unwrap());
            assert!(out.lower_bound <= out.best);
        }
    }

    #[test]
    fn tiny_budget_still_returns_an_incumbent() {
        let inst = Instance::new(vec![9, 8, 7, 7, 6, 5, 5, 4, 3], 3).unwrap();
        let out = BranchAndBound {
            node_budget: 1,
            probe_budget: 1,
        }
        .solve_detailed(&inst)
        .unwrap();
        out.schedule.validate(&inst).unwrap();
        assert!(out.lower_bound <= out.best);
        // With one node the answer is the polished warm start; the true
        // optimum is 18, so the incumbent can be no better.
        assert!(out.best >= 18);
    }

    #[test]
    fn empty_instance() {
        assert_eq!(opt(vec![], 3), 0);
    }

    #[test]
    fn request_node_limit_yields_anytime_incumbent() {
        use pcmax_core::Budget;
        let inst = Instance::new(vec![9, 8, 7, 7, 6, 5, 5, 4, 3], 3).unwrap();
        let req = SolveRequest::new(&inst).with_budget(Budget::unlimited().nodes(1));
        let report = BranchAndBound::default().solve(&req).unwrap();
        report.schedule.validate(&inst).unwrap();
        assert_eq!(report.makespan, report.schedule.makespan(&inst));
        assert!(report.certified_target.unwrap() <= report.makespan);
        // One node cannot prove optimality on this instance.
        assert!(!report.proven_optimal);
        assert!(report.stats.bisection_probes >= 1);
    }

    #[test]
    fn unlimited_request_proves_optimality() {
        let inst = Instance::new(vec![5, 5, 4, 4, 3, 3, 3], 3).unwrap();
        let report = BranchAndBound::default()
            .solve(&SolveRequest::new(&inst))
            .unwrap();
        assert!(report.proven_optimal);
        assert_eq!(report.makespan, 9);
        assert_eq!(report.certified_target, Some(9));
    }

    #[test]
    fn exhaustive_small_against_brute_force() {
        fn brute_opt(times: &[u64], m: usize) -> u64 {
            fn rec(times: &[u64], loads: &mut Vec<u64>, best: &mut u64) {
                match times.split_first() {
                    None => *best = (*best).min(*loads.iter().max().unwrap()),
                    Some((&t, rest)) => {
                        for i in 0..loads.len() {
                            loads[i] += t;
                            if *loads.iter().max().unwrap() < *best {
                                rec(rest, loads, best);
                            }
                            loads[i] -= t;
                        }
                    }
                }
            }
            let mut best = times.iter().sum::<u64>();
            if times.is_empty() {
                return 0;
            }
            rec(times, &mut vec![0; m], &mut best);
            best
        }
        // A spread of pseudo-random small instances.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 12 + 1
        };
        for trial in 0..40 {
            let n = 4 + (trial % 5);
            let m = 2 + (trial % 3);
            let times: Vec<u64> = (0..n).map(|_| next()).collect();
            let got = opt(times.clone(), m);
            let want = brute_opt(&times, m);
            assert_eq!(got, want, "times={times:?} m={m}");
        }
    }
}
