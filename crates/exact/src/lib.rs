//! Exact solver for `P||Cmax` — this workspace's stand-in for the paper's
//! CPLEX "IP" baseline (see DESIGN.md §2 for the substitution rationale).
//!
//! The solver bisects on the makespan `C` inside `[LB, LPT]` and decides each
//! probe with a branch-and-bound *bin-packing feasibility oracle* ("do the
//! jobs fit into `m` bins of capacity `C`?") with classical prunings:
//!
//! * decreasing item order (largest job first),
//! * symmetry breaking over equal bin loads (only the first bin of any load
//!   value is tried),
//! * a free-capacity bound (remaining work must fit in remaining space),
//! * Martello–Toth-style quick infeasibility tests (big-item counting),
//! * perfect-fit dominance (the largest remaining job may always take an
//!   exact-fit bin).
//!
//! The solver is *anytime*, like a MIP solver with a time limit: it always
//! returns its incumbent schedule (LPT polished by [`local_search`], then
//! improved by the search) together with the best proven lower bound
//! ([`combinatorial_lower_bound`] or stronger) and a `proven` flag.

pub mod binpack;
pub mod bounds;
pub mod improve;
pub mod solver;

pub use binpack::{FeasibilityOracle, PackingVerdict};
pub use bounds::{combinatorial_lower_bound, pigeonhole_bound};
pub use improve::local_search;
pub use solver::{BranchAndBound, ExactOutput};
