//! Branch-and-bound bin-packing feasibility: can `n` jobs fit into `m` bins
//! of capacity `C`?

use pcmax_core::{Instance, Time};

/// Answer of one feasibility probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackingVerdict {
    /// A packing exists; `assignment[p]` is the bin of the `p`-th job in
    /// decreasing-time order.
    Feasible(Vec<usize>),
    /// Proven impossible.
    Infeasible,
    /// The node budget ran out before a proof either way.
    BudgetExhausted,
}

/// The reusable oracle: holds the decreasing-order job times and a node
/// budget shared across probes (so a whole bisection has one budget, like a
/// single MIP solve has one time limit).
#[derive(Debug, Clone)]
pub struct FeasibilityOracle {
    /// Job times in non-increasing order.
    times: Vec<Time>,
    /// Original job ids in the same order.
    ids: Vec<usize>,
    /// `times[p..]` suffix sums (`suffix[p] = Σ times[p..]`).
    suffix: Vec<Time>,
    machines: usize,
    /// Remaining search nodes.
    budget: u64,
    /// Nodes expanded so far (for statistics).
    nodes: u64,
}

impl FeasibilityOracle {
    /// Builds an oracle for `inst` with a total node budget.
    pub fn new(inst: &Instance, budget: u64) -> Self {
        let ids = inst.jobs_by_decreasing_time();
        let times: Vec<Time> = ids.iter().map(|&j| inst.time(j)).collect();
        let mut suffix = vec![0; times.len() + 1];
        for p in (0..times.len()).rev() {
            suffix[p] = suffix[p + 1] + times[p];
        }
        Self {
            times,
            ids,
            suffix,
            machines: inst.machines(),
            budget,
            nodes: 0,
        }
    }

    /// Nodes expanded so far.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Original job ids in decreasing-time order (to translate assignments).
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }

    /// Quick Martello–Toth-style infeasibility tests, O(n).
    fn quick_infeasible(&self, cap: Time) -> bool {
        let n = self.times.len();
        if n == 0 {
            return false;
        }
        // Longest job must fit at all.
        if self.times[0] > cap {
            return true;
        }
        // Total work must fit in total capacity.
        if self.suffix[0] > cap * self.machines as Time {
            return true;
        }
        // Jobs strictly larger than C/2 pairwise conflict: each needs its own
        // bin, and jobs of exactly C/2 can share a bin with at most one other
        // such job.
        let big = self.times.iter().filter(|&&t| 2 * t > cap).count();
        if big > self.machines {
            return true;
        }
        // Refinement: bins holding a > C/2 job have < C/2 residual, so jobs
        // of exactly C/2 cannot join them in pairs; count (big + ⌈half/2⌉).
        let half = self.times.iter().filter(|&&t| 2 * t == cap).count();
        if big + half.div_ceil(2) > self.machines {
            return true;
        }
        false
    }

    /// Decides whether the jobs fit into `machines` bins of capacity `cap`.
    pub fn feasible(&mut self, cap: Time) -> PackingVerdict {
        if self.times.is_empty() {
            return PackingVerdict::Feasible(Vec::new());
        }
        if self.quick_infeasible(cap) {
            return PackingVerdict::Infeasible;
        }
        let mut loads = vec![0; self.machines];
        let mut assignment = vec![usize::MAX; self.times.len()];
        match self.dfs(0, cap, &mut loads, &mut assignment, usize::MAX) {
            Some(true) => PackingVerdict::Feasible(assignment),
            Some(false) => PackingVerdict::Infeasible,
            None => PackingVerdict::BudgetExhausted,
        }
    }

    /// DFS over jobs in decreasing order. `prev_bin` is the bin that the
    /// previous job took if it had the same processing time (equal jobs are
    /// interchangeable, so the later one never goes to an earlier bin).
    /// Returns `None` on budget exhaustion.
    fn dfs(
        &mut self,
        p: usize,
        cap: Time,
        loads: &mut [Time],
        assignment: &mut [usize],
        prev_equal_bin: usize,
    ) -> Option<bool> {
        if p == self.times.len() {
            return Some(true);
        }
        if self.budget == 0 {
            return None;
        }
        self.budget -= 1;
        self.nodes += 1;

        // Free-capacity bound with wasted space: a bin whose residual is
        // smaller than the smallest remaining job can never receive another
        // job, so its space does not count.
        // `p < times.len()` here, so the list is non-empty; an empty list
        // would mean every job is already packed.
        let Some(&t_min) = self.times.last() else {
            return Some(true);
        };
        let free: Time = loads.iter().map(|&w| cap - w).filter(|&r| r >= t_min).sum();
        if self.suffix[p] > free {
            return Some(false);
        }

        let t = self.times[p];
        let start = if prev_equal_bin != usize::MAX {
            prev_equal_bin
        } else {
            0
        };

        // Perfect-fit dominance: the largest remaining job may always take a
        // bin it fills exactly.
        if let Some(bin) = (start..self.machines).find(|&i| loads[i] + t == cap) {
            loads[bin] += t;
            assignment[p] = bin;
            let next_equal = self.next_equal_bin(p, bin);
            let r = self.dfs(p + 1, cap, loads, assignment, next_equal);
            loads[bin] -= t;
            if r != Some(false) {
                return r; // success or budget exhaustion propagates
            }
            assignment[p] = usize::MAX;
            return Some(false);
        }

        // Candidate bins: fits, first of each distinct load (equal bins are
        // interchangeable), explored fullest-first (best-fit-decreasing
        // order reaches feasible packings sooner).
        let mut candidates: Vec<usize> = (start..self.machines)
            .filter(|&bin| {
                let w = loads[bin];
                w + t <= cap && !loads[start..bin].contains(&w)
            })
            .collect();
        candidates.sort_by(|&a, &b| loads[b].cmp(&loads[a]));
        for bin in candidates {
            loads[bin] += t;
            assignment[p] = bin;
            let next_equal = self.next_equal_bin(p, bin);
            match self.dfs(p + 1, cap, loads, assignment, next_equal) {
                Some(false) => {}
                other => {
                    loads[bin] -= t;
                    if other == Some(true) {
                        return Some(true);
                    }
                    return None;
                }
            }
            loads[bin] -= t;
            assignment[p] = usize::MAX;
        }
        Some(false)
    }

    /// Bin ordering hint for the next job: if it has the same processing
    /// time as job `p`, it must not take a bin with index `< bin`.
    fn next_equal_bin(&self, p: usize, bin: usize) -> usize {
        if p + 1 < self.times.len() && self.times[p + 1] == self.times[p] {
            bin
        } else {
            usize::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::Instance;

    fn oracle(times: Vec<u64>, m: usize) -> FeasibilityOracle {
        FeasibilityOracle::new(&Instance::new(times, m).unwrap(), 1_000_000)
    }

    fn assert_packing_valid(o: &FeasibilityOracle, cap: u64, verdict: &PackingVerdict) {
        if let PackingVerdict::Feasible(assignment) = verdict {
            let mut loads = vec![0u64; o.machines];
            for (p, &bin) in assignment.iter().enumerate() {
                loads[bin] += o.times[p];
            }
            assert!(loads.iter().all(|&w| w <= cap), "overfull bin: {loads:?}");
        }
    }

    #[test]
    fn trivially_feasible() {
        let mut o = oracle(vec![3, 3, 3], 3);
        let v = o.feasible(3);
        assert!(matches!(v, PackingVerdict::Feasible(_)));
        assert_packing_valid(&o, 3, &v);
    }

    #[test]
    fn infeasible_when_longest_exceeds_cap() {
        let mut o = oracle(vec![10, 1], 2);
        assert_eq!(o.feasible(9), PackingVerdict::Infeasible);
    }

    #[test]
    fn infeasible_by_area() {
        let mut o = oracle(vec![5, 5, 5], 2);
        assert_eq!(o.feasible(6), PackingVerdict::Infeasible);
    }

    #[test]
    fn infeasible_by_big_item_count() {
        // Three jobs > C/2 into two bins.
        let mut o = oracle(vec![6, 6, 6], 2);
        assert_eq!(o.feasible(10), PackingVerdict::Infeasible);
        assert_eq!(o.nodes(), 0, "rejected by quick tests, no search");
    }

    #[test]
    fn perfect_partition_found() {
        // {4,5,6,7,8} into 2 bins of 15: {7,8} and {4,5,6}.
        let mut o = oracle(vec![4, 5, 6, 7, 8], 2);
        let v = o.feasible(15);
        assert!(matches!(v, PackingVerdict::Feasible(_)));
        assert_packing_valid(&o, 15, &v);
    }

    #[test]
    fn tight_infeasible_partition() {
        // Same set into 2 bins of 14 (< 15 = sum/2) is impossible.
        let mut o = oracle(vec![4, 5, 6, 7, 8], 2);
        assert_eq!(o.feasible(14), PackingVerdict::Infeasible);
    }

    #[test]
    fn equal_jobs_symmetry_is_fast() {
        // 30 equal jobs into 10 bins: without the equal-item rule this
        // explodes; with it the search is linear-ish.
        let mut o = oracle(vec![7; 30], 10);
        let v = o.feasible(21);
        assert!(matches!(v, PackingVerdict::Feasible(_)));
        assert!(o.nodes() < 1000, "nodes = {}", o.nodes());
    }

    #[test]
    fn budget_exhaustion_reports() {
        // A hard infeasible instance with a 1-node budget.
        let mut o = FeasibilityOracle::new(
            &Instance::new(vec![9, 8, 7, 7, 6, 5, 5, 4, 3], 3).unwrap(),
            1,
        );
        // Capacity chosen so quick tests do not fire but search is needed:
        // sum = 54, 3 bins of 18 — feasibility requires search.
        let v = o.feasible(18);
        assert!(matches!(
            v,
            PackingVerdict::BudgetExhausted | PackingVerdict::Feasible(_)
        ));
    }

    #[test]
    fn empty_instance_feasible() {
        let mut o = oracle(vec![], 2);
        assert_eq!(o.feasible(1), PackingVerdict::Feasible(vec![]));
    }

    #[test]
    fn exhaustive_against_brute_force() {
        // All multisets of 6 jobs over {1,2,3} on 2 machines, all caps.
        fn brute(times: &[u64], m: usize, cap: u64) -> bool {
            fn rec(times: &[u64], loads: &mut Vec<u64>, cap: u64) -> bool {
                match times.split_first() {
                    None => true,
                    Some((&t, rest)) => {
                        for i in 0..loads.len() {
                            if loads[i] + t <= cap {
                                loads[i] += t;
                                if rec(rest, loads, cap) {
                                    loads[i] -= t;
                                    return true;
                                }
                                loads[i] -= t;
                            }
                        }
                        false
                    }
                }
            }
            rec(times, &mut vec![0; m], cap)
        }
        let vals = [1u64, 2, 3];
        for a in vals {
            for b in vals {
                for c in vals {
                    for d in vals {
                        let times = vec![a, b, c, d, 2, 3];
                        for cap in 3..=8u64 {
                            let mut o = oracle(times.clone(), 2);
                            let got = o.feasible(cap);
                            let want = brute(&times, 2, cap);
                            match (&got, want) {
                                (PackingVerdict::Feasible(_), true) => {
                                    assert_packing_valid(&o, cap, &got)
                                }
                                (PackingVerdict::Infeasible, false) => {}
                                _ => panic!("mismatch on {times:?} cap={cap}: {got:?} vs {want}"),
                            }
                        }
                    }
                }
            }
        }
    }
}
