//! Local-search polishing of schedules: steepest-descent over job moves and
//! pairwise swaps. Used to strengthen the exact solver's warm start and as
//! a cheap standalone improver for any heuristic's output.

use pcmax_core::{Error, Instance, MachineId, Result, Schedule, Time};

/// Runs move/swap descent until a local optimum: each round, take the most
/// loaded machine and try (a) moving one of its jobs to any other machine,
/// (b) swapping one of its jobs with a smaller job elsewhere, accepting the
/// change that most reduces the *pair's* maximum load. Terminates because
/// the sorted load vector strictly lexicographically decreases each round.
///
/// Errors with [`Error::NoMachines`] on a zero-machine schedule (which
/// [`Instance::new`] already rejects upstream).
pub fn local_search(inst: &Instance, schedule: &Schedule) -> Result<Schedule> {
    let mut assignment: Vec<MachineId> = schedule.assignment().to_vec();
    let mut loads = schedule.loads(inst);
    let mut jobs_of: Vec<Vec<usize>> = schedule.jobs_per_machine();

    loop {
        let Some(src) = (0..loads.len()).max_by_key(|&i| loads[i]) else {
            return Err(Error::NoMachines);
        };
        let src_load = loads[src];
        // Best action: (new pair max, description). Lower is better.
        let mut best: Option<(Time, Action)> = None;
        for &j in &jobs_of[src] {
            let tj = inst.time(j);
            for dst in 0..loads.len() {
                if dst == src {
                    continue;
                }
                // Move j -> dst.
                let pair_max = (src_load - tj).max(loads[dst] + tj);
                if pair_max < src_load && best.as_ref().is_none_or(|(b, _)| pair_max < *b) {
                    best = Some((pair_max, Action::Move { j, dst }));
                }
                // Swap j with a smaller job on dst.
                for &o in &jobs_of[dst] {
                    let to = inst.time(o);
                    if to >= tj {
                        continue;
                    }
                    let pair_max = (src_load - tj + to).max(loads[dst] - to + tj);
                    if pair_max < src_load && best.as_ref().is_none_or(|(b, _)| pair_max < *b) {
                        best = Some((pair_max, Action::Swap { j, o, dst }));
                    }
                }
            }
        }
        match best {
            None => break,
            Some((_, Action::Move { j, dst })) => {
                let tj = inst.time(j);
                loads[src] -= tj;
                loads[dst] += tj;
                jobs_of[src].retain(|&x| x != j);
                jobs_of[dst].push(j);
                assignment[j] = dst;
            }
            Some((_, Action::Swap { j, o, dst })) => {
                let (tj, to) = (inst.time(j), inst.time(o));
                loads[src] = loads[src] - tj + to;
                loads[dst] = loads[dst] - to + tj;
                jobs_of[src].retain(|&x| x != j);
                jobs_of[dst].retain(|&x| x != o);
                jobs_of[src].push(o);
                jobs_of[dst].push(j);
                assignment[j] = dst;
                assignment[o] = src;
            }
        }
    }
    Schedule::from_assignment(assignment, inst.machines())
}

enum Action {
    Move { j: usize, dst: MachineId },
    Swap { j: usize, o: usize, dst: MachineId },
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_baselines::{Lpt, Ls};
    use pcmax_core::{Instance, Scheduler};

    #[test]
    fn improves_a_bad_ls_schedule() {
        // LS in given order: {1,1,1,3} on 2 machines -> makespan 4; a move
        // descent reaches the optimum 3.
        let inst = Instance::new(vec![1, 1, 1, 3], 2).unwrap();
        let ls = Ls.schedule(&inst).unwrap();
        assert_eq!(ls.makespan(&inst), 4);
        let polished = local_search(&inst, &ls).unwrap();
        polished.validate(&inst).unwrap();
        assert_eq!(polished.makespan(&inst), 3);
    }

    #[test]
    fn swap_step_fixes_grahams_lpt_instance() {
        // LPT on {5,5,4,4,3,3,3}/3 gives 11; the optimum 9 needs a swap.
        let inst = Instance::new(vec![5, 5, 4, 4, 3, 3, 3], 3).unwrap();
        let lpt = Lpt.schedule(&inst).unwrap();
        assert_eq!(lpt.makespan(&inst), 11);
        let polished = local_search(&inst, &lpt).unwrap();
        assert!(polished.makespan(&inst) <= 10);
    }

    #[test]
    fn never_worsens() {
        for (times, m) in [
            (vec![9u64, 8, 7, 6, 5, 4, 3], 3usize),
            (vec![2, 2, 2, 2], 4),
            (vec![10], 1),
            (vec![7, 7, 7, 7, 7], 2),
        ] {
            let inst = Instance::new(times, m).unwrap();
            for schedule in [Ls.schedule(&inst).unwrap(), Lpt.schedule(&inst).unwrap()] {
                let polished = local_search(&inst, &schedule).unwrap();
                polished.validate(&inst).unwrap();
                assert!(polished.makespan(&inst) <= schedule.makespan(&inst));
            }
        }
    }

    #[test]
    fn already_optimal_is_a_fixed_point() {
        let inst = Instance::new(vec![5, 5, 5, 5], 2).unwrap();
        let s = Lpt.schedule(&inst).unwrap();
        assert_eq!(s.makespan(&inst), 10);
        let polished = local_search(&inst, &s).unwrap();
        assert_eq!(polished.makespan(&inst), 10);
    }

    #[test]
    fn empty_schedule() {
        let inst = Instance::new(vec![], 3).unwrap();
        let s = Ls.schedule(&inst).unwrap();
        assert_eq!(local_search(&inst, &s).unwrap().makespan(&inst), 0);
    }
}
