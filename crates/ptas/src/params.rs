//! The PTAS accuracy parameter.

use pcmax_core::{Error, Result};

/// The `ε` parameterization of the PTAS: `k = ⌈1/ε⌉` controls both the
/// long/short threshold (`T/k`) and the number of rounded size classes
/// (`k²`). The paper runs every experiment with `ε = 0.3`, i.e. `k = 4` and
/// `k² = 16` classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonParams {
    /// Requested relative error (`> 0`).
    pub epsilon: f64,
    /// `k = ⌈1/ε⌉`.
    pub k: u64,
}

impl EpsilonParams {
    /// Validates `ε` and derives `k`. `ε` must be strictly positive; values
    /// `≥ 1` are allowed (they give `k = 1`, a single size class — the
    /// algorithm degenerates gracefully to an LPT-like scheme).
    pub fn new(epsilon: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(Error::InvalidEpsilon {
                reason: "epsilon must be a finite positive number",
            });
        }
        let k = (1.0 / epsilon).ceil() as u64;
        // Guard against pathological tiny epsilons that would overflow k².
        if k > 1 << 12 {
            return Err(Error::InvalidEpsilon {
                reason: "epsilon too small: k = ceil(1/eps) exceeds 4096",
            });
        }
        Ok(Self {
            epsilon,
            k: k.max(1),
        })
    }

    /// Number of rounded size classes, `k²`.
    #[inline]
    pub fn classes(&self) -> usize {
        (self.k * self.k) as usize
    }

    /// The long-job threshold for a target makespan `t`: jobs with
    /// processing time `> t/k` are long. Computed in integer arithmetic:
    /// `t_j > T/k  ⇔  k·t_j > T`.
    #[inline]
    pub fn is_long(&self, job_time: u64, target: u64) -> bool {
        job_time.saturating_mul(self.k) > target
    }

    /// The rounding unit `⌈T/k²⌉` for target makespan `t` (at least 1).
    #[inline]
    pub fn unit(&self, target: u64) -> u64 {
        target.div_ceil(self.k * self.k).max(1)
    }

    /// The proven worst-case ratio of the PTAS, `1 + 1/k ≤ 1 + ε`.
    pub fn guarantee(&self) -> f64 {
        1.0 + 1.0 / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_epsilon_gives_k4() {
        let p = EpsilonParams::new(0.3).unwrap();
        assert_eq!(p.k, 4);
        assert_eq!(p.classes(), 16);
        assert!((p.guarantee() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn boundary_epsilons() {
        assert_eq!(EpsilonParams::new(0.5).unwrap().k, 2);
        assert_eq!(EpsilonParams::new(1.0).unwrap().k, 1);
        assert_eq!(EpsilonParams::new(2.0).unwrap().k, 1);
        assert_eq!(EpsilonParams::new(0.25).unwrap().k, 4);
        assert_eq!(EpsilonParams::new(0.2).unwrap().k, 5);
    }

    #[test]
    fn rejects_bad_epsilon() {
        assert!(EpsilonParams::new(0.0).is_err());
        assert!(EpsilonParams::new(-0.1).is_err());
        assert!(EpsilonParams::new(f64::NAN).is_err());
        assert!(EpsilonParams::new(f64::INFINITY).is_err());
        assert!(EpsilonParams::new(1e-9).is_err(), "k would exceed 4096");
    }

    #[test]
    fn long_threshold_is_strict() {
        let p = EpsilonParams::new(0.3).unwrap(); // k = 4
                                                  // T = 30 -> T/k = 7.5; long iff t > 7.5.
        assert!(!p.is_long(7, 30));
        assert!(p.is_long(8, 30));
        // T = 28 -> threshold exactly 7; t = 7 is NOT long (strict >).
        assert!(!p.is_long(7, 28));
    }

    #[test]
    fn unit_matches_paper_example() {
        let p = EpsilonParams::new(0.3).unwrap();
        assert_eq!(p.unit(30), 2); // ceil(30/16) = 2
        assert_eq!(p.unit(16), 1);
        assert_eq!(p.unit(0), 1, "unit is clamped to at least 1");
    }
}
