//! The dense DP table: a mixed-radix (row-major) indexing of all vectors
//! `v ≤ N`, exactly the layout the paper's array `V` uses (Section III).
//!
//! To keep the table compact the indexing is built over the *active* classes
//! only (classes with `n_i > 0`); inactive classes contribute a radix of 1
//! and are elided. The paper's example `N = (…,2,…,3,…)` therefore maps to
//! dims `[3, 4]` and σ = 12 entries, matching Table I.

use pcmax_core::Time;

/// Value stored for an unreachable/infeasible subproblem.
pub const INFEASIBLE: u16 = u16::MAX;

/// Lane width `W` of the batched strip kernel: 16 `u16` values fill one
/// 256-bit vector register, so the min-reduce over a strip is a single
/// AVX2 `vpminuw` (or two NEON `uminq`) per transition. The portable
/// fallback is a fixed-width array loop the compiler autovectorizes at
/// whatever ISA it targets. Partial strips pad to this width with
/// [`INFEASIBLE`] lanes, which the saturating min/add keep absorbing.
pub const STRIP_LANES: usize = 16;

/// Per-worker scratch of the batched wavefront cell kernel: the mixed-radix
/// walk vector plus the tile-sized staging buffers of the strip kernel. All
/// growth happens in [`prepare`](Self::prepare), *before* the level sweeps
/// start — the inner `next_in_level` walk never touches the allocator
/// (enforced by the `alloc-hot` lint and the pinned `kernel_allocs`
/// counter).
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Current digit vector of the incremental in-level walk (`k` digits).
    pub digits: Vec<u32>,
    /// Transposed per-tile digit block: `block[(s·k + a)·W + i]` is digit
    /// `a` of the `i`-th cell of strip `s` (class-major within a strip, so
    /// the per-transition `fits` check is a lane-parallel compare).
    pub block: Vec<u32>,
    /// Row-major ranks of the tile's cells (copied from the layout's `inv`).
    pub ranks: Vec<u32>,
    /// Per-cell running minima for the tile, padded to whole strips.
    pub best: Vec<u16>,
}

impl KernelScratch {
    /// Grows every buffer to the given walk width / tile capacity. Called
    /// once per sweep so later per-level use is allocation-free.
    pub fn prepare(&mut self, k: usize, tile_cells: usize) {
        debug_assert_eq!(tile_cells % STRIP_LANES, 0, "tiles are whole strips");
        if self.digits.len() < k {
            self.digits.resize(k, 0);
        }
        if self.block.len() < k * tile_cells {
            self.block.resize(k * tile_cells, 0);
        }
        if self.ranks.len() < tile_cells {
            self.ranks.resize(tile_cells, 0);
        }
        if self.best.len() < tile_cells {
            self.best.resize(tile_cells, INFEASIBLE);
        }
    }
}

/// Reusable allocation arena threaded through `DpSolver::solve_in`: the
/// dense value table and the per-level index buckets are allocated once per
/// PTAS run and recycled across bisection probes, so repeated probes stop
/// paying the `O(σ)` allocation cost. The counters surface in
/// `SolveStats`, making the reuse observable from the outside.
#[derive(Debug, Default)]
pub struct DpScratch {
    /// Recycled backing store for [`DpTable::values`].
    values: Vec<u16>,
    /// Recycled per-level index buckets (outer vec and inner vecs both keep
    /// their capacity between probes).
    buckets: Vec<Vec<u32>>,
    /// Recycled backing store for [`LevelLayout::perm`].
    perm: Vec<u32>,
    /// Recycled backing store for [`LevelLayout::inv`].
    inv: Vec<u32>,
    /// Recycled backing store for [`LevelLayout::starts`].
    starts: Vec<u32>,
    /// Recycled per-worker kernel buffers for the zero-allocation wavefront
    /// cell kernel (one [`KernelScratch`] per worker, reused across levels
    /// *and* probes).
    kernels: Vec<KernelScratch>,
    /// Kernel buffers currently handed out by
    /// [`take_kernel_bufs`](Self::take_kernel_bufs) and not yet returned.
    /// The next `take` asserts this is zero: a sweep that lost its buffers
    /// (e.g. a panic unwound past the return) must fail loudly instead of
    /// silently re-allocating on the next probe.
    kernels_outstanding: usize,
    /// Table builds that had to grow the backing allocation.
    pub tables_allocated: u64,
    /// Table builds served entirely from recycled capacity.
    pub tables_reused: u64,
    /// Total DP entries initialized across all builds using this scratch.
    pub entries_touched: u64,
    /// Anti-diagonal levels swept by the parallel executors.
    pub levels_swept: u64,
    /// DP cells computed by the parallel executors (σ − 1 per sweep).
    pub cells_computed: u64,
    /// Worker park events (condvar waits) in the persistent pool.
    pub pool_parks: u64,
    /// Worker wake events (condvar wait returns) in the persistent pool.
    pub pool_wakes: u64,
    /// Per-worker kernel scratch buffers that had to be freshly created —
    /// the wavefront cell kernel performs no other heap allocation, so this
    /// staying flat across levels and probes *is* the zero-allocation claim.
    pub kernel_allocs: u64,
}

impl DpScratch {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grows the value store to hold `entries` entries. Counts as one
    /// allocation if it actually grows — the PTAS driver reserves the
    /// largest table of the bracket up front so every probe then reuses.
    pub fn reserve(&mut self, entries: usize) {
        if self.values.capacity() < entries {
            self.values.reserve(entries - self.values.len());
            self.tables_allocated += 1;
        }
    }

    /// Returns a finished table's backing store (values and, for level-major
    /// tables, the permutation arrays) for the next probe.
    pub fn recycle(&mut self, table: DpTable) {
        if table.values.capacity() > self.values.capacity() {
            self.values = table.values;
        }
        if let Some(layout) = table.layout {
            self.perm = layout.perm;
            self.inv = layout.inv;
            self.starts = layout.starts;
        }
    }

    /// Hands out `n` per-worker kernel buffers for the wavefront cell
    /// kernel, reusing recycled ones and counting every fresh creation in
    /// [`kernel_allocs`](Self::kernel_allocs). Give them back with
    /// [`return_kernel_bufs`](Self::return_kernel_bufs).
    ///
    /// Asserts the previous hand-out was fully returned: the wavefront
    /// executors recover their buffers even when a kernel panics (the pool
    /// winds down, hands the worker states back, and only then re-raises),
    /// so an unbalanced round-trip is a leak bug, not a recoverable state.
    pub fn take_kernel_bufs(&mut self, n: usize) -> Vec<KernelScratch> {
        assert_eq!(
            self.kernels_outstanding, 0,
            "a previous sweep leaked its kernel buffers ({} outstanding)",
            self.kernels_outstanding
        );
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.kernels.pop() {
                Some(buf) => out.push(buf),
                None => {
                    self.kernel_allocs += 1;
                    pcmax_trace::instant("dp-kernel-alloc", self.kernel_allocs);
                    out.push(KernelScratch::default());
                }
            }
        }
        self.kernels_outstanding = n;
        out
    }

    /// Returns kernel buffers for reuse by the next sweep.
    pub fn return_kernel_bufs(&mut self, bufs: impl IntoIterator<Item = KernelScratch>) {
        for buf in bufs {
            self.kernels.push(buf);
            self.kernels_outstanding = self.kernels_outstanding.saturating_sub(1);
        }
    }

    /// Hands out the recycled level-bucket storage (give it back with
    /// [`return_buckets`](Self::return_buckets)).
    pub fn take_buckets(&mut self) -> Vec<Vec<u32>> {
        std::mem::take(&mut self.buckets)
    }

    /// Returns bucket storage for reuse by the next probe.
    pub fn return_buckets(&mut self, buckets: Vec<Vec<u32>>) {
        self.buckets = buckets;
    }

    /// Takes a value buffer of exactly `len` entries, all [`INFEASIBLE`],
    /// reusing recycled capacity when possible.
    fn take_values(&mut self, len: usize) -> Vec<u16> {
        let mut values = std::mem::take(&mut self.values);
        if values.capacity() >= len {
            self.tables_reused += 1;
            pcmax_trace::instant("dp-table-reuse", len as u64);
        } else {
            self.tables_allocated += 1;
            pcmax_trace::instant("dp-table-alloc", len as u64);
        }
        values.clear();
        values.resize(len, INFEASIBLE);
        self.entries_touched += len as u64;
        values
    }
}

/// The level-major permutation of a table: a bijection between row-major
/// ranks and storage positions that lays every anti-diagonal level out as
/// one contiguous slice (level 0 first, then level 1, …). Within a level,
/// entries keep ascending row-major order, so the wavefront's per-level
/// writes are a partition of `starts[l]..starts[l+1]` and all of its reads
/// land strictly below `starts[l]` — the disjoint-write argument becomes a
/// property of slice boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelLayout {
    /// `perm[rank] = position`: where row-major rank `rank` is stored.
    perm: Vec<u32>,
    /// `inv[position] = rank`: the row-major rank stored at `position`.
    inv: Vec<u32>,
    /// `starts[l]..starts[l + 1]` is level `l`'s slice; `levels + 1` entries.
    starts: Vec<u32>,
}

impl LevelLayout {
    /// The row-major-rank → storage-position permutation.
    #[inline]
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// The storage-position → row-major-rank inverse permutation.
    #[inline]
    pub fn inv(&self) -> &[u32] {
        &self.inv
    }

    /// Level slice boundaries (`levels + 1` entries, `starts[0] = 0`).
    #[inline]
    pub fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// Storage position of row-major rank `rank`.
    #[inline]
    pub fn position_of(&self, rank: usize) -> usize {
        self.perm[rank] as usize
    }

    /// The contiguous storage span of level `l`.
    #[inline]
    pub fn level_span(&self, l: u32) -> std::ops::Range<usize> {
        let l = l as usize;
        self.starts[l] as usize..self.starts[l + 1] as usize
    }
}

/// Mixed-radix index space over the active classes of a rounded vector `N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpTable {
    /// 0-based indices (into the full `k²`-class vector) of active classes.
    pub active: Vec<usize>,
    /// `dims[a] = n_active[a] + 1` — radix per active class.
    pub dims: Vec<u32>,
    /// Row-major strides: `index(v) = Σ v_a · strides[a]`.
    pub strides: Vec<usize>,
    /// Total number of entries `σ = Π dims`.
    pub len: usize,
    /// Rounded size of each active class (`(class+1)·unit`).
    pub sizes: Vec<Time>,
    /// Per-entry `OPT` values (`INFEASIBLE` = not computable). Stored in
    /// row-major order when `layout` is `None`, in level-major order (see
    /// [`LevelLayout`]) otherwise; [`value_at`](Self::value_at) reads
    /// through either layout by row-major rank.
    pub values: Vec<u16>,
    /// The level-major permutation, if this table stores `values` with each
    /// anti-diagonal level contiguous.
    pub layout: Option<LevelLayout>,
}

impl DpTable {
    /// Builds the (zero-initialized) table for class counts `counts` with
    /// rounding unit `unit`. Returns `None` if σ would exceed `max_entries`
    /// (a guard against pathological ε/instance combinations).
    pub fn new(counts: &[u32], unit: Time, max_entries: usize) -> Option<Self> {
        let (active, dims, strides, len, sizes) = Self::layout(counts, unit, max_entries)?;
        Some(Self {
            active,
            dims,
            strides,
            len,
            sizes,
            values: vec![INFEASIBLE; len],
            layout: None,
        })
    }

    /// Like [`new`](Self::new), but the value store comes from (and its
    /// allocation is accounted to) the reusable `scratch` arena.
    pub fn new_in(
        counts: &[u32],
        unit: Time,
        max_entries: usize,
        scratch: &mut DpScratch,
    ) -> Option<Self> {
        let (active, dims, strides, len, sizes) = Self::layout(counts, unit, max_entries)?;
        Some(Self {
            active,
            dims,
            strides,
            len,
            sizes,
            values: scratch.take_values(len),
            layout: None,
        })
    }

    /// Like [`new`](Self::new), but stores `values` level-major: each
    /// anti-diagonal level occupies one contiguous slice (see
    /// [`LevelLayout`]). Used by the wavefront executors so the per-level
    /// scatter is a parallel in-place write over disjoint sub-slices.
    pub fn new_level_major(counts: &[u32], unit: Time, max_entries: usize) -> Option<Self> {
        let mut scratch = DpScratch::new();
        Self::new_level_major_in(counts, unit, max_entries, &mut scratch)
    }

    /// Like [`new_level_major`](Self::new_level_major), but the value store
    /// and the permutation arrays come from the reusable `scratch` arena.
    pub fn new_level_major_in(
        counts: &[u32],
        unit: Time,
        max_entries: usize,
        scratch: &mut DpScratch,
    ) -> Option<Self> {
        let mut table = Self::new_in(counts, unit, max_entries, scratch)?;
        table.layout = Some(table.build_level_layout(scratch));
        Some(table)
    }

    /// Builds the level-major permutation by counting sort over digit sums:
    /// two incremental mixed-radix passes, O(σ) time, recycled storage.
    fn build_level_layout(&self, scratch: &mut DpScratch) -> LevelLayout {
        // Same representable-range guard as `fill_level_buckets`: σ is capped
        // by the caller-chosen `max_entries`, so re-assert u32 before the
        // narrowing stores below.
        assert!(
            u32::try_from(self.len).is_ok(),
            "table too large for u32 level-major permutation ({} entries)",
            self.len
        );
        let levels = self.levels() as usize;
        let mut perm = std::mem::take(&mut scratch.perm);
        let mut inv = std::mem::take(&mut scratch.inv);
        let mut starts = std::mem::take(&mut scratch.starts);
        perm.clear();
        perm.resize(self.len, 0);
        inv.clear();
        inv.resize(self.len, 0);
        starts.clear();
        starts.resize(levels + 1, 0);

        // Pass 1: histogram of level sizes (shifted by one for the prefix
        // sum), via the same incremental counter as `fill_level_buckets`.
        let mut v = vec![0u32; self.dims.len()];
        let mut sum = 0u32;
        for _ in 0..self.len {
            starts[sum as usize + 1] += 1;
            increment_with_sum(&mut v, &self.dims, &mut sum);
        }
        for l in 0..levels {
            starts[l + 1] += starts[l];
        }

        // Pass 2: place each rank at its level's cursor. Within a level the
        // scan order (ascending rank) is preserved, so level slices stay in
        // ascending row-major order — the invariant the incremental in-level
        // decode of the cell kernel relies on.
        let mut cursor: Vec<u32> = starts[..levels].to_vec();
        v.iter_mut().for_each(|d| *d = 0);
        sum = 0;
        for (rank, slot) in perm.iter_mut().enumerate() {
            let pos = cursor[sum as usize];
            cursor[sum as usize] += 1;
            // audit:allow(cast): rank < self.len, asserted to fit u32 above.
            inv[pos as usize] = rank as u32;
            *slot = pos;
            increment_with_sum(&mut v, &self.dims, &mut sum);
        }
        LevelLayout { perm, inv, starts }
    }

    /// Number of entries σ the table for `counts` would need, without
    /// building it (`None` if over `max_entries`). Used to pre-size the
    /// scratch arena for the largest table of a bisection bracket.
    pub fn entries_needed(counts: &[u32], unit: Time, max_entries: usize) -> Option<usize> {
        Self::layout(counts, unit, max_entries).map(|(_, _, _, len, _)| len)
    }

    /// Computes the active classes, radices, strides, σ and class sizes.
    #[allow(clippy::type_complexity)]
    fn layout(
        counts: &[u32],
        unit: Time,
        max_entries: usize,
    ) -> Option<(Vec<usize>, Vec<u32>, Vec<usize>, usize, Vec<Time>)> {
        let mut active = Vec::new();
        let mut dims = Vec::new();
        let mut sizes = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                active.push(i);
                dims.push(c + 1);
                sizes.push((i as Time + 1) * unit);
            }
        }
        // Row-major: last dimension has stride 1.
        let mut strides = vec![0usize; dims.len()];
        let mut len = 1usize;
        for a in (0..dims.len()).rev() {
            strides[a] = len;
            len = len.checked_mul(dims[a] as usize)?;
            if len > max_entries {
                return None;
            }
        }
        Some((active, dims, strides, len, sizes))
    }

    /// Index of a vector over active classes.
    #[inline]
    pub fn index(&self, v: &[u32]) -> usize {
        debug_assert_eq!(v.len(), self.dims.len());
        v.iter()
            .zip(&self.strides)
            .map(|(&d, &s)| d as usize * s)
            .sum()
    }

    /// Decodes index `idx` into a vector over active classes.
    pub fn decode(&self, mut idx: usize) -> Vec<u32> {
        let mut v = vec![0u32; self.dims.len()];
        for (slot, &stride) in v.iter_mut().zip(&self.strides) {
            // audit:allow(cast): idx/stride < dims[a] and every radix is a
            // u32 (`counts[i] + 1`), so the quotient always fits.
            *slot = (idx / stride) as u32;
            idx %= stride;
        }
        v
    }

    /// The anti-diagonal level of index `idx`: the digit sum of its vector.
    pub fn level_of(&self, idx: usize) -> u32 {
        self.decode(idx).iter().sum()
    }

    /// Number of anti-diagonal levels, `n' + 1` where `n'` is the number of
    /// long jobs (sum of all digits of the last entry).
    pub fn levels(&self) -> u32 {
        self.dims.iter().map(|&d| d - 1).sum::<u32>() + 1
    }

    /// Index of the last entry (the full vector `N`).
    #[inline]
    pub fn last_index(&self) -> usize {
        self.len - 1
    }

    /// Storage position of row-major rank `rank` under the current layout
    /// (identity for row-major tables).
    #[inline]
    pub fn position_of(&self, rank: usize) -> usize {
        match &self.layout {
            Some(layout) => layout.position_of(rank),
            None => rank,
        }
    }

    /// Reads the value of row-major rank `rank`, translating through the
    /// level-major permutation when present. Witness extraction and the
    /// solve epilogue go through this so they are layout-agnostic.
    #[inline]
    pub fn value_at(&self, rank: usize) -> u16 {
        self.values[self.position_of(rank)]
    }

    /// The values in row-major order regardless of storage layout — the
    /// canonical form for bit-identical comparisons against `IterativeDp`.
    pub fn values_row_major(&self) -> Vec<u16> {
        match &self.layout {
            Some(layout) => layout.inv.iter().enumerate().fold(
                vec![INFEASIBLE; self.len],
                |mut out, (pos, &rank)| {
                    out[rank as usize] = self.values[pos];
                    out
                },
            ),
            None => self.values.clone(),
        }
    }

    /// The precomputed flat offset of a full-width config (length `k²`)
    /// restricted to active classes, together with its active-class
    /// projection. Returns `None` if the config uses an inactive class
    /// (it can never be ≤ any table vector then).
    pub fn project_config(&self, config: &[u32]) -> Option<(Vec<u32>, usize)> {
        let mut projected = vec![0u32; self.active.len()];
        for (a, &class) in self.active.iter().enumerate() {
            projected[a] = config[class];
        }
        // Any count on an inactive class disqualifies the config.
        let total_active: u64 = projected.iter().map(|&s| s as u64).sum();
        let total: u64 = config.iter().map(|&s| s as u64).sum();
        if total_active != total {
            return None;
        }
        let offset = self.index(&projected);
        Some((projected, offset))
    }

    /// Expands a vector over active classes back to full `k²` width.
    pub fn expand(&self, v: &[u32], classes: usize) -> Vec<u32> {
        let mut full = vec![0u32; classes];
        for (a, &class) in self.active.iter().enumerate() {
            full[class] = v[a];
        }
        full
    }

    /// Buckets all indices by anti-diagonal level. `buckets[l]` lists the
    /// table indices whose digit sum is `l`, in increasing index order.
    pub fn level_buckets(&self) -> Vec<Vec<u32>> {
        let mut buckets = Vec::new();
        self.fill_level_buckets(&mut buckets);
        buckets
    }

    /// Like [`level_buckets`](Self::level_buckets), but writing into
    /// `buckets`, reusing the outer and inner allocations — the form the
    /// wavefront executors use together with [`DpScratch`].
    pub fn fill_level_buckets(&self, buckets: &mut Vec<Vec<u32>>) {
        // Buckets store indices as u32 to halve their footprint; σ is capped
        // by `max_entries` at build time, but that cap is caller-chosen, so
        // re-assert the representable range before narrowing below.
        assert!(
            u32::try_from(self.len).is_ok(),
            "table too large for u32 level buckets ({} entries)",
            self.len
        );
        let levels = self.levels() as usize;
        for b in buckets.iter_mut() {
            b.clear();
        }
        buckets.resize_with(levels, Vec::new);
        // Incremental mixed-radix counter with running digit sum: O(σ).
        let mut v = vec![0u32; self.dims.len()];
        let mut sum = 0u32;
        for idx in 0..self.len {
            // audit:allow(cast): idx < self.len, asserted to fit u32 above.
            buckets[sum as usize].push(idx as u32);
            increment_with_sum(&mut v, &self.dims, &mut sum);
        }
    }
}

/// Advances a mixed-radix counter one step (row-major: last digit fastest),
/// keeping `sum` equal to the digit sum. Wraps to all-zeros after the last
/// vector, like the counter inside `fill_level_buckets`.
#[inline]
fn increment_with_sum(v: &mut [u32], dims: &[u32], sum: &mut u32) {
    for a in (0..dims.len()).rev() {
        if v[a] + 1 < dims[a] {
            v[a] += 1;
            *sum += 1;
            return;
        }
        *sum -= v[a];
        v[a] = 0;
    }
}

/// Decodes row-major rank `idx` into `out` (cleared and refilled) — the
/// allocation-free form of [`DpTable::decode`] used by the wavefront cell
/// kernel to seed its per-level incremental walk.
#[inline]
pub fn decode_into(mut idx: usize, strides: &[usize], out: &mut Vec<u32>) {
    out.clear();
    for &stride in strides {
        // audit:allow(cast): idx/stride < dims[a] and every radix is a u32
        // (`counts[i] + 1`), so the quotient always fits.
        out.push((idx / stride) as u32);
        idx %= stride;
    }
}

/// Advances `v` to the lexicographically next vector with the *same* digit
/// sum (bounded composition successor). Returns `false` when `v` was the
/// last vector of its level. Ascending lex order over a level equals
/// ascending row-major rank, so walking a level slice with this is exactly
/// the bucket order of [`DpTable::level_buckets`] — without materializing
/// the bucket or decoding each cell from scratch.
pub fn next_in_level(v: &mut [u32], dims: &[u32]) -> bool {
    let k = v.len();
    if k < 2 {
        return false;
    }
    // Suffix digit sum to the right of the pivot candidate.
    let mut suffix: u32 = 0;
    for i in (0..k - 1).rev() {
        suffix += v[i + 1];
        if suffix >= 1 && v[i] + 1 < dims[i] {
            // Bump the pivot, then right-pack the remaining suffix sum so
            // the suffix is lexicographically smallest.
            v[i] += 1;
            let mut rest = suffix - 1;
            for j in (i + 1..k).rev() {
                let d = rest.min(dims[j] - 1);
                v[j] = d;
                rest -= d;
            }
            debug_assert_eq!(rest, 0, "level sum not representable in suffix radices");
            return true;
        }
    }
    false
}

/// Batched form of the in-level walk: records `width` consecutive
/// same-level vectors starting at the *current* value of `digits` into
/// `block` class-major (`block[a * STRIP_LANES + i]` = digit `a` of the
/// `i`-th recorded cell), advancing `digits` by `width − 1` successor steps.
/// Lanes `width..STRIP_LANES` keep whatever `block` held — callers mask
/// partial strips, they never read the padding as digits.
///
/// Returns `false` if the level ran out before `width` cells were recorded
/// (a caller bug: strips must not straddle a level boundary).
#[inline]
pub fn strip_digits(digits: &mut [u32], dims: &[u32], block: &mut [u32], width: usize) -> bool {
    debug_assert!((1..=STRIP_LANES).contains(&width));
    debug_assert!(block.len() >= digits.len() * STRIP_LANES);
    for i in 0..width {
        for (a, &d) in digits.iter().enumerate() {
            block[a * STRIP_LANES + i] = d;
        }
        if i + 1 < width && !next_in_level(digits, dims) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table I: N = (2, 3) -> 12 entries in row-major order.
    fn paper_table() -> DpTable {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        DpTable::new(&counts, 2, 1 << 20).unwrap()
    }

    #[test]
    fn active_compaction() {
        let t = paper_table();
        assert_eq!(t.active, vec![2, 4]);
        assert_eq!(t.dims, vec![3, 4]);
        assert_eq!(t.len, 12);
        assert_eq!(t.sizes, vec![6, 10]);
    }

    #[test]
    fn row_major_order_matches_paper_array_v() {
        let t = paper_table();
        // V = (0,0),(0,1),(0,2),(0,3),(1,0),...,(2,3)
        assert_eq!(t.decode(0), vec![0, 0]);
        assert_eq!(t.decode(3), vec![0, 3]);
        assert_eq!(t.decode(4), vec![1, 0]);
        assert_eq!(t.decode(11), vec![2, 3]);
        for idx in 0..t.len {
            assert_eq!(t.index(&t.decode(idx)), idx);
        }
    }

    #[test]
    fn levels_partition_all_entries() {
        let t = paper_table();
        assert_eq!(t.levels(), 6); // n' = 5 long jobs -> levels 0..=5
        let buckets = t.level_buckets();
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), t.len);
        // Level 2 holds OPT(2,0), OPT(1,1), OPT(0,2) — the paper's example.
        let lvl2: Vec<Vec<u32>> = buckets[2].iter().map(|&i| t.decode(i as usize)).collect();
        assert_eq!(lvl2, vec![vec![0, 2], vec![1, 1], vec![2, 0]]);
        // Every bucket member's digit sum equals its level.
        for (l, bucket) in buckets.iter().enumerate() {
            for &idx in bucket {
                assert_eq!(t.level_of(idx as usize), l as u32);
            }
        }
    }

    #[test]
    fn size_guard_rejects_huge_tables() {
        let counts = vec![1000u32; 8];
        assert!(DpTable::new(&counts, 1, 1 << 20).is_none());
    }

    #[test]
    fn empty_vector_table_has_one_entry() {
        let t = DpTable::new(&[0, 0], 1, 1 << 20).unwrap();
        assert_eq!(t.len, 1);
        assert_eq!(t.levels(), 1);
        assert_eq!(t.last_index(), 0);
    }

    #[test]
    fn project_and_expand_are_inverse_on_active_classes() {
        let t = paper_table();
        let mut config = vec![0u32; 16];
        config[2] = 1;
        config[4] = 2;
        let (projected, offset) = t.project_config(&config).unwrap();
        assert_eq!(projected, vec![1, 2]);
        assert_eq!(offset, t.index(&[1, 2]));
        assert_eq!(t.expand(&projected, 16), config);
    }

    #[test]
    fn project_rejects_inactive_class_use() {
        let t = paper_table();
        let mut config = vec![0u32; 16];
        config[0] = 1; // class 1 is inactive
        assert!(t.project_config(&config).is_none());
    }

    #[test]
    fn scratch_reuses_capacity_across_builds() {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        let mut scratch = DpScratch::new();
        let t1 = DpTable::new_in(&counts, 2, 1 << 20, &mut scratch).unwrap();
        assert_eq!((scratch.tables_allocated, scratch.tables_reused), (1, 0));
        scratch.recycle(t1);
        let t2 = DpTable::new_in(&counts, 2, 1 << 20, &mut scratch).unwrap();
        assert_eq!((scratch.tables_allocated, scratch.tables_reused), (1, 1));
        assert!(t2.values.iter().all(|&v| v == INFEASIBLE));
        assert_eq!(scratch.entries_touched, 24);
    }

    #[test]
    fn scratch_reserve_makes_first_build_a_reuse() {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        let needed = DpTable::entries_needed(&counts, 2, 1 << 20).unwrap();
        assert_eq!(needed, 12);
        let mut scratch = DpScratch::new();
        scratch.reserve(needed);
        assert_eq!(scratch.tables_allocated, 1);
        let _t = DpTable::new_in(&counts, 2, 1 << 20, &mut scratch).unwrap();
        assert_eq!((scratch.tables_allocated, scratch.tables_reused), (1, 1));
    }

    #[test]
    fn level_layout_is_a_level_sorted_bijection() {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        let t = DpTable::new_level_major(&counts, 2, 1 << 20).unwrap();
        let layout = t.layout.as_ref().unwrap();
        // The paper's table: level sizes 1,2,3,3,2,1 -> prefix starts.
        assert_eq!(layout.starts(), &[0, 1, 3, 6, 9, 11, 12]);
        // Bijection: perm ∘ inv = id and inv ∘ perm = id.
        for rank in 0..t.len {
            assert_eq!(layout.inv()[layout.perm()[rank] as usize] as usize, rank);
        }
        // Positions within a level hold ascending ranks of exactly that level.
        for l in 0..t.levels() {
            let span = layout.level_span(l);
            let ranks: Vec<u32> = layout.inv()[span].to_vec();
            assert!(ranks.windows(2).all(|w| w[0] < w[1]));
            for &rank in &ranks {
                assert_eq!(t.level_of(rank as usize), l);
            }
        }
        // Level slices agree with the bucket enumeration.
        let buckets = t.level_buckets();
        for (l, bucket) in buckets.iter().enumerate() {
            let span = layout.level_span(l as u32);
            assert_eq!(&layout.inv()[span], bucket.as_slice());
        }
    }

    #[test]
    fn value_at_translates_and_row_major_roundtrips() {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        let mut t = DpTable::new_level_major(&counts, 2, 1 << 20).unwrap();
        // Write rank r's value at its storage position; read back via rank.
        for rank in 0..t.len {
            let pos = t.position_of(rank);
            t.values[pos] = rank as u16;
        }
        for rank in 0..t.len {
            assert_eq!(t.value_at(rank), rank as u16);
        }
        let rm = t.values_row_major();
        assert_eq!(rm, (0..t.len as u16).collect::<Vec<u16>>());
        // A row-major table's views are the identity.
        let plain = paper_table();
        assert_eq!(plain.values_row_major(), plain.values);
        assert_eq!(plain.position_of(7), 7);
    }

    #[test]
    fn level_major_scratch_recycles_permutation_arrays() {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        let mut scratch = DpScratch::new();
        let t1 = DpTable::new_level_major_in(&counts, 2, 1 << 20, &mut scratch).unwrap();
        let expect = t1.layout.clone().unwrap();
        scratch.recycle(t1);
        let t2 = DpTable::new_level_major_in(&counts, 2, 1 << 20, &mut scratch).unwrap();
        assert_eq!(t2.layout.as_ref(), Some(&expect));
        assert!(t2.values.iter().all(|&v| v == INFEASIBLE));
        assert_eq!((scratch.tables_allocated, scratch.tables_reused), (1, 1));
    }

    #[test]
    fn next_in_level_walks_buckets_in_order() {
        let t = paper_table();
        let buckets = t.level_buckets();
        let mut digits = Vec::new();
        for bucket in &buckets {
            decode_into(bucket[0] as usize, &t.strides, &mut digits);
            for (i, &rank) in bucket.iter().enumerate() {
                assert_eq!(digits, t.decode(rank as usize));
                let more = next_in_level(&mut digits, &t.dims);
                assert_eq!(more, i + 1 < bucket.len());
            }
        }
    }

    #[test]
    fn next_in_level_matches_buckets_on_wider_radices() {
        let t = DpTable::new(&[1, 2, 0, 3, 1], 1, 1 << 20).unwrap();
        let buckets = t.level_buckets();
        let mut digits = Vec::new();
        for bucket in &buckets {
            decode_into(bucket[0] as usize, &t.strides, &mut digits);
            let mut walked = vec![t.index(&digits) as u32];
            while next_in_level(&mut digits, &t.dims) {
                walked.push(t.index(&digits) as u32);
            }
            assert_eq!(&walked, bucket);
        }
    }

    #[test]
    fn kernel_buffer_pool_counts_only_fresh_creations() {
        let mut scratch = DpScratch::new();
        let bufs = scratch.take_kernel_bufs(3);
        assert_eq!(scratch.kernel_allocs, 3);
        scratch.return_kernel_bufs(bufs);
        let again = scratch.take_kernel_bufs(3);
        assert_eq!(scratch.kernel_allocs, 3);
        scratch.return_kernel_bufs(again);
        let grown = scratch.take_kernel_bufs(4);
        assert_eq!(scratch.kernel_allocs, 4);
        scratch.return_kernel_bufs(grown);
    }

    #[test]
    #[should_panic(expected = "leaked its kernel buffers")]
    fn unreturned_kernel_buffers_fail_the_next_take() {
        let mut scratch = DpScratch::new();
        let bufs = scratch.take_kernel_bufs(2);
        drop(bufs); // lost without return_kernel_bufs — the leak under test
        let _ = scratch.take_kernel_bufs(2);
    }

    #[test]
    fn strip_digits_matches_the_scalar_walk() {
        let t = DpTable::new(&[1, 2, 0, 3, 1], 1, 1 << 20).unwrap();
        let k = t.dims.len();
        let mut block = vec![0u32; k * STRIP_LANES];
        for bucket in t.level_buckets() {
            let mut digits = Vec::new();
            decode_into(bucket[0] as usize, &t.strides, &mut digits);
            let mut cell = 0usize;
            while cell < bucket.len() {
                let width = (bucket.len() - cell).min(STRIP_LANES);
                assert!(strip_digits(&mut digits, &t.dims, &mut block, width));
                for i in 0..width {
                    let want = t.decode(bucket[cell + i] as usize);
                    let got: Vec<u32> = (0..k).map(|a| block[a * STRIP_LANES + i]).collect();
                    assert_eq!(got, want, "strip lane {i} at bucket cell {cell}");
                }
                cell += width;
                if cell < bucket.len() {
                    assert!(next_in_level(&mut digits, &t.dims));
                }
            }
            assert!(!next_in_level(&mut digits, &t.dims), "level must be spent");
        }
    }

    #[test]
    fn strip_digits_handles_width_one_and_radix_one() {
        // A single-cell strip never advances — the shape of a level-0/last
        // level cell and of any radix-1 walk (`next_in_level` on k < 2).
        let mut digits = vec![3u32];
        let mut block = vec![u32::MAX; STRIP_LANES];
        assert!(strip_digits(&mut digits, &[7], &mut block, 1));
        assert_eq!(block[0], 3);
        assert_eq!(digits, vec![3]);
        // Asking for more cells than the level holds reports the shortfall.
        let mut digits = vec![0u32, 0];
        let mut block = vec![0u32; 2 * STRIP_LANES];
        assert!(!strip_digits(&mut digits, &[1, 1], &mut block, 2));
    }

    #[test]
    fn kernel_scratch_prepare_sizes_all_buffers() {
        let mut ks = KernelScratch::default();
        ks.prepare(3, 2 * STRIP_LANES);
        assert!(ks.digits.len() >= 3);
        assert!(ks.block.len() >= 3 * 2 * STRIP_LANES);
        assert!(ks.ranks.len() >= 2 * STRIP_LANES);
        assert!(ks.best.len() >= 2 * STRIP_LANES);
        // Re-preparing smaller keeps capacity (no shrink, no realloc).
        let block_ptr = ks.block.as_ptr();
        ks.prepare(2, STRIP_LANES);
        assert_eq!(ks.block.as_ptr(), block_ptr);
    }

    #[test]
    fn fill_level_buckets_matches_fresh_and_reuses_storage() {
        let t = paper_table();
        let fresh = t.level_buckets();
        let mut scratch = DpScratch::new();
        let mut buckets = scratch.take_buckets();
        t.fill_level_buckets(&mut buckets);
        assert_eq!(buckets, fresh);
        // A second fill (e.g. the next probe) reuses and stays correct.
        t.fill_level_buckets(&mut buckets);
        assert_eq!(buckets, fresh);
        scratch.return_buckets(buckets);
    }
}
