//! The Hochbaum–Shmoys PTAS for `P||Cmax` (Algorithm 1 of Ghalami & Grosu
//! 2017), structured so that the dynamic program at its core is pluggable:
//!
//! * [`params`] — the `ε → k = ⌈1/ε⌉` parameterization,
//! * [`rounding`] — partition into long/short jobs and rounding of long jobs
//!   to multiples of `⌈T/k²⌉` (Lines 9–24 of Algorithm 1),
//! * [`config`] — machine-configuration enumeration (Equation 3),
//! * [`table`] — the mixed-radix dense DP table over job-count vectors,
//! * [`dp`] — the [`DpSolver`] trait plus the sequential solvers
//!   ([`IterativeDp`], [`MemoizedDp`]; Algorithm 2),
//! * [`trace`] — per-subproblem cost capture for the simulated executor,
//! * [`driver`] — the bisection search, schedule reconstruction and the
//!   public [`Ptas`] scheduler.
//!
//! Around that core sit the chassis seams (DESIGN.md §5) that make the DP
//! engine reusable across scheduling models:
//!
//! * [`rounding`] also hosts the [`Rounding`] trait (instance → size
//!   classes + reconstruction map),
//! * [`space`] — the [`StateSpace`] trait (transition set + per-step
//!   feasibility filter) with the [`PcmaxSpace`]/[`QSpace`] instantiations,
//!   and the [`SpaceEngine`] trait any sweep implementation satisfies,
//! * [`chassis`] — the [`Scenario`] trait and the model-agnostic
//!   `chassis::drive` bisection loop,
//! * [`uniform`] — the `Q||Cmax` instantiation ([`QPtas`], [`QRounding`]).
//!
//! The parallel DP of the paper (Algorithm 3) lives in the `pcmax-parallel`
//! crate and plugs into [`Ptas`] through [`DpSolver`], and into the chassis
//! through [`SpaceEngine`].
//!
//! # Quick start
//!
//! ```
//! use pcmax_core::Scheduler;
//! use pcmax_ptas::Ptas;
//!
//! let inst = pcmax_core::Instance::new(vec![6, 6, 11, 11, 11, 2, 3], 3).unwrap();
//! let schedule = Ptas::new(0.3).unwrap().schedule(&inst).unwrap();
//! // The optimum is 17; epsilon = 0.3 certifies at most (1 + 1/4)·17 ≈ 21.
//! assert!(schedule.makespan(&inst) <= 21);
//! ```

pub mod chassis;
pub mod config;
pub mod dp;
pub mod driver;
pub mod params;
pub mod rounding;
pub mod space;
pub mod table;
pub mod trace;
pub mod uniform;

pub use chassis::Scenario;
pub use config::{enumerate_configs, Config};
pub use dp::{DpOutcome, DpProblem, DpSolver, IterativeDp, MemoizedDp, RegenerateConfigsDp};
pub use driver::{rounded_problem, BisectionLog, Ptas, PtasOutput};
pub use params::EpsilonParams;
pub use rounding::{JobPartition, PcmaxRounding, RoundedLongJobs, Rounding};
pub use space::{PcmaxSpace, QSpace, SerialEngine, SpaceEngine, StateSpace};
pub use table::{decode_into, next_in_level, DpScratch, DpTable, LevelLayout};
pub use trace::{dp_trace, DpTrace};
pub use uniform::{QPtas, QRounding};
