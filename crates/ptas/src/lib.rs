//! The Hochbaum–Shmoys PTAS for `P||Cmax` (Algorithm 1 of Ghalami & Grosu
//! 2017), structured so that the dynamic program at its core is pluggable:
//!
//! * [`params`] — the `ε → k = ⌈1/ε⌉` parameterization,
//! * [`rounding`] — partition into long/short jobs and rounding of long jobs
//!   to multiples of `⌈T/k²⌉` (Lines 9–24 of Algorithm 1),
//! * [`config`] — machine-configuration enumeration (Equation 3),
//! * [`table`] — the mixed-radix dense DP table over job-count vectors,
//! * [`dp`] — the [`DpSolver`] trait plus the sequential solvers
//!   ([`IterativeDp`], [`MemoizedDp`]; Algorithm 2),
//! * [`trace`] — per-subproblem cost capture for the simulated executor,
//! * [`driver`] — the bisection search, schedule reconstruction and the
//!   public [`Ptas`] scheduler.
//!
//! The parallel DP of the paper (Algorithm 3) lives in the `pcmax-parallel`
//! crate and plugs into [`Ptas`] through [`DpSolver`].
//!
//! # Quick start
//!
//! ```
//! use pcmax_core::Scheduler;
//! use pcmax_ptas::Ptas;
//!
//! let inst = pcmax_core::Instance::new(vec![6, 6, 11, 11, 11, 2, 3], 3).unwrap();
//! let schedule = Ptas::new(0.3).unwrap().schedule(&inst).unwrap();
//! // The optimum is 17; epsilon = 0.3 certifies at most (1 + 1/4)·17 ≈ 21.
//! assert!(schedule.makespan(&inst) <= 21);
//! ```

pub mod config;
pub mod dp;
pub mod driver;
pub mod params;
pub mod rounding;
pub mod table;
pub mod trace;

pub use config::{enumerate_configs, Config};
pub use dp::{DpOutcome, DpProblem, DpSolver, IterativeDp, MemoizedDp, RegenerateConfigsDp};
pub use driver::{rounded_problem, BisectionLog, Ptas, PtasOutput};
pub use params::EpsilonParams;
pub use rounding::{JobPartition, RoundedLongJobs};
pub use table::{decode_into, next_in_level, DpScratch, DpTable, LevelLayout};
pub use trace::{dp_trace, DpTrace};
