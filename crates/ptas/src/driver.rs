//! The bisection driver (Algorithm 1): probe target makespans with the DP,
//! keep the smallest feasible target, then reconstruct a real schedule from
//! the rounded witness and finish with LPT on the short jobs.

use crate::chassis::Scenario;
use crate::config::Config;
use crate::dp::{DpProblem, DpSolver, IterativeDp};
use crate::params::EpsilonParams;
use crate::rounding::{JobPartition, PcmaxRounding, RoundedLongJobs, Rounding};
use crate::table::{DpScratch, DpTable};
use pcmax_core::{
    profile, Error, Instance, ProfileKey, Result, Schedule, ScheduleBuilder, SolveReport,
    SolveRequest, SolveStats, Solver, Time,
};

/// One bisection probe: the target tried and what the DP said.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BisectionProbe {
    /// Target makespan `T` probed.
    pub target: Time,
    /// `OPT(N)` returned by the DP at this target.
    pub dp_machines: u32,
    /// Whether the rounded jobs fit on `m` machines.
    pub feasible: bool,
}

/// Full record of a bisection run, for tests, the harness and the examples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BisectionLog {
    /// Probes in execution order.
    pub probes: Vec<BisectionProbe>,
}

impl BisectionLog {
    /// Number of DP evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.probes.len()
    }
}

/// Everything the PTAS produces: the schedule, the converged target `T*`,
/// and the probe log.
#[derive(Debug, Clone)]
pub struct PtasOutput {
    /// The final schedule over the original jobs.
    pub schedule: Schedule,
    /// The smallest target makespan the DP certified (`T* ≤ OPT`).
    pub target: Time,
    /// Bisection history.
    pub log: BisectionLog,
}

/// The Hochbaum–Shmoys PTAS with a pluggable DP solver.
///
/// `Ptas::new(0.3)` reproduces the paper's sequential configuration; the
/// parallel version is `Ptas::with_solver(0.3, pcmax_parallel::ParallelDp::default())`.
#[derive(Debug, Clone)]
pub struct Ptas<S = IterativeDp> {
    params: EpsilonParams,
    solver: S,
    max_entries: usize,
}

impl Ptas<IterativeDp> {
    /// Sequential PTAS with relative error `epsilon`.
    pub fn new(epsilon: f64) -> Result<Self> {
        Ok(Self {
            params: EpsilonParams::new(epsilon)?,
            solver: IterativeDp,
            max_entries: DpProblem::DEFAULT_MAX_ENTRIES,
        })
    }
}

impl<S: DpSolver> Ptas<S> {
    /// PTAS with a custom DP solver (e.g. the parallel wavefront DP).
    pub fn with_solver(epsilon: f64, solver: S) -> Result<Self> {
        Ok(Self {
            params: EpsilonParams::new(epsilon)?,
            solver,
            max_entries: DpProblem::DEFAULT_MAX_ENTRIES,
        })
    }

    /// Overrides the dense-table size guard.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries;
        self
    }

    /// The `ε`/`k` parameters in use.
    pub fn params(&self) -> &EpsilonParams {
        &self.params
    }

    /// The DP solver plugged into the bisection.
    pub fn solver(&self) -> &S {
        &self.solver
    }

    /// Builds the rounded DP problem for `inst` at target `t`.
    fn problem_at(&self, inst: &Instance, t: Time) -> (DpProblem, RoundedLongJobs, JobPartition) {
        rounded_problem(inst, &self.params, t, self.max_entries)
    }

    /// Runs the full PTAS and returns the schedule plus diagnostics.
    pub fn solve_detailed(&self, inst: &Instance) -> Result<PtasOutput> {
        self.solve_with(&SolveRequest::new(inst))
            .map(|(out, _)| out)
    }

    /// Runs the full PTAS under an engine request: the cancellation token
    /// and the budget's deadline/entry limits are checked before every
    /// bisection probe, and the returned [`SolveStats`] account probes, DP
    /// entries, table (re)allocations and per-phase wall time.
    ///
    /// This is the [`Scenario`] instantiation of the generic
    /// [`drive`](crate::chassis::drive) loop — the bisection itself is
    /// shared with every other scenario on the chassis.
    pub fn solve_with(&self, req: &SolveRequest<'_>) -> Result<(PtasOutput, SolveStats)> {
        crate::chassis::drive(self, req)
    }
}

impl<S: DpSolver> Scenario for Ptas<S> {
    /// Per-machine configs plus the rounding/partition metadata needed to
    /// map them back to original jobs.
    type Witness = (Vec<Config>, RoundedLongJobs, JobPartition);

    fn reserve_hint(&self, inst: &Instance, target: Time) -> Option<usize> {
        let (problem, _, _) = self.problem_at(inst, target);
        DpTable::entries_needed(&problem.counts, problem.unit, self.max_entries)
    }

    fn probe(
        &self,
        inst: &Instance,
        target: Time,
        scratch: &mut DpScratch,
    ) -> Result<(u32, Option<Self::Witness>)> {
        let (problem, rounded, partition) = self.problem_at(inst, target);
        let outcome = self.solver.solve_in(&problem, scratch)?;
        Ok((
            outcome.machines,
            outcome
                .schedule
                .map(|configs| (configs, rounded, partition)),
        ))
    }

    fn reconstruct(
        &self,
        inst: &Instance,
        witness: Self::Witness,
        _target: Time,
    ) -> Result<Schedule> {
        let (configs, rounded, partition) = witness;
        reconstruct(inst, &configs, &rounded, &partition)
    }

    /// `P||Cmax` profile key: the class-count vector plus the single shared
    /// capacity `⌊target/unit⌋` — every machine checks configs against the
    /// target itself. ε and `m` ride along per the cache-key soundness
    /// argument in `pcmax_core::profile`.
    fn profile_key(&self, inst: &Instance, target: Time) -> Option<ProfileKey> {
        let rounding = PcmaxRounding {
            params: &self.params,
        };
        let (counts, unit) = rounding.fingerprint(inst, target);
        Some(ProfileKey {
            scenario: "p",
            eps_micros: profile::eps_micros(self.params.epsilon),
            machines: inst.machines() as u32,
            caps_units: vec![target / unit],
            counts,
        })
    }

    /// Cache-hit witness: replay the rounding (for the per-instance
    /// class→job map) and adopt the cached configs unchanged.
    fn rehydrate(
        &self,
        inst: &Instance,
        target: Time,
        configs: &[Config],
    ) -> Option<Self::Witness> {
        let (_, rounded, partition) = self.problem_at(inst, target);
        Some((configs.to_vec(), rounded, partition))
    }

    fn witness_configs<'w>(&self, witness: &'w Self::Witness) -> Option<&'w [Config]> {
        Some(&witness.0)
    }
}

impl<S: DpSolver + Send + Sync> Solver for Ptas<S> {
    fn solver_name(&self) -> &'static str {
        "PTAS"
    }

    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        let (out, stats) = self.solve_with(req)?;
        Ok(SolveReport {
            makespan: out.schedule.makespan(req.instance),
            schedule: out.schedule,
            certified_target: Some(out.target),
            proven_optimal: false,
            stats,
        })
    }
}

/// Builds the rounded DP problem (and the rounding/partition metadata) for
/// `inst` at target makespan `t` — Lines 6–24 of Algorithm 1. Public so that
/// the simulated executor (`pcmax-simcore`) and the harness can reconstruct
/// the exact subproblems a bisection run probes.
pub fn rounded_problem(
    inst: &Instance,
    params: &EpsilonParams,
    target: Time,
    max_entries: usize,
) -> (DpProblem, RoundedLongJobs, JobPartition) {
    let (counts, unit, (rounded, partition)) = crate::rounding::Rounding::round_at(
        &crate::rounding::PcmaxRounding { params },
        inst,
        target,
    );
    let problem = DpProblem {
        counts,
        unit,
        target,
        max_machines: inst.machines(),
        max_entries,
    };
    (problem, rounded, partition)
}

/// Lines 31–51 of Algorithm 1: replace each rounded job by an original long
/// job of the matching class, then place the short jobs with LPT on the
/// resulting loads. Public so alternative bisection drivers (e.g.
/// `pcmax_parallel::SpeculativePtas`) can share the reconstruction.
pub fn reconstruct(
    inst: &Instance,
    configs: &[Config],
    rounded: &RoundedLongJobs,
    partition: &JobPartition,
) -> Result<Schedule> {
    let mut builder = ScheduleBuilder::new(inst);
    // Per-class queues of original long-job ids.
    let mut queues: Vec<std::collections::VecDeque<usize>> = rounded
        .members
        .iter()
        .map(|v| v.iter().copied().collect())
        .collect();
    if configs.len() > inst.machines() {
        return Err(Error::InvalidWitness {
            reason: format!(
                "witness uses {} machines but only {} are available",
                configs.len(),
                inst.machines()
            ),
        });
    }
    for (machine, config) in configs.iter().enumerate() {
        for (class_idx, &count) in config.iter().enumerate() {
            for _ in 0..count {
                let j = queues[class_idx]
                    .pop_front()
                    .ok_or_else(|| Error::InvalidWitness {
                        reason: format!(
                            "witness config counts exceed the population of class {}",
                            class_idx + 1
                        ),
                    })?;
                builder.assign(j, machine);
            }
        }
    }
    if let Some(class_idx) = queues.iter().position(|q| !q.is_empty()) {
        return Err(Error::InvalidWitness {
            reason: format!(
                "witness leaves {} long jobs of class {} unscheduled",
                queues[class_idx].len(),
                class_idx + 1
            ),
        });
    }

    // Short jobs in non-increasing processing time (Lines 41–51).
    let mut shorts = partition.short.clone();
    shorts.sort_by(|&a, &b| inst.time(b).cmp(&inst.time(a)).then(a.cmp(&b)));
    pcmax_baselines::greedy_extend(inst, &mut builder, &shorts);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::MemoizedDp;
    use pcmax_core::{lower_bound, Instance, MakespanBounds};
    use std::time::Duration;

    fn ptas() -> Ptas {
        Ptas::new(0.3).unwrap()
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 3).unwrap();
        let out = ptas().solve_detailed(&inst).unwrap();
        assert_eq!(out.schedule.makespan(&inst), 0);
        assert_eq!(out.log.evaluations(), 0);
    }

    #[test]
    fn single_job() {
        let inst = Instance::new(vec![42], 3).unwrap();
        let out = ptas().solve_detailed(&inst).unwrap();
        assert_eq!(out.schedule.makespan(&inst), 42);
        assert_eq!(out.target, 42);
    }

    #[test]
    fn perfectly_balanced_instance_hits_the_lower_bound() {
        let inst = Instance::new(vec![5; 8], 4).unwrap();
        let out = ptas().solve_detailed(&inst).unwrap();
        assert_eq!(out.schedule.makespan(&inst), 10);
    }

    #[test]
    fn schedule_is_always_valid_and_complete() {
        let inst = Instance::new(vec![13, 11, 9, 8, 8, 7, 5, 4, 2, 2, 1, 1], 3).unwrap();
        let out = ptas().solve_detailed(&inst).unwrap();
        out.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn target_bracketed_by_bounds() {
        let inst = Instance::new(vec![9, 8, 7, 6, 5, 4, 3, 2, 1], 3).unwrap();
        let out = ptas().solve_detailed(&inst).unwrap();
        let b = MakespanBounds::of(&inst);
        assert!(out.target >= b.lower && out.target <= b.upper);
    }

    #[test]
    fn makespan_respects_guarantee_against_lower_bound() {
        // (1 + 1/k)·T* plus the integer rounding slack k·1.
        let inst = Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3], 4).unwrap();
        let out = ptas().solve_detailed(&inst).unwrap();
        let k = ptas().params().k as f64;
        let bound = (1.0 + 1.0 / k) * out.target as f64 + k;
        assert!(
            (out.schedule.makespan(&inst) as f64) <= bound,
            "makespan {} > bound {bound}",
            out.schedule.makespan(&inst)
        );
        assert!(out.target >= lower_bound(&inst));
    }

    #[test]
    fn memoized_and_iterative_drivers_agree_on_target() {
        let inst = Instance::new(vec![23, 19, 17, 13, 11, 7, 5, 3, 2, 2, 29, 31], 4).unwrap();
        let a = ptas().solve_detailed(&inst).unwrap();
        let b = Ptas::with_solver(0.3, MemoizedDp)
            .unwrap()
            .solve_detailed(&inst)
            .unwrap();
        assert_eq!(a.target, b.target);
        assert_eq!(
            a.schedule.makespan(&inst),
            b.schedule.makespan(&inst),
            "deterministic extraction should match"
        );
    }

    #[test]
    fn tighter_epsilon_never_worsens_the_certified_target() {
        let inst = Instance::new(vec![17, 14, 12, 11, 9, 8, 8, 6, 5, 4, 3, 1], 3).unwrap();
        let loose = Ptas::new(0.5).unwrap().solve_detailed(&inst).unwrap();
        let tight = Ptas::new(0.2).unwrap().solve_detailed(&inst).unwrap();
        assert!(
            tight.target <= loose.target + 1,
            "tight {} loose {}",
            tight.target,
            loose.target
        );
    }

    #[test]
    fn bisection_log_is_monotone_bracket() {
        let inst = Instance::new(vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 10, 11, 12], 4).unwrap();
        let out = ptas().solve_detailed(&inst).unwrap();
        assert!(out.log.evaluations() >= 1);
        // Every infeasible probe is strictly below every feasible probe's
        // final certified target... at minimum, below the final target.
        for p in &out.log.probes {
            if !p.feasible {
                assert!(p.target < out.target);
            }
        }
    }

    #[test]
    fn jobs_equal_machines_schedules_one_each() {
        let inst = Instance::new(vec![7, 7, 7], 3).unwrap();
        let out = ptas().solve_detailed(&inst).unwrap();
        assert_eq!(out.schedule.makespan(&inst), 7);
    }

    #[test]
    fn more_machines_than_jobs() {
        let inst = Instance::new(vec![5, 3], 6).unwrap();
        let out = ptas().solve_detailed(&inst).unwrap();
        assert_eq!(out.schedule.makespan(&inst), 5);
    }

    #[test]
    fn stats_prove_table_reuse_across_probes() {
        use pcmax_core::SolveRequest;
        let inst = Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3], 4).unwrap();
        let (out, stats) = ptas().solve_with(&SolveRequest::new(&inst)).unwrap();
        assert_eq!(stats.bisection_probes, out.log.evaluations() as u64);
        assert!(stats.bisection_probes > 1, "want multiple probes");
        // The arena is pre-sized for the largest table of the bracket, so
        // the whole run performs exactly one allocation and every probe's
        // table is a reuse.
        assert_eq!(stats.dp_tables_allocated, 1);
        assert_eq!(stats.dp_tables_reused, stats.bisection_probes);
        assert!(stats.dp_entries_touched > 0);
        assert!(stats.phase_wall("bisection") <= stats.wall);
        assert!(stats.phase_wall("reconstruct") <= stats.wall);
    }

    #[test]
    fn dp_phase_is_scoped_inside_the_bisection_phase() {
        use pcmax_core::SolveRequest;
        let inst = Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3], 4).unwrap();
        let (out, stats) = ptas().solve_with(&SolveRequest::new(&inst)).unwrap();
        assert!(out.log.evaluations() >= 1);
        let dp = stats.phase_wall("dp");
        assert!(dp > Duration::ZERO, "DP probes take nonzero wall time");
        assert!(
            dp <= stats.phase_wall("bisection"),
            "the dp phase only counts time inside probes"
        );
    }

    #[test]
    fn probe_spans_carry_targets_and_balance() {
        use pcmax_core::{SolveRequest, TraceSink};
        use std::sync::{Arc, Mutex};

        #[derive(Default)]
        struct Rec(Mutex<Vec<(&'static str, &'static str, u64)>>);

        impl TraceSink for Rec {
            fn span_enter(&self, name: &'static str, arg: u64) {
                self.0.lock().unwrap().push(("enter", name, arg));
            }

            fn span_exit(&self, name: &'static str) {
                self.0.lock().unwrap().push(("exit", name, 0));
            }

            fn instant(&self, _name: &'static str, _arg: u64) {}

            fn counter(&self, _name: &'static str, _value: u64) {}
        }

        let inst = Instance::new(vec![13, 11, 9, 8, 8, 7, 5, 4, 2, 2, 1, 1], 3).unwrap();
        let sink = Arc::new(Rec::default());
        let req = SolveRequest::new(&inst).with_trace(sink.clone());
        let (out, _) = ptas().solve_with(&req).unwrap();
        let log = sink.0.lock().unwrap();
        let probe_args: Vec<u64> = log
            .iter()
            .filter(|(kind, name, _)| *kind == "enter" && *name == "probe")
            .map(|&(_, _, arg)| arg)
            .collect();
        assert_eq!(probe_args.len(), out.log.evaluations());
        for (arg, probe) in probe_args.iter().zip(&out.log.probes) {
            assert_eq!(*arg, probe.target, "span arg is the probed target");
        }
        let enters = log.iter().filter(|(kind, _, _)| *kind == "enter").count();
        let exits = log.iter().filter(|(kind, _, _)| *kind == "exit").count();
        assert_eq!(enters, exits, "every span closes");
        for phase in ["bisection", "reconstruct"] {
            assert!(
                log.iter()
                    .any(|(kind, name, _)| *kind == "enter" && *name == phase),
                "missing {phase} span"
            );
        }
    }

    #[test]
    fn precancelled_request_aborts_immediately() {
        use pcmax_core::{CancelToken, Error, SolveRequest};
        let inst = Instance::new(vec![9, 8, 7, 6, 5], 2).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let req = SolveRequest::new(&inst).with_cancel(cancel);
        assert!(matches!(ptas().solve_with(&req), Err(Error::Cancelled)));
    }

    #[test]
    fn entry_budget_exhaustion_is_a_dedicated_error() {
        use pcmax_core::{Budget, Error, SolveRequest};
        let inst = Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3], 4).unwrap();
        // One entry of budget: the first probe consumes it, the second trips.
        let req = SolveRequest::new(&inst).with_budget(Budget::unlimited().entries(1));
        match ptas().solve_with(&req) {
            Err(Error::BudgetExhausted {
                incumbent,
                lower_bound,
            }) => assert!(lower_bound <= incumbent),
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn solver_report_certifies_the_target() {
        use pcmax_core::{SolveRequest, Solver};
        let inst = Instance::new(vec![13, 11, 9, 8, 8, 7, 5, 4, 2, 2, 1, 1], 3).unwrap();
        let report = ptas().solve(&SolveRequest::new(&inst)).unwrap();
        assert_eq!(report.makespan, report.schedule.makespan(&inst));
        let detailed = ptas().solve_detailed(&inst).unwrap();
        assert_eq!(report.certified_target, Some(detailed.target));
        assert!(!report.proven_optimal);
    }

    /// Unbounded map cache for exercising the chassis cache path in tests.
    #[derive(Default)]
    struct MapCache(
        std::sync::Mutex<
            std::collections::HashMap<pcmax_core::ProfileKey, pcmax_core::ProfileVerdict>,
        >,
    );

    impl pcmax_core::ProfileCache for MapCache {
        fn get(&self, key: &pcmax_core::ProfileKey) -> Option<pcmax_core::ProfileVerdict> {
            self.0
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .get(key)
                .cloned()
        }

        fn put(&self, key: pcmax_core::ProfileKey, verdict: pcmax_core::ProfileVerdict) {
            self.0
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(key, verdict);
        }
    }

    #[test]
    fn cached_resolve_is_bit_identical_and_counts_hits() {
        use pcmax_core::{SolveRequest, Solver};
        use std::sync::Arc;
        let inst = Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3, 23, 29], 4).unwrap();
        let cache: Arc<dyn pcmax_core::ProfileCache> = Arc::new(MapCache::default());

        let baseline = ptas().solve(&SolveRequest::new(&inst)).unwrap();

        let cold = ptas()
            .solve(&SolveRequest::new(&inst).with_cache(cache.clone()))
            .unwrap();
        assert_eq!(cold.stats.cache_hits, 0, "cold run hits nothing");
        assert_eq!(
            cold.stats.cache_misses, cold.stats.bisection_probes,
            "every cold probe consults and misses"
        );

        let warm = ptas()
            .solve(&SolveRequest::new(&inst).with_cache(cache.clone()))
            .unwrap();
        assert_eq!(
            warm.stats.cache_hits, warm.stats.bisection_probes,
            "every warm probe is a hit"
        );
        assert_eq!(warm.stats.cache_misses, 0);
        assert_eq!(warm.stats.dp_cells, 0, "hits skip the DP entirely");

        for report in [&cold, &warm] {
            assert_eq!(report.schedule, baseline.schedule, "schedules diverged");
            assert_eq!(report.makespan, baseline.makespan);
            assert_eq!(report.certified_target, baseline.certified_target);
        }

        // Same profile, different raw instance: scaled times that round to
        // the same class vector would hit; here just re-check stats stay
        // per-request (the warm run did not inherit the cold run's misses).
        assert_eq!(
            warm.stats.cache_misses + warm.stats.cache_hits,
            warm.stats.bisection_probes
        );
    }

    #[test]
    fn cache_hit_still_honors_cancellation_before_reconstruction() {
        use pcmax_core::{CancelToken, Error, SolveRequest, Solver, TraceSink};
        use std::sync::Arc;

        // Cancels its token the moment the bisection span closes — i.e.
        // after the last (cache-hit) probe but before reconstruction.
        struct CancelOnBisectionExit(CancelToken);

        impl TraceSink for CancelOnBisectionExit {
            fn span_enter(&self, _name: &'static str, _arg: u64) {}

            fn span_exit(&self, name: &'static str) {
                if name == "bisection" {
                    self.0.cancel();
                }
            }

            fn instant(&self, _name: &'static str, _arg: u64) {}

            fn counter(&self, _name: &'static str, _value: u64) {}
        }

        let inst = Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3], 4).unwrap();
        let cache: Arc<dyn pcmax_core::ProfileCache> = Arc::new(MapCache::default());
        // Warm the cache.
        ptas()
            .solve(&SolveRequest::new(&inst).with_cache(cache.clone()))
            .unwrap();

        let cancel = CancelToken::new();
        let req = SolveRequest::new(&inst)
            .with_cache(cache)
            .with_cancel(cancel.clone())
            .with_trace(Arc::new(CancelOnBisectionExit(cancel)));
        // Every probe is a hit, so the budget gates inside the bisection
        // never see the raised flag — only the pre-reconstruction gate can
        // catch it. Before that gate existed this returned Ok.
        assert!(
            matches!(ptas().solve(&req), Err(Error::Cancelled)),
            "a cancel raised between bisection and reconstruction must abort"
        );
    }
}
