//! Per-subproblem cost capture for the simulated multicore executor
//! (`pcmax-simcore`).
//!
//! The cost model charges each DP-table entry the number of machine
//! configurations it examines (the inner loop of Lines 17–25 of Algorithm 3)
//! plus one unit for the write — an operation count, so it is deterministic
//! and host-independent. The simulated executor replays these costs level by
//! level exactly as the paper's parallel algorithm schedules them.

use crate::dp::{fits, DpProblem};
use pcmax_core::Result;

/// The level structure and per-entry costs of one DP evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpTrace {
    /// `levels[l]` holds the cost of each subproblem on anti-diagonal `l`,
    /// in row-major order of the entries — the order the paper's
    /// round-robin `parallel for` hands them to processors.
    pub levels: Vec<Vec<u64>>,
}

impl DpTrace {
    /// Total work (the sequential running time in cost units).
    pub fn total_work(&self) -> u64 {
        self.levels.iter().flatten().sum()
    }

    /// Number of anti-diagonal levels (`n' + 1`).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The critical path under unlimited processors: Σ_l max(cost on level l)
    /// — the floor on simulated parallel time with zero barrier overhead.
    pub fn critical_path(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.iter().copied().max().unwrap_or(0))
            .sum()
    }

    /// Entries per level (the paper's `q_l`).
    pub fn level_widths(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }
}

/// Computes the [`DpTrace`] of `problem` without solving it: for every table
/// entry `v`, cost = 1 + |{configs s : s ≤ v}| (the subproblem reads one
/// value per applicable configuration and performs one write).
pub fn dp_trace(problem: &DpProblem) -> Result<DpTrace> {
    let table = problem.build_table()?;
    let configs = problem.configs_with_offsets(&table);
    let mut levels = vec![Vec::new(); table.levels() as usize];
    let mut v = vec![0u32; table.dims.len()];
    let mut sum = 0u32;
    for idx in 0..table.len {
        let cost = 1 + configs.iter().filter(|(c, _)| fits(c, &v)).count() as u64;
        levels[sum as usize].push(cost);
        // Mixed-radix increment with running digit sum.
        for a in (0..v.len()).rev() {
            if v[a] + 1 < table.dims[a] {
                v[a] += 1;
                sum += 1;
                break;
            }
            sum -= v[a];
            v[a] = 0;
        }
        let _ = idx;
    }
    Ok(DpTrace { levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpProblem;

    fn paper_problem() -> DpProblem {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        DpProblem::new(counts, 2, 30, 4)
    }

    #[test]
    fn level_widths_match_the_anti_diagonals_of_table_i() {
        let trace = dp_trace(&paper_problem()).unwrap();
        // 3×4 grid: anti-diagonal widths 1,2,3,3,2,1.
        assert_eq!(trace.level_widths(), vec![1, 2, 3, 3, 2, 1]);
        assert_eq!(trace.depth(), 6);
    }

    #[test]
    fn total_work_counts_each_entry_at_least_once() {
        let trace = dp_trace(&paper_problem()).unwrap();
        assert!(trace.total_work() >= 12);
    }

    #[test]
    fn origin_entry_has_unit_cost() {
        // OPT(0,…,0) examines no configurations.
        let trace = dp_trace(&paper_problem()).unwrap();
        assert_eq!(trace.levels[0], vec![1]);
    }

    #[test]
    fn critical_path_is_at_most_total_work() {
        let trace = dp_trace(&paper_problem()).unwrap();
        assert!(trace.critical_path() <= trace.total_work());
        assert!(trace.critical_path() >= trace.depth() as u64);
    }

    #[test]
    fn costs_grow_towards_the_far_corner() {
        // The last entry dominates every other entry's config count.
        let trace = dp_trace(&paper_problem()).unwrap();
        let last = *trace.levels.last().unwrap().last().unwrap();
        assert!(trace.levels.iter().flatten().all(|&c| c <= last));
    }

    #[test]
    fn empty_problem_has_single_unit_level() {
        let problem = DpProblem::new(vec![0; 16], 2, 30, 4);
        let trace = dp_trace(&problem).unwrap();
        assert_eq!(trace.levels, vec![vec![1]]);
    }
}
