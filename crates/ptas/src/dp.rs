//! The dynamic program at the heart of the PTAS (Algorithm 2), behind the
//! pluggable [`DpSolver`] trait so the sequential and parallel
//! implementations are interchangeable inside the bisection driver.
//!
//! `OPT(v)` is the minimum number of machines that can run the rounded long
//! jobs counted by `v` within the target makespan `T`:
//!
//! ```text
//! OPT(0) = 0
//! OPT(v) = 1 + min { OPT(v − s) : s machine configuration, 0 ≠ s ≤ v }
//! ```

use crate::config::{enumerate_configs_sized, Config};
use crate::table::{DpScratch, DpTable, INFEASIBLE};
use pcmax_core::{Error, Result, Time};

/// One rounded scheduling subproblem handed to a [`DpSolver`]: the class
/// counts `N`, the rounding unit, the target makespan `T`, and the machine
/// budget `m` that decides feasibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpProblem {
    /// `counts[i-1]` = number of long jobs of class `i` (full `k²` width).
    pub counts: Vec<u32>,
    /// Rounding unit `⌈T/k²⌉`.
    pub unit: Time,
    /// Target makespan `T` (machine capacity for the rounded jobs).
    pub target: Time,
    /// Machine budget `m`; a solution is feasible iff `OPT(N) ≤ m`.
    pub max_machines: usize,
    /// Guard on the dense table size σ.
    pub max_entries: usize,
}

impl DpProblem {
    /// Default table-size guard: 2²⁶ entries (≈ 128 MiB of `u16`).
    pub const DEFAULT_MAX_ENTRIES: usize = 1 << 26;

    /// Convenience constructor with the default table guard.
    pub fn new(counts: Vec<u32>, unit: Time, target: Time, max_machines: usize) -> Self {
        Self {
            counts,
            unit,
            target,
            max_machines,
            max_entries: Self::DEFAULT_MAX_ENTRIES,
        }
    }

    /// Builds the (empty) dense table for this problem.
    pub fn build_table(&self) -> Result<DpTable> {
        DpTable::new(&self.counts, self.unit, self.max_entries).ok_or_else(|| self.table_error())
    }

    /// Builds the dense table with storage from (and accounted to) `scratch`.
    pub fn build_table_in(&self, scratch: &mut DpScratch) -> Result<DpTable> {
        DpTable::new_in(&self.counts, self.unit, self.max_entries, scratch)
            .ok_or_else(|| self.table_error())
    }

    /// Builds the dense table in level-major storage order (each
    /// anti-diagonal level one contiguous slice) — the layout the wavefront
    /// executors use for parallel in-place scatter.
    pub fn build_level_major_table_in(&self, scratch: &mut DpScratch) -> Result<DpTable> {
        DpTable::new_level_major_in(&self.counts, self.unit, self.max_entries, scratch)
            .ok_or_else(|| self.table_error())
    }

    fn table_error(&self) -> Error {
        Error::BadModel(format!(
            "DP table would exceed {} entries; increase max_entries or epsilon",
            self.max_entries
        ))
    }

    /// Enumerates the machine configurations over *active* classes together
    /// with their flat table offsets (Σ s_a·stride_a).
    pub fn configs_with_offsets(&self, table: &DpTable) -> Vec<(Config, usize)> {
        let counts_active: Vec<u32> = table.dims.iter().map(|&d| d - 1).collect();
        let configs: Vec<(Config, usize)> =
            enumerate_configs_sized(&counts_active, &table.sizes, self.target)
                .into_iter()
                .map(|c| {
                    let offset = table.index(&c);
                    (c, offset)
                })
                .collect();
        // The DFS enumeration is lexicographically ascending, which under
        // row-major indexing is already ascending flat offset — the monotone,
        // cache-friendly read order the wavefront cell kernel wants. Assert
        // rather than re-sort so every solver shares one config order (the
        // witness walk picks the *first* config that works, so order changes
        // would change which witness is extracted).
        debug_assert!(
            configs.windows(2).all(|w| w[0].1 < w[1].1),
            "config enumeration must yield strictly ascending offsets"
        );
        configs
    }
}

/// Outcome of a DP solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpOutcome {
    /// `OPT(N)` — minimum machines for the rounded long jobs within `T`
    /// (`u32::MAX` if the vector is not schedulable at all, which cannot
    /// happen for vectors produced by rounding).
    pub machines: u32,
    /// Per-machine configurations (full `k²` width), extracted only when
    /// `machines ≤ max_machines`; length = `machines`.
    pub schedule: Option<Vec<Config>>,
}

impl DpOutcome {
    /// Whether the rounded jobs fit on the machine budget.
    pub fn feasible(&self) -> bool {
        self.schedule.is_some()
    }
}

/// A dynamic-programming solver for rounded long-job scheduling. The
/// sequential implementations live here; `pcmax_parallel::ParallelDp`
/// implements the same trait with the paper's wavefront parallelization.
pub trait DpSolver {
    /// Stable name for harness output.
    fn name(&self) -> &'static str;

    /// Computes `OPT(N)` and, if feasible, a witness schedule, drawing the
    /// dense table's storage from the reusable `scratch` arena — the form
    /// the bisection driver calls so repeated probes share one allocation.
    fn solve_in(&self, problem: &DpProblem, scratch: &mut DpScratch) -> Result<DpOutcome>;

    /// Computes `OPT(N)` with a private one-shot arena.
    fn solve(&self, problem: &DpProblem) -> Result<DpOutcome> {
        self.solve_in(problem, &mut DpScratch::new())
    }
}

/// Extracts a witness schedule by walking the optimal path backwards from
/// `N`: at each step pick any configuration `s ≤ v` with
/// `OPT(v−s) = OPT(v) − 1`. Works on any table with correct values on the
/// optimal path (both the iterative and memoized solvers guarantee that).
pub fn extract_schedule(
    table: &DpTable,
    configs: &[(Config, usize)],
    classes: usize,
) -> Result<Vec<Config>> {
    crate::space::extract_schedule_with(table, &crate::space::PcmaxSpace::new(configs), classes)
}

/// Componentwise `c ≤ v`.
#[inline]
pub fn fits(c: &[u32], v: &[u32]) -> bool {
    c.iter().zip(v).all(|(&ci, &vi)| ci <= vi)
}

/// Iterative bottom-up DP (dense sweep in row-major index order). Because
/// `v − s` has a strictly smaller row-major index than `v` for `s ≠ 0`, a
/// single ascending pass sees every dependency before its dependents — this
/// is the sequential reference implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct IterativeDp;

impl DpSolver for IterativeDp {
    fn name(&self) -> &'static str {
        "dp-iterative"
    }

    fn solve_in(&self, problem: &DpProblem, scratch: &mut DpScratch) -> Result<DpOutcome> {
        let mut table = problem.build_table_in(scratch)?;
        let configs = problem.configs_with_offsets(&table);
        // The generic sweep with the P||Cmax space monomorphizes to exactly
        // the pre-chassis ascending row-major loop.
        crate::space::serial_sweep(&mut table, &crate::space::PcmaxSpace::new(&configs));
        finish(problem, table, &configs, scratch)
    }
}

/// Memoized top-down DP — the literal shape of the paper's Algorithm 2: the
/// recursion starts at `N` and visits only subproblems reachable from it,
/// which can be far fewer than σ.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoizedDp;

/// Sentinel for "not yet visited" in the memoized solver. Distinct from
/// [`INFEASIBLE`]; both are far above any real machine count (≤ n ≤ u16
/// range), so `value ≥ UNVISITED` means "no real value here" regardless of
/// which sentinel was written — the test the epilogue and the generic
/// witness walk in [`crate::space`] both use.
pub const UNVISITED: u16 = u16::MAX - 1;

impl DpSolver for MemoizedDp {
    fn name(&self) -> &'static str {
        "dp-memoized"
    }

    fn solve_in(&self, problem: &DpProblem, scratch: &mut DpScratch) -> Result<DpOutcome> {
        let mut table = problem.build_table_in(scratch)?;
        let configs = problem.configs_with_offsets(&table);
        table.values.fill(UNVISITED);
        table.values[0] = 0;
        // Explicit stack to avoid deep recursion on long optimal paths.
        // Post-order evaluation: push a frame, expand unvisited children,
        // fold the minimum once all children are done.
        let root = table.last_index();
        let mut stack: Vec<(usize, bool)> = vec![(root, false)];
        while let Some((idx, expanded)) = stack.pop() {
            if table.values[idx] != UNVISITED {
                continue;
            }
            let v = table.decode(idx);
            if expanded {
                let mut best = INFEASIBLE;
                for (c, offset) in &configs {
                    if fits(c, &v) {
                        best = best.min(table.values[idx - offset]);
                    }
                }
                table.values[idx] = best.saturating_add(1);
            } else {
                stack.push((idx, true));
                for (c, offset) in &configs {
                    if fits(c, &v) && table.values[idx - offset] == UNVISITED {
                        stack.push((idx - offset, false));
                    }
                }
            }
        }
        finish(problem, table, &configs, scratch)
    }
}

/// Shared epilogue: read `OPT(N)`, extract the witness if feasible, then
/// recycle the table's storage into the arena for the next probe. Reads go
/// through [`DpTable::value_at`], so level-major tables work unchanged.
pub fn finish(
    problem: &DpProblem,
    table: DpTable,
    configs: &[(Config, usize)],
    scratch: &mut DpScratch,
) -> Result<DpOutcome> {
    let opt = table.value_at(table.last_index());
    let machines = if opt >= UNVISITED {
        u32::MAX
    } else {
        // audit:allow(cast): u16 -> u32 widening, lossless by construction.
        opt as u32
    };
    let schedule = if machines as usize <= problem.max_machines {
        Some(extract_schedule(&table, configs, problem.counts.len())?)
    } else {
        None
    };
    scratch.recycle(table);
    Ok(DpOutcome { machines, schedule })
}

/// Paper-literal iterative DP: Line 17 of Algorithm 3 regenerates the
/// configuration set `C_{v}` *for every entry* (a bounded DFS over `v`)
/// instead of filtering one global set. Asymptotically equivalent but
/// constant-factor slower; kept for the ablation study
/// (`benches/ablation_configs.rs`) because it is what the paper's
/// implementation does.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegenerateConfigsDp;

impl DpSolver for RegenerateConfigsDp {
    fn name(&self) -> &'static str {
        "dp-regenerate-configs"
    }

    fn solve_in(&self, problem: &DpProblem, scratch: &mut DpScratch) -> Result<DpOutcome> {
        let mut table = problem.build_table_in(scratch)?;
        table.values[0] = 0;
        let mut v = vec![0u32; table.dims.len()];
        for idx in 1..table.len {
            increment(&mut v, &table.dims);
            // C_v: configurations bounded by the entry's own vector.
            let configs_v =
                crate::config::enumerate_configs_sized(&v, &table.sizes, problem.target);
            let mut best = INFEASIBLE;
            for c in &configs_v {
                let offset = table.index(c);
                best = best.min(table.values[idx - offset]);
            }
            table.values[idx] = best.saturating_add(1);
        }
        let configs = problem.configs_with_offsets(&table);
        finish(problem, table, &configs, scratch)
    }
}

/// Mixed-radix increment (row-major: last digit fastest).
#[inline]
pub(crate) fn increment(v: &mut [u32], dims: &[u32]) {
    for a in (0..v.len()).rev() {
        if v[a] + 1 < dims[a] {
            v[a] += 1;
            return;
        }
        v[a] = 0;
    }
}

/// Checks that `schedule` is a valid witness: configs sum to `counts` and
/// each fits within `target`. Used by tests and debug assertions.
pub fn verify_witness(problem: &DpProblem, schedule: &[Config]) -> bool {
    let mut total = vec![0u64; problem.counts.len()];
    for config in schedule {
        let mut load = 0u64;
        for (i, &s) in config.iter().enumerate() {
            total[i] += s as u64;
            load += (i as Time + 1) * problem.unit * s as Time;
        }
        if load > problem.target {
            return false;
        }
    }
    total
        .iter()
        .zip(&problem.counts)
        .all(|(&got, &want)| got == want as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example: N has 2 jobs of rounded size 6 (class 3,
    /// unit 2) and 3 jobs of rounded size 10 (class 5), T = 30.
    fn paper_problem(m: usize) -> DpProblem {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        DpProblem::new(counts, 2, 30, m)
    }

    #[test]
    fn paper_example_needs_two_machines() {
        // Loads: machine capacity 30; jobs {6,6,10,10,10} total 42 -> at
        // least 2 machines; {6,10,10} = 26 and {6,10} = 16 fit -> OPT = 2.
        for solver in [&IterativeDp as &dyn DpSolver, &MemoizedDp] {
            let out = solver.solve(&paper_problem(4)).unwrap();
            assert_eq!(out.machines, 2, "{}", solver.name());
            let witness = out.schedule.unwrap();
            assert_eq!(witness.len(), 2);
            assert!(verify_witness(&paper_problem(4), &witness));
        }
    }

    #[test]
    fn infeasible_when_budget_too_small() {
        let out = IterativeDp.solve(&paper_problem(1)).unwrap();
        assert_eq!(out.machines, 2);
        assert!(!out.feasible());
    }

    #[test]
    fn empty_vector_needs_zero_machines() {
        let problem = DpProblem::new(vec![0; 16], 2, 30, 3);
        for solver in [&IterativeDp as &dyn DpSolver, &MemoizedDp] {
            let out = solver.solve(&problem).unwrap();
            assert_eq!(out.machines, 0);
            assert_eq!(out.schedule.unwrap().len(), 0);
        }
    }

    #[test]
    fn single_job_single_machine() {
        let mut counts = vec![0u32; 16];
        counts[9] = 1; // class 10, size 10·unit
        let problem = DpProblem::new(counts, 3, 30, 1);
        let out = MemoizedDp.solve(&problem).unwrap();
        assert_eq!(out.machines, 1);
        assert!(verify_witness(&problem, &out.schedule.unwrap()));
    }

    #[test]
    fn solvers_agree_on_a_grid_of_problems() {
        for unit in [1u64, 2, 3] {
            for target in [10u64, 17, 25] {
                for counts_pattern in [
                    vec![(0usize, 3u32), (1, 2)],
                    vec![(2, 4)],
                    vec![(0, 2), (3, 2), (5, 1)],
                ] {
                    let mut counts = vec![0u32; 8];
                    for &(i, c) in &counts_pattern {
                        counts[i] = c;
                    }
                    let problem = DpProblem::new(counts, unit, target, 100);
                    let a = IterativeDp.solve(&problem).unwrap();
                    let b = MemoizedDp.solve(&problem).unwrap();
                    assert_eq!(
                        a.machines, b.machines,
                        "unit={unit} target={target} pattern={counts_pattern:?}"
                    );
                    if let Some(w) = &a.schedule {
                        assert!(verify_witness(&problem, w));
                        assert_eq!(w.len() as u32, a.machines);
                    }
                    if let Some(w) = &b.schedule {
                        assert!(verify_witness(&problem, w));
                    }
                }
            }
        }
    }

    #[test]
    fn one_config_per_machine_when_jobs_fill_capacity() {
        // 4 jobs of class 1, unit 10, target 10: each machine fits exactly
        // one job -> OPT = 4.
        let mut counts = vec![0u32; 4];
        counts[0] = 4;
        let problem = DpProblem::new(counts, 10, 10, 4);
        let out = IterativeDp.solve(&problem).unwrap();
        assert_eq!(out.machines, 4);
        let w = out.schedule.unwrap();
        assert!(w.iter().all(|c| c.iter().sum::<u32>() == 1));
    }

    #[test]
    fn bin_packing_structure_is_respected() {
        // 3 jobs of size 5 and 3 of size 3 with capacity 8: pairs (5,3)
        // pack perfectly -> 3 machines.
        let mut counts = vec![0u32; 5];
        counts[4] = 3; // class 5, unit 1, size 5
        counts[2] = 3; // class 3, size 3
        let problem = DpProblem::new(counts, 1, 8, 10);
        let out = IterativeDp.solve(&problem).unwrap();
        assert_eq!(out.machines, 3);
        assert!(verify_witness(&problem, &out.schedule.unwrap()));
    }

    #[test]
    fn regenerate_configs_matches_iterative() {
        for m in [1usize, 2, 4] {
            let a = IterativeDp.solve(&paper_problem(m)).unwrap();
            let b = RegenerateConfigsDp.solve(&paper_problem(m)).unwrap();
            assert_eq!(a.machines, b.machines);
            assert_eq!(a.schedule, b.schedule);
        }
    }

    #[test]
    fn table_guard_surfaces_as_error() {
        let problem = DpProblem {
            counts: vec![100; 8],
            unit: 1,
            target: 1000,
            max_machines: 100,
            max_entries: 1000,
        };
        assert!(IterativeDp.solve(&problem).is_err());
    }
}
