//! Partitioning jobs into long/short and rounding the long jobs
//! (Lines 9–24 of Algorithm 1).

use crate::params::EpsilonParams;
use pcmax_core::{Instance, Time};

/// The rounding seam of the chassis: maps an instance at a target makespan
/// to the class-count vector `N` and the rounding unit, plus whatever
/// metadata the scenario needs later to map rounded jobs back to original
/// ones. `P||Cmax` rounds against the target itself ([`PcmaxRounding`]);
/// `Q||Cmax` rounds against the fastest machine's work capacity
/// (`pcmax_ptas::uniform::QRounding`).
pub trait Rounding {
    /// Reconstruction metadata carried from the rounding to the witness
    /// mapping (for the PTAS scenarios: the per-class member job ids plus
    /// the long/short partition).
    type Map;

    /// Rounds `inst` at `target`, returning the full-width class counts
    /// `N`, the rounding unit, and the reconstruction map.
    fn round_at(&self, inst: &Instance, target: Time) -> (Vec<u32>, Time, Self::Map);

    /// The profile-cache fingerprint of the rounded subproblem at `target`:
    /// the class-count vector `N` and the rounding unit, *without* building
    /// the reconstruction map. Every config load the DP checks is a
    /// multiple of the unit, so `(N, ⌊capacity/unit⌋)` determines the DP
    /// verdict and the extracted witness configs exactly — the seam
    /// `pcmax_core::profile` keys its cache on. The default delegates to
    /// [`round_at`](Self::round_at); implementations may skip the map.
    fn fingerprint(&self, inst: &Instance, target: Time) -> (Vec<u32>, Time) {
        let (counts, unit, _) = self.round_at(inst, target);
        (counts, unit)
    }
}

/// Identical-machine rounding (Lines 9–24 of Algorithm 1): split long/short
/// at `T/k`, round long jobs down to multiples of `⌈T/k²⌉`.
#[derive(Debug, Clone, Copy)]
pub struct PcmaxRounding<'a> {
    /// The `ε`/`k` parameterization.
    pub params: &'a EpsilonParams,
}

impl Rounding for PcmaxRounding<'_> {
    type Map = (RoundedLongJobs, JobPartition);

    fn round_at(&self, inst: &Instance, target: Time) -> (Vec<u32>, Time, Self::Map) {
        let partition = JobPartition::split(inst, self.params, target);
        let rounded = RoundedLongJobs::round(inst, self.params, &partition);
        (rounded.counts.clone(), rounded.unit, (rounded, partition))
    }

    /// Counts-only override: one pass over the times, no per-class member
    /// lists — the fingerprint is computed once per probe on the cache path.
    fn fingerprint(&self, inst: &Instance, target: Time) -> (Vec<u32>, Time) {
        let k2 = self.params.classes();
        let unit = self.params.unit(target);
        let mut counts = vec![0u32; k2];
        for &t in inst.times() {
            if self.params.is_long(t, target) {
                let class = ((t / unit) as usize).clamp(1, k2);
                counts[class - 1] += 1;
            }
        }
        (counts, unit)
    }
}

/// The long/short partition of an instance at a given target makespan `T`:
/// a job is *long* iff `t > T/k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPartition {
    /// Ids of long jobs.
    pub long: Vec<usize>,
    /// Ids of short jobs.
    pub short: Vec<usize>,
    /// The target makespan used for the split.
    pub target: Time,
}

impl JobPartition {
    /// Splits `inst`'s jobs at target `t`.
    pub fn split(inst: &Instance, params: &EpsilonParams, target: Time) -> Self {
        let mut long = Vec::new();
        let mut short = Vec::new();
        for (j, &tj) in inst.times().iter().enumerate() {
            if params.is_long(tj, target) {
                long.push(j);
            } else {
                short.push(j);
            }
        }
        Self {
            long,
            short,
            target,
        }
    }
}

/// Long jobs rounded down to multiples of the unit `⌈T/k²⌉`, bucketed by
/// class. Class `i ∈ 1..=k²` holds jobs with `⌊t/unit⌋ = i`, whose rounded
/// size is `i·unit ≤ t`. Also keeps the original job ids per class so the
/// rounded schedule can be mapped back to real jobs (Lines 31–40).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundedLongJobs {
    /// `counts[i-1]` = number of long jobs in class `i` (the vector `N`).
    pub counts: Vec<u32>,
    /// Original job ids per class, same indexing as `counts`.
    pub members: Vec<Vec<usize>>,
    /// Rounding unit `⌈T/k²⌉`.
    pub unit: Time,
    /// Target makespan `T`.
    pub target: Time,
}

impl RoundedLongJobs {
    /// Rounds the long jobs of `partition` (Lines 15–24 of Algorithm 1).
    ///
    /// Every long job satisfies `T/k < t ≤ T` (the bisection never probes a
    /// target below `max tⱼ`), so its class index lands in `1..=k²`; we
    /// debug-assert that invariant instead of clamping.
    pub fn round(inst: &Instance, params: &EpsilonParams, partition: &JobPartition) -> Self {
        let k2 = params.classes();
        let unit = params.unit(partition.target);
        let mut counts = vec![0u32; k2];
        let mut members = vec![Vec::new(); k2];
        for &j in &partition.long {
            let t = inst.time(j);
            debug_assert!(t <= partition.target, "job longer than target");
            let class = (t / unit) as usize;
            debug_assert!(
                (1..=k2).contains(&class),
                "long job class {class} out of 1..={k2}"
            );
            let class = class.clamp(1, k2);
            counts[class - 1] += 1;
            members[class - 1].push(j);
        }
        Self {
            counts,
            members,
            unit,
            target: partition.target,
        }
    }

    /// Rounded size of class `i` (1-based): `i·unit`.
    #[inline]
    pub fn class_size(&self, class_1based: usize) -> Time {
        class_1based as Time * self.unit
    }

    /// Total number of long jobs `n'`.
    pub fn total_jobs(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Maximum additive rounding error per job: original − rounded `< unit`.
    pub fn max_rounding_error(&self) -> Time {
        self.unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::Instance;

    fn params() -> EpsilonParams {
        EpsilonParams::new(0.3).unwrap() // k = 4, k² = 16
    }

    /// The worked example of Section III: T = 30, jobs {6,6,11,11,11} are all
    /// long (> 30/4 = 7.5 — the 6s are NOT long). We extend with short jobs
    /// to exercise the split.
    #[test]
    fn split_matches_strict_threshold() {
        let inst = Instance::new(vec![6, 6, 11, 11, 11, 7, 8], 3).unwrap();
        let p = JobPartition::split(&inst, &params(), 30);
        // T/k = 7.5: long iff t > 7.5 -> {11, 11, 11, 8}.
        assert_eq!(p.long, vec![2, 3, 4, 6]);
        assert_eq!(p.short, vec![0, 1, 5]);
    }

    /// The paper's example vector N: with T = 30 (unit 2), jobs of size 6 are
    /// class 3 and jobs of size 11 are class 5 — i.e. rounded sizes 6 and 10.
    /// (The paper's prose labels them "6" and "11" informally; per the
    /// formula in Lines 16–18 the class indices are ⌊6/2⌋ = 3 and ⌊11/2⌋ = 5.)
    #[test]
    fn rounding_classes_match_formula() {
        let inst = Instance::new(vec![6, 6, 11, 11, 11], 2).unwrap();
        // Force all five jobs long by taking T small enough that t > T/k,
        // while keeping unit = ceil(T/16) = 2: T = 22 -> T/k = 5.5.
        let p = JobPartition::split(&inst, &params(), 22);
        assert_eq!(p.long.len(), 5);
        let r = RoundedLongJobs::round(&inst, &params(), &p);
        assert_eq!(r.unit, 2); // ceil(22/16)
                               // class(6) = 3, class(11) = 5.
        assert_eq!(r.counts[2], 2);
        assert_eq!(r.counts[4], 3);
        assert_eq!(r.counts.iter().sum::<u32>(), 5);
        assert_eq!(r.members[2], vec![0, 1]);
        assert_eq!(r.members[4], vec![2, 3, 4]);
        assert_eq!(r.class_size(3), 6);
        assert_eq!(r.class_size(5), 10);
    }

    #[test]
    fn rounded_size_never_exceeds_original() {
        let inst = Instance::new(vec![97, 64, 100, 83], 2).unwrap();
        let p = JobPartition::split(&inst, &params(), 100);
        let r = RoundedLongJobs::round(&inst, &params(), &p);
        for (ci, members) in r.members.iter().enumerate() {
            for &j in members {
                let rounded = r.class_size(ci + 1);
                let original = inst.time(j);
                assert!(rounded <= original);
                assert!(original - rounded < r.unit);
            }
        }
    }

    #[test]
    fn no_long_jobs_when_target_dwarfs_times() {
        let inst = Instance::new(vec![1, 2, 3], 2).unwrap();
        let p = JobPartition::split(&inst, &params(), 1000);
        assert!(p.long.is_empty());
        let r = RoundedLongJobs::round(&inst, &params(), &p);
        assert_eq!(r.total_jobs(), 0);
    }

    #[test]
    fn fingerprint_matches_full_rounding() {
        let p = params();
        let rounding = PcmaxRounding { params: &p };
        for (times, m, target) in [
            (vec![6, 6, 11, 11, 11, 7, 8], 3, 30u64),
            (vec![97, 64, 100, 83], 2, 100),
            (vec![1, 2, 3], 2, 1000),
            (vec![32, 1], 2, 32),
        ] {
            let inst = Instance::new(times, m).unwrap();
            let (counts, unit, _) = rounding.round_at(&inst, target);
            let (fp_counts, fp_unit) = rounding.fingerprint(&inst, target);
            assert_eq!(fp_counts, counts, "target {target}");
            assert_eq!(fp_unit, unit, "target {target}");
        }
    }

    #[test]
    fn boundary_job_exactly_at_target_lands_in_class_k2() {
        // t = T: class = floor(T/unit) <= k². With T = 32 and unit 2:
        // class(32) = 16 = k².
        let inst = Instance::new(vec![32, 1], 2).unwrap();
        let p = JobPartition::split(&inst, &params(), 32);
        let r = RoundedLongJobs::round(&inst, &params(), &p);
        assert_eq!(r.counts[15], 1);
        assert_eq!(r.class_size(16), 32);
    }
}
