//! The PTAS chassis instantiated for uniform machines (`Q||Cmax`).
//!
//! Machines run at integer speeds; a machine of speed `s` completes work
//! `s·T` by time `T`. [`QPtas`] reuses the whole `P||Cmax` pipeline through
//! the chassis seams:
//!
//! * **Rounding** ([`QRounding`]): jobs are split and rounded against the
//!   *fastest machine's* capacity `capmax = s_max·T` — the largest load any
//!   single machine can carry — with the same `T/k` threshold and `⌈·/k²⌉`
//!   unit formulas as the identical case.
//! * **State space** ([`QSpace`]): machines are sorted fastest-first with
//!   capacities `caps[j] = s_j·T` (non-increasing), and `OPT(v)` becomes the
//!   minimum *prefix of fastest machines* that can run `v`: a transition
//!   `c` out of a predecessor with value `q` is allowed only if
//!   `load(c) ≤ caps[q]`, i.e. `c` becomes the configuration of the `q`-th
//!   fastest machine. (Peeling the least-capable used machine shows the
//!   recurrence is exact; caps being non-increasing makes slack predecessors
//!   only loosen the check.)
//! * **Engine**: any [`SpaceEngine`] — the serial reference sweep or the
//!   parallel wavefront executors from `pcmax-parallel`.
//! * **Driver**: the shared bisection [`drive`](crate::chassis::drive) loop;
//!   the speed-aware [`pcmax_core::MakespanBounds`] bracket guarantees the
//!   upper endpoint is always feasible (all rounded jobs fit the fastest
//!   machine at `T = ⌈Σt/s_max⌉`).
//!
//! Short jobs are placed greedily on the earliest-finishing machine
//! (the same rule as the `LPT-Q` baseline). The certified target `T*` is a
//! genuine lower bound on `OPT` just as in the identical case; the makespan
//! guarantee degrades with machine heterogeneity — a machine of speed `s`
//! carries at most `k` long jobs, each under-rounded by less than
//! `⌈capmax/k²⌉`, so its completion exceeds `T*` by at most a factor
//! `1 + s_max/(k·s)` before the short-job greedy (which only targets
//! earliest finishers) is accounted.

use crate::chassis::Scenario;
use crate::dp::{DpProblem, UNVISITED};
use crate::params::EpsilonParams;
use crate::rounding::{JobPartition, PcmaxRounding, RoundedLongJobs, Rounding};
use crate::space::{extract_schedule_with, QSpace, SerialEngine, SpaceEngine};
use crate::table::{DpScratch, DpTable};
use crate::{Config, PtasOutput};
use pcmax_core::{
    profile, Error, Instance, ProfileKey, Result, Schedule, ScheduleBuilder, SolveReport,
    SolveRequest, SolveStats, Solver, Time,
};

/// Uniform-machine rounding: identical-machine rounding evaluated at the
/// fastest machine's capacity `capmax = s_max·target` — the threshold and
/// unit formulas depend only on the capacity, so the `P||Cmax` partition and
/// rounding code is reused wholesale.
#[derive(Debug, Clone, Copy)]
pub struct QRounding<'a> {
    /// The `ε`/`k` parameterization.
    pub params: &'a EpsilonParams,
}

impl Rounding for QRounding<'_> {
    type Map = (RoundedLongJobs, JobPartition);

    fn round_at(&self, inst: &Instance, target: Time) -> (Vec<u32>, Time, Self::Map) {
        let capmax = inst.max_speed().saturating_mul(target);
        PcmaxRounding {
            params: self.params,
        }
        .round_at(inst, capmax)
    }

    fn fingerprint(&self, inst: &Instance, target: Time) -> (Vec<u32>, Time) {
        let capmax = inst.max_speed().saturating_mul(target);
        PcmaxRounding {
            params: self.params,
        }
        .fingerprint(inst, capmax)
    }
}

/// The witness a feasible `Q||Cmax` probe hands to reconstruction: the
/// extracted per-machine configs (walk order = machines in *decreasing*
/// prefix position, see [`QPtas`]'s `reconstruct`), the rounding metadata,
/// and the fastest-first machine permutation.
pub struct QWitness {
    configs: Vec<Config>,
    rounded: RoundedLongJobs,
    partition: JobPartition,
    perm: Vec<usize>,
}

/// The Hochbaum–Shmoys-style dual approximation for `Q||Cmax`, assembled
/// from the chassis seams with a pluggable sweep engine.
///
/// `QPtas::new(0.3)` runs the serial reference engine;
/// `QPtas::with_engine(0.3, pcmax_parallel::ParallelDp::default())` runs the
/// parallel wavefront.
#[derive(Debug, Clone)]
pub struct QPtas<E = SerialEngine> {
    params: EpsilonParams,
    engine: E,
    max_entries: usize,
}

impl QPtas<SerialEngine> {
    /// Serial `Q||Cmax` PTAS with relative error `epsilon`.
    pub fn new(epsilon: f64) -> Result<Self> {
        Self::with_engine(epsilon, SerialEngine)
    }
}

impl<E: SpaceEngine> QPtas<E> {
    /// `Q||Cmax` PTAS with a custom sweep engine.
    pub fn with_engine(epsilon: f64, engine: E) -> Result<Self> {
        Ok(Self {
            params: EpsilonParams::new(epsilon)?,
            engine,
            max_entries: DpProblem::DEFAULT_MAX_ENTRIES,
        })
    }

    /// Overrides the dense-table size guard.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries;
        self
    }

    /// The `ε`/`k` parameters in use.
    pub fn params(&self) -> &EpsilonParams {
        &self.params
    }

    /// Runs the full solve and returns the schedule plus diagnostics.
    pub fn solve_detailed(&self, inst: &Instance) -> Result<PtasOutput> {
        self.solve_with(&SolveRequest::new(inst))
            .map(|(out, _)| out)
    }

    /// Runs the full solve under an engine request (cancellation, budget,
    /// tracing) through the shared chassis driver.
    pub fn solve_with(&self, req: &SolveRequest<'_>) -> Result<(PtasOutput, SolveStats)> {
        crate::chassis::drive(self, req)
    }

    /// Machines sorted fastest-first (ties to the lowest original index):
    /// `perm[j]` is the original id of the `j`-th fastest machine and
    /// `caps[j]` its work capacity at `target`.
    fn sorted_caps(&self, inst: &Instance, target: Time) -> (Vec<usize>, Vec<Time>) {
        let speeds = inst.speeds();
        let mut perm: Vec<usize> = (0..inst.machines()).collect();
        perm.sort_by(|&a, &b| speeds[b].cmp(&speeds[a]).then(a.cmp(&b)));
        let caps = perm
            .iter()
            .map(|&i| speeds[i].saturating_mul(target))
            .collect();
        (perm, caps)
    }
}

impl<E: SpaceEngine> Scenario for QPtas<E> {
    type Witness = QWitness;

    fn reserve_hint(&self, inst: &Instance, target: Time) -> Option<usize> {
        let (counts, unit, _) = QRounding {
            params: &self.params,
        }
        .round_at(inst, target);
        DpTable::entries_needed(&counts, unit, self.max_entries)
    }

    fn probe(
        &self,
        inst: &Instance,
        target: Time,
        scratch: &mut DpScratch,
    ) -> Result<(u32, Option<QWitness>)> {
        let (perm, caps) = self.sorted_caps(inst, target);
        let capmax = caps[0];
        // A job no machine can finish by the target: infeasible outright
        // (and the rounding invariant `t ≤ capacity` would not hold).
        if inst.times().iter().any(|&t| t > capmax) {
            return Ok((u32::MAX, None));
        }
        let (counts, unit, (rounded, partition)) = QRounding {
            params: &self.params,
        }
        .round_at(inst, target);
        let problem = DpProblem {
            counts,
            unit,
            target: capmax,
            max_machines: inst.machines(),
            max_entries: self.max_entries,
        };
        let mut table = if self.engine.level_major() {
            problem.build_level_major_table_in(scratch)?
        } else {
            problem.build_table_in(scratch)?
        };
        let configs = problem.configs_with_offsets(&table);
        let space = QSpace::new(&configs, &table.sizes, &caps);
        self.engine.sweep(&mut table, &space, scratch);
        let opt = table.value_at(table.last_index());
        let machines = if opt >= UNVISITED {
            u32::MAX
        } else {
            // audit:allow(cast): u16 -> u32 widening, lossless by construction.
            opt as u32
        };
        let witness = if machines as usize <= inst.machines() {
            let configs = extract_schedule_with(&table, &space, problem.counts.len())?;
            Some(QWitness {
                configs,
                rounded,
                partition,
                perm,
            })
        } else {
            None
        };
        scratch.recycle(table);
        Ok((machines, witness))
    }

    /// `Q||Cmax` profile key: the class-count vector plus *per-machine*
    /// capacities in units (fastest-first) — the step filter checks configs
    /// against each prefix machine's capacity, so every `⌊caps[j]/unit⌋`
    /// joins the fingerprint. Probes with a job no machine can finish are
    /// trivially infeasible and opt out (matching the early return in
    /// [`probe`](Self::probe), whose rounding invariant they would break).
    fn profile_key(&self, inst: &Instance, target: Time) -> Option<ProfileKey> {
        let (_, caps) = self.sorted_caps(inst, target);
        if inst.times().iter().any(|&t| t > caps[0]) {
            return None;
        }
        let rounding = QRounding {
            params: &self.params,
        };
        let (counts, unit) = rounding.fingerprint(inst, target);
        Some(ProfileKey {
            scenario: "q",
            eps_micros: profile::eps_micros(self.params.epsilon),
            // audit:allow(cast): machine counts are bounded by the job count,
            // which Instance stores as a Vec length far below u32::MAX.
            machines: inst.machines() as u32,
            caps_units: caps.iter().map(|&c| c / unit).collect(),
            counts,
        })
    }

    fn rehydrate(&self, inst: &Instance, target: Time, configs: &[Config]) -> Option<QWitness> {
        let (perm, caps) = self.sorted_caps(inst, target);
        if inst.times().iter().any(|&t| t > caps[0]) {
            return None;
        }
        let (_, _, (rounded, partition)) = QRounding {
            params: &self.params,
        }
        .round_at(inst, target);
        Some(QWitness {
            configs: configs.to_vec(),
            rounded,
            partition,
            perm,
        })
    }

    fn witness_configs<'w>(&self, witness: &'w QWitness) -> Option<&'w [Config]> {
        Some(&witness.configs)
    }

    fn reconstruct(&self, inst: &Instance, witness: QWitness, _target: Time) -> Result<Schedule> {
        let QWitness {
            configs,
            rounded,
            partition,
            perm,
        } = witness;
        let mut builder = ScheduleBuilder::new(inst);
        let mut queues: Vec<std::collections::VecDeque<usize>> = rounded
            .members
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();
        let used = configs.len();
        if used > inst.machines() {
            return Err(Error::InvalidWitness {
                reason: format!(
                    "witness uses {used} machines but only {} are available",
                    inst.machines()
                ),
            });
        }
        // The walk peels configs top-down: the config extracted at value `q`
        // fits `caps[q−1]`, so `configs[step]` (0-based) belongs on the
        // `used−1−step`-th fastest machine.
        for (step, config) in configs.iter().enumerate() {
            let machine = perm[used - 1 - step];
            for (class_idx, &count) in config.iter().enumerate() {
                for _ in 0..count {
                    let j = queues[class_idx]
                        .pop_front()
                        .ok_or_else(|| Error::InvalidWitness {
                            reason: format!(
                                "witness config counts exceed the population of class {}",
                                class_idx + 1
                            ),
                        })?;
                    builder.assign(j, machine);
                }
            }
        }
        if let Some(class_idx) = queues.iter().position(|q| !q.is_empty()) {
            return Err(Error::InvalidWitness {
                reason: format!(
                    "witness leaves {} long jobs of class {} unscheduled",
                    queues[class_idx].len(),
                    class_idx + 1
                ),
            });
        }

        // Short jobs in non-increasing time on the earliest-finishing
        // machine — the speed-aware generalization of the LPT finish.
        let speeds = inst.speeds();
        let mut shorts = partition.short.clone();
        shorts.sort_by(|&a, &b| inst.time(b).cmp(&inst.time(a)).then(a.cmp(&b)));
        for &j in &shorts {
            let mach =
                pcmax_baselines::uniform::earliest_finish(builder.loads(), &speeds, inst.time(j));
            builder.assign(j, mach);
        }
        builder.build()
    }
}

impl<E: SpaceEngine + Send + Sync> Solver for QPtas<E> {
    fn solver_name(&self) -> &'static str {
        "PTAS-Q"
    }

    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        let (out, stats) = self.solve_with(req)?;
        Ok(SolveReport {
            makespan: out.schedule.makespan(req.instance),
            schedule: out.schedule,
            certified_target: Some(out.target),
            proven_optimal: false,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::{lower_bound, Scheduler};
    use pcmax_workloads::{generate_uniform, Distribution, Family, SpeedFamily};

    fn qptas() -> QPtas {
        QPtas::new(0.3).unwrap()
    }

    #[test]
    fn exact_on_a_tiny_uniform_instance() {
        // speeds (2, 1), jobs (4, 2): put 4 on the fast machine (done at 2)
        // and 2 on the slow one (done at 2) -> OPT = 2.
        let inst = Instance::with_speeds(vec![4, 2], vec![2, 1]).unwrap();
        let out = qptas().solve_detailed(&inst).unwrap();
        assert_eq!(out.target, 2);
        assert_eq!(out.schedule.makespan(&inst), 2);
        out.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn all_short_instance_collapses_to_the_greedy() {
        // Everything is short at the converged target: the witness is empty
        // and the earliest-finish greedy does all the work.
        let inst = Instance::with_speeds(vec![1, 1, 1], vec![5, 1]).unwrap();
        let out = qptas().solve_detailed(&inst).unwrap();
        assert_eq!(out.target, 1);
        assert_eq!(out.schedule.makespan(&inst), 1);
    }

    #[test]
    fn matches_identical_ptas_makespan_when_speeds_are_one() {
        use crate::Ptas;
        let inst = Instance::new(vec![13, 11, 9, 8, 8, 7, 5, 4, 2, 2, 1, 1], 3).unwrap();
        let q = qptas().solve_detailed(&inst).unwrap();
        let p = Ptas::new(0.3).unwrap().solve_detailed(&inst).unwrap();
        // All caps equal the target, so the step filter is vacuous: the DP
        // values, the certified target and the makespan all coincide (the
        // machine *labels* differ — Q hands configs out fastest-prefix-last).
        assert_eq!(q.target, p.target);
        assert_eq!(q.schedule.makespan(&inst), p.schedule.makespan(&inst));
        q.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn target_is_a_lower_bound_and_schedule_validates() {
        let fam = SpeedFamily::new(Family::new(3, 14, Distribution::U1To100), 4);
        for seed in 0..6 {
            let inst = generate_uniform(fam, seed);
            let out = qptas().solve_detailed(&inst).unwrap();
            out.schedule.validate(&inst).unwrap();
            assert!(
                out.target >= lower_bound(&inst),
                "seed {seed}: certified target below the area bound"
            );
            assert!(
                out.schedule.makespan(&inst) >= lower_bound(&inst),
                "seed {seed}: makespan beat the lower bound"
            );
        }
    }

    #[test]
    fn long_jobs_respect_sorted_capacities() {
        // A job only the fast machine can finish by the optimum must land
        // on the fast machine.
        let inst = Instance::with_speeds(vec![30, 3, 3], vec![10, 1, 1]).unwrap();
        let out = qptas().solve_detailed(&inst).unwrap();
        out.schedule.validate(&inst).unwrap();
        assert_eq!(
            out.schedule.machine_of(0),
            0,
            "size-30 job on the 10x machine"
        );
        assert!(out.schedule.makespan(&inst) <= 2 * lower_bound(&inst));
    }

    #[test]
    fn solver_report_certifies_the_target() {
        let inst =
            Instance::with_speeds(vec![17, 13, 11, 9, 8, 7, 5, 4, 2], vec![3, 2, 1]).unwrap();
        let report = qptas().solve(&SolveRequest::new(&inst)).unwrap();
        assert_eq!(report.makespan, report.schedule.makespan(&inst));
        let detailed = qptas().solve_detailed(&inst).unwrap();
        assert_eq!(report.certified_target, Some(detailed.target));
        assert!(!report.proven_optimal);
        let _ = Scheduler::makespan(&qptas(), &inst).unwrap();
    }

    #[test]
    fn empty_instance_is_a_noop() {
        let inst = Instance::new(vec![], 2).unwrap();
        let out = qptas().solve_detailed(&inst).unwrap();
        assert_eq!(out.schedule.makespan(&inst), 0);
        assert_eq!(out.log.evaluations(), 0);
    }
}
