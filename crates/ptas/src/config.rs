//! Machine-configuration enumeration (Equation 3 of the paper).
//!
//! A machine configuration is a vector `(s_1, …, s_{k²})` of per-class job
//! counts that a single machine can execute within the target makespan:
//! `Σ i·⌈T/k²⌉·s_i ≤ T`, with `s_i ≤ n_i`. Because every long job is larger
//! than `T/k`, a configuration contains at most `k` jobs, so the set is small
//! (`O(k^{2k})` in the worst case, a few thousand for the paper's `k = 4`).

use pcmax_core::Time;

/// A machine configuration: per-class job counts (same indexing as the
/// rounded vector `N`, i.e. `counts[i-1]` is the count for class `i`).
pub type Config = Vec<u32>;

/// Enumerates all *non-zero* machine configurations for class counts
/// `counts`, class sizes `(i+1)·unit`, and capacity `target`.
///
/// The zero configuration is excluded because it means "assign nothing"
/// (the recurrence in Equation 4 drops it).
pub fn enumerate_configs(counts: &[u32], unit: Time, target: Time) -> Vec<Config> {
    let sizes: Vec<Time> = (0..counts.len())
        .map(|idx| (idx as Time + 1) * unit)
        .collect();
    enumerate_configs_sized(counts, &sizes, target)
}

/// Like [`enumerate_configs`] but with explicit per-class sizes — used by the
/// DP solvers, which compact the class vector to active classes only.
pub fn enumerate_configs_sized(counts: &[u32], sizes: &[Time], target: Time) -> Vec<Config> {
    assert_eq!(counts.len(), sizes.len());
    let mut out = Vec::new();
    let mut current = vec![0u32; counts.len()];
    dfs(counts, sizes, target, 0, &mut current, &mut out);
    // The all-zero vector is generated first by the DFS; drop it.
    debug_assert!(out.first().is_none_or(|c| c.iter().all(|&s| s == 0)));
    if !out.is_empty() {
        out.remove(0);
    }
    out
}

fn dfs(
    counts: &[u32],
    sizes: &[Time],
    remaining: Time,
    class_idx: usize,
    current: &mut Config,
    out: &mut Vec<Config>,
) {
    if class_idx == counts.len() {
        out.push(current.clone());
        return;
    }
    let size = sizes[class_idx];
    let cap = remaining
        .checked_div(size)
        .unwrap_or(counts[class_idx] as Time);
    // audit:allow(cast): min(counts[i], cap) <= counts[i], which is a u32.
    let max_count = (counts[class_idx] as Time).min(cap) as u32;
    for s in 0..=max_count {
        current[class_idx] = s;
        dfs(
            counts,
            sizes,
            remaining - s as Time * size,
            class_idx + 1,
            current,
            out,
        );
    }
    current[class_idx] = 0;
}

/// The load of a configuration: `Σ (i+1)·unit·s_i` over 0-based indices.
pub fn config_load(config: &[u32], unit: Time) -> Time {
    config
        .iter()
        .enumerate()
        .map(|(idx, &s)| (idx as Time + 1) * unit * s as Time)
        .sum()
}

/// Number of jobs in a configuration.
pub fn config_jobs(config: &[u32]) -> u64 {
    config.iter().map(|&s| s as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Section III: N = (2, 3) over two active classes
    /// of sizes 6 and 11, T = 30. The paper lists C =
    /// {(0,1), (0,2), (1,0), (1,1), (1,2), (2,0), (2,1)} after dropping (0,0).
    #[test]
    fn paper_example_configs() {
        // Model the two active classes directly: sizes 6 and 11 are achieved
        // with unit = 1 and counts placed at classes 6 and 11 of a 16-class
        // vector — but simplest is a 2-class vector with unit chosen so the
        // sizes are 6·1 and ... not expressible. Instead verify against an
        // explicit filter over the same constraint.
        let counts = vec![2u32, 3];
        // class sizes with unit u are u and 2u; to get 6 and 11 we cannot use
        // a common unit, so check the DFS against brute force for unit = 6:
        // sizes 6 and 12, capacity 30.
        let configs = enumerate_configs(&counts, 6, 30);
        let mut expected = Vec::new();
        for a in 0..=2u32 {
            for b in 0..=3u32 {
                if (a, b) != (0, 0) && 6 * a as u64 + 12 * b as u64 <= 30 {
                    expected.push(vec![a, b]);
                }
            }
        }
        let mut got = configs.clone();
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    /// Full-fidelity version of the paper's example: a 16-class vector with
    /// unit 2, counts at class 3 (rounded size 6) and class 5 (rounded size
    /// 10), capacity 30. Machine configurations projected to the two active
    /// classes must match the paper's seven vectors.
    #[test]
    fn paper_example_sixteen_class_projection() {
        let mut counts = vec![0u32; 16];
        counts[2] = 2; // class 3, size 6
        counts[4] = 3; // class 5, size 10
        let configs = enumerate_configs(&counts, 2, 30);
        let mut projected: Vec<(u32, u32)> = configs.iter().map(|c| (c[2], c[4])).collect();
        projected.sort();
        // 6a + 10b <= 30, a <= 2, b <= 3, (a,b) != 0:
        // (0,1) (0,2) (0,3) (1,0) (1,1) (1,2) (2,0) (2,1)
        assert_eq!(
            projected,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1)
            ]
        );
    }

    #[test]
    fn zero_config_is_excluded() {
        let configs = enumerate_configs(&[1, 1], 1, 10);
        assert!(configs.iter().all(|c| c.iter().any(|&s| s > 0)));
    }

    #[test]
    fn empty_counts_yield_no_configs() {
        assert!(enumerate_configs(&[], 1, 10).is_empty());
        assert!(enumerate_configs(&[0, 0, 0], 1, 10).is_empty());
    }

    #[test]
    fn capacity_zero_yields_no_configs() {
        assert!(enumerate_configs(&[3, 3], 5, 4).is_empty());
    }

    #[test]
    fn all_configs_fit_and_respect_counts() {
        let counts = vec![3u32, 2, 1, 4];
        let unit = 3;
        let target = 25;
        for c in enumerate_configs(&counts, unit, target) {
            assert!(config_load(&c, unit) <= target);
            for (i, &s) in c.iter().enumerate() {
                assert!(s <= counts[i]);
            }
        }
    }

    #[test]
    fn config_helpers() {
        assert_eq!(config_load(&[1, 0, 2], 5), 5 + 30);
        assert_eq!(config_jobs(&[1, 0, 2]), 3);
    }

    #[test]
    fn count_matches_brute_force() {
        let counts = vec![2u32, 2, 2];
        let unit = 2;
        let target = 11;
        let dfs_count = enumerate_configs(&counts, unit, target).len();
        let mut brute = 0;
        for a in 0..=2u64 {
            for b in 0..=2u64 {
                for c in 0..=2u64 {
                    if (a, b, c) != (0, 0, 0) && 2 * a + 4 * b + 6 * c <= 11 {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(dfs_count, brute);
    }
}
