//! The state-space seam of the chassis: what a DP sweep needs to know about
//! a scenario, and the engines that drive a sweep.
//!
//! The wavefront DP is one instance of a general shape — walk a mixed-radix
//! table level by level, min-reduce over a transition set, add one. A
//! [`StateSpace`] packages the scenario-specific parts of that kernel: the
//! transition set (machine configurations with their flat table offsets) and
//! an optional per-step feasibility filter. A [`SpaceEngine`] is anything
//! that can fill a [`DpTable`] for any [`StateSpace`] — the serial reference
//! sweep lives here; `pcmax_parallel::ParallelDp` implements the same trait
//! with the paper's wavefront executors.
//!
//! * `P||Cmax` is [`PcmaxSpace`]: no filter, every transition is allowed —
//!   the kernels monomorphize back to exactly the pre-chassis code.
//! * `Q||Cmax` is [`QSpace`]: machines are sorted fastest-first, `caps[j]`
//!   is the work capacity of the `j`-th fastest machine at the probed
//!   target, and a transition out of a state with value `q` is allowed only
//!   if its load fits `caps[q]` — so `OPT(v)` becomes "the minimum prefix of
//!   fastest machines that can run `v`".

use crate::config::Config;
use crate::dp::{fits, increment, UNVISITED};
use crate::table::{DpScratch, DpTable, INFEASIBLE};
use pcmax_core::{Error, Result, Time};

/// A scenario's view of the DP state space: the transition set plus an
/// optional per-step filter evaluated against the predecessor's value.
///
/// The min-reduce kernel for every engine is:
///
/// ```text
/// OPT(v) = 1 + min { OPT(v−c) : c ∈ transitions, c ≤ v,
///                    step_allowed(c, OPT(v−c)) }
/// ```
///
/// `step_allowed` defaulting to `true` makes the `P||Cmax` instantiation
/// compile to the pre-chassis kernel bit for bit.
pub trait StateSpace: Sync {
    /// Transition set: each configuration with its flat table offset
    /// (strictly ascending, as produced by
    /// [`crate::dp::DpProblem::configs_with_offsets`]). The witness walk
    /// picks the *first* admissible transition, so the order is part of the
    /// contract.
    fn transitions(&self) -> &[(Config, usize)];

    /// Whether transition `t_idx` may be taken out of a predecessor state
    /// whose value is `below`. Called only after the componentwise
    /// `c ≤ v` check passes; `below` may be [`INFEASIBLE`] or
    /// [`UNVISITED`], which implementations must tolerate (returning either
    /// way is fine — the min-reduce ignores the sentinel values anyway, and
    /// the default accepts everything).
    #[inline]
    fn step_allowed(&self, _t_idx: usize, _below: u16) -> bool {
        true
    }

    /// The batched form of [`step_allowed`](Self::step_allowed) used by the
    /// strip kernel: given a whole strip of predecessor values for one
    /// transition, replace every lane the filter rejects with
    /// [`INFEASIBLE`], so the subsequent lane-parallel min ignores it. The
    /// saturating `min`/`+1` keep the sentinel absorbing, so a rejected
    /// lane can never resurface as a finite value.
    ///
    /// The provided default applies the scalar filter lane by lane — for
    /// [`PcmaxSpace`] it compiles to nothing. Implementations overriding
    /// `step_allowed` should override this too with a branch-free,
    /// lane-parallel form (see [`QSpace`]) but must stay *bit-identical* to
    /// the default: the equivalence proptests compare them lane for lane.
    #[inline]
    fn value_of_batch(&self, t_idx: usize, below: &mut [u16]) {
        for lane in below.iter_mut() {
            if !self.step_allowed(t_idx, *lane) {
                *lane = INFEASIBLE;
            }
        }
    }
}

/// The identical-machine (`P||Cmax`) state space: a bare transition set.
#[derive(Debug, Clone, Copy)]
pub struct PcmaxSpace<'a> {
    transitions: &'a [(Config, usize)],
}

impl<'a> PcmaxSpace<'a> {
    /// Wraps a transition set produced by
    /// [`crate::dp::DpProblem::configs_with_offsets`].
    pub fn new(transitions: &'a [(Config, usize)]) -> Self {
        Self { transitions }
    }
}

impl StateSpace for PcmaxSpace<'_> {
    #[inline]
    fn transitions(&self) -> &[(Config, usize)] {
        self.transitions
    }
}

/// The uniform-machine (`Q||Cmax`) state space.
///
/// Machines are sorted by non-increasing speed; `caps[j] = s_j · T` is the
/// work the `j`-th fastest machine completes by the target. Peeling argument:
/// `OPT(v) = q` means `v` runs on the `q` fastest machines, and the machine
/// with the smallest cap in that prefix (index `q−1`) holds a configuration
/// whose load fits `caps[q−1]` while the rest needs only the `q−1` fastest —
/// hence the filter `load(c) ≤ caps[OPT(v−c)]` (caps are non-increasing, so
/// any predecessor value `≤ q−1` only loosens the check).
#[derive(Debug, Clone)]
pub struct QSpace<'a> {
    transitions: &'a [(Config, usize)],
    /// `loads[t]` = work of transition `t` (Σ count·class-size).
    loads: Vec<Time>,
    /// Per-sorted-machine capacities, non-increasing.
    caps: &'a [Time],
    /// `allowed_prefix[t]` = number of machines whose cap fits transition
    /// `t`'s load. Because `caps` is non-increasing, `step_allowed(t, q)`
    /// is exactly `q < allowed_prefix[t]` — a single lane-parallel compare,
    /// which is what [`StateSpace::value_of_batch`] vectorizes over.
    allowed_prefix: Vec<u32>,
}

impl<'a> QSpace<'a> {
    /// Builds the space from a transition set over *active* classes, the
    /// table's active-class sizes, and the sorted (non-increasing) machine
    /// capacities.
    pub fn new(transitions: &'a [(Config, usize)], sizes: &[Time], caps: &'a [Time]) -> Self {
        debug_assert!(
            caps.windows(2).all(|w| w[0] >= w[1]),
            "caps must be sorted fastest-first (non-increasing)"
        );
        let loads: Vec<Time> = transitions
            .iter()
            .map(|(c, _)| {
                c.iter()
                    .zip(sizes)
                    .map(|(&s, &size)| s as Time * size)
                    .sum()
            })
            .collect();
        // Non-increasing caps make the allowed machine set a prefix; its
        // length is all the batch filter needs. u32 keeps the lane compare
        // wide enough for any machine count a u16 DP value can reach.
        let allowed_prefix = loads
            .iter()
            .map(|&load| {
                let n = caps.iter().take_while(|&&cap| load <= cap).count();
                u32::try_from(n).unwrap_or(u32::MAX)
            })
            .collect();
        Self {
            transitions,
            loads,
            caps,
            allowed_prefix,
        }
    }
}

impl StateSpace for QSpace<'_> {
    #[inline]
    fn transitions(&self) -> &[(Config, usize)] {
        self.transitions
    }

    #[inline]
    fn step_allowed(&self, t_idx: usize, below: u16) -> bool {
        // Sentinel values (INFEASIBLE/UNVISITED) exceed any machine count and
        // fall out on the bounds check.
        (below as usize) < self.caps.len() && self.loads[t_idx] <= self.caps[below as usize]
    }

    #[inline]
    fn value_of_batch(&self, t_idx: usize, below: &mut [u16]) {
        // Branch-free prefix test: q is allowed iff q < allowed_prefix[t].
        // Sentinels (INFEASIBLE/UNVISITED) exceed every prefix and map to
        // INFEASIBLE, exactly like the scalar default.
        let prefix = self.allowed_prefix[t_idx];
        for lane in below.iter_mut() {
            if (*lane as u32) >= prefix {
                *lane = INFEASIBLE;
            }
        }
    }
}

/// An engine that can fill a [`DpTable`] for any [`StateSpace`]: seeds
/// `OPT(0) = 0` and computes every other entry with the min-reduce kernel.
/// Engines may require a specific storage order via
/// [`level_major`](SpaceEngine::level_major).
pub trait SpaceEngine {
    /// Stable name for harness output.
    fn engine_name(&self) -> &'static str;

    /// Whether tables for this engine should be built in level-major order
    /// (`DpProblem::build_level_major_table_in`).
    fn level_major(&self) -> bool {
        false
    }

    /// Fills `table` (fresh from a builder, all entries unwritten except
    /// whatever the builder put there) for `space`, accounting counters to
    /// `scratch`.
    fn sweep<S: StateSpace>(&self, table: &mut DpTable, space: &S, scratch: &mut DpScratch);
}

/// The sequential reference engine: a single ascending row-major pass (every
/// dependency of an entry has a smaller flat index). Exactly
/// [`crate::IterativeDp`] generalized over the space.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialEngine;

impl SpaceEngine for SerialEngine {
    fn engine_name(&self) -> &'static str {
        "dp-serial"
    }

    fn sweep<S: StateSpace>(&self, table: &mut DpTable, space: &S, _scratch: &mut DpScratch) {
        serial_sweep(table, space);
    }
}

/// The generic serial sweep (row-major ascending order). With
/// [`PcmaxSpace`] this monomorphizes to the pre-chassis `IterativeDp` loop.
pub fn serial_sweep<S: StateSpace>(table: &mut DpTable, space: &S) {
    table.values[0] = 0;
    let transitions = space.transitions();
    // Incremental mixed-radix counter tracking the current vector.
    let mut v = vec![0u32; table.dims.len()];
    for idx in 1..table.len {
        increment(&mut v, &table.dims);
        let mut best = INFEASIBLE;
        for (t_idx, (c, offset)) in transitions.iter().enumerate() {
            if fits(c, &v) {
                let below = table.values[idx - offset];
                if space.step_allowed(t_idx, below) {
                    best = best.min(below);
                }
            }
        }
        table.values[idx] = best.saturating_add(1);
    }
}

/// Witness extraction generalized over the space: walk the optimal path back
/// from `N`, at each step taking the *first* transition that decreases the
/// value by one and passes the space's step filter. With [`PcmaxSpace`] this
/// is exactly [`crate::dp::extract_schedule`]; with [`QSpace`] the
/// transition extracted at value `q` is the configuration of the `q−1`-th
/// fastest machine (its load fits `caps[q−1]` by the filter).
pub fn extract_schedule_with<S: StateSpace>(
    table: &DpTable,
    space: &S,
    classes: usize,
) -> Result<Vec<Config>> {
    let mut out = Vec::new();
    let mut idx = table.last_index();
    let mut v = table.decode(idx);
    while idx != 0 {
        let current = table.value_at(idx);
        if current >= UNVISITED {
            return Err(Error::InvalidWitness {
                reason: format!("walked into an unevaluated entry at index {idx}"),
            });
        }
        let step = space
            .transitions()
            .iter()
            .enumerate()
            .find(|(t_idx, (c, offset))| {
                fits(c, &v)
                    && table.value_at(idx - offset) == current - 1
                    && space.step_allowed(*t_idx, current - 1)
            });
        let (_, (c, offset)) = step.ok_or_else(|| Error::InvalidWitness {
            reason: format!("no configuration decreases OPT below index {idx}"),
        })?;
        out.push(table.expand(c, classes));
        idx -= offset;
        for (va, ca) in v.iter_mut().zip(c) {
            *va -= ca;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{DpProblem, DpSolver, IterativeDp};

    fn paper_problem() -> DpProblem {
        let mut counts = vec![0u32; 16];
        counts[2] = 2; // class 3, rounded size 6
        counts[4] = 3; // class 5, rounded size 10
        DpProblem::new(counts, 2, 30, 4)
    }

    #[test]
    fn serial_sweep_on_pcmax_space_matches_iterative_dp() {
        let problem = paper_problem();
        let mut table = problem.build_table().unwrap();
        let configs = problem.configs_with_offsets(&table);
        serial_sweep(&mut table, &PcmaxSpace::new(&configs));
        assert_eq!(
            table.values_row_major(),
            vec![0, 1, 1, 1, 1, 1, 1, 2, 1, 1, 2, 2],
            "Table I of the paper"
        );
        let seq = IterativeDp.solve(&problem).unwrap();
        assert_eq!(seq.machines, 2);
    }

    #[test]
    fn extract_with_pcmax_space_matches_legacy_extraction() {
        let problem = paper_problem();
        let mut table = problem.build_table().unwrap();
        let configs = problem.configs_with_offsets(&table);
        serial_sweep(&mut table, &PcmaxSpace::new(&configs));
        let generic =
            extract_schedule_with(&table, &PcmaxSpace::new(&configs), problem.counts.len())
                .unwrap();
        let legacy = crate::dp::extract_schedule(&table, &configs, problem.counts.len()).unwrap();
        assert_eq!(generic, legacy);
    }

    #[test]
    fn q_space_caps_bind_the_value() {
        // Two jobs of (active) size 10 with machine caps (20, 10): both fit
        // on the fast machine, or split across both. Identical caps (10, 10)
        // forbid pairing them (2·10 > 10), forcing two machines.
        let problem = DpProblem::new(vec![2], 10, 20, 4);
        let mut table = problem.build_table().unwrap();
        let configs = problem.configs_with_offsets(&table);
        let caps_fast = [20u64, 10];
        let space = QSpace::new(&configs, &table.sizes, &caps_fast);
        serial_sweep(&mut table, &space);
        assert_eq!(
            table.value_at(table.last_index()),
            1,
            "both on the fast machine"
        );

        let mut table2 = problem.build_table().unwrap();
        let caps_slow = [10u64, 10];
        let space2 = QSpace::new(&configs, &table2.sizes, &caps_slow);
        serial_sweep(&mut table2, &space2);
        assert_eq!(
            table2.value_at(table2.last_index()),
            2,
            "one job per machine"
        );
    }

    #[test]
    fn q_space_runs_out_of_machines() {
        // Three unit-size jobs, every cap fits exactly one: with only two
        // machines the full vector is unreachable.
        let problem = DpProblem::new(vec![3], 1, 1, 2);
        let mut table = problem.build_table().unwrap();
        let configs = problem.configs_with_offsets(&table);
        let caps = [1u64, 1];
        let space = QSpace::new(&configs, &table.sizes, &caps);
        serial_sweep(&mut table, &space);
        // Both sentinels mark unreachability; UNVISITED is the smaller one.
        assert!(table.value_at(table.last_index()) >= UNVISITED);
    }

    #[test]
    fn q_witness_orders_configs_slowest_prefix_first() {
        // Sizes 10 and 4 (unit 2, classes 5 and 2) with caps (12, 4): the
        // pair (load 14) overflows the fast machine and the slow machine can
        // only take the small job. Extraction at value 2 must peel the small
        // job for cap index 1 even though the size-10 config walks first.
        let mut counts = vec![0u32; 5];
        counts[4] = 1; // size 10
        counts[1] = 1; // size 4
        let problem = DpProblem::new(counts, 2, 12, 2);
        let mut table = problem.build_table().unwrap();
        let configs = problem.configs_with_offsets(&table);
        let caps = [12u64, 4];
        let space = QSpace::new(&configs, &table.sizes, &caps);
        serial_sweep(&mut table, &space);
        assert_eq!(table.value_at(table.last_index()), 2);
        let witness = extract_schedule_with(&table, &space, 5).unwrap();
        assert_eq!(witness.len(), 2);
        // witness[0] is peeled at value 2 -> sorted machine 1 (cap 4): must
        // be the size-4 job; witness[1] lands on the fast machine.
        assert_eq!(witness[0], vec![0, 1, 0, 0, 0]);
        assert_eq!(witness[1], vec![0, 0, 0, 0, 1]);
    }
}
