//! The scenario seam of the chassis: the bisection driver (Algorithm 1)
//! generalized over *what* is being bisected.
//!
//! A [`Scenario`] packages the scheduling-model-specific parts of a
//! dual-approximation run: the initial makespan bracket, a feasibility
//! `probe` at a target (rounding + DP + witness extraction), and the
//! `reconstruct` step that turns a probe's witness back into a schedule over
//! the original jobs. [`drive`] is the model-agnostic part — the bisection
//! loop, the budget/cancellation gates, the trace spans, the re-probe that
//! re-establishes the invariant at the converged target, and the stats
//! bookkeeping — extracted verbatim from the original `P||Cmax` driver so
//! `Ptas::solve_with` stays bit-identical.

use crate::config::Config;
use crate::driver::{BisectionLog, BisectionProbe, PtasOutput};
use crate::table::DpScratch;
use pcmax_core::{
    Error, Instance, MakespanBounds, ProfileKey, ProfileVerdict, Result, Schedule, SolveRequest,
    SolveStats, Time,
};
use pcmax_metrics::Counter;
use std::time::{Duration, Instant};

/// Bisection probes across all dual-approximation solves.
static BISECTION_PROBES: Counter = Counter::new(
    "pcmax_bisection_probes_total",
    "Feasibility probes evaluated by the bisection chassis",
);

/// DP levels swept across all solves (aggregate of `dp_levels_swept`).
static DP_LEVELS: Counter = Counter::new(
    "pcmax_dp_levels_total",
    "Wavefront DP levels swept across all solves",
);

/// DP cells computed across all solves (aggregate of `dp_cells`).
static DP_CELLS: Counter = Counter::new(
    "pcmax_dp_cells_total",
    "DP cells computed across all solves",
);

/// Kernel scratch allocations across all solves.
static DP_KERNEL_ALLOCS: Counter = Counter::new(
    "pcmax_dp_kernel_allocs_total",
    "Kernel scratch buffer allocations across all solves",
);

/// Probes answered from the instance-profile cache across all solves.
static PROFILE_CACHE_HITS: Counter = Counter::new(
    "pcmax_profile_cache_hits_total",
    "DP probes answered from the instance-profile cache",
);

/// Probes that consulted the instance-profile cache and missed.
static PROFILE_CACHE_MISSES: Counter = Counter::new(
    "pcmax_profile_cache_misses_total",
    "DP probes that consulted the instance-profile cache and missed",
);

/// A dual-approximation scheduling scenario the generic [`drive`] loop can
/// bisect: `P||Cmax` (the original PTAS), `Q||Cmax` (uniform machines), or
/// anything else with a monotone feasibility predicate over target makespans.
pub trait Scenario {
    /// Whatever the probe must hand to [`reconstruct`](Self::reconstruct)
    /// to rebuild a schedule over the original jobs.
    type Witness;

    /// Initial bisection bracket. The default — the speed-aware
    /// [`MakespanBounds`] — is correct for both identical and uniform
    /// machines; the contract [`drive`] relies on is that a probe at
    /// `upper` is always feasible.
    fn bounds(&self, inst: &Instance) -> MakespanBounds {
        MakespanBounds::of(inst)
    }

    /// DP-table entry count at `target`, used to pre-size the scratch arena
    /// so every probe of the run reuses one allocation. `None` skips the
    /// reservation (probes then allocate on first use).
    fn reserve_hint(&self, inst: &Instance, target: Time) -> Option<usize>;

    /// Probes feasibility at `target`: rounds the instance, runs the DP, and
    /// returns `OPT(N)` (machine count, `u32::MAX` for unschedulable)
    /// together with a witness iff the target is feasible.
    fn probe(
        &self,
        inst: &Instance,
        target: Time,
        scratch: &mut DpScratch,
    ) -> Result<(u32, Option<Self::Witness>)>;

    /// Rebuilds a full schedule from the witness of a feasible probe at
    /// `target` (long jobs from the witness, short jobs greedily on top).
    fn reconstruct(
        &self,
        inst: &Instance,
        witness: Self::Witness,
        target: Time,
    ) -> Result<Schedule>;

    /// The instance-profile cache key of the rounded subproblem at
    /// `target`, or `None` when this scenario (or this particular probe)
    /// does not support profile caching. Implementations must guarantee
    /// that equal keys imply bit-identical probe verdicts *and* extracted
    /// witness configs — see `pcmax_core::profile` for the soundness
    /// argument. The default opts out.
    fn profile_key(&self, inst: &Instance, target: Time) -> Option<ProfileKey> {
        let _ = (inst, target);
        None
    }

    /// Rebuilds a probe witness from cached configs: replays the cheap
    /// O(n) rounding for the per-instance reconstruction map and skips the
    /// DP. Returning `None` forces a real probe. The default opts out.
    fn rehydrate(
        &self,
        inst: &Instance,
        target: Time,
        configs: &[Config],
    ) -> Option<Self::Witness> {
        let _ = (inst, target, configs);
        None
    }

    /// The extracted per-machine configs inside a witness, for populating
    /// the cache after a miss. The default opts out (nothing is stored).
    fn witness_configs<'w>(&self, witness: &'w Self::Witness) -> Option<&'w [Config]> {
        let _ = witness;
        None
    }
}

/// Runs a full dual-approximation solve for any [`Scenario`] under an engine
/// request: bisect the bracket, probing feasibility with budget and
/// cancellation gates before every probe, then reconstruct from the witness
/// at the converged target. Returns the schedule, the certified target `T*`,
/// the probe log, and per-phase stats.
pub fn drive<Sc: Scenario>(sc: &Sc, req: &SolveRequest<'_>) -> Result<(PtasOutput, SolveStats)> {
    let inst = req.instance;
    let run_start = Instant::now();
    let mut stats = SolveStats::default();
    req.check_cancelled()?;
    if inst.jobs() == 0 {
        stats.wall = run_start.elapsed();
        return Ok((
            PtasOutput {
                schedule: Schedule::from_assignment(vec![], inst.machines())?,
                target: 0,
                log: BisectionLog::default(),
            },
            stats,
        ));
    }
    let MakespanBounds {
        mut lower,
        mut upper,
    } = sc.bounds(inst);
    let mut log = BisectionLog::default();
    // Last feasible witness and the target it certifies.
    let mut best: Option<(Sc::Witness, Time)> = None;

    // One arena for the whole run. Reserving the largest table of the
    // bracket (table size grows as the target shrinks, and no probe goes
    // below the initial lower bound) makes every probe a reuse.
    let mut scratch = DpScratch::new();
    if let Some(entries) = sc.reserve_hint(inst, lower.max(1)) {
        scratch.reserve(entries);
    }
    // Keys this solve stored itself: the converged-target re-probe may
    // revisit a target the bisection loop already probed, and reading back
    // our own verdict would report a cross-request `cache_hit` on a cold
    // cache. Self-stored keys bypass the cache instead (same work as an
    // uncached solve).
    let mut self_stored: Vec<ProfileKey> = Vec::new();

    let bisect_start = Instant::now();
    let bisect_span = req.trace_span("bisection", 0);
    // Wall time spent inside probes only, reported as the `"dp"` phase:
    // `dp_cells_per_sec` divides by the *total* solve wall and so
    // understates DP throughput; `dp_phase_cells_per_sec` divides by this.
    let mut dp_wall = Duration::ZERO;
    while lower < upper {
        check_budget(req, &scratch, lower, upper)?;
        let t = (lower + upper) / 2;
        let probe_span = req.trace_span("probe", t);
        let dp_start = Instant::now();
        let (dp_machines, witness) =
            probe_cached(sc, req, inst, t, &mut scratch, &mut stats, &mut self_stored)?;
        dp_wall += dp_start.elapsed();
        drop(probe_span);
        log.probes.push(BisectionProbe {
            target: t,
            dp_machines,
            feasible: witness.is_some(),
        });
        match witness {
            Some(w) => {
                upper = t;
                best = Some((w, t));
            }
            None => lower = t + 1,
        }
    }

    let target = upper;
    // The loop's invariant keeps `best` at T = final upper whenever the
    // loop body ran and found a feasible probe; otherwise (zero-width
    // bracket, or all probes infeasible) certify the final target
    // directly — the initial UB is always feasible, so this succeeds.
    let (witness, t_star) = match best {
        Some(b) if b.1 == target => b,
        _ => {
            check_budget(req, &scratch, lower, upper)?;
            let probe_span = req.trace_span("probe", target);
            let dp_start = Instant::now();
            let (dp_machines, witness) = probe_cached(
                sc,
                req,
                inst,
                target,
                &mut scratch,
                &mut stats,
                &mut self_stored,
            )?;
            dp_wall += dp_start.elapsed();
            drop(probe_span);
            log.probes.push(BisectionProbe {
                target,
                dp_machines,
                feasible: witness.is_some(),
            });
            let witness = witness.ok_or_else(|| Error::InvalidWitness {
                reason: format!(
                    "converged target {target} probed infeasible, breaking the \
                     bisection invariant"
                ),
            })?;
            (witness, target)
        }
    };
    drop(bisect_span);
    stats.push_phase("bisection", bisect_start.elapsed());
    stats.push_phase("dp", dp_wall);

    // Reconstruction runs under the same budget/cancel regime as the
    // probes. This matters most on the cache path: a solve whose every
    // probe was a hit reaches this point having spent almost no budget,
    // and a cancel raised during the bisection must still abort the
    // (per-instance, never cached) witness reconstruction.
    check_budget(req, &scratch, t_star, t_star)?;
    let recon_start = Instant::now();
    let recon_span = req.trace_span("reconstruct", 0);
    let schedule = sc.reconstruct(inst, witness, t_star)?;
    drop(recon_span);
    stats.push_phase("reconstruct", recon_start.elapsed());

    stats.bisection_probes = log.evaluations() as u64;
    stats.dp_entries_touched = scratch.entries_touched;
    stats.dp_tables_allocated = scratch.tables_allocated;
    stats.dp_tables_reused = scratch.tables_reused;
    stats.dp_levels_swept = scratch.levels_swept;
    stats.dp_cells = scratch.cells_computed;
    stats.pool_parks = scratch.pool_parks;
    stats.pool_wakes = scratch.pool_wakes;
    stats.dp_kernel_allocs = scratch.kernel_allocs;
    stats.wall = run_start.elapsed();
    // Aggregate per-solve totals into the process-wide registry — once per
    // solve, well off the probe/cell hot paths.
    BISECTION_PROBES.inc_by(stats.bisection_probes);
    DP_LEVELS.inc_by(stats.dp_levels_swept);
    DP_CELLS.inc_by(stats.dp_cells);
    DP_KERNEL_ALLOCS.inc_by(stats.dp_kernel_allocs);
    PROFILE_CACHE_HITS.inc_by(stats.cache_hits);
    PROFILE_CACHE_MISSES.inc_by(stats.cache_misses);
    Ok((
        PtasOutput {
            schedule,
            target: t_star,
            log,
        },
        stats,
    ))
}

/// One feasibility probe, routed through the request's instance-profile
/// cache when both the request carries one and the scenario exposes a
/// [`profile_key`](Scenario::profile_key) for this target. A hit skips the
/// DP and [rehydrates](Scenario::rehydrate) the witness from the cached
/// configs (replaying only the O(n) rounding); a miss runs the real probe
/// and stores its verdict. Hits/misses are counted into `stats` *for this
/// solve* — a hit never reuses the populating solve's stats, and a key in
/// `self_stored` (written by this very solve) bypasses the cache so a cold
/// request never reports a hit against itself.
#[allow(clippy::too_many_arguments)]
fn probe_cached<Sc: Scenario>(
    sc: &Sc,
    req: &SolveRequest<'_>,
    inst: &Instance,
    target: Time,
    scratch: &mut DpScratch,
    stats: &mut SolveStats,
    self_stored: &mut Vec<ProfileKey>,
) -> Result<(u32, Option<Sc::Witness>)> {
    let keyed = match &req.cache {
        Some(cache) => sc
            .profile_key(inst, target)
            .filter(|key| !self_stored.contains(key))
            .map(|key| (cache, key)),
        None => None,
    };
    if let Some((cache, key)) = &keyed {
        if let Some(verdict) = cache.get(key) {
            let rehydrated = match verdict {
                ProfileVerdict::Infeasible { machines } => Some((machines, None)),
                ProfileVerdict::Feasible { machines, configs } => sc
                    .rehydrate(inst, target, &configs)
                    .map(|w| (machines, Some(w))),
            };
            // A verdict the scenario cannot rehydrate (shouldn't happen
            // with a sound key) falls through to a real probe.
            if let Some(hit) = rehydrated {
                stats.cache_hits += 1;
                return Ok(hit);
            }
        }
        stats.cache_misses += 1;
    }
    let (machines, witness) = sc.probe(inst, target, scratch)?;
    if let Some((cache, key)) = keyed {
        let verdict = match &witness {
            None => Some(ProfileVerdict::Infeasible { machines }),
            Some(w) => sc
                .witness_configs(w)
                .map(|configs| ProfileVerdict::Feasible {
                    machines,
                    configs: configs.to_vec(),
                }),
        };
        if let Some(verdict) = verdict {
            self_stored.push(key.clone());
            cache.put(key, verdict);
        }
    }
    Ok((machines, witness))
}

/// Pre-probe budget gate: cancellation, wall-clock deadline and the
/// DP-entry limit. `[lower, upper]` is the current bracket, reported in
/// the budget-exhausted error as the best-known bounds.
fn check_budget(
    req: &SolveRequest<'_>,
    scratch: &DpScratch,
    lower: Time,
    upper: Time,
) -> Result<()> {
    req.check_cancelled()?;
    let entries_exhausted = req
        .budget
        .entry_limit
        .is_some_and(|limit| scratch.entries_touched >= limit as u64);
    if req.budget.deadline_exceeded() || entries_exhausted {
        return Err(Error::BudgetExhausted {
            incumbent: upper,
            lower_bound: lower,
        });
    }
    Ok(())
}
