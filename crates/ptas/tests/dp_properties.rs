//! Property tests for the configuration DP: the solvers must agree with
//! each other and with a brute-force bin-packing reference on randomized
//! rounded problems.

use pcmax_ptas::dp::{
    verify_witness, DpProblem, DpSolver, IterativeDp, MemoizedDp, RegenerateConfigsDp,
};
use proptest::prelude::*;

/// Brute force: minimum machines to pack the rounded jobs (expanded to a
/// flat list of sizes) within `target`.
fn brute_min_machines(counts: &[u32], unit: u64, target: u64) -> Option<u32> {
    let mut sizes = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            sizes.push((i as u64 + 1) * unit);
        }
    }
    if sizes.is_empty() {
        return Some(0);
    }
    if sizes.iter().any(|&s| s > target) {
        return None;
    }
    // Try k = 1, 2, ... machines with plain DFS.
    fn fits(sizes: &[u64], loads: &mut Vec<u64>, cap: u64) -> bool {
        match sizes.split_first() {
            None => true,
            Some((&s, rest)) => {
                for i in 0..loads.len() {
                    if loads[i] + s <= cap {
                        loads[i] += s;
                        if fits(rest, loads, cap) {
                            loads[i] -= s;
                            return true;
                        }
                        loads[i] -= s;
                    }
                    if loads[i] == 0 {
                        break; // empty bins are interchangeable
                    }
                }
                false
            }
        }
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    for k in 1..=sizes.len() as u32 {
        if fits(&sizes, &mut vec![0; k as usize], target) {
            return Some(k);
        }
    }
    None
}

fn arb_problem() -> impl Strategy<Value = DpProblem> {
    (prop::collection::vec(0u32..=3, 2..=4), 1u64..=4, 5u64..=30)
        .prop_map(|(counts, unit, target)| DpProblem::new(counts, unit, target, 1000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dp_matches_brute_force(problem in arb_problem()) {
        // Skip problems with a job larger than the capacity (rounding never
        // produces them; the DP reports infeasible via the sentinel).
        let max_size = problem
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| (i as u64 + 1) * problem.unit)
            .max()
            .unwrap_or(0);
        prop_assume!(max_size <= problem.target);

        let got = IterativeDp.solve(&problem).unwrap().machines;
        let want = brute_min_machines(&problem.counts, problem.unit, problem.target)
            .expect("all jobs fit individually");
        prop_assert_eq!(got, want, "counts={:?} unit={} target={}",
            problem.counts, problem.unit, problem.target);
    }

    #[test]
    fn all_three_sequential_solvers_agree(problem in arb_problem()) {
        let a = IterativeDp.solve(&problem).unwrap();
        let b = MemoizedDp.solve(&problem).unwrap();
        let c = RegenerateConfigsDp.solve(&problem).unwrap();
        prop_assert_eq!(a.machines, b.machines);
        prop_assert_eq!(a.machines, c.machines);
    }

    #[test]
    fn witnesses_are_always_valid(problem in arb_problem()) {
        let out = IterativeDp.solve(&problem).unwrap();
        if let Some(witness) = &out.schedule {
            prop_assert!(verify_witness(&problem, witness));
            prop_assert_eq!(witness.len() as u32, out.machines);
        }
    }

    #[test]
    fn opt_is_monotone_in_the_vector(problem in arb_problem()) {
        // Removing one job never increases OPT.
        let base = IterativeDp.solve(&problem).unwrap().machines;
        for (i, &c) in problem.counts.clone().iter().enumerate() {
            if c > 0 {
                let mut smaller = problem.clone();
                smaller.counts[i] -= 1;
                let sub = IterativeDp.solve(&smaller).unwrap().machines;
                prop_assert!(sub <= base,
                    "removing a class-{i} job raised OPT: {sub} > {base}");
            }
        }
    }

    #[test]
    fn larger_target_never_needs_more_machines(problem in arb_problem()) {
        let tight = IterativeDp.solve(&problem).unwrap().machines;
        let mut relaxed = problem.clone();
        relaxed.target += problem.unit;
        let loose = IterativeDp.solve(&relaxed).unwrap().machines;
        // Note: the *counts and unit are held fixed* here (pure DP
        // monotonicity); the full PTAS re-rounds per target, where
        // monotonicity is not guaranteed and not required.
        if tight != u32::MAX {
            prop_assert!(loose <= tight);
        }
    }
}
