//! Property tests for the level-major memory layout: the permutation built
//! by `DpTable::build_level_layout` must be a bijection on `0..σ` whose
//! level buckets partition the table by digit sum, with row-major rank
//! order preserved inside every bucket — the invariants the parallel
//! scatter's disjoint-write argument rests on.

use pcmax_ptas::dp::DpProblem;
use pcmax_ptas::table::DpScratch;
use proptest::prelude::*;

/// Digit sum of a row-major rank under the table's mixed radix.
fn level_of(mut rank: usize, strides: &[usize]) -> u32 {
    let mut sum = 0usize;
    for &stride in strides {
        sum += rank / stride;
        rank %= stride;
    }
    sum as u32
}

fn arb_counts() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..=4, 1..=6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn level_layout_is_a_bijection_partitioned_by_level(counts in arb_counts()) {
        let problem = DpProblem::new(counts, 1, 1_000, 64);
        let mut scratch = DpScratch::new();
        let table = problem
            .build_level_major_table_in(&mut scratch)
            .expect("small tables always fit the guard");
        let layout = table.layout.as_ref().expect("level-major build sets layout");
        let sigma = table.len;

        // Bijection: inv ∘ perm and perm ∘ inv are both the identity, so in
        // particular every storage position is hit by exactly one rank.
        prop_assert_eq!(layout.perm().len(), sigma);
        prop_assert_eq!(layout.inv().len(), sigma);
        for rank in 0..sigma {
            let pos = layout.perm()[rank] as usize;
            prop_assert!(pos < sigma);
            prop_assert_eq!(layout.inv()[pos] as usize, rank);
        }
        for pos in 0..sigma {
            let rank = layout.inv()[pos] as usize;
            prop_assert_eq!(layout.perm()[rank] as usize, pos);
        }

        // The starts array is a monotone partition of 0..σ and every bucket
        // holds exactly the ranks of its digit sum.
        let max_level: u32 = table.dims.iter().map(|&d| d - 1).sum();
        let starts = layout.starts();
        prop_assert_eq!(starts.len() as u32, max_level + 2);
        prop_assert_eq!(starts[0], 0);
        prop_assert_eq!(*starts.last().unwrap() as usize, sigma);
        for level in 0..=max_level {
            let span = layout.level_span(level);
            prop_assert!(span.start <= span.end);
            let bucket = &layout.inv()[span];
            for &rank in bucket {
                prop_assert_eq!(
                    level_of(rank as usize, &table.strides),
                    level,
                    "rank {} landed in the wrong bucket",
                    rank
                );
            }
            // Inside a bucket, ascending position must mean ascending
            // row-major rank — the order the cell kernel's incremental
            // decode walks.
            prop_assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "bucket for level {} is not rank-sorted",
                level
            );
        }
    }

    #[test]
    fn value_at_round_trips_through_the_permutation(counts in arb_counts()) {
        let problem = DpProblem::new(counts, 1, 1_000, 64);
        let mut scratch = DpScratch::new();
        let mut table = problem
            .build_level_major_table_in(&mut scratch)
            .expect("small tables always fit the guard");
        // Stamp each cell with its own rank (mod the u16 range) through the
        // translating writer, then read both ways.
        for rank in 0..table.len {
            let pos = table.position_of(rank);
            table.values[pos] = (rank % 60_000) as u16;
        }
        let row_major = table.values_row_major();
        prop_assert_eq!(row_major.len(), table.len);
        for (rank, &value) in row_major.iter().enumerate() {
            prop_assert_eq!(table.value_at(rank), (rank % 60_000) as u16);
            prop_assert_eq!(value, (rank % 60_000) as u16);
        }
    }
}
