//! Property tests for the `StateSpace::value_of_batch` seam: every override
//! must stay bit-identical to the provided default (the scalar
//! `step_allowed` filter applied lane by lane) — the contract the batched
//! strip kernel's correctness rests on. Lane vectors include the
//! `INFEASIBLE`/`UNVISITED` sentinels and ragged (non-multiple-of-16)
//! lengths, since the kernel hands the filter whole strips of raw
//! predecessor values.

use pcmax_ptas::dp::DpProblem;
use pcmax_ptas::space::{PcmaxSpace, QSpace, StateSpace};
use pcmax_ptas::table::INFEASIBLE;
use proptest::prelude::*;

/// The trait-provided default, restated: scalar filter, lane by lane.
fn scalar_default<S: StateSpace>(space: &S, t_idx: usize, lanes: &[u16]) -> Vec<u16> {
    lanes
        .iter()
        .map(|&lane| {
            if space.step_allowed(t_idx, lane) {
                lane
            } else {
                INFEASIBLE
            }
        })
        .collect()
}

fn arb_counts() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..=4, 1..=5)
}

/// Raw predecessor lanes: the full `u16` range keeps both sentinels and
/// every machine count in play; lengths straddle the strip width.
fn arb_lanes() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(any::<u16>(), 1..=48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn q_space_batch_filter_matches_the_scalar_default(
        counts in arb_counts(),
        mut caps in prop::collection::vec(0u64..=30, 1..=6),
        lanes in arb_lanes(),
    ) {
        caps.sort_unstable_by(|a, b| b.cmp(a));
        let problem = DpProblem::new(counts, 1, 25, 64);
        let table = problem.build_table().expect("small table fits");
        let configs = problem.configs_with_offsets(&table);
        let space = QSpace::new(&configs, &table.sizes, &caps);
        for t_idx in 0..space.transitions().len() {
            let want = scalar_default(&space, t_idx, &lanes);
            let mut got = lanes.clone();
            space.value_of_batch(t_idx, &mut got);
            prop_assert_eq!(
                &got,
                &want,
                "transition {} diverged on caps {:?}",
                t_idx,
                &caps
            );
        }
    }

    #[test]
    fn pcmax_batch_filter_is_the_identity(
        counts in arb_counts(),
        lanes in arb_lanes(),
    ) {
        // The identical-machine space accepts every step, so the batch
        // filter must leave all lanes untouched — including the sentinels.
        let problem = DpProblem::new(counts, 1, 1_000, 64);
        let table = problem.build_table().expect("small table fits");
        let configs = problem.configs_with_offsets(&table);
        let space = PcmaxSpace::new(&configs);
        for t_idx in 0..space.transitions().len() {
            let mut got = lanes.clone();
            space.value_of_batch(t_idx, &mut got);
            prop_assert_eq!(&got, &lanes, "transition {} rewrote a lane", t_idx);
        }
    }
}
