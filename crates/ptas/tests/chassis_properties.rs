//! Property tests for the chassis seams: the [`Rounding`] trait's
//! round-trip guarantees on `P||Cmax` and `Q||Cmax`, and the capacity
//! semantics of the [`QSpace`] state space against the identical-machine
//! [`PcmaxSpace`] it generalizes.

use pcmax_core::{Instance, Scheduler};
use pcmax_ptas::dp::DpProblem;
use pcmax_ptas::rounding::{PcmaxRounding, Rounding};
use pcmax_ptas::space::{serial_sweep, PcmaxSpace, QSpace};
use pcmax_ptas::table::{DpScratch, INFEASIBLE};
use pcmax_ptas::{EpsilonParams, Ptas, QPtas};
use proptest::prelude::*;

fn arb_times() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..=30, 1..=9)
}

fn arb_speeds() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..=4, 1..=4)
}

/// A probe point the bisection is allowed to reach: at least the largest
/// job and the average machine load, so rounding's invariants hold.
fn feasible_target(inst: &Instance) -> u64 {
    inst.max_time()
        .max(inst.total_time().div_ceil(inst.machines() as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pcmax_rounding_round_trips(
        times in arb_times(),
        m in 1usize..=4,
        eps in (0usize..3).prop_map(|i| [0.2f64, 0.3, 0.5][i]),
    ) {
        let inst = Instance::new(times, m).unwrap();
        let params = EpsilonParams::new(eps).unwrap();
        let target = feasible_target(&inst);
        let (counts, unit, (rounded, partition)) =
            PcmaxRounding { params: &params }.round_at(&inst, target);

        // The class vector is what the DP sees; it must mirror the map.
        prop_assert_eq!(counts.len(), params.classes());
        prop_assert_eq!(&counts, &rounded.counts);
        prop_assert_eq!(unit, rounded.unit);

        // The partition is exhaustive and disjoint, split exactly at T/k.
        let mut all: Vec<usize> =
            partition.long.iter().chain(&partition.short).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..inst.jobs()).collect::<Vec<_>>());
        for &j in &partition.long {
            prop_assert!(params.is_long(inst.time(j), target));
        }
        for &j in &partition.short {
            prop_assert!(!params.is_long(inst.time(j), target));
        }

        // Round trip: every member sits in [class·unit, class·unit + unit),
        // i.e. rounding down loses strictly less than one unit per job, and
        // the counts vector tallies the members exactly.
        for (ci, members) in rounded.members.iter().enumerate() {
            let size = rounded.class_size(ci + 1);
            for &j in members {
                let t = inst.time(j);
                prop_assert!(
                    size <= t && t < size + unit,
                    "job {} of size {} escaped class {} = [{}, {})",
                    j, t, ci + 1, size, size + unit
                );
            }
            prop_assert_eq!(members.len() as u32, counts[ci]);
        }
    }

    #[test]
    fn ptas_witness_round_trips_within_the_guarantee(
        times in arb_times(),
        m in 1usize..=4,
    ) {
        let inst = Instance::new(times, m).unwrap();
        let params = EpsilonParams::new(0.3).unwrap();
        let out = Ptas::new(0.3).unwrap().solve_detailed(&inst).unwrap();
        out.schedule.validate(&inst).unwrap();
        let makespan = out.schedule.makespan(&inst);
        // Dual approximation: the certified target never exceeds the
        // delivered makespan, and the reconstruction costs at most the
        // rounding error (k jobs · one unit each) plus the short-job
        // overflow (one short job ≤ T/k) on top of the target.
        prop_assert!(out.target <= makespan);
        let slack = (out.target / params.k).max(1) + params.k * params.unit(out.target);
        prop_assert!(
            makespan <= out.target + slack,
            "makespan {} exceeds target {} + slack {}",
            makespan, out.target, slack
        );
    }

    #[test]
    fn q_ptas_witness_round_trips_on_uniform_instances(
        times in arb_times(),
        speeds in arb_speeds(),
    ) {
        let inst = Instance::with_speeds(times, speeds).unwrap();
        let out = QPtas::new(0.3).unwrap().solve_detailed(&inst).unwrap();
        out.schedule.validate(&inst).unwrap();
        let makespan = out.schedule.makespan(&inst);
        // The certified target is a true lower bound on OPT, so it bounds
        // every feasible schedule from below — including the one delivered.
        prop_assert!(out.target <= makespan);
        // And OPT itself is sandwiched: any heuristic's makespan is ≥ OPT,
        // so the target must not exceed the speed-aware LPT's makespan.
        let lpt = pcmax_baselines::SpeedLpt.schedule(&inst).unwrap();
        prop_assert!(out.target <= lpt.makespan(&inst));
    }

    #[test]
    fn q_space_with_slack_caps_degenerates_to_pcmax_space(
        counts in prop::collection::vec(0u32..=3, 2..=4),
        unit in 1u64..=4,
        target in 5u64..=30,
    ) {
        let problem = DpProblem::new(counts, unit, target, 1000);
        let mut scratch = DpScratch::new();

        let p_values = {
            let mut table = problem.build_table().expect("small table fits");
            let configs = problem.configs_with_offsets(&table);
            serial_sweep(&mut table, &PcmaxSpace::new(&configs));
            table.values_row_major()
        };
        let q_values = {
            let mut table = problem.build_table_in(&mut scratch).expect("small table fits");
            let configs = problem.configs_with_offsets(&table);
            let sizes = table.sizes.clone();
            // Every machine gets the full capacity and there are more
            // machines than any OPT value can reach, so the cap filter
            // never bites and the Q walk must equal the identical one.
            let caps = vec![target; 64];
            serial_sweep(&mut table, &QSpace::new(&configs, &sizes, &caps));
            table.values_row_major()
        };
        prop_assert_eq!(p_values, q_values);
    }

    #[test]
    fn tightening_caps_never_decreases_a_cell(
        counts in prop::collection::vec(0u32..=3, 2..=4),
        unit in 1u64..=4,
        target in 5u64..=30,
        cut in 0u64..=15,
    ) {
        let problem = DpProblem::new(counts, unit, target, 1000);
        let sweep_with = |caps: &[u64]| {
            let mut table = problem.build_table().expect("small table fits");
            let configs = problem.configs_with_offsets(&table);
            let sizes = table.sizes.clone();
            serial_sweep(&mut table, &QSpace::new(&configs, &sizes, caps));
            table.values_row_major()
        };
        let loose: Vec<u64> = vec![target; 8];
        let mut tight = loose.clone();
        // Cutting capacity off the tail keeps the profile non-increasing.
        for (i, c) in tight.iter_mut().enumerate() {
            *c = c.saturating_sub(cut.saturating_mul(i as u64 / 4));
        }
        for (l, t) in sweep_with(&loose).iter().zip(sweep_with(&tight).iter()) {
            // Sentinels (unvisited / infeasible) order above every real
            // value, so plain ≤ on the raw u16 is the right comparison.
            prop_assert!(
                *l <= *t || *t >= INFEASIBLE - 1,
                "tightening caps lowered a cell: {} -> {}", l, t
            );
        }
    }
}
