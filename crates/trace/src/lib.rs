//! In-tree structured tracing for the pcmax workspace.
//!
//! The paper's whole evaluation is about *where wall time goes* — speedup of
//! the parallel wavefront DP across instance families — so the workspace
//! needs finer accounting than flat [`SolveStats`] counters: which bisection
//! probe, which anti-diagonal level, which worker. This crate provides it
//! with zero external dependencies:
//!
//! * [`span_enter`]/[`span_exit`] (or the RAII [`span`]), [`instant`] and
//!   [`counter`] hooks record [`Event`]s into **per-thread fixed-capacity
//!   ring buffers**, each guarded by its own uncontended mutex, so hot
//!   parallel code never serializes on a shared log.
//! * All hooks sit behind a single relaxed atomic "enabled" flag. When no
//!   [`Session`] is active a hook is one relaxed load and a branch — the
//!   `trace_overhead` bench in `pcmax-bench` pins this cost.
//! * [`Session::finish`] merges the per-thread buffers into a [`Timeline`],
//!   which exports to Chrome trace-event JSON ([`chrome`], loadable in
//!   Perfetto / `chrome://tracing`) or an ASCII per-worker utilization
//!   summary ([`summary`]).
//! * [`GlobalSink`] adapts the global hooks to the engine-layer
//!   [`TraceSink`] trait, so `SolveRequest::with_trace` routes solver-level
//!   spans into the same timeline as the deep wavefront instrumentation.
//!
//! A full ring drops subsequent events (counted in [`ThreadLane::dropped`])
//! rather than wrapping: the retained prefix keeps its span nesting intact,
//! which the integrity tests and the Chrome export both rely on.
//!
//! [`SolveStats`]: pcmax_core::SolveStats
//! [`TraceSink`]: pcmax_core::TraceSink

pub mod chrome;
pub mod summary;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-thread ring capacity (events). At ~40 bytes per event this is
/// about 2.5 MiB per thread — ample for a full PTAS solve at bench scale.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// What a recorded [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A named span opened on this thread (`arg` is caller-defined).
    SpanEnter,
    /// The most recent open span of this name closed.
    SpanExit,
    /// A point event (e.g. a worker parking or waking; `arg` = worker id).
    Instant,
    /// A sampled counter value (`arg` = the value).
    Counter,
}

/// One fixed-size trace record. Timestamps are nanoseconds relative to the
/// owning [`Session`]'s start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Record type.
    pub kind: EventKind,
    /// Static name (span/instant/counter label).
    pub name: &'static str,
    /// Nanoseconds since the session started.
    pub ts_nanos: u64,
    /// Kind-specific payload (span arg, instant arg, counter value).
    pub arg: u64,
}

/// Whether a trace [`Session`] is currently collecting events.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Session generation; bumped at every [`Session::start`] so stale
/// thread-local rings from a previous session re-register.
static EPOCH: AtomicU64 = AtomicU64::new(0);

#[inline(always)]
fn on() -> bool {
    // Payload-free, like `CancelToken`: the collector synchronizes with
    // writers via each ring's mutex, so only the flag's atomicity matters.
    // audit:allow(relaxed): monotonic-per-session on/off flag with no data
    // published through it; see crates/audit/lint.allow.
    ENABLED.load(Ordering::Relaxed)
}

/// Poison-tolerant lock: a panicking probe thread must not wedge tracing.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Ring {
    tid: u64,
    label: String,
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, e: Event) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }
}

struct Registry {
    active: bool,
    epoch: u64,
    capacity: usize,
    rings: Vec<Arc<Mutex<Ring>>>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    active: false,
    epoch: 0,
    capacity: DEFAULT_RING_CAPACITY,
    rings: Vec::new(),
});

thread_local! {
    /// This thread's ring for the current epoch, if it has registered.
    static LOCAL: RefCell<Option<(u64, Arc<Mutex<Ring>>)>> = const { RefCell::new(None) };
}

/// Shared monotonic time base; events store nanoseconds since this instant
/// so the hot path never takes a lock to read the session start time.
fn now_nanos() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Registers the calling thread with the current session's registry.
fn register() -> (u64, Arc<Mutex<Ring>>) {
    let mut reg = lock(&REGISTRY);
    let tid = reg.rings.len() as u64;
    let label = match std::thread::current().name() {
        Some(name) => name.to_string(),
        None => format!("thread-{tid}"),
    };
    let ring = Arc::new(Mutex::new(Ring {
        tid,
        label,
        events: Vec::with_capacity(reg.capacity.min(1024)),
        capacity: reg.capacity,
        dropped: 0,
    }));
    reg.rings.push(Arc::clone(&ring));
    (reg.epoch, ring)
}

#[inline]
fn push(kind: EventKind, name: &'static str, arg: u64) {
    if !on() {
        return;
    }
    let ts_nanos = now_nanos();
    // `try_with` so a hook firing during thread-local teardown is dropped
    // instead of panicking.
    let _ = LOCAL.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let epoch = EPOCH.load(Ordering::Acquire);
        if !matches!(&*slot, Some((e, _)) if *e == epoch) {
            *slot = Some(register());
        }
        if let Some((_, ring)) = &*slot {
            lock(ring).push(Event {
                kind,
                name,
                ts_nanos,
                arg,
            });
        }
    });
}

/// Whether a session is active. Cheap enough to guard arg computation.
#[inline(always)]
pub fn enabled() -> bool {
    on()
}

/// Opens a named span on the calling thread. Pair with [`span_exit`] (or use
/// the RAII [`span`]); spans on one thread must nest properly.
#[inline]
pub fn span_enter(name: &'static str, arg: u64) {
    push(EventKind::SpanEnter, name, arg);
}

/// Closes the most recent open span with this name on the calling thread.
#[inline]
pub fn span_exit(name: &'static str) {
    push(EventKind::SpanExit, name, 0);
}

/// Records a point event on the calling thread.
#[inline]
pub fn instant(name: &'static str, arg: u64) {
    push(EventKind::Instant, name, arg);
}

/// Records a counter sample on the calling thread.
#[inline]
pub fn counter(name: &'static str, value: u64) {
    push(EventKind::Counter, name, value);
}

/// Records a wavefront chunk-autotuner decision: worker `w` was assigned a
/// chunk of `cells` cells for the level it is about to sweep. Packed into
/// one instant arg (worker in the high 16 bits, cells in the low 48) so the
/// hot path stays a single [`instant`]; decode with [`decode_chunk_decision`].
#[inline]
pub fn chunk_decision(worker: u64, cells: u64) {
    instant("chunk-size", (worker << 48) | cells.min((1 << 48) - 1));
}

/// Splits a `chunk-size` instant arg back into `(worker, cells)`.
#[inline]
pub fn decode_chunk_decision(arg: u64) -> (u64, u64) {
    (arg >> 48, arg & ((1 << 48) - 1))
}

/// RAII span: enters on creation, exits on drop. If tracing was disabled at
/// creation the drop is a no-op, so a session starting mid-span cannot
/// record an unbalanced exit.
#[must_use = "the span closes when this guard drops"]
pub struct SpanGuard {
    name: &'static str,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            span_exit(self.name);
        }
    }
}

/// Opens an RAII [`SpanGuard`].
#[inline]
pub fn span(name: &'static str, arg: u64) -> SpanGuard {
    let armed = on();
    if armed {
        span_enter(name, arg);
    }
    SpanGuard { name, armed }
}

/// Adapter implementing the engine layer's [`TraceSink`] on the global
/// hooks, so `SolveRequest::with_trace(Arc::new(GlobalSink))` merges
/// solver-level spans into the active session's timeline.
///
/// [`TraceSink`]: pcmax_core::TraceSink
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalSink;

impl pcmax_core::TraceSink for GlobalSink {
    fn span_enter(&self, name: &'static str, arg: u64) {
        span_enter(name, arg);
    }

    fn span_exit(&self, name: &'static str) {
        span_exit(name);
    }

    fn instant(&self, name: &'static str, arg: u64) {
        instant(name, arg);
    }

    fn counter(&self, name: &'static str, value: u64) {
        counter(name, value);
    }
}

/// One thread's merged slice of a [`Timeline`].
#[derive(Debug, Clone)]
pub struct ThreadLane {
    /// Dense per-session thread id (registration order; 0 = first thread to
    /// record, typically the driver).
    pub tid: u64,
    /// Thread name, or `thread-<tid>` for unnamed workers.
    pub label: String,
    /// Events in recording order (timestamps are non-decreasing).
    pub events: Vec<Event>,
    /// Events discarded because the ring filled up.
    pub dropped: u64,
}

/// The merged result of a trace [`Session`].
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// One lane per thread that recorded at least one event.
    pub lanes: Vec<ThreadLane>,
}

impl Timeline {
    /// Total retained events across all lanes.
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// Total events dropped to full rings across all lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// Structural integrity: per lane, timestamps are non-decreasing and —
    /// unless the lane dropped events — span enters/exits are balanced and
    /// properly nested (every exit matches the innermost open span).
    pub fn validate(&self) -> Result<(), String> {
        for lane in &self.lanes {
            let mut prev = 0u64;
            let mut stack: Vec<&'static str> = Vec::new();
            for e in &lane.events {
                if e.ts_nanos < prev {
                    return Err(format!(
                        "lane {} ({}): timestamp went backwards ({} after {prev})",
                        lane.tid, lane.label, e.ts_nanos
                    ));
                }
                prev = e.ts_nanos;
                match e.kind {
                    EventKind::SpanEnter => stack.push(e.name),
                    EventKind::SpanExit => match stack.pop() {
                        Some(open) if open == e.name => {}
                        Some(open) => {
                            return Err(format!(
                                "lane {} ({}): span exit `{}` while `{open}` is innermost",
                                lane.tid, lane.label, e.name
                            ));
                        }
                        None if lane.dropped > 0 => {}
                        None => {
                            return Err(format!(
                                "lane {} ({}): span exit `{}` with no open span",
                                lane.tid, lane.label, e.name
                            ));
                        }
                    },
                    EventKind::Instant | EventKind::Counter => {}
                }
            }
            if !stack.is_empty() && lane.dropped == 0 {
                return Err(format!(
                    "lane {} ({}): {} span(s) never exited (innermost `{}`)",
                    lane.tid,
                    lane.label,
                    stack.len(),
                    stack[stack.len() - 1]
                ));
            }
        }
        Ok(())
    }
}

/// An active collection window. At most one session exists at a time
/// process-wide; [`Session::start`] returns `None` while another is active.
///
/// Dropping a session without calling [`finish`](Self::finish) discards the
/// collected events but still disables tracing and frees the slot.
#[must_use = "call finish() to collect the timeline"]
#[derive(Debug)]
pub struct Session {
    t0_nanos: u64,
}

impl Session {
    /// Starts collecting with the default per-thread ring capacity.
    pub fn start() -> Option<Self> {
        Self::start_with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Starts collecting with `capacity` events per thread (min 16).
    pub fn start_with_capacity(capacity: usize) -> Option<Self> {
        let mut reg = lock(&REGISTRY);
        if reg.active {
            return None;
        }
        reg.active = true;
        reg.epoch += 1;
        reg.capacity = capacity.max(16);
        reg.rings.clear();
        EPOCH.store(reg.epoch, Ordering::Release);
        drop(reg);
        let t0_nanos = now_nanos();
        ENABLED.store(true, Ordering::Release);
        Some(Self { t0_nanos })
    }

    /// Stops collecting and merges every thread's ring into a [`Timeline`].
    ///
    /// Callers are expected to have joined/parked their workers first (the
    /// engine traces whole solves, which wind their pools down); a hook that
    /// is still mid-push races only against the flag, not the data — it
    /// either lands before the drain (and is kept) or after (and is cleared
    /// with the registry at the next session start).
    pub fn finish(self) -> Timeline {
        ENABLED.store(false, Ordering::Release);
        let mut reg = lock(&REGISTRY);
        reg.active = false;
        let mut lanes = Vec::with_capacity(reg.rings.len());
        for ring in reg.rings.drain(..) {
            let mut ring = lock(&ring);
            if ring.events.is_empty() && ring.dropped == 0 {
                continue;
            }
            let events = ring
                .events
                .drain(..)
                .map(|mut e| {
                    e.ts_nanos = e.ts_nanos.saturating_sub(self.t0_nanos);
                    e
                })
                .collect();
            lanes.push(ThreadLane {
                tid: ring.tid,
                label: ring.label.clone(),
                events,
                dropped: ring.dropped,
            });
        }
        drop(reg);
        std::mem::forget(self);
        Timeline { lanes }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Release);
        let mut reg = lock(&REGISTRY);
        reg.active = false;
        reg.rings.clear();
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// Sessions are process-global; tests that start one serialize on this.
    static TEST_SESSIONS: Mutex<()> = Mutex::new(());

    pub fn serial() -> MutexGuard<'static, ()> {
        TEST_SESSIONS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_record_nothing() {
        let _serial = test_support::serial();
        span_enter("ghost", 1);
        span_exit("ghost");
        instant("ghost", 2);
        counter("ghost", 3);
        let session = Session::start().expect("no session active");
        let timeline = session.finish();
        assert_eq!(timeline.total_events(), 0);
    }

    #[test]
    fn session_collects_balanced_spans_and_instants() {
        let _serial = test_support::serial();
        let session = Session::start().expect("no session active");
        {
            let _outer = span("outer", 7);
            instant("tick", 1);
            {
                let _inner = span("inner", 8);
                counter("cells", 42);
            }
        }
        let timeline = session.finish();
        assert_eq!(timeline.total_events(), 6);
        timeline.validate().expect("balanced timeline");
        let lane = &timeline.lanes[0];
        assert_eq!(lane.events[0].name, "outer");
        assert_eq!(lane.events[0].arg, 7);
        assert!(matches!(lane.events[5].kind, EventKind::SpanExit));
    }

    #[test]
    fn only_one_session_at_a_time() {
        let _serial = test_support::serial();
        let first = Session::start().expect("no session active");
        assert!(Session::start().is_none(), "second session must be refused");
        drop(first);
        let again = Session::start().expect("dropping frees the slot");
        let _ = again.finish();
    }

    #[test]
    fn worker_threads_get_their_own_lanes() {
        let _serial = test_support::serial();
        let session = Session::start().expect("no session active");
        span_enter("driver", 0);
        std::thread::scope(|scope| {
            for w in 0..3u64 {
                scope.spawn(move || {
                    let _s = span("chunk", w);
                    instant("park", w);
                    instant("wake", w);
                });
            }
        });
        span_exit("driver");
        let timeline = session.finish();
        assert_eq!(timeline.lanes.len(), 4, "driver + 3 workers");
        timeline.validate().expect("each lane balanced");
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let _serial = test_support::serial();
        let session = Session::start_with_capacity(16).expect("no session active");
        for i in 0..100 {
            instant("tick", i);
        }
        let timeline = session.finish();
        assert_eq!(timeline.total_events(), 16);
        assert_eq!(timeline.dropped(), 84);
    }

    #[test]
    fn chunk_decisions_round_trip_through_the_packed_arg() {
        let _serial = test_support::serial();
        let session = Session::start().expect("no session active");
        chunk_decision(3, 12_345);
        chunk_decision(0, (1 << 48) + 7); // oversized chunks saturate
        let timeline = session.finish();
        let lane = &timeline.lanes[0];
        assert_eq!(lane.events[0].name, "chunk-size");
        assert_eq!(decode_chunk_decision(lane.events[0].arg), (3, 12_345));
        assert_eq!(
            decode_chunk_decision(lane.events[1].arg),
            (0, (1 << 48) - 1)
        );
    }

    #[test]
    fn guard_created_while_disabled_stays_silent() {
        let _serial = test_support::serial();
        let guard = span("early", 0);
        let session = Session::start().expect("no session active");
        drop(guard); // must NOT record an unbalanced exit
        let timeline = session.finish();
        assert_eq!(timeline.total_events(), 0);
        timeline.validate().expect("empty timeline is valid");
    }
}
