//! ASCII per-worker utilization summary of a [`Timeline`]: busy vs parked
//! time per thread, plus a log-spaced histogram of per-level wavefront span
//! durations — the quick look that answers "are the workers idle?" without
//! opening Perfetto.

use crate::{EventKind, ThreadLane, Timeline};
use std::fmt::Write as _;

/// Per-lane utilization figures derived from spans and park/wake instants.
#[derive(Debug, Clone, Default)]
pub struct LaneUtilization {
    /// Dense thread id.
    pub tid: u64,
    /// Thread label.
    pub label: String,
    /// Retained events on the lane.
    pub events: usize,
    /// Spans opened on the lane.
    pub spans: usize,
    /// Nanoseconds inside at least one span (outermost-span coverage).
    pub busy_nanos: u64,
    /// Nanoseconds between paired `park`/`wake` instants.
    pub parked_nanos: u64,
    /// `park` instants observed.
    pub parks: usize,
    /// Lane extent: first to last event timestamp.
    pub extent_nanos: u64,
}

impl LaneUtilization {
    /// Busy time as a fraction of the lane extent (`None` for empty lanes).
    pub fn busy_fraction(&self) -> Option<f64> {
        if self.extent_nanos == 0 {
            return None;
        }
        Some(self.busy_nanos as f64 / self.extent_nanos as f64)
    }
}

fn lane_utilization(lane: &ThreadLane) -> LaneUtilization {
    let mut u = LaneUtilization {
        tid: lane.tid,
        label: lane.label.clone(),
        events: lane.events.len(),
        ..LaneUtilization::default()
    };
    let mut depth = 0usize;
    let mut busy_since = 0u64;
    let mut park_since: Option<u64> = None;
    for e in &lane.events {
        match e.kind {
            EventKind::SpanEnter => {
                u.spans += 1;
                if depth == 0 {
                    busy_since = e.ts_nanos;
                }
                depth += 1;
            }
            EventKind::SpanExit => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    u.busy_nanos += e.ts_nanos.saturating_sub(busy_since);
                }
            }
            EventKind::Instant if e.name == "park" => {
                u.parks += 1;
                park_since = Some(e.ts_nanos);
            }
            EventKind::Instant if e.name == "wake" => {
                if let Some(since) = park_since.take() {
                    u.parked_nanos += e.ts_nanos.saturating_sub(since);
                }
            }
            EventKind::Instant | EventKind::Counter => {}
        }
    }
    if let (Some(first), Some(last)) = (lane.events.first(), lane.events.last()) {
        u.extent_nanos = last.ts_nanos.saturating_sub(first.ts_nanos);
    }
    u
}

/// Utilization rows for every lane of `timeline`, in tid order.
pub fn utilization(timeline: &Timeline) -> Vec<LaneUtilization> {
    let mut rows: Vec<_> = timeline.lanes.iter().map(lane_utilization).collect();
    rows.sort_by_key(|r| r.tid);
    rows
}

/// Collects the durations of every completed span named `name`, across all
/// lanes, in nanoseconds.
pub fn span_durations(timeline: &Timeline, name: &str) -> Vec<u64> {
    let mut out = Vec::new();
    for lane in &timeline.lanes {
        let mut stack: Vec<(&'static str, u64)> = Vec::new();
        for e in &lane.events {
            match e.kind {
                EventKind::SpanEnter => stack.push((e.name, e.ts_nanos)),
                EventKind::SpanExit => {
                    if let Some((open, since)) = stack.pop() {
                        if open == name {
                            out.push(e.ts_nanos.saturating_sub(since));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Log-spaced (powers of ten, starting at 1µs) histogram bucket labels.
const BUCKETS: &[(&str, u64)] = &[
    ("<1µs", 1_000),
    ("1µs-10µs", 10_000),
    ("10µs-100µs", 100_000),
    ("100µs-1ms", 1_000_000),
    ("1ms-10ms", 10_000_000),
    ("≥10ms", u64::MAX),
];

fn fmt_duration(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Renders the full ASCII summary: the per-worker utilization table, the
/// log-spaced histogram of `level` span durations, and a drop warning when
/// any ring overflowed.
pub fn render(timeline: &Timeline) -> String {
    let mut out = String::new();
    let rows = utilization(timeline);
    let _ = writeln!(
        out,
        "{:<4} {:<14} {:>8} {:>7} {:>7} {:>10} {:>10} {:>6}",
        "tid", "thread", "events", "spans", "busy%", "busy", "parked", "parks"
    );
    for r in &rows {
        let busy_pct = match r.busy_fraction() {
            Some(f) => format!("{:.1}", f * 100.0),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<4} {:<14} {:>8} {:>7} {:>7} {:>10} {:>10} {:>6}",
            r.tid,
            r.label,
            r.events,
            r.spans,
            busy_pct,
            fmt_duration(r.busy_nanos),
            fmt_duration(r.parked_nanos),
            r.parks
        );
    }

    let durations = span_durations(timeline, "level");
    if !durations.is_empty() {
        let mut counts = vec![0usize; BUCKETS.len()];
        for &d in &durations {
            let idx = BUCKETS
                .iter()
                .position(|&(_, upper)| d < upper)
                .unwrap_or(BUCKETS.len() - 1);
            counts[idx] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(1).max(1);
        let _ = writeln!(out, "\nlevel span durations ({} levels)", durations.len());
        for (&(label, _), &count) in BUCKETS.iter().zip(&counts) {
            let bar = "#".repeat(count * 40 / max);
            let _ = writeln!(out, "  {label:<12} {count:>6} {bar}");
        }
    }

    let dropped = timeline.dropped();
    if dropped > 0 {
        let _ = writeln!(
            out,
            "\nwarning: {dropped} event(s) dropped to full rings — raise the ring capacity"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instant, span, test_support, Session};

    #[test]
    fn utilization_pairs_parks_with_wakes_and_measures_busy_time() {
        let _serial = test_support::serial();
        let session = Session::start().expect("no session active");
        {
            let _level = span("level", 0);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        instant("park", 0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        instant("wake", 0);
        let timeline = session.finish();
        let rows = utilization(&timeline);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].busy_nanos >= 1_000_000, "slept 2ms inside the span");
        assert!(rows[0].parked_nanos >= 500_000, "slept 1ms parked");
        assert_eq!(rows[0].parks, 1);

        let rendered = render(&timeline);
        assert!(rendered.contains("busy%"), "table header present");
        assert!(
            rendered.contains("level span durations"),
            "histogram present"
        );
    }

    #[test]
    fn span_durations_filter_by_name() {
        let _serial = test_support::serial();
        let session = Session::start().expect("no session active");
        {
            let _a = span("level", 1);
            let _b = span("chunk", 1);
        }
        {
            let _c = span("level", 2);
        }
        let timeline = session.finish();
        assert_eq!(span_durations(&timeline, "level").len(), 2);
        assert_eq!(span_durations(&timeline, "chunk").len(), 1);
        assert!(span_durations(&timeline, "probe").is_empty());
    }
}
