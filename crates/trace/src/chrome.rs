//! Chrome trace-event export: renders a [`Timeline`] as the JSON object
//! format (`{"traceEvents": [...]}`) understood by Perfetto and
//! `chrome://tracing`, and validates such documents structurally.
//!
//! The mapping uses only duration (`B`/`E`), instant (`i`), counter (`C`)
//! and metadata (`M`) phases; timestamps are microseconds as the format
//! requires, kept fractional so nanosecond resolution survives.

use crate::{Event, EventKind, Timeline};
use pcmax_core::json::{self, object, Value};

/// The process id stamped on every event (single-process traces).
const PID: u64 = 1;

fn micros(e: &Event) -> Value {
    Value::Float(e.ts_nanos as f64 / 1000.0)
}

fn common(e: &Event, ph: &str, tid: u64) -> Vec<(String, Value)> {
    vec![
        ("name".to_string(), Value::Str(e.name.to_string())),
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("ts".to_string(), micros(e)),
        ("pid".to_string(), Value::UInt(PID)),
        ("tid".to_string(), Value::UInt(tid)),
    ]
}

/// Builds the Chrome trace-event JSON tree for `timeline`.
pub fn export(timeline: &Timeline) -> Value {
    let mut events = Vec::with_capacity(timeline.total_events() + timeline.lanes.len());
    for lane in &timeline.lanes {
        // Thread-name metadata so Perfetto labels the lane.
        events.push(object(vec![
            ("name", Value::Str("thread_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("ts", Value::UInt(0)),
            ("pid", Value::UInt(PID)),
            ("tid", Value::UInt(lane.tid)),
            (
                "args",
                object(vec![("name", Value::Str(lane.label.clone()))]),
            ),
        ]));
        for e in &lane.events {
            let mut members = match e.kind {
                EventKind::SpanEnter => {
                    let mut m = common(e, "B", lane.tid);
                    m.push((
                        "args".to_string(),
                        object(vec![("arg", Value::UInt(e.arg))]),
                    ));
                    m
                }
                EventKind::SpanExit => common(e, "E", lane.tid),
                EventKind::Instant => {
                    let mut m = common(e, "i", lane.tid);
                    // Thread-scoped instant.
                    m.push(("s".to_string(), Value::Str("t".to_string())));
                    m.push((
                        "args".to_string(),
                        object(vec![("arg", Value::UInt(e.arg))]),
                    ));
                    m
                }
                EventKind::Counter => {
                    let mut m = common(e, "C", lane.tid);
                    m.push((
                        "args".to_string(),
                        Value::Object(vec![(e.name.to_string(), Value::UInt(e.arg))]),
                    ));
                    m
                }
            };
            members.shrink_to_fit();
            events.push(Value::Object(members));
        }
    }
    object(vec![("traceEvents", Value::Array(events))])
}

/// Renders `timeline` as a compact Chrome-trace JSON string.
pub fn to_json_string(timeline: &Timeline) -> String {
    export(timeline).to_string_compact()
}

/// Structural facts about a validated Chrome-trace document.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeStats {
    /// Total events (including metadata).
    pub events: usize,
    /// Distinct `tid`s seen.
    pub threads: usize,
    /// Matched `B`/`E` pairs.
    pub complete_spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Counter (`C`) samples.
    pub counters: usize,
}

/// Parses `text` with [`pcmax_core::json`] and checks it is a well-formed,
/// non-empty Chrome trace: a `traceEvents` array whose members all carry
/// `ph`, `ts`, `pid`, `tid` and `name`, with balanced and properly ordered
/// `B`/`E` spans per thread.
pub fn validate(text: &str) -> Result<ChromeStats, String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing `traceEvents` array")?;
    if events.is_empty() {
        return Err("`traceEvents` is empty".to_string());
    }
    let mut stats = ChromeStats {
        events: events.len(),
        ..ChromeStats::default()
    };
    // Per-tid open-span stack (names) for the balance check.
    let mut stacks: Vec<(u64, Vec<String>)> = Vec::new();
    let mut tids: Vec<u64> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        e.get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric `ts`"))?;
        e.get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing `pid`"))?;
        let tid = e
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing `tid`"))?;
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing `name`"))?;
        if !tids.contains(&tid) {
            tids.push(tid);
        }
        let stack = match stacks.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((tid, Vec::new()));
                let last = stacks.len() - 1;
                &mut stacks[last].1
            }
        };
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => match stack.pop() {
                Some(open) if open == name => stats.complete_spans += 1,
                Some(open) => {
                    return Err(format!(
                        "event {i}: tid {tid} closes `{name}` while `{open}` is innermost"
                    ));
                }
                None => {
                    return Err(format!(
                        "event {i}: tid {tid} closes `{name}` with no open span"
                    ));
                }
            },
            "i" => stats.instants += 1,
            "C" => stats.counters += 1,
            "M" => {}
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) never closed (innermost `{}`)",
                stack.len(),
                stack[stack.len() - 1]
            ));
        }
    }
    stats.threads = tids.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, instant, span, test_support, Session};

    #[test]
    fn export_round_trips_through_the_core_parser() {
        let _serial = test_support::serial();
        let session = Session::start().expect("no session active");
        {
            let _probe = span("probe", 17);
            instant("park", 0);
            counter("cells", 99);
        }
        let timeline = session.finish();
        let text = to_json_string(&timeline);
        let stats = validate(&text).expect("exported trace validates");
        assert_eq!(stats.complete_spans, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn validate_rejects_structural_defects() {
        assert!(validate("not json").is_err());
        assert!(validate(r#"{"traceEvents": []}"#).is_err());
        // Missing tid.
        assert!(validate(r#"{"traceEvents":[{"name":"x","ph":"i","ts":0,"pid":1}]}"#).is_err());
        // E without B.
        assert!(
            validate(r#"{"traceEvents":[{"name":"x","ph":"E","ts":0,"pid":1,"tid":0}]}"#).is_err()
        );
        // B never closed.
        assert!(
            validate(r#"{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":0}]}"#).is_err()
        );
        // Mismatched nesting.
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":1,"tid":0},
            {"name":"b","ph":"B","ts":1,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":2,"pid":1,"tid":0},
            {"name":"b","ph":"E","ts":3,"pid":1,"tid":0}]}"#;
        assert!(validate(crossed).is_err());
    }

    #[test]
    fn validate_accepts_a_minimal_wellformed_trace() {
        let ok = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0.5,"pid":1,"tid":3},
            {"name":"a","ph":"E","ts":2,"pid":1,"tid":3},
            {"name":"t","ph":"i","ts":1,"pid":1,"tid":4,"s":"t"}]}"#;
        let stats = validate(ok).expect("well-formed");
        assert_eq!(stats.events, 3);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.complete_spans, 1);
    }
}
