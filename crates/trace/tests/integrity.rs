//! Trace-integrity properties: however worker threads interleave, the merged
//! timeline has balanced span enter/exit per thread and monotonic
//! timestamps, and the Chrome-trace export re-parses through the in-tree
//! JSON reader with every required field present.

use pcmax_trace::{chrome, counter, instant, span, EventKind, Session, Timeline};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// The trace runtime is a process-global singleton; each proptest case
/// holds this while its session is live.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Replays one op-code script on the calling thread. Spans close by guard
/// scope, so balance holds by construction — the property under test is
/// that the runtime *preserves* it through rings, merging and export.
fn replay(script: &[u8]) -> (usize, usize) {
    let (mut spans, mut instants) = (0, 0);
    for &op in script {
        match op % 4 {
            0 => {
                let _level = span("level", u64::from(op));
                spans += 1;
            }
            1 => {
                let _chunk = span("chunk", u64::from(op));
                let _probe = span("probe", u64::from(op));
                spans += 2;
            }
            2 => {
                instant("park", u64::from(op));
                instant("wake", u64::from(op));
                instants += 2;
            }
            _ => counter("dp-cells", u64::from(op)),
        }
    }
    (spans, instants)
}

fn record(scripts: &[Vec<u8>]) -> (Timeline, usize, usize) {
    let session = Session::start().expect("no session active");
    let mut spans = 0;
    let mut instants = 0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| scope.spawn(move || replay(script)))
            .collect();
        for h in handles {
            let (s, i) = h.join().expect("worker panicked");
            spans += s;
            instants += i;
        }
    });
    (session.finish(), spans, instants)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merged_timelines_balance_spans_and_keep_time_monotonic(
        scripts in prop::collection::vec(prop::collection::vec(0u8..8, 0..12), 1..4)
    ) {
        let _serial = serial();
        let (timeline, spans, _) = record(&scripts);
        prop_assert!(timeline.validate().is_ok(), "{:?}", timeline.validate());
        prop_assert_eq!(timeline.dropped(), 0);

        for lane in &timeline.lanes {
            let enters = lane.events.iter().filter(|e| e.kind == EventKind::SpanEnter).count();
            let exits = lane.events.iter().filter(|e| e.kind == EventKind::SpanExit).count();
            prop_assert_eq!(enters, exits, "lane {} unbalanced", lane.tid);
            for w in lane.events.windows(2) {
                prop_assert!(w[0].ts_nanos <= w[1].ts_nanos, "lane {} time went backwards", lane.tid);
            }
        }
        let total_enters: usize = timeline.lanes.iter().map(|l| {
            l.events.iter().filter(|e| e.kind == EventKind::SpanEnter).count()
        }).sum();
        prop_assert_eq!(total_enters, spans, "every opened span is retained");
    }

    #[test]
    fn chrome_export_reparses_with_required_fields(
        scripts in prop::collection::vec(prop::collection::vec(0u8..8, 1..10), 1..4)
    ) {
        let _serial = serial();
        let (timeline, spans, instants) = record(&scripts);
        let text = chrome::to_json_string(&timeline);
        // `validate` re-parses via pcmax_core::json and checks ph/ts/pid/
        // tid/name on every event plus per-thread B/E balance.
        let stats = chrome::validate(&text).unwrap();
        prop_assert_eq!(stats.complete_spans, spans);
        prop_assert_eq!(stats.instants, instants);
        prop_assert_eq!(stats.threads, timeline.lanes.len());
    }
}
