//! Property tests for the simplex LP solver: optimality and feasibility of
//! returned solutions checked against first principles (a returned solution
//! must satisfy every constraint, and no grid point may beat it).

use pcmax_milp::{Cmp, LinearProgram};
use proptest::prelude::*;

/// Random 2-variable LPs with small integer data, checked against a dense
/// grid search over the (bounded) feasible region.
fn arb_lp2() -> impl Strategy<Value = LinearProgram> {
    let row = (-4i32..=4, -4i32..=4, 0i32..=12)
        .prop_map(|(a, b, r)| (vec![a as f64, b as f64], Cmp::Le, r as f64));
    ((-3i32..=3, -3i32..=3), prop::collection::vec(row, 1..=4)).prop_map(|((c0, c1), rows)| {
        let mut lp = LinearProgram::minimize(vec![c0 as f64, c1 as f64]);
        // Keep the region bounded so grid search is sound.
        lp.constrain(vec![1.0, 0.0], Cmp::Le, 10.0);
        lp.constrain(vec![0.0, 1.0], Cmp::Le, 10.0);
        for (coeffs, cmp, rhs) in rows {
            lp.constrain(coeffs, cmp, rhs);
        }
        lp
    })
}

fn satisfies(lp: &LinearProgram, x: &[f64], tol: f64) -> bool {
    if x.iter().any(|&v| v < -tol) {
        return false;
    }
    lp.constraints.iter().all(|(coeffs, cmp, rhs)| {
        let lhs: f64 = coeffs.iter().zip(x).map(|(c, v)| c * v).sum();
        match cmp {
            Cmp::Le => lhs <= rhs + tol,
            Cmp::Ge => lhs >= rhs - tol,
            Cmp::Eq => (lhs - rhs).abs() <= tol,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solutions_are_feasible_and_grid_optimal(lp in arb_lp2()) {
        match lp.solve() {
            Ok(sol) => {
                prop_assert!(satisfies(&lp, &sol.x, 1e-6),
                    "returned point violates a constraint: {:?}", sol.x);
                // No quarter-integer grid point in [0,10]^2 may beat it.
                let mut best_grid = f64::INFINITY;
                for i in 0..=40 {
                    for j in 0..=40 {
                        let p = [i as f64 * 0.25, j as f64 * 0.25];
                        if satisfies(&lp, &p, 1e-9) {
                            let v = lp.objective[0] * p[0] + lp.objective[1] * p[1];
                            best_grid = best_grid.min(v);
                        }
                    }
                }
                prop_assert!(sol.objective <= best_grid + 1e-6,
                    "simplex {} beaten by grid {}", sol.objective, best_grid);
            }
            Err(pcmax_core::Error::Infeasible) => {
                // The whole grid must indeed be infeasible.
                for i in 0..=40 {
                    for j in 0..=40 {
                        let p = [i as f64 * 0.25, j as f64 * 0.25];
                        prop_assert!(!satisfies(&lp, &p, 1e-9),
                            "claimed infeasible but {p:?} satisfies all rows");
                    }
                }
            }
            Err(pcmax_core::Error::Unbounded) => {
                // Cannot happen: x0, x1 <= 10 and x >= 0 bound the region.
                prop_assert!(false, "bounded LP reported unbounded");
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn objective_value_matches_returned_point(lp in arb_lp2()) {
        if let Ok(sol) = lp.solve() {
            let recomputed: f64 = lp
                .objective
                .iter()
                .zip(&sol.x)
                .map(|(c, v)| c * v)
                .sum();
            prop_assert!((recomputed - sol.objective).abs() < 1e-6);
        }
    }

    #[test]
    fn scaling_the_objective_scales_the_optimum(lp in arb_lp2()) {
        if let Ok(sol) = lp.solve() {
            let mut scaled = lp.clone();
            for c in &mut scaled.objective {
                *c *= 3.0;
            }
            let sol3 = scaled.solve().unwrap();
            prop_assert!((sol3.objective - 3.0 * sol.objective).abs() < 1e-5);
        }
    }
}
