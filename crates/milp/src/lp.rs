//! Dense two-phase tableau simplex for linear programs in the form
//! `minimize c·x  s.t.  A x {≤,=,≥} b,  x ≥ 0`.
//!
//! Small and robust rather than fast: Dantzig pricing with an automatic
//! switch to Bland's rule (which guarantees termination) after a degeneracy
//! streak, and an absolute tolerance of `1e-9` throughout.

use pcmax_core::{Error, Result};

const EPS: f64 = 1e-9;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≥`
    Ge,
}

/// A linear program: minimize `objective · x` subject to the constraints,
/// with all variables implicitly non-negative.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Objective coefficients (length = number of variables).
    pub objective: Vec<f64>,
    /// Rows `(coefficients, sense, rhs)`.
    pub constraints: Vec<(Vec<f64>, Cmp, f64)>,
}

impl LinearProgram {
    /// A minimization LP over `vars` non-negative variables.
    pub fn minimize(objective: Vec<f64>) -> Self {
        Self {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint row; the row may be shorter than the variable count
    /// (missing coefficients are zero).
    pub fn constrain(&mut self, mut coeffs: Vec<f64>, cmp: Cmp, rhs: f64) {
        coeffs.resize(self.objective.len(), 0.0);
        self.constraints.push((coeffs, cmp, rhs));
    }

    /// Number of decision variables.
    pub fn vars(&self) -> usize {
        self.objective.len()
    }

    /// Solves the LP. Returns [`Error::Infeasible`] or [`Error::Unbounded`]
    /// when appropriate.
    pub fn solve(&self) -> Result<LpSolution> {
        for (coeffs, _, _) in &self.constraints {
            if coeffs.len() != self.vars() {
                return Err(Error::BadModel(format!(
                    "row has {} coefficients for {} variables",
                    coeffs.len(),
                    self.vars()
                )));
            }
        }
        Tableau::build(self)?.solve(self)
    }
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal variable assignment.
    pub x: Vec<f64>,
}

/// Dense simplex tableau: rows = constraints, columns = structural +
/// slack/surplus + artificial variables + rhs.
struct Tableau {
    /// `rows × (cols + 1)`; the last column is the rhs.
    a: Vec<Vec<f64>>,
    /// Basis variable of each row.
    basis: Vec<usize>,
    /// Total columns (excluding rhs).
    cols: usize,
    /// Structural variable count.
    n_struct: usize,
    /// Column index where artificials start.
    art_start: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Result<Self> {
        let m = lp.constraints.len();
        let n = lp.vars();
        // Count slack/surplus and artificial columns.
        let mut n_slack = 0;
        let mut n_art = 0;
        for (_, cmp, rhs) in &lp.constraints {
            // After normalizing to rhs ≥ 0:
            let c = if *rhs < 0.0 { flip(*cmp) } else { *cmp };
            match c {
                Cmp::Le => n_slack += 1, // slack basic, no artificial
                Cmp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Cmp::Eq => n_art += 1,
            }
        }
        let cols = n + n_slack + n_art;
        let art_start = n + n_slack;
        let mut a = vec![vec![0.0; cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = n;
        let mut art_idx = art_start;
        for (r, (coeffs, cmp, rhs)) in lp.constraints.iter().enumerate() {
            let (sign, cmp, rhs) = if *rhs < 0.0 {
                (-1.0, flip(*cmp), -*rhs)
            } else {
                (1.0, *cmp, *rhs)
            };
            for (j, &c) in coeffs.iter().enumerate() {
                a[r][j] = sign * c;
            }
            a[r][cols] = rhs;
            match cmp {
                Cmp::Le => {
                    a[r][slack_idx] = 1.0;
                    basis[r] = slack_idx;
                    slack_idx += 1;
                }
                Cmp::Ge => {
                    a[r][slack_idx] = -1.0;
                    slack_idx += 1;
                    a[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
                Cmp::Eq => {
                    a[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
            }
        }
        Ok(Self {
            a,
            basis,
            cols,
            n_struct: n,
            art_start,
        })
    }

    fn solve(mut self, lp: &LinearProgram) -> Result<LpSolution> {
        // Phase 1: minimize the sum of artificials.
        if self.art_start < self.cols {
            let mut cost = vec![0.0; self.cols];
            cost[self.art_start..].fill(1.0);
            let obj = self.optimize(&cost)?;
            if obj > 1e-7 {
                return Err(Error::Infeasible);
            }
            // Drive any remaining artificial out of the basis.
            for r in 0..self.a.len() {
                if self.basis[r] >= self.art_start {
                    if let Some(j) = (0..self.art_start).find(|&j| self.a[r][j].abs() > EPS) {
                        self.pivot(r, j);
                    }
                    // Otherwise the row is all-zero (redundant) — harmless.
                }
            }
        }
        // Phase 2: original objective (artificial columns frozen out).
        let mut cost = vec![0.0; self.cols];
        cost[..self.n_struct].copy_from_slice(&lp.objective);
        let art_start = self.art_start;
        let objective = self.optimize_with_ban(&cost, art_start)?;
        let mut x = vec![0.0; self.n_struct];
        for (r, &b) in self.basis.iter().enumerate() {
            if b < self.n_struct {
                x[b] = self.a[r][self.cols];
            }
        }
        Ok(LpSolution { objective, x })
    }

    fn optimize(&mut self, cost: &[f64]) -> Result<f64> {
        let cols = self.cols;
        self.optimize_with_ban(cost, cols)
    }

    /// Primal simplex on the reduced costs of `cost`, never entering a
    /// column `≥ ban` (used to freeze artificials in phase 2).
    fn optimize_with_ban(&mut self, cost: &[f64], ban: usize) -> Result<f64> {
        let rows = self.a.len();
        let mut iterations = 0usize;
        let max_iterations = 50_000 + 200 * (rows + self.cols);
        loop {
            iterations += 1;
            if iterations > max_iterations {
                return Err(Error::BadModel(
                    "simplex iteration limit exceeded".to_string(),
                ));
            }
            let bland = iterations > max_iterations / 2;
            // Reduced costs: r_j = c_j − c_B · B⁻¹ A_j (computed from rows).
            let mut entering = None;
            let mut best = -1e-7;
            for j in 0..ban.min(self.cols) {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut rj = cost[j];
                for r in 0..rows {
                    let cb = cost[self.basis[r]];
                    if cb != 0.0 {
                        rj -= cb * self.a[r][j];
                    }
                }
                if rj < best {
                    entering = Some(j);
                    if bland {
                        break; // Bland: first improving column
                    }
                    best = rj;
                }
            }
            let Some(e) = entering else {
                // Optimal: compute the objective value.
                let mut obj = 0.0;
                for r in 0..rows {
                    obj += cost[self.basis[r]] * self.a[r][self.cols];
                }
                return Ok(obj);
            };
            // Ratio test.
            let mut leave = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..rows {
                let coeff = self.a[r][e];
                if coeff > EPS {
                    let ratio = self.a[r][self.cols] / coeff;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|lr: usize| self.basis[r] < self.basis[lr]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(l) = leave else {
                return Err(Error::Unbounded);
            };
            self.pivot(l, e);
        }
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.a[row][col];
        debug_assert!(p.abs() > EPS, "pivot on a zero element");
        for v in &mut self.a[row] {
            *v /= p;
        }
        for r in 0..self.a.len() {
            if r != row {
                let factor = self.a[r][col];
                if factor.abs() > EPS {
                    for j in 0..=self.cols {
                        self.a[r][j] -= factor * self.a[row][j];
                    }
                }
            }
        }
        self.basis[row] = col;
    }
}

fn flip(cmp: Cmp) -> Cmp {
    match cmp {
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 -> (2, 6), obj 36.
        let mut lp = LinearProgram::minimize(vec![-3.0, -5.0]);
        lp.constrain(vec![1.0, 0.0], Cmp::Le, 4.0);
        lp.constrain(vec![0.0, 2.0], Cmp::Le, 12.0);
        lp.constrain(vec![3.0, 2.0], Cmp::Le, 18.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 10, x − y = 2 -> (6, 4), obj 10.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![1.0, 1.0], Cmp::Eq, 10.0);
        lp.constrain(vec![1.0, -1.0], Cmp::Eq, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 10.0);
        assert_close(s.x[0], 6.0);
        assert_close(s.x[1], 4.0);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 -> (4, 0), obj 8.
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.constrain(vec![1.0, 1.0], Cmp::Ge, 4.0);
        lp.constrain(vec![1.0, 0.0], Cmp::Ge, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn detects_infeasible() {
        // x ≤ 1 and x ≥ 2 cannot both hold.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![1.0], Cmp::Le, 1.0);
        lp.constrain(vec![1.0], Cmp::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), Error::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min −x with no upper bound on x.
        let mut lp = LinearProgram::minimize(vec![-1.0]);
        lp.constrain(vec![0.0], Cmp::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), Error::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // min x s.t. −x ≤ −3  (i.e. x ≥ 3) -> 3.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![-1.0], Cmp::Le, -3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classically degenerate LP (multiple identical basic solutions).
        let mut lp = LinearProgram::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.constrain(vec![0.25, -60.0, -0.04, 9.0], Cmp::Le, 0.0);
        lp.constrain(vec![0.5, -90.0, -0.02, 3.0], Cmp::Le, 0.0);
        lp.constrain(vec![0.0, 0.0, 1.0, 0.0], Cmp::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn lp_relaxation_of_a_small_scheduling_model() {
        // 2 machines, jobs {3, 5}: LP relaxation splits evenly -> Cmax = 4.
        // Vars: x00 x01 x10 x11 cmax (x_ij = job j on machine i).
        let mut lp = LinearProgram::minimize(vec![0.0, 0.0, 0.0, 0.0, 1.0]);
        lp.constrain(vec![1.0, 0.0, 1.0, 0.0, 0.0], Cmp::Eq, 1.0); // job 0
        lp.constrain(vec![0.0, 1.0, 0.0, 1.0, 0.0], Cmp::Eq, 1.0); // job 1
        lp.constrain(vec![3.0, 5.0, 0.0, 0.0, -1.0], Cmp::Le, 0.0); // m0
        lp.constrain(vec![0.0, 0.0, 3.0, 5.0, -1.0], Cmp::Le, 0.0); // m1
        let s = lp.solve().unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn rejects_malformed_rows() {
        let lp = LinearProgram {
            objective: vec![1.0, 2.0],
            constraints: vec![(vec![1.0], Cmp::Le, 1.0)],
        };
        assert!(matches!(lp.solve(), Err(Error::BadModel(_))));
    }
}
