//! Depth-first branch-and-bound MILP solver over the simplex LP relaxation.

use crate::lp::{Cmp, LinearProgram, LpSolution};
use pcmax_core::{Error, Result};

const INT_TOL: f64 = 1e-6;

/// A mixed-integer linear program: an LP plus a set of variables required to
/// take integer values.
#[derive(Debug, Clone)]
pub struct MilpProblem {
    /// The LP relaxation.
    pub lp: LinearProgram,
    /// Indices of integer-constrained variables.
    pub integers: Vec<usize>,
    /// If true, the objective is known to be integral at every integer
    /// point, enabling the stronger `⌈bound⌉ ≥ incumbent` pruning.
    pub integral_objective: bool,
}

/// An optimal (or budget-limited) MILP solution.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Objective value of the incumbent.
    pub objective: f64,
    /// Variable assignment of the incumbent.
    pub x: Vec<f64>,
    /// Branch-and-bound nodes solved.
    pub nodes: u64,
    /// True iff optimality was proven within the node budget.
    pub proven: bool,
}

/// Branch-and-bound driver.
#[derive(Debug, Clone, Copy)]
pub struct MilpSolver {
    /// Maximum LP relaxations to solve before giving up.
    pub node_budget: u64,
}

impl Default for MilpSolver {
    fn default() -> Self {
        Self {
            node_budget: 20_000,
        }
    }
}

impl MilpSolver {
    /// Solves `problem` to optimality or budget exhaustion. Returns
    /// [`Error::Infeasible`] if no integer point exists (proven), and
    /// [`Error::BudgetExhausted`] if the budget ran out with no incumbent.
    pub fn solve(&self, problem: &MilpProblem) -> Result<MilpSolution> {
        let mut nodes = 0u64;
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        // DFS stack of extra bound rows (var, sense, value).
        let mut stack: Vec<Vec<(usize, Cmp, f64)>> = vec![Vec::new()];
        let mut exhausted = false;

        while let Some(bounds) = stack.pop() {
            if nodes >= self.node_budget {
                exhausted = true;
                break;
            }
            nodes += 1;
            let mut lp = problem.lp.clone();
            for &(var, cmp, value) in &bounds {
                let mut row = vec![0.0; lp.vars()];
                row[var] = 1.0;
                lp.constrain(row, cmp, value);
            }
            let relax = match lp.solve() {
                Ok(s) => s,
                Err(Error::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            // Prune by bound.
            if let Some((best, _)) = &incumbent {
                let cutoff = if problem.integral_objective {
                    best - 1.0 + 1e-7
                } else {
                    best - 1e-9
                };
                if relax.objective > cutoff {
                    continue;
                }
            }
            match most_fractional(&relax, &problem.integers) {
                None => {
                    // Integral: new incumbent (we only reach here if it beats
                    // the current one, thanks to the prune above).
                    incumbent = Some((relax.objective, relax.x));
                }
                Some((var, value)) => {
                    // Branch: explore the "down" child first (LIFO order).
                    let mut up = bounds.clone();
                    up.push((var, Cmp::Ge, value.ceil()));
                    stack.push(up);
                    let mut down = bounds;
                    down.push((var, Cmp::Le, value.floor()));
                    stack.push(down);
                }
            }
        }

        match incumbent {
            Some((objective, x)) => Ok(MilpSolution {
                objective,
                x,
                nodes,
                proven: !exhausted,
            }),
            None if exhausted => Err(Error::BudgetExhausted {
                incumbent: u64::MAX,
                lower_bound: 0,
            }),
            None => Err(Error::Infeasible),
        }
    }
}

/// The integer variable whose relaxation value is farthest from an integer,
/// or `None` if all are integral within tolerance.
fn most_fractional(solution: &LpSolution, integers: &[usize]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None;
    for &var in integers {
        let v = solution.x[var];
        let frac = (v - v.round()).abs();
        if frac > INT_TOL {
            let distance = (v - v.floor() - 0.5).abs(); // 0 = perfectly split
            if best.is_none_or(|(_, _, d)| distance < d) {
                best = Some((var, v, distance));
            }
        }
    }
    best.map(|(var, v, _)| (var, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn knapsack() {
        // max 5a + 4b + 3c s.t. 2a + 3b + c ≤ 5, binaries.
        // Optimum: a = c = 1, b = 1? 2+3+1 = 6 > 5 -> a=1,c=1 (obj 8) vs
        // a=1,b=1 (obj 9, weight 5 ✓). Answer: 9.
        let mut lp = LinearProgram::minimize(vec![-5.0, -4.0, -3.0]);
        lp.constrain(vec![2.0, 3.0, 1.0], Cmp::Le, 5.0);
        for v in 0..3 {
            let mut row = vec![0.0; 3];
            row[v] = 1.0;
            lp.constrain(row, Cmp::Le, 1.0);
        }
        let sol = MilpSolver::default()
            .solve(&MilpProblem {
                lp,
                integers: vec![0, 1, 2],
                integral_objective: true,
            })
            .unwrap();
        assert_close(sol.objective, -9.0);
        assert!(sol.proven);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y ≤ 3: LP gives 1.5, ILP 1.
        let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
        lp.constrain(vec![2.0, 2.0], Cmp::Le, 3.0);
        let sol = MilpSolver::default()
            .solve(&MilpProblem {
                lp,
                integers: vec![0, 1],
                integral_objective: true,
            })
            .unwrap();
        assert_close(sol.objective, -1.0);
    }

    #[test]
    fn proven_infeasible() {
        // x integer, 0.3 ≤ x ≤ 0.7.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![1.0], Cmp::Ge, 0.3);
        lp.constrain(vec![1.0], Cmp::Le, 0.7);
        let r = MilpSolver::default().solve(&MilpProblem {
            lp,
            integers: vec![0],
            integral_objective: false,
        });
        assert!(matches!(r, Err(Error::Infeasible)));
    }

    #[test]
    fn continuous_vars_stay_continuous() {
        // min y s.t. y ≥ x − 0.5, y ≥ 0.5 − x, x binary: both x values give
        // y = 0.5.
        let mut lp = LinearProgram::minimize(vec![0.0, 1.0]);
        lp.constrain(vec![-1.0, 1.0], Cmp::Ge, -0.5);
        lp.constrain(vec![1.0, 1.0], Cmp::Ge, 0.5);
        let sol = MilpSolver::default()
            .solve(&MilpProblem {
                lp,
                integers: vec![0],
                integral_objective: false,
            })
            .unwrap();
        assert_close(sol.objective, 0.5);
    }

    #[test]
    fn budget_exhaustion_without_incumbent_errors() {
        let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
        lp.constrain(vec![2.0, 2.0], Cmp::Le, 3.0);
        let r = MilpSolver { node_budget: 1 }.solve(&MilpProblem {
            lp,
            integers: vec![0, 1],
            integral_objective: true,
        });
        // One node only solves the root relaxation (fractional), so there is
        // no incumbent yet.
        assert!(matches!(r, Err(Error::BudgetExhausted { .. })));
    }
}
