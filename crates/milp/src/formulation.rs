//! The paper's assignment integer program for `P||Cmax`, and a
//! [`Solver`] that solves it with the from-scratch MILP solver.

use crate::lp::{Cmp, LinearProgram};
use crate::milp::{MilpProblem, MilpSolver};
use pcmax_core::{
    Error, Instance, Result, Schedule, SolveReport, SolveRequest, SolveStats, Solver, Time,
};
use std::time::Instant;

/// Builds the assignment formulation:
/// variables `x_{ij}` (job `j` on machine `i`, binary, laid out row-major by
/// machine) followed by the continuous `C_max`.
pub fn assignment_model(inst: &Instance) -> MilpProblem {
    let m = inst.machines();
    let n = inst.jobs();
    let cmax_var = m * n;
    let mut objective = vec![0.0; m * n + 1];
    objective[cmax_var] = 1.0;
    let mut lp = LinearProgram::minimize(objective);

    // Each job runs on exactly one machine.
    for j in 0..n {
        let mut row = vec![0.0; m * n + 1];
        for i in 0..m {
            row[i * n + j] = 1.0;
        }
        lp.constrain(row, Cmp::Eq, 1.0);
    }
    // Machine loads are bounded by C_max.
    for i in 0..m {
        let mut row = vec![0.0; m * n + 1];
        for j in 0..n {
            row[i * n + j] = inst.time(j) as f64;
        }
        row[cmax_var] = -1.0;
        lp.constrain(row, Cmp::Le, 0.0);
    }
    // Binary bounds on the x variables.
    for v in 0..m * n {
        let mut row = vec![0.0; m * n + 1];
        row[v] = 1.0;
        lp.constrain(row, Cmp::Le, 1.0);
    }

    MilpProblem {
        lp,
        integers: (0..m * n).collect(),
        // All t_j are integers, so C_max is integral at every integer point.
        integral_objective: true,
    }
}

/// Scheduler that solves the assignment IP with the branch-and-bound MILP
/// solver. Exponentially slower than `pcmax_exact::BranchAndBound` — use it
/// on small instances (cross-validation, examples).
#[derive(Debug, Clone, Copy, Default)]
pub struct AssignmentIp {
    /// Node budget for the MILP search.
    pub solver: MilpSolver,
}

impl AssignmentIp {
    /// Solves and returns both the schedule and the proven optimal makespan.
    pub fn solve_detailed(&self, inst: &Instance) -> Result<(Schedule, Time)> {
        if inst.jobs() == 0 {
            return Ok((Schedule::from_assignment(vec![], inst.machines())?, 0));
        }
        let model = assignment_model(inst);
        let sol = self.solver.solve(&model)?;
        if !sol.proven {
            return Err(Error::BudgetExhausted {
                incumbent: sol.objective.round() as u64,
                lower_bound: 0,
            });
        }
        let m = inst.machines();
        let n = inst.jobs();
        let mut assignment = vec![usize::MAX; n];
        for (j, slot) in assignment.iter_mut().enumerate() {
            *slot = (0..m)
                .find(|&i| sol.x[i * n + j] > 0.5)
                .ok_or_else(|| Error::BadModel(format!("job {j} unassigned in MILP solution")))?;
        }
        let schedule = Schedule::from_assignment(assignment, m)?;
        Ok((schedule, sol.objective.round() as Time))
    }
}

impl Solver for AssignmentIp {
    fn solver_name(&self) -> &'static str {
        "IP-MILP"
    }

    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        req.check_cancelled()?;
        let start = Instant::now();
        // A request-level node limit shrinks the MILP search budget.
        let solver = match req.budget.node_limit {
            Some(limit) => Self {
                solver: MilpSolver {
                    node_budget: limit.min(self.solver.node_budget).max(1),
                },
            },
            None => *self,
        };
        let solve_span = req.trace_span("model+solve", solver.solver.node_budget);
        let (schedule, opt) = solver.solve_detailed(req.instance)?;
        drop(solve_span);
        let stats = SolveStats {
            wall: start.elapsed(),
            ..SolveStats::default()
        };
        Ok(SolveReport {
            makespan: schedule.makespan(req.instance),
            schedule,
            certified_target: Some(opt),
            proven_optimal: true,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::Instance;

    #[test]
    fn model_shape() {
        let inst = Instance::new(vec![3, 5, 2], 2).unwrap();
        let model = assignment_model(&inst);
        assert_eq!(model.lp.vars(), 7); // 6 binaries + C_max
                                        // 3 job rows + 2 machine rows + 6 upper bounds.
        assert_eq!(model.lp.constraints.len(), 11);
        assert_eq!(model.integers.len(), 6);
    }

    #[test]
    fn solves_a_small_instance_optimally() {
        let inst = Instance::new(vec![3, 5, 2, 4], 2).unwrap();
        let (schedule, opt) = AssignmentIp::default().solve_detailed(&inst).unwrap();
        schedule.validate(&inst).unwrap();
        assert_eq!(opt, 7); // {5,2} and {3,4}
        assert_eq!(schedule.makespan(&inst), 7);
    }

    #[test]
    fn lp_relaxation_equals_area_bound() {
        let inst = Instance::new(vec![3, 5, 2, 4], 2).unwrap();
        let model = assignment_model(&inst);
        let relax = model.lp.solve().unwrap();
        assert!((relax.objective - 7.0).abs() < 1e-6); // 14/2
    }

    #[test]
    fn agrees_with_combinatorial_exact_solver() {
        use pcmax_exact::BranchAndBound;
        for (times, m) in [
            (vec![4u64, 5, 6, 7, 8], 2usize),
            (vec![5, 5, 4, 4, 3, 3, 3], 3),
            (vec![9, 1, 1, 1], 2),
        ] {
            let inst = Instance::new(times.clone(), m).unwrap();
            let (_, milp_opt) = AssignmentIp::default().solve_detailed(&inst).unwrap();
            let bb = BranchAndBound::default().solve_detailed(&inst).unwrap();
            assert!(bb.proven);
            assert_eq!(milp_opt, bb.best, "times={times:?} m={m}");
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 2).unwrap();
        let (s, opt) = AssignmentIp::default().solve_detailed(&inst).unwrap();
        assert_eq!(opt, 0);
        assert_eq!(s.jobs(), 0);
    }

    #[test]
    fn single_machine() {
        let inst = Instance::new(vec![2, 3, 4], 1).unwrap();
        let (_, opt) = AssignmentIp::default().solve_detailed(&inst).unwrap();
        assert_eq!(opt, 9);
    }

    #[test]
    fn tiny_node_budget_is_a_dedicated_error() {
        use pcmax_core::Budget;
        let inst = Instance::new(vec![3, 5, 2, 4, 6, 7], 3).unwrap();
        let req = SolveRequest::new(&inst).with_budget(Budget::unlimited().nodes(1));
        match AssignmentIp::default().solve(&req) {
            Err(Error::BudgetExhausted { .. }) => {}
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn solver_report_is_proven_optimal() {
        let inst = Instance::new(vec![3, 5, 2, 4], 2).unwrap();
        let report = AssignmentIp::default()
            .solve(&SolveRequest::new(&inst))
            .unwrap();
        assert!(report.proven_optimal);
        assert_eq!(report.certified_target, Some(7));
        assert_eq!(report.makespan, 7);
    }
}
