//! A from-scratch LP/MILP solver and the paper's integer-program formulation
//! of `P||Cmax`.
//!
//! The paper's "IP" baseline solves the assignment formulation
//!
//! ```text
//! minimize  C_max
//! s.t.      Σ_i x_ij = 1                 for every job j
//!           Σ_j t_j·x_ij ≤ C_max        for every machine i
//!           x_ij ∈ {0, 1},  C_max ≥ 0
//! ```
//!
//! with CPLEX. This crate substitutes a self-contained solver stack:
//!
//! * [`lp`] — a dense two-phase tableau simplex for linear programs,
//! * [`milp`] — depth-first branch-and-bound over the LP relaxation with
//!   most-fractional branching and incumbent pruning,
//! * [`formulation`] — the `P||Cmax` assignment model builder and the
//!   [`AssignmentIp`] scheduler.
//!
//! The generic MILP path is exponentially slower than the specialized
//! combinatorial solver in `pcmax-exact` (exactly as CPLEX-on-assignment-IP
//! is slower than a dedicated branch-and-bound); the experiment harness uses
//! `pcmax-exact` for the "IP" timing baseline and this crate for
//! cross-validation on small instances.

pub mod formulation;
pub mod lp;
pub mod milp;

pub use formulation::AssignmentIp;
pub use lp::{Cmp, LinearProgram, LpSolution};
pub use milp::{MilpProblem, MilpSolution, MilpSolver};
