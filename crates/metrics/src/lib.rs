//! Always-on aggregated metrics for the pcmax workspace.
//!
//! `pcmax-trace` (DESIGN.md §4d) answers "what happened inside *one* solve"
//! by recording every event; this crate answers the complementary fleet
//! question — "how are *all* solves behaving over time" — by aggregating in
//! place. It is the observability contract the future `pcmax-serve` daemon
//! scrapes (ROADMAP Open item 1), with zero external dependencies:
//!
//! * [`Counter`] — monotonic, sharded over cache-line-padded atomics so
//!   concurrent workers never bounce one hot line.
//! * [`Gauge`] — last-write-wins `f64` (cells/sec and friends).
//! * [`Histogram`] — 64 log2 buckets, fixed size, zero allocation on the
//!   record path; mergeable snapshots with p50/p90/p99/max estimation whose
//!   error is bounded by the bucket width (power-of-two resolution).
//! * A process-wide registry of `static` metric handles. Handles register
//!   themselves lazily on first record, so declaring a metric is free and
//!   the hot path stays: one relaxed "enabled" load, one relaxed
//!   "registered" load, then the relaxed atomic update(s) — the same cost
//!   class as a disabled trace hook (`metrics_overhead` in `pcmax-bench`
//!   pins it under 50 ns/event).
//! * Two exporters over the in-tree `pcmax_core::json` codec: Prometheus
//!   text exposition and a round-trippable JSON snapshot ([`export`]).
//!
//! Unlike a trace session, metrics are **on by default** ([`set_enabled`]
//! turns them off, e.g. to prove solver results are bit-identical either
//! way). Recording never blocks and never allocates; only the *first*
//! record of a handle (registration) and the first use of a new
//! [`Family`] label take a short-lived mutex, both off the per-cell path
//! by construction (the audit lint's `trace-hot`/`alloc-hot` rules ban
//! `inc`/`observe`/`with_label` from the cell-kernel loops).
//!
//! Relaxed orderings throughout are justified the same way as the trace
//! flag: counters are commutative updates with no data published through
//! them, and snapshots tolerate transiently skewed cross-metric reads
//! (see the `lock`-free helpers below and crates/audit/lint.allow).

pub mod export;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Number of cache-padded shards per [`Counter`]. Eight covers the pool
/// sizes the wavefront executors use; larger pools hash onto shared shards
/// and only lose some padding, never correctness.
pub const COUNTER_SHARDS: usize = 8;

/// Number of log2 buckets per [`Histogram`]. Bucket 0 holds zero, bucket
/// `b ≥ 1` holds `[2^(b-1), 2^b)`; the last bucket saturates upward.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Whether recording is active. Metrics are always-on by default.
static ENABLED: AtomicBool = AtomicBool::new(true);

#[inline(always)]
fn on() -> bool {
    // audit:allow(relaxed): payload-free on/off flag, same argument as the
    // trace ENABLED flag — no data is published through it; the aggregates
    // are themselves atomics. See crates/audit/lint.allow.
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Metric *declaration*, snapshot
/// and reset work either way; only the record path checks this flag.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Release);
}

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    on()
}

/// Relaxed monotonic add — every aggregate update in this crate.
#[inline(always)]
fn radd(cell: &AtomicU64, n: u64) {
    // audit:allow(relaxed): commutative counter update; nothing is
    // published through the value and readers tolerate staleness.
    cell.fetch_add(n, Ordering::Relaxed);
}

/// Relaxed aggregate read (snapshots tolerate staleness and skew).
#[inline(always)]
fn rload(cell: &AtomicU64) -> u64 {
    // audit:allow(relaxed): see radd — snapshot reads of commutative
    // aggregates; cross-shard skew is inherent to sharded counters.
    cell.load(Ordering::Relaxed)
}

/// Relaxed running max.
#[inline(always)]
fn rmax(cell: &AtomicU64, v: u64) {
    // audit:allow(relaxed): fetch_max only needs RMW atomicity; the max is
    // an aggregate read back by snapshots, never a publication gate.
    cell.fetch_max(v, Ordering::Relaxed);
}

/// Poison-tolerant lock: a panicking solver thread must not wedge the
/// registry (same policy as the trace runtime).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A sampled metric value, as carried by [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last-set gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

impl SampleValue {
    /// Kind tag used by both exporters (`counter` / `gauge` / `histogram`).
    pub fn kind(&self) -> &'static str {
        match self {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        }
    }
}

/// One metric (or one labeled child of a [`Family`]) at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (`pcmax_solve_latency_nanos`, …).
    pub name: String,
    /// One-line help string.
    pub help: String,
    /// `Some((key, value))` for family children, `None` for plain metrics.
    pub label: Option<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// A point-in-time copy of every registered metric, sorted by
/// `(name, label)` so exports are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// The samples, in sorted order.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Looks up a counter total by name and optional label value.
    pub fn counter(&self, name: &str, label: Option<&str>) -> Option<u64> {
        match self.find(name, label)? {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a gauge value by name and optional label value.
    pub fn gauge(&self, name: &str, label: Option<&str>) -> Option<f64> {
        match self.find(name, label)? {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a histogram by name and optional label value.
    pub fn histogram(&self, name: &str, label: Option<&str>) -> Option<&HistogramSnapshot> {
        match self.find(name, label)? {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    fn find(&self, name: &str, label: Option<&str>) -> Option<&SampleValue> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.label.as_ref().map(|(_, v)| v.as_str()) == label)
            .map(|s| &s.value)
    }
}

/// Anything the registry can sample and reset. Implemented by the three
/// metric types and by [`Family`].
trait Collect: Sync {
    fn collect(&self, out: &mut Vec<Sample>);
    fn reset(&self);
}

/// The process-wide registry: every handle that has recorded at least once.
static REGISTRY: Mutex<Vec<&'static dyn Collect>> = Mutex::new(Vec::new());

/// Samples every registered metric into a sorted [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let mut samples = Vec::new();
    for metric in lock(&REGISTRY).iter() {
        metric.collect(&mut samples);
    }
    samples.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
    Snapshot { samples }
}

/// Zeroes every registered metric (counters, gauges, histograms, and all
/// family children). Registration is preserved; use it to start a clean
/// measurement window (the `pcmax metrics` command does).
pub fn reset() {
    for metric in lock(&REGISTRY).iter() {
        metric.reset();
    }
}

/// Lazy self-registration shared by the static handles: one relaxed load
/// when already registered, a mutex + double-check the first time.
struct Registered(AtomicBool);

impl Registered {
    const fn new() -> Self {
        Self(AtomicBool::new(false))
    }

    /// A pre-registered marker for [`Family`] children (the family itself
    /// is the registry entry; children must not register twice).
    const fn pre() -> Self {
        Self(AtomicBool::new(true))
    }

    #[inline(always)]
    fn ensure(&self, metric: &'static dyn Collect) {
        // audit:allow(relaxed): one-way false->true flag; the slow path
        // re-checks under the registry mutex, which orders the push.
        if !self.0.load(Ordering::Relaxed) {
            self.register_slow(metric);
        }
    }

    #[cold]
    fn register_slow(&self, metric: &'static dyn Collect) {
        let mut reg = lock(&REGISTRY);
        // audit:allow(relaxed): double-check under the lock; the mutex is
        // the ordering edge, the flag only skips the lock next time.
        if !self.0.load(Ordering::Relaxed) {
            reg.push(metric);
            self.0.store(true, Ordering::Release);
        }
    }
}

/// One cache-line-padded counter shard.
#[repr(align(64))]
struct Shard(AtomicU64);

/// Round-robin shard assignment per thread: a thread-local hint handed out
/// once, so the hot path is a TLS read plus a masked index.
fn shard_hint() -> usize {
    thread_local! {
        static HINT: usize = {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            // audit:allow(relaxed): id allocation; only uniqueness matters.
            NEXT.fetch_add(1, Ordering::Relaxed)
        };
    }
    HINT.try_with(|h| *h).unwrap_or(0) % COUNTER_SHARDS
}

/// A monotonic counter, sharded to keep concurrent workers off one cache
/// line. Declare as a `static`; recording is wait-free.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    registered: Registered,
    shards: [Shard; COUNTER_SHARDS],
}

impl Counter {
    /// A new counter handle (const: usable in `static` position).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            registered: Registered::new(),
            shards: [const { Shard(AtomicU64::new(0)) }; COUNTER_SHARDS],
        }
    }

    const fn child(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            registered: Registered::pre(),
            shards: [const { Shard(AtomicU64::new(0)) }; COUNTER_SHARDS],
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&'static self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn inc_by(&'static self, n: u64) {
        if !on() {
            return;
        }
        self.registered.ensure(self);
        radd(&self.shards[shard_hint()].0, n);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| rload(&s.0)).sum()
    }

    fn zero(&self) {
        for s in &self.shards {
            // audit:allow(relaxed): reset of a commutative aggregate; racy
            // concurrent adds may land on either side, which a measurement
            // window restart accepts by definition.
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Collect for Counter {
    fn collect(&self, out: &mut Vec<Sample>) {
        out.push(Sample {
            name: self.name.to_string(),
            help: self.help.to_string(),
            label: None,
            value: SampleValue::Counter(self.get()),
        });
    }

    fn reset(&self) {
        self.zero();
    }
}

/// A last-write-wins gauge storing an `f64` (bit-cast into one atomic).
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    registered: Registered,
    bits: AtomicU64,
}

impl Gauge {
    /// A new gauge handle (const: usable in `static` position).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            registered: Registered::new(),
            bits: AtomicU64::new(0),
        }
    }

    const fn child(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            registered: Registered::pre(),
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&'static self, v: f64) {
        if !on() {
            return;
        }
        self.registered.ensure(self);
        // audit:allow(relaxed): last-write-wins sample; readers only ever
        // observe some previously stored value.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(rload(&self.bits))
    }
}

impl Collect for Gauge {
    fn collect(&self, out: &mut Vec<Sample>) {
        out.push(Sample {
            name: self.name.to_string(),
            help: self.help.to_string(),
            label: None,
            value: SampleValue::Gauge(self.get()),
        });
    }

    fn reset(&self) {
        // audit:allow(relaxed): see Gauge::set.
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// Index of the log2 bucket holding `v`.
#[inline(always)]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive `[lo, hi]` value range of bucket `b`. The last bucket
/// saturates: everything at or above `2^62` lands there.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        b if b >= HISTOGRAM_BUCKETS - 1 => (1 << (HISTOGRAM_BUCKETS - 2), u64::MAX),
        b => (1 << (b - 1), (1 << b) - 1),
    }
}

/// A fixed-size log2-bucketed histogram. Recording is three relaxed atomic
/// updates (bucket, sum, max) and never allocates; quantiles are estimated
/// from a [`HistogramSnapshot`] with error bounded by the bucket width.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    registered: Registered,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A new histogram handle (const: usable in `static` position).
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            registered: Registered::new(),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    const fn child(name: &'static str, help: &'static str) -> Self {
        Self {
            name,
            help,
            registered: Registered::pre(),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&'static self, v: u64) {
        if !on() {
            return;
        }
        self.registered.ensure(self);
        radd(&self.buckets[bucket_of(v)], 1);
        radd(&self.sum, v);
        rmax(&self.max, v);
    }

    /// Copies the current state out.
    pub fn sample(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(rload).collect(),
            sum: rload(&self.sum),
            max: rload(&self.max),
        }
    }

    fn zero(&self) {
        for b in &self.buckets {
            // audit:allow(relaxed): measurement-window reset, see
            // Counter::zero.
            b.store(0, Ordering::Relaxed);
        }
        // audit:allow(relaxed): as above.
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Collect for Histogram {
    fn collect(&self, out: &mut Vec<Sample>) {
        out.push(Sample {
            name: self.name.to_string(),
            help: self.help.to_string(),
            label: None,
            value: SampleValue::Histogram(self.sample()),
        });
    }

    fn reset(&self) {
        self.zero();
    }
}

/// The sampled state of a [`Histogram`]: per-bucket counts, the exact sum
/// and the exact max. Mergeable and quantile-estimating.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// One count per log2 bucket ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Exact sum of all observations.
    pub sum: u64,
    /// Exact maximum observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |n, &c| n.saturating_add(c))
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum as f64 / n as f64)
    }

    /// Adds `other`'s observations into `self` (bucket-wise sum, max of
    /// maxes) — the merge used to aggregate per-shard or per-run state.
    /// Counts and the value sum saturate at `u64::MAX` rather than wrap:
    /// a pegged aggregate is visibly wrong, a wrapped one is silently so.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), `None` when empty. The rank
    /// is located in its bucket and interpolated linearly inside the bucket
    /// bounds, so the estimate is always within the true quantile's bucket
    /// — an absolute error no larger than the bucket width. The top end is
    /// clamped to the exact recorded max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(b);
                let hi = hi.min(self.max).max(lo);
                let within = (rank - seen) as f64 / c as f64;
                return Some(lo as f64 + (hi - lo) as f64 * within);
            }
            seen += c;
        }
        Some(self.max as f64)
    }
}

/// A labeled family of metrics (e.g. one latency histogram per solver).
/// Children are created on first use of a label and live forever (the
/// label sets in this workspace are small and closed: solver names,
/// outcome classes, worker indices). `with_label` takes a mutex — resolve
/// children *outside* hot loops and cache the `&'static` handle.
pub struct Family<M: 'static> {
    name: &'static str,
    help: &'static str,
    label_key: &'static str,
    registered: Registered,
    children: Mutex<Vec<(String, &'static M)>>,
}

/// Declares a labeled [`Family`] (const: usable in `static` position).
pub const fn family<M: Metric>(
    name: &'static str,
    help: &'static str,
    label_key: &'static str,
) -> Family<M> {
    Family {
        name,
        help,
        label_key,
        registered: Registered::new(),
        children: Mutex::new(Vec::new()),
    }
}

impl<M: Metric> Family<M> {
    /// Resolves (creating on first use) the child for `label`.
    pub fn with_label(&'static self, label: &str) -> &'static M {
        self.registered.ensure(self);
        let mut children = lock(&self.children);
        if let Some((_, m)) = children.iter().find(|(l, _)| l == label) {
            return m;
        }
        let child: &'static M = Box::leak(Box::new(M::new_child(self.name, self.help)));
        children.push((label.to_string(), child));
        child
    }

    /// Sampled `(label, value)` pairs for every existing child.
    pub fn samples(&self) -> Vec<(String, SampleValue)> {
        lock(&self.children)
            .iter()
            .map(|(l, m)| (l.clone(), m.sample_value()))
            .collect()
    }
}

impl<M: Metric> Collect for Family<M> {
    fn collect(&self, out: &mut Vec<Sample>) {
        for (label, value) in self.samples() {
            out.push(Sample {
                name: self.name.to_string(),
                help: self.help.to_string(),
                label: Some((self.label_key.to_string(), label)),
                value,
            });
        }
    }

    fn reset(&self) {
        for (_, m) in lock(&self.children).iter() {
            m.reset_value();
        }
    }
}

/// The child contract of [`Family`]: constructible, sampleable, resettable.
pub trait Metric: Sync + 'static {
    /// Builds a pre-registered child (the family owns the registry entry).
    fn new_child(name: &'static str, help: &'static str) -> Self;
    /// Samples the current value.
    fn sample_value(&self) -> SampleValue;
    /// Zeroes the value.
    fn reset_value(&self);
}

impl Metric for Counter {
    fn new_child(name: &'static str, help: &'static str) -> Self {
        Counter::child(name, help)
    }
    fn sample_value(&self) -> SampleValue {
        SampleValue::Counter(self.get())
    }
    fn reset_value(&self) {
        self.zero();
    }
}

impl Metric for Gauge {
    fn new_child(name: &'static str, help: &'static str) -> Self {
        Gauge::child(name, help)
    }
    fn sample_value(&self) -> SampleValue {
        SampleValue::Gauge(self.get())
    }
    fn reset_value(&self) {
        // audit:allow(relaxed): see Gauge::set.
        self.bits.store(0, Ordering::Relaxed);
    }
}

impl Metric for Histogram {
    fn new_child(name: &'static str, help: &'static str) -> Self {
        Histogram::child(name, help)
    }
    fn sample_value(&self) -> SampleValue {
        SampleValue::Histogram(self.sample())
    }
    fn reset_value(&self) {
        self.zero();
    }
}

/// A static label for worker index `w`, so per-worker families never
/// allocate a label string on resolution. Pools beyond 16 workers share
/// the overflow label.
pub fn worker_label(w: usize) -> &'static str {
    const LABELS: [&str; 16] = [
        "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
    ];
    LABELS.get(w).copied().unwrap_or("16+")
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// The registry and the enabled flag are process-global; tests that
    /// reset or toggle them serialize on this.
    static SERIAL: Mutex<()> = Mutex::new(());

    pub fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards_and_threads() {
        let _serial = test_support::serial();
        static C: Counter = Counter::new("pcmax_test_shard_total", "sharded test counter");
        C.zero();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.get(), 4000);
        C.inc_by(58);
        assert_eq!(C.get(), 4058);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        static G: Gauge = Gauge::new("pcmax_test_gauge", "test gauge");
        G.set(1.5);
        G.set(2.25);
        assert_eq!(G.get(), 2.25);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, 1 << 40, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi, "{v} outside its bucket [{lo}, {hi}]");
        }
        // Buckets tile without gaps or overlaps.
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_bounds(b).0, bucket_bounds(b - 1).1 + 1);
        }
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        static H: Histogram = Histogram::new("pcmax_test_hist", "test histogram");
        H.zero();
        for v in 1..=1000u64 {
            H.observe(v);
        }
        let snap = H.sample();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum, 500500);
        assert_eq!(snap.max, 1000);
        for (q, reference) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let est = snap.quantile(q).unwrap();
            let (lo, hi) = bucket_bounds(bucket_of(reference));
            assert!(
                est >= lo as f64 && est <= hi as f64,
                "q{q}: estimate {est} outside reference bucket [{lo}, {hi}]"
            );
        }
        assert_eq!(snap.quantile(1.0), Some(1000.0), "top clamps to exact max");
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        static A: Histogram = Histogram::new("pcmax_test_merge_a", "a");
        static B: Histogram = Histogram::new("pcmax_test_merge_b", "b");
        A.zero();
        B.zero();
        for v in [1u64, 5, 9] {
            A.observe(v);
        }
        for v in [2u64, 100] {
            B.observe(v);
        }
        let mut merged = A.sample();
        merged.merge(&B.sample());
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum, 117);
        assert_eq!(merged.max, 100);
    }

    #[test]
    fn disabled_recording_is_invisible() {
        let _serial = test_support::serial();
        static C: Counter = Counter::new("pcmax_test_disabled_total", "disabled test");
        C.zero();
        set_enabled(false);
        C.inc();
        C.inc_by(10);
        set_enabled(true);
        assert_eq!(C.get(), 0);
        C.inc();
        assert_eq!(C.get(), 1);
    }

    #[test]
    fn families_key_children_by_label() {
        let _serial = test_support::serial();
        static F: Family<Counter> = family("pcmax_test_family_total", "family test", "solver");
        F.with_label("lpt").inc_by(3);
        F.with_label("ptas").inc();
        F.with_label("lpt").inc();
        let mut samples = F.samples();
        samples.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0], ("lpt".into(), SampleValue::Counter(4)));
        assert_eq!(samples[1], ("ptas".into(), SampleValue::Counter(1)));
        // Same label resolves to the same child.
        assert!(std::ptr::eq(F.with_label("lpt"), F.with_label("lpt")));
    }

    #[test]
    fn snapshot_collects_and_reset_zeroes() {
        let _serial = test_support::serial();
        static C: Counter = Counter::new("pcmax_test_snap_total", "snapshot test");
        static F: Family<Histogram> = family("pcmax_test_snap_nanos", "snapshot hist", "solver");
        C.zero();
        C.inc_by(7);
        F.with_label("lpt").observe(42);
        let snap = snapshot();
        assert_eq!(snap.counter("pcmax_test_snap_total", None), Some(7));
        let h = snap
            .histogram("pcmax_test_snap_nanos", Some("lpt"))
            .unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum, 42);
        // Sorted by (name, label).
        let names: Vec<&String> = snap.samples.iter().map(|s| &s.name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);

        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("pcmax_test_snap_total", None), Some(0));
        assert_eq!(
            snap.histogram("pcmax_test_snap_nanos", Some("lpt"))
                .unwrap()
                .count(),
            0
        );
    }

    #[test]
    fn worker_labels_are_static_and_saturate() {
        assert_eq!(worker_label(0), "0");
        assert_eq!(worker_label(15), "15");
        assert_eq!(worker_label(16), "16+");
        assert_eq!(worker_label(999), "16+");
    }
}
