//! Exposition formats for a [`Snapshot`]: Prometheus text format and a
//! round-trippable JSON document, both built on `pcmax_core::json` (no
//! external dependencies), plus the validators behind
//! `pcmax-audit metrics-check`.

use crate::{bucket_bounds, HistogramSnapshot, Sample, SampleValue, Snapshot, HISTOGRAM_BUCKETS};
use pcmax_core::json::{self, object, u64_array, Value};
use pcmax_core::{Error, Result};
use std::fmt::Write as _;

/// Format tag stamped into the JSON document so future revisions can
/// evolve the schema without silently misreading old files.
pub const JSON_FORMAT: &str = "pcmax-metrics/1";

/// Renders a snapshot in Prometheus text exposition format. Histograms
/// use the conventional cumulative `_bucket{le="..."}` series (upper
/// bounds from [`bucket_bounds`]) plus `_sum`, `_count`, and a
/// non-standard exact `<name>_max` gauge.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_header: Option<&str> = None;
    for sample in &snapshot.samples {
        // Family children share one HELP/TYPE header.
        if last_header != Some(sample.name.as_str()) {
            let _ = writeln!(out, "# HELP {} {}", sample.name, sample.help);
            let _ = writeln!(out, "# TYPE {} {}", sample.name, sample.value.kind());
            last_header = Some(sample.name.as_str());
        }
        let labels = label_text(sample);
        match &sample.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", sample.name, labels, v);
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", sample.name, labels, v);
            }
            SampleValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (b, &count) in h.buckets.iter().enumerate() {
                    cumulative += count;
                    // Emit the populated prefix only: every bucket up to
                    // the last nonzero one, so the series stays readable.
                    if count > 0 || (b == 0 && cumulative > 0) {
                        let le = bucket_bounds(b).1;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            sample.name,
                            le_labels(sample, &le.to_string()),
                            cumulative
                        );
                    }
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    sample.name,
                    le_labels(sample, "+Inf"),
                    cumulative
                );
                let _ = writeln!(out, "{}_sum{} {}", sample.name, labels, h.sum);
                let _ = writeln!(out, "{}_count{} {}", sample.name, labels, cumulative);
                let _ = writeln!(out, "{}_max{} {}", sample.name, labels, h.max);
            }
        }
    }
    out
}

fn label_text(sample: &Sample) -> String {
    match &sample.label {
        Some((k, v)) => format!("{{{}=\"{}\"}}", k, escape_label(v)),
        None => String::new(),
    }
}

fn le_labels(sample: &Sample, le: &str) -> String {
    match &sample.label {
        Some((k, v)) => format!("{{{}=\"{}\",le=\"{}\"}}", k, escape_label(v), le),
        None => format!("{{le=\"{}\"}}", le),
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl json::ToJson for Snapshot {
    fn to_json(&self) -> Value {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let mut members = vec![
                    ("name", Value::Str(s.name.clone())),
                    ("help", Value::Str(s.help.clone())),
                    ("kind", Value::Str(s.value.kind().to_string())),
                ];
                if let Some((k, v)) = &s.label {
                    members.push(("label_key", Value::Str(k.clone())));
                    members.push(("label", Value::Str(v.clone())));
                }
                match &s.value {
                    SampleValue::Counter(v) => members.push(("value", Value::UInt(*v))),
                    SampleValue::Gauge(v) => members.push(("value", Value::Float(*v))),
                    SampleValue::Histogram(h) => {
                        members.push(("buckets", u64_array(h.buckets.iter().copied())));
                        members.push(("sum", Value::UInt(h.sum)));
                        members.push(("max", Value::UInt(h.max)));
                    }
                }
                object(members)
            })
            .collect();
        object(vec![
            ("format", Value::Str(JSON_FORMAT.to_string())),
            ("samples", Value::Array(samples)),
        ])
    }
}

impl json::FromJson for Snapshot {
    fn from_json(v: &Value) -> Result<Self> {
        let format = v
            .get("format")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing `format` tag"))?;
        if format != JSON_FORMAT {
            return Err(bad(format!(
                "unsupported format `{format}` (expected `{JSON_FORMAT}`)"
            )));
        }
        let samples = v
            .get("samples")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("missing `samples` array"))?
            .iter()
            .map(sample_from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(Snapshot { samples })
    }
}

fn sample_from_json(v: &Value) -> Result<Sample> {
    let name = str_field(v, "name")?;
    let help = str_field(v, "help")?;
    let kind = str_field(v, "kind")?;
    let label = match (v.get("label_key"), v.get("label")) {
        (Some(k), Some(l)) => Some((
            k.as_str()
                .ok_or_else(|| bad("non-string `label_key`"))?
                .to_string(),
            l.as_str()
                .ok_or_else(|| bad("non-string `label`"))?
                .to_string(),
        )),
        (None, None) => None,
        _ => return Err(bad("`label_key` and `label` must appear together")),
    };
    let value = match kind.as_str() {
        "counter" => SampleValue::Counter(json::field_u64(v, "value")?),
        "gauge" => SampleValue::Gauge(
            v.get("value")
                .and_then(Value::as_f64)
                .ok_or_else(|| bad("missing or non-numeric gauge `value`"))?,
        ),
        "histogram" => {
            let buckets = json::field_u64_array(v, "buckets")?;
            if buckets.len() != HISTOGRAM_BUCKETS {
                return Err(bad(format!(
                    "histogram `{name}` has {} buckets (expected {HISTOGRAM_BUCKETS})",
                    buckets.len()
                )));
            }
            SampleValue::Histogram(HistogramSnapshot {
                buckets,
                sum: json::field_u64(v, "sum")?,
                max: json::field_u64(v, "max")?,
            })
        }
        other => return Err(bad(format!("unknown sample kind `{other}`"))),
    };
    Ok(Sample {
        name,
        help,
        label,
        value,
    })
}

fn str_field(v: &Value, key: &str) -> Result<String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing or non-string field `{key}`")))
}

fn bad(msg: impl Into<String>) -> Error {
    Error::BadModel(format!("metrics: {}", msg.into()))
}

/// Serializes a snapshot to the pretty JSON document format.
pub fn to_json_string(snapshot: &Snapshot) -> String {
    json::to_string_pretty(snapshot)
}

/// Parses a snapshot back from JSON text.
pub fn from_json_str(text: &str) -> Result<Snapshot> {
    json::from_str(text)
}

/// Summary returned by the validators, for human-readable reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationStats {
    /// Total samples (JSON) or series (Prometheus) seen.
    pub samples: usize,
    /// Of which histograms.
    pub histograms: usize,
}

/// Checks the internal consistency of a snapshot: non-empty, sorted
/// sample order, and per-histogram invariants (quantile monotonicity
/// p50 ≤ p90 ≤ p99 ≤ max, max inside the highest populated bucket, sum
/// within the bucket-implied bounds).
pub fn validate_snapshot(snapshot: &Snapshot) -> std::result::Result<ValidationStats, String> {
    if snapshot.samples.is_empty() {
        return Err("snapshot has no samples".into());
    }
    let mut histograms = 0usize;
    for pair in snapshot.samples.windows(2) {
        let a = (&pair[0].name, &pair[0].label);
        let b = (&pair[1].name, &pair[1].label);
        if a > b {
            return Err(format!("samples out of order: {:?} after {:?}", b, a));
        }
        if a == b {
            return Err(format!("duplicate sample {:?}", a));
        }
    }
    for sample in &snapshot.samples {
        let SampleValue::Histogram(h) = &sample.value else {
            continue;
        };
        histograms += 1;
        if h.buckets.len() != HISTOGRAM_BUCKETS {
            return Err(format!(
                "{}: {} buckets (expected {HISTOGRAM_BUCKETS})",
                sample.name,
                h.buckets.len()
            ));
        }
        if h.count() == 0 {
            if h.sum != 0 || h.max != 0 {
                return Err(format!(
                    "{}: empty histogram with nonzero sum/max",
                    sample.name
                ));
            }
            continue;
        }
        let (p50, p90, p99) = (
            h.quantile(0.5).unwrap_or(0.0),
            h.quantile(0.9).unwrap_or(0.0),
            h.quantile(0.99).unwrap_or(0.0),
        );
        if !(p50 <= p90 && p90 <= p99 && p99 <= h.max as f64) {
            return Err(format!(
                "{}: quantiles not monotone (p50={p50} p90={p90} p99={p99} max={})",
                sample.name, h.max
            ));
        }
        let top = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let (lo, hi) = bucket_bounds(top);
        if h.max < lo || h.max > hi {
            return Err(format!(
                "{}: max {} outside highest populated bucket [{lo}, {hi}]",
                sample.name, h.max
            ));
        }
        // Sum bounds: every observation is at most max and the bucket
        // structure caps how small the sum can be.
        let min_sum: u64 = h
            .buckets
            .iter()
            .enumerate()
            .map(|(b, &c)| bucket_bounds(b).0.saturating_mul(c))
            .fold(0u64, u64::saturating_add);
        let max_sum = (h.max as u128) * (h.count() as u128);
        if (h.sum as u128) > max_sum || h.sum < min_sum {
            return Err(format!(
                "{}: sum {} outside feasible range [{min_sum}, {max_sum}]",
                sample.name, h.sum
            ));
        }
    }
    Ok(ValidationStats {
        samples: snapshot.samples.len(),
        histograms,
    })
}

/// Validates Prometheus text exposition: every sample line is preceded by
/// a `# TYPE` for its metric, histogram `_bucket` series are cumulative
/// and end in a `+Inf` bucket equal to `_count`, and `_sum`/`_count`
/// are present for every histogram.
pub fn validate_prometheus(text: &str) -> std::result::Result<ValidationStats, String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut series = 0usize;
    // Per (histogram name, label set): (last cumulative, inf, count, sum seen)
    struct HistState {
        last_cumulative: u64,
        inf: Option<u64>,
        count: Option<u64>,
        has_sum: bool,
    }
    let mut hists: BTreeMap<(String, String), HistState> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {lineno}: bare # TYPE"))?;
            let kind = parts
                .next()
                .ok_or(format!("line {lineno}: # TYPE without kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown type `{kind}`"));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name{labels} value
        let (series_name, labels, value_text) =
            split_sample_line(line).ok_or(format!("line {lineno}: malformed sample line"))?;
        series += 1;
        let base = series_name
            .strip_suffix("_bucket")
            .or_else(|| series_name.strip_suffix("_sum"))
            .or_else(|| series_name.strip_suffix("_count"))
            .or_else(|| series_name.strip_suffix("_max"))
            .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(series_name);
        let Some(kind) = types.get(base) else {
            return Err(format!(
                "line {lineno}: `{series_name}` has no preceding # TYPE"
            ));
        };
        if kind == "histogram" {
            let value: u64 = value_text
                .parse()
                .map_err(|_| format!("line {lineno}: non-integer histogram value"))?;
            let label_key = labels_without_le(labels);
            let state = hists
                .entry((base.to_string(), label_key))
                .or_insert(HistState {
                    last_cumulative: 0,
                    inf: None,
                    count: None,
                    has_sum: false,
                });
            if series_name.ends_with("_bucket") {
                if labels_le(labels) == Some("+Inf") {
                    state.inf = Some(value);
                } else if value < state.last_cumulative {
                    return Err(format!(
                        "line {lineno}: `{base}` buckets not cumulative ({value} < {})",
                        state.last_cumulative
                    ));
                } else {
                    state.last_cumulative = value;
                }
            } else if series_name.ends_with("_count") {
                state.count = Some(value);
            } else if series_name.ends_with("_sum") {
                state.has_sum = true;
            }
        } else {
            value_text
                .parse::<f64>()
                .map_err(|_| format!("line {lineno}: non-numeric value `{value_text}`"))?;
        }
    }
    if series == 0 {
        return Err("no sample lines".into());
    }
    for ((name, labels), state) in &hists {
        let what = if labels.is_empty() {
            name.clone()
        } else {
            format!("{name}{{{labels}}}")
        };
        let inf = state.inf.ok_or(format!("{what}: missing +Inf bucket"))?;
        let count = state.count.ok_or(format!("{what}: missing _count"))?;
        if inf != count {
            return Err(format!("{what}: +Inf bucket {inf} != _count {count}"));
        }
        if inf < state.last_cumulative {
            return Err(format!(
                "{what}: +Inf bucket {inf} below last finite bucket {}",
                state.last_cumulative
            ));
        }
        if !state.has_sum {
            return Err(format!("{what}: missing _sum"));
        }
    }
    Ok(ValidationStats {
        samples: series,
        histograms: hists.len(),
    })
}

fn split_sample_line(line: &str) -> Option<(&str, &str, &str)> {
    let (head, value) = line.rsplit_once(' ')?;
    let head = head.trim_end();
    match head.find('{') {
        Some(open) => {
            let labels = head[open + 1..].strip_suffix('}')?;
            Some((&head[..open], labels, value))
        }
        None => Some((head, "", value)),
    }
}

fn labels_le(labels: &str) -> Option<&str> {
    labels.split(',').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == "le").then(|| v.trim_matches('"'))
    })
}

fn labels_without_le(labels: &str) -> String {
    labels
        .split(',')
        .filter(|pair| !pair.starts_with("le="))
        .filter(|pair| !pair.is_empty())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistogramSnapshot, Sample, SampleValue, Snapshot};

    fn test_snapshot() -> Snapshot {
        let mut hist = HistogramSnapshot::empty();
        for v in [1u64, 3, 3, 7, 120, 4096] {
            hist.buckets[crate::bucket_of(v)] += 1;
            hist.sum += v;
            hist.max = hist.max.max(v);
        }
        let mut samples = vec![
            Sample {
                name: "pcmax_pool_parks_total".into(),
                help: "worker park transitions".into(),
                label: None,
                value: SampleValue::Counter(42),
            },
            Sample {
                name: "pcmax_dp_cells_per_sec".into(),
                help: "dp throughput".into(),
                label: Some(("solver".into(), "par-ptas".into())),
                value: SampleValue::Gauge(12345.5),
            },
            Sample {
                name: "pcmax_solve_latency_nanos".into(),
                help: "per-solve latency".into(),
                label: Some(("solver".into(), "lpt".into())),
                value: SampleValue::Histogram(hist),
            },
        ];
        samples.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        Snapshot { samples }
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = test_snapshot();
        let text = to_json_string(&snap);
        let back = from_json_str(&text).unwrap();
        assert_eq!(back, snap);
        // Compact form round-trips too.
        let compact = json::to_string(&snap);
        assert_eq!(from_json_str(&compact).unwrap(), snap);
    }

    #[test]
    fn json_rejects_wrong_format_tag() {
        let text = to_json_string(&test_snapshot()).replace(JSON_FORMAT, "pcmax-metrics/999");
        assert!(from_json_str(&text).is_err());
    }

    #[test]
    fn json_rejects_truncated_histogram() {
        let snap = Snapshot {
            samples: vec![Sample {
                name: "pcmax_bad".into(),
                help: "h".into(),
                label: None,
                value: SampleValue::Histogram(HistogramSnapshot {
                    buckets: vec![0; 3],
                    sum: 0,
                    max: 0,
                }),
            }],
        };
        let text = to_json_string(&snap);
        assert!(from_json_str(&text).is_err());
    }

    #[test]
    fn prometheus_output_validates() {
        let snap = test_snapshot();
        let text = to_prometheus(&snap);
        let stats = validate_prometheus(&text).unwrap();
        assert_eq!(stats.histograms, 1);
        assert!(text.contains("# TYPE pcmax_pool_parks_total counter"));
        assert!(text.contains("pcmax_pool_parks_total 42"));
        assert!(text.contains("# TYPE pcmax_solve_latency_nanos histogram"));
        assert!(text.contains("pcmax_solve_latency_nanos_bucket{solver=\"lpt\",le=\"+Inf\"} 6"));
        assert!(text.contains("pcmax_solve_latency_nanos_count{solver=\"lpt\"} 6"));
        assert!(text.contains("pcmax_solve_latency_nanos_max{solver=\"lpt\"} 4096"));
        assert!(text.contains("pcmax_dp_cells_per_sec{solver=\"par-ptas\"} 12345.5"));
    }

    #[test]
    fn snapshot_validator_accepts_real_and_rejects_corrupt() {
        let snap = test_snapshot();
        let stats = validate_snapshot(&snap).unwrap();
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.histograms, 1);

        // Corrupt the max so it escapes its bucket.
        let mut broken = snap.clone();
        for s in &mut broken.samples {
            if let SampleValue::Histogram(h) = &mut s.value {
                h.max = 9_999_999;
            }
        }
        assert!(validate_snapshot(&broken).is_err());

        // Out-of-order samples.
        let mut unsorted = snap.clone();
        unsorted.samples.reverse();
        assert!(validate_snapshot(&unsorted).is_err());

        assert!(validate_snapshot(&Snapshot::default()).is_err());
    }

    #[test]
    fn prometheus_validator_rejects_broken_series() {
        assert!(validate_prometheus("").is_err());
        assert!(
            validate_prometheus("pcmax_x_total 1\n").is_err(),
            "missing TYPE"
        );
        let non_cumulative = "\
# TYPE pcmax_h histogram
pcmax_h_bucket{le=\"1\"} 5
pcmax_h_bucket{le=\"2\"} 3
pcmax_h_bucket{le=\"+Inf\"} 5
pcmax_h_sum 9
pcmax_h_count 5
";
        assert!(validate_prometheus(non_cumulative).is_err());
        let inf_mismatch = "\
# TYPE pcmax_h histogram
pcmax_h_bucket{le=\"1\"} 5
pcmax_h_bucket{le=\"+Inf\"} 5
pcmax_h_sum 9
pcmax_h_count 6
";
        assert!(validate_prometheus(inf_mismatch).is_err());
    }
}
