//! Property tests for the log2-bucketed histogram: the recorded
//! distribution must agree with a sorted-vector reference up to the
//! documented bucket error, saturate cleanly at the top bucket, merge
//! exactly, and count identically under concurrent recording.

use pcmax_metrics::{bucket_bounds, bucket_of, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// A fresh histogram per case. Recording needs `&'static self` (that is
/// the production contract: metrics are statics), so each case leaks one
/// — a few hundred bytes per case, reclaimed at process exit.
fn fresh() -> &'static Histogram {
    Box::leak(Box::new(Histogram::new(
        "prop_scratch_hist",
        "proptest scratch histogram",
    )))
}

/// The exact reference quantile: the rank-th order statistic, with the
/// same ceil-rank convention the histogram documents.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = (q.clamp(0.0, 1.0) * n).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

/// Values that exercise every bucket regime: small integers, mid-range,
/// full-range, and the 2^62.. saturation bucket.
fn value_strategy() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|bits| match bits % 10 {
        0..=3 => (bits / 10) % 1024,
        4..=6 => (bits / 10) % (1u64 << 32),
        7..=8 => bits / 10,
        _ => (1u64 << 62) | bits,
    })
}

proptest! {
    /// The histogram quantile always lands inside the bucket of the true
    /// quantile — absolute error bounded by one bucket width.
    #[test]
    fn quantile_within_the_reference_value_bucket(
        values in prop::collection::vec(value_strategy(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = fresh();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.sample();
        prop_assert_eq!(snap.count(), values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let reference = reference_quantile(&sorted, q);
        let (lo, hi) = bucket_bounds(bucket_of(reference));
        let est = snap.quantile(q).unwrap();
        prop_assert!(
            lo as f64 <= est && est <= hi as f64,
            "quantile({}) = {} outside the reference bucket [{}, {}] of {}",
            q, est, lo, hi, reference
        );
    }

    /// Everything at or above 2^62 saturates into the top bucket, and the
    /// top-end quantile still reports the exact recorded max (the clamp).
    #[test]
    fn saturates_at_the_top_bucket(
        values in prop::collection::vec((1u64 << 62)..=u64::MAX, 1..50),
    ) {
        let h = fresh();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.sample();
        prop_assert_eq!(snap.buckets[pcmax_metrics::HISTOGRAM_BUCKETS - 1], values.len() as u64);
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(snap.max, max);
        // The clamp reports the recorded max; above 2^53 the f64 estimate
        // carries conversion rounding, so compare with relative tolerance.
        let est = snap.quantile(1.0).unwrap();
        let rel = (est - max as f64).abs() / max as f64;
        prop_assert!(rel < 1e-9, "quantile(1.0) = {} vs max {}", est, max);
    }

    /// Merging two snapshots is exactly the snapshot of the combined
    /// stream: bucket-wise sums, summed totals, max of maxes. Values are
    /// bounded so the true sum fits in u64 — merge saturates on overflow
    /// while the lock-free record path wraps, so exactness is only
    /// promised on the non-overflowing domain.
    #[test]
    fn merge_equals_the_combined_stream(
        a in prop::collection::vec(any::<u64>().prop_map(|v| v % (1u64 << 54)), 0..100),
        b in prop::collection::vec(any::<u64>().prop_map(|v| v % (1u64 << 54)), 0..100),
    ) {
        let (ha, hb, hab) = (fresh(), fresh(), fresh());
        for &v in &a {
            ha.observe(v);
            hab.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            hab.observe(v);
        }
        let mut merged = ha.sample();
        merged.merge(&hb.sample());
        let combined = hab.sample();
        prop_assert_eq!(&merged.buckets, &combined.buckets);
        prop_assert_eq!(merged.sum, combined.sum);
        prop_assert_eq!(merged.max, combined.max);
    }

    /// An empty merge is the identity.
    #[test]
    fn merging_empty_is_identity(
        values in prop::collection::vec(value_strategy(), 0..50),
    ) {
        let h = fresh();
        for &v in &values {
            h.observe(v);
        }
        let mut snap = h.sample();
        let before = snap.clone();
        snap.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&snap.buckets, &before.buckets);
        prop_assert_eq!(snap.sum, before.sum);
        prop_assert_eq!(snap.max, before.max);
    }
}

/// Concurrent recording into one histogram loses nothing: the final
/// snapshot equals the serial reference built from the same values.
#[test]
fn concurrent_recording_matches_the_serial_reference() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    let h = fresh();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // A deterministic mix spanning several buckets.
                    h.observe((t * PER_THREAD + i) % 4096);
                }
            });
        }
    });
    let concurrent = h.sample();

    let serial = fresh();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            serial.observe((t * PER_THREAD + i) % 4096);
        }
    }
    let reference = serial.sample();
    assert_eq!(concurrent.buckets, reference.buckets);
    assert_eq!(concurrent.sum, reference.sum);
    assert_eq!(concurrent.max, reference.max);
    assert_eq!(concurrent.count(), THREADS * PER_THREAD);
}
