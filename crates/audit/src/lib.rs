//! `pcmax-audit` — the workspace's in-tree soundness tooling.
//!
//! Two engines, one goal: back the informal "the wavefront DP is race-free
//! because levels are barrier-separated and intra-level writes are disjoint"
//! argument with machine-checked evidence.
//!
//! * **Lint** ([`lexer`], [`rules`], [`lint`]): a source-level pass over the
//!   whole workspace built on a small in-tree Rust lexer (no `syn`; the
//!   build is offline). Enforces: no `unwrap`/`expect` in non-test library
//!   code, no `Ordering::Relaxed` without a justified site comment *and* an
//!   allowlist entry, no unexplained narrowing casts in DP index arithmetic,
//!   and no build artifacts tracked in git. Run with
//!   `cargo run -p pcmax-audit -- lint`.
//! * **Concurrency checker** ([`race`], [`explore`], `feature = "audit"`):
//!   a happens-before race detector (per-thread vector clocks) over the
//!   serialized traces produced by `pcmax_parallel::sync::audit`'s seeded
//!   turn-based scheduler. The regression suite in `tests/` replays ≥64
//!   interleavings of the instrumented executors on the paper's DP and
//!   asserts zero races plus bit-identical tables against the sequential
//!   solver.

pub mod lexer;
pub mod lint;
pub mod rules;

#[cfg(feature = "audit")]
pub mod explore;
#[cfg(feature = "audit")]
pub mod race;
