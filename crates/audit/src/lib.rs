//! `pcmax-audit` — the workspace's in-tree soundness tooling.
//!
//! Two engines, one goal: back the informal "the wavefront DP is race-free
//! because levels are barrier-separated and intra-level writes are disjoint"
//! argument with machine-checked evidence.
//!
//! * **Lint** ([`lexer`], [`rules`], [`lint`]): a source-level pass over the
//!   whole workspace built on a small in-tree Rust lexer (no `syn`; the
//!   build is offline). Enforces: no `unwrap`/`expect` in non-test library
//!   code, no `Ordering::Relaxed` without a justified site comment *and* an
//!   allowlist entry, no unexplained narrowing casts in DP index arithmetic,
//!   no trace hooks and no allocation in the cell-kernel hot loops, no
//!   `MutexGuard` held across a condvar wait, and no build artifacts
//!   tracked in git. Run with `cargo run -p pcmax-audit -- lint`.
//! * **Concurrency checker** ([`race`], [`explore`], [`blocking`],
//!   [`dpor`], `feature = "audit"`): a happens-before race detector
//!   (per-thread vector clocks) over the serialized traces produced by
//!   `pcmax_parallel::sync::audit`'s turn-based scheduler, a blocking
//!   analysis (lock-order cycles, lost wakeups) over the same traces, and
//!   two exploration modes — seeded-random sweeps and systematic DPOR
//!   enumeration with sleep sets that covers every non-equivalent schedule
//!   of a workload up to a budget and shrinks any failure to a minimal
//!   replayable decision script. The regression suite in `tests/` replays
//!   the instrumented executors on the paper's DP and asserts zero races,
//!   zero blocking findings, and bit-identical tables against the
//!   sequential solver.

pub mod lexer;
pub mod lint;
pub mod rules;

#[cfg(feature = "audit")]
pub mod blocking;
#[cfg(feature = "audit")]
pub mod dpor;
#[cfg(feature = "audit")]
pub mod explore;
#[cfg(feature = "audit")]
pub mod race;
