//! A lightweight Rust lexer — just enough token structure for the lint
//! rules, with no `syn` (the workspace is offline and vendors everything).
//!
//! The lexer understands exactly the places naive `grep`-style linting goes
//! wrong: line and (nested) block comments, string/raw-string/byte-string
//! literals, char literals vs. lifetimes. Everything else becomes a flat
//! token stream with line numbers.
//!
//! Comments are not discarded blindly: they are scanned for
//! `audit:allow(<rule>): <reason>` directives, the in-source half of the
//! lint's allowlisting mechanism.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`.`, `(`, `::` arrives as two `:`).
    Punct(char),
    /// Any literal (string, raw string, char, number) — contents elided.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// An `audit:allow(<rule>)` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive appears on.
    pub line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether a non-empty justification follows the closing parenthesis.
    pub justified: bool,
}

/// The output of [`lex`].
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// All allow-directives found in comments, in source order.
    pub allows: Vec<AllowDirective>,
}

/// Lexes `src` into tokens + allow-directives. Unterminated constructs are
/// tolerated (the rest of the file is consumed as that construct); the lint
/// runs on code that already compiles, so this never matters in practice.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_comment(&src[start..i], line, &mut out.allows);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                scan_comment(&src[start..i], start_line, &mut out.allows);
            }
            b'"' => {
                let tok_line = line;
                i = consume_string(b, i + 1, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line: tok_line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let tok_line = line;
                i = consume_raw_or_byte(b, i, &mut line);
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line: tok_line,
                });
            }
            b'\'' => {
                // Lifetime iff an identifier char follows and the construct
                // is not closed by another quote right after it.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && (i + 2 >= b.len() || b[i + 2] != b'\'');
                if is_lifetime {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    // Char literal, possibly escaped.
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Token {
                        tok: Tok::Literal,
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True if position `i` starts `r"`, `r#`, `b"`, `br"`, `b'`, or `br#`.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => {
            let mut j = i + 1;
            while j < b.len() && b[j] == b'#' {
                j += 1;
            }
            j < b.len() && b[j] == b'"'
        }
        b'b' => {
            if i + 1 >= b.len() {
                return false;
            }
            match b[i + 1] {
                b'"' | b'\'' => true,
                b'r' => {
                    let mut j = i + 2;
                    while j < b.len() && b[j] == b'#' {
                        j += 1;
                    }
                    j < b.len() && b[j] == b'"'
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Consumes a normal (escaped) string starting after the opening quote;
/// returns the index after the closing quote.
fn consume_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw/byte string (or byte char) starting at its `r`/`b`.
fn consume_raw_or_byte(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
        // Byte char literal.
        i += 2;
        if i < b.len() && b[i] == b'\\' {
            i += 2;
        } else {
            i += 1;
        }
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return i + 1;
    }
    if b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'"' {
        return consume_string(b, i + 2, line);
    }
    // Raw (byte) string: skip optional b, the r, count hashes.
    if b[i] == b'b' {
        i += 1;
    }
    i += 1; // the 'r'
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // the opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Scans one comment for `audit:allow(<rule>)` directives. Multi-line block
/// comments attribute each directive to the comment's starting line plus the
/// directive's offset within it.
fn scan_comment(text: &str, start_line: u32, out: &mut Vec<AllowDirective>) {
    for (off, comment_line) in text.lines().enumerate() {
        let mut rest = comment_line;
        while let Some(pos) = rest.find("audit:allow(") {
            let after = &rest[pos + "audit:allow(".len()..];
            let Some(close) = after.find(')') else {
                break;
            };
            let rule = after[..close].trim().to_string();
            let tail = after[close + 1..].trim_start_matches(':').trim();
            out.push(AllowDirective {
                line: start_line + off as u32,
                rule,
                justified: !tail.is_empty(),
            });
            rest = &after[close + 1..];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r###"
            // calls unwrap() in a comment
            /* block unwrap() /* nested unwrap() */ still comment */
            let s = "string unwrap()";
            let r = r#"raw "quoted" unwrap()"#;
            real_ident();
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Literal)
            .count();
        assert_eq!(literals, 1);
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let c = '\''; let n = '\n'; after();";
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\"two\nline\"\nc";
        let lexed = lex(src);
        let c = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("c".into()))
            .map(|t| t.line);
        assert_eq!(c, Some(5));
    }

    #[test]
    fn allow_directives_parse_with_justification() {
        let src = "// audit:allow(relaxed): monotonic flag\nx();\n// audit:allow(cast)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "relaxed");
        assert!(lexed.allows[0].justified);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[1].rule, "cast");
        assert!(!lexed.allows[1].justified);
        assert_eq!(lexed.allows[1].line, 3);
    }

    #[test]
    fn byte_strings_and_numbers() {
        let src = "let b = b\"bytes unwrap()\"; let n = 0xFFu32; done();";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"done".to_string()));
    }
}
