//! The workspace lint driver: finds the workspace root, loads the
//! allowlist, walks every tracked `.rs` file through the rules, and runs
//! the repo-level artifact check. Used by the CLI (`src/main.rs`) and the
//! regression tests.

use crate::rules::{check_tracked_artifacts, lint_source, AllowEntry, Allowlist, Violation};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Repo-relative path of the allowlist file.
pub const ALLOWLIST_PATH: &str = "crates/audit/lint.allow";

/// The result of a full workspace lint.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Violations that survived directives and the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist entries that suppressed nothing (burn-down candidates).
    pub stale: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// Whether the workspace is clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)
                .map_err(|e| format!("read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!("no workspace Cargo.toml above {}", start.display()));
        }
    }
}

/// The tracked-file list, repo-relative with `/` separators.
pub fn tracked_files(root: &Path) -> Result<Vec<String>, String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["ls-files", "-z"])
        .output()
        .map_err(|e| format!("git ls-files: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git ls-files failed: {}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .split('\0')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect())
}

/// Runs the full lint: allowlist load, per-file source rules over every
/// tracked `.rs` file, then the artifact rule over the whole tracked set.
pub fn run(root: &Path) -> Result<LintOutcome, String> {
    let allow_path = root.join(ALLOWLIST_PATH);
    let allow = if allow_path.is_file() {
        let text = fs::read_to_string(&allow_path)
            .map_err(|e| format!("read {}: {e}", allow_path.display()))?;
        Allowlist::parse(&text)?
    } else {
        Allowlist::default()
    };

    let tracked = tracked_files(root)?;
    let mut outcome = LintOutcome::default();
    let mut allow_hits: Vec<(String, String)> = Vec::new();

    for rel in tracked.iter().filter(|p| p.ends_with(".rs")) {
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        let report = lint_source(rel, &src, &allow);
        outcome.violations.extend(report.violations);
        allow_hits.extend(report.allow_hits);
        outcome.files_scanned += 1;
    }

    outcome.violations.extend(check_tracked_artifacts(&tracked));

    outcome.stale = allow.stale(&allow_hits).into_iter().cloned().collect();
    outcome
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(outcome)
}
