//! CLI for `pcmax-audit`.
//!
//! * `cargo run -p pcmax-audit -- lint [--strict-stale]` — run the
//!   workspace lint; exits 1 on violations, 0 when clean. Stale allowlist
//!   entries are warnings by default and failures under `--strict-stale`
//!   (CI uses the strict mode so burned-down entries cannot linger).
//! * `cargo run -p pcmax-audit --features audit -- race [SEEDS]` — explore
//!   SEEDS (default 64) random interleavings of the instrumented wavefront
//!   DP and report the race + blocking (lock-order cycle, lost-wakeup)
//!   verdict. Without the feature the subcommand explains how to enable it.
//! * `cargo run -p pcmax-audit --features audit -- dpor [BUDGET]` — the
//!   systematic mode: exhaustively enumerates the non-equivalent schedules
//!   of the fork/join microworkload (count checked against the hand-derived
//!   bound), proves the explorer finds an injected order-dependent race
//!   (printing its minimal replayable schedule), and sweeps the persistent
//!   pool's schedule space under BUDGET (default 2000) runs.
//! * `cargo run -p pcmax-audit -- trace-check FILE` — validate an exported
//!   Chrome-trace JSON timeline (parses, non-empty, required fields,
//!   balanced per-thread spans); exits 1 on a malformed trace.
//! * `cargo run -p pcmax-audit -- metrics-check FILE` — validate an exported
//!   metrics snapshot, either the JSON form (`pcmax metrics --format json`)
//!   or the Prometheus text form (`--format prom`); checks internal
//!   consistency (sorted samples, cumulative buckets, count/sum coherence)
//!   and exits 1 on a malformed export. The format is sniffed from the
//!   content, not the file name.

use std::env;
use std::process::ExitCode;

const USAGE: &str = "usage: pcmax-audit <lint [--strict-stale] | race [SEEDS] | dpor [BUDGET] | \
     trace-check FILE | metrics-check FILE>";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(args.iter().any(|a| a == "--strict-stale")),
        Some("race") => run_race(args.get(1).map(String::as_str)),
        Some("dpor") => run_dpor(args.get(1).map(String::as_str)),
        Some("trace-check") => run_trace_check(args.get(1).map(String::as_str)),
        Some("metrics-check") => run_metrics_check(args.get(1).map(String::as_str)),
        Some(other) => {
            eprintln!("unknown subcommand {other:?}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_trace_check(path: Option<&str>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("trace-check needs a Chrome-trace JSON file");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pcmax-audit: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match pcmax_trace::chrome::validate(&text) {
        Ok(stats) => {
            println!(
                "pcmax-audit trace-check: OK — {} events, {} threads, {} complete \
                 spans, {} instants, {} counters",
                stats.events, stats.threads, stats.complete_spans, stats.instants, stats.counters
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("pcmax-audit trace-check FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_metrics_check(path: Option<&str>) -> ExitCode {
    use pcmax_metrics::export;

    let Some(path) = path else {
        eprintln!("metrics-check needs an exported metrics snapshot (JSON or Prometheus text)");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pcmax-audit: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    // Sniff the format: the JSON exporter always emits an object with the
    // `pcmax-metrics/1` format tag; everything else is treated as
    // Prometheus text exposition.
    let result = if text.trim_start().starts_with('{') {
        export::from_json_str(&text)
            .map_err(|e| format!("json: {e}"))
            .and_then(|snap| export::validate_snapshot(&snap).map_err(|e| format!("json: {e}")))
            .map(|stats| ("json", stats))
    } else {
        export::validate_prometheus(&text)
            .map_err(|e| format!("prometheus: {e}"))
            .map(|stats| ("prometheus", stats))
    };
    match result {
        Ok((format, stats)) => {
            println!(
                "pcmax-audit metrics-check: OK — {format} format, {} samples, {} histograms",
                stats.samples, stats.histograms
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("pcmax-audit metrics-check FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(strict_stale: bool) -> ExitCode {
    let cwd = match env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pcmax-audit: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match pcmax_audit::lint::workspace_root(&cwd) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pcmax-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match pcmax_audit::lint::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pcmax-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let severity = if strict_stale { "error" } else { "warning" };
    for entry in &outcome.stale {
        eprintln!(
            "{severity}: stale lint.allow entry `{} {}` ({}) suppressed nothing — delete it",
            entry.rule, entry.path, entry.reason
        );
    }
    for v in &outcome.violations {
        println!("{v}");
    }
    let stale_fails = strict_stale && !outcome.stale.is_empty();
    if outcome.clean() && !stale_fails {
        println!(
            "pcmax-audit lint: {} files scanned, 0 violations",
            outcome.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "pcmax-audit lint: {} files scanned, {} violation(s), {} stale entr(ies)",
            outcome.files_scanned,
            outcome.violations.len(),
            outcome.stale.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(not(feature = "audit"))]
fn run_race(_seeds: Option<&str>) -> ExitCode {
    eprintln!(
        "pcmax-audit: the race explorer needs the instrumented build:\n    \
         cargo run -p pcmax-audit --features audit -- race"
    );
    ExitCode::from(2)
}

#[cfg(feature = "audit")]
fn run_race(seeds: Option<&str>) -> ExitCode {
    use pcmax_parallel::ParallelDp;
    use pcmax_ptas::dp::{DpProblem, DpSolver, IterativeDp};

    let seeds: u64 = match seeds.unwrap_or("64").parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("pcmax-audit: bad seed count: {e}");
            return ExitCode::from(2);
        }
    };
    // The paper's worked example: 2 jobs of size 2 and 3 of size 4 (unit 2),
    // target makespan 30 — small enough that every interleaving finishes in
    // milliseconds, rich enough to exercise multi-entry levels.
    let problem = {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        DpProblem::new(counts, 2, 30, 64)
    };
    let expected = match IterativeDp.solve(&problem) {
        Ok(out) => out.machines,
        Err(e) => {
            eprintln!("pcmax-audit: sequential reference failed: {e}");
            return ExitCode::from(2);
        }
    };
    let report = pcmax_audit::explore::sweep(
        1,
        seeds,
        || {
            ParallelDp::with_threads(3)
                .solve(&problem)
                .map(|out| out.machines)
                .unwrap_or(u32::MAX)
        },
        |seed, &got| {
            if got != expected {
                eprintln!("seed {seed}: OPT {got} != sequential {expected}");
            }
        },
    );
    println!(
        "pcmax-audit race: {} schedules ({} distinct), {} events, {} threads max, \
         {} race(s), {} lock-order cycle(s), {} lost-wakeup candidate(s)",
        report.schedules,
        report.distinct_histories,
        report.events,
        report.max_threads,
        report.races.len(),
        report.lock_cycles.len(),
        report.lost_wakeups.len()
    );
    for (seed, race) in &report.races {
        println!("  seed {seed}: {race}");
    }
    for (seed, cycle) in &report.lock_cycles {
        println!("  seed {seed}: lock-order cycle through objects {cycle:?}");
    }
    for (seed, lw) in &report.lost_wakeups {
        println!("  seed {seed}: {lw}");
    }
    if report.races.is_empty() && report.lock_cycles.is_empty() && report.lost_wakeups.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(not(feature = "audit"))]
fn run_dpor(_budget: Option<&str>) -> ExitCode {
    eprintln!(
        "pcmax-audit: the DPOR explorer needs the instrumented build:\n    \
         cargo run -p pcmax-audit --features audit -- dpor"
    );
    ExitCode::from(2)
}

#[cfg(feature = "audit")]
fn run_dpor(budget: Option<&str>) -> ExitCode {
    use pcmax_audit::dpor::workloads::{
        fork_join_two_workers, injected_rare_race, FORK_JOIN_TWO_WORKERS_SCHEDULES,
    };
    use pcmax_audit::explore::sweep_exhaustive;
    use pcmax_parallel::wavefront::bucketed_sweep;
    use pcmax_ptas::dp::DpProblem;
    use pcmax_ptas::table::DpScratch;

    let budget: usize = match budget.unwrap_or("2000").parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("pcmax-audit: bad schedule budget: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;

    // 1. Coverage calibration: the 2-worker fork/join microworkload has a
    //    hand-derived bound of exactly 2 non-equivalent schedules; the
    //    explorer must hit it — no more (sleep sets work), no fewer
    //    (backtracking works).
    let micro = sweep_exhaustive(64, fork_join_two_workers, |_, _| {});
    let micro_ok =
        micro.complete && micro.is_clean() && micro.schedules == FORK_JOIN_TWO_WORKERS_SCHEDULES;
    println!(
        "pcmax-audit dpor: fork/join microworkload — {} schedules \
         (hand-derived bound {FORK_JOIN_TWO_WORKERS_SCHEDULES}), complete={} … {}",
        micro.schedules,
        micro.complete,
        if micro_ok { "OK" } else { "FAILED" }
    );
    failed |= !micro_ok;

    // 2. Detector liveness: an injected order-dependent race that hides in
    //    one schedule class must be found, and its schedule shrunk to a
    //    replayable minimal script.
    let injected = sweep_exhaustive(512, injected_rare_race, |_, _| {});
    match &injected.counterexample {
        Some(cx) => println!(
            "pcmax-audit dpor: injected race found after {} schedules — {}\n    \
             minimal replay: run_schedule(&{:?})",
            injected.schedules, cx.race, cx.schedule
        ),
        None => {
            println!("pcmax-audit dpor: injected race NOT found — FAILED");
            failed = true;
        }
    }

    // 3. The real executor: the persistent pool's park/notify barrier on a
    //    one-job instance, swept up to the budget (the minimal instance is
    //    fully enumerable well inside the default).
    let problem = {
        let mut counts = vec![0u32; 16];
        counts[2] = 1;
        DpProblem::new(counts, 2, 30, 64)
    };
    let pool = sweep_exhaustive(
        budget,
        || {
            let mut scratch = DpScratch::new();
            let mut table = match problem.build_level_major_table_in(&mut scratch) {
                Ok(t) => t,
                Err(e) => panic!("table build failed: {e}"),
            };
            let configs = problem.configs_with_offsets(&table);
            table.values[0] = 0;
            bucketed_sweep(&mut table, &configs, 2, &mut scratch);
            table.values_row_major()
        },
        |schedule, values| {
            assert_eq!(
                values,
                &[0, 1],
                "schedule {schedule:?}: table diverged from the sequential DP"
            );
        },
    );
    let pool_ok = pool.is_clean();
    println!(
        "pcmax-audit dpor: persistent pool — {} schedules, complete={}, {} race(s), \
         {} cycle(s), {} lost wakeup(s), {} deadlock(s) … {}",
        pool.schedules,
        pool.complete,
        pool.races.len(),
        pool.cycles.len(),
        pool.lost_wakeups.len(),
        pool.deadlocks.len(),
        if pool_ok { "OK" } else { "FAILED" }
    );
    if let Some(cx) = &pool.counterexample {
        println!("    minimal replay: run_schedule(&{:?})", cx.schedule);
    }
    failed |= !pool_ok;

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
