//! CLI for `pcmax-audit`.
//!
//! * `cargo run -p pcmax-audit -- lint` — run the workspace lint; exits 1 on
//!   violations, 0 when clean (stale allowlist entries are warnings).
//! * `cargo run -p pcmax-audit --features audit -- race [SEEDS]` — explore
//!   SEEDS (default 64) interleavings of the instrumented wavefront DP and
//!   report the race verdict. Without the feature the subcommand explains
//!   how to enable it.
//! * `cargo run -p pcmax-audit -- trace-check FILE` — validate an exported
//!   Chrome-trace JSON timeline (parses, non-empty, required fields,
//!   balanced per-thread spans); exits 1 on a malformed trace.

use std::env;
use std::process::ExitCode;

const USAGE: &str = "usage: pcmax-audit <lint | race [SEEDS] | trace-check FILE>";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("race") => run_race(args.get(1).map(String::as_str)),
        Some("trace-check") => run_trace_check(args.get(1).map(String::as_str)),
        Some(other) => {
            eprintln!("unknown subcommand {other:?}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_trace_check(path: Option<&str>) -> ExitCode {
    let Some(path) = path else {
        eprintln!("trace-check needs a Chrome-trace JSON file");
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pcmax-audit: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match pcmax_trace::chrome::validate(&text) {
        Ok(stats) => {
            println!(
                "pcmax-audit trace-check: OK — {} events, {} threads, {} complete \
                 spans, {} instants, {} counters",
                stats.events, stats.threads, stats.complete_spans, stats.instants, stats.counters
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("pcmax-audit trace-check FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint() -> ExitCode {
    let cwd = match env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pcmax-audit: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match pcmax_audit::lint::workspace_root(&cwd) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pcmax-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match pcmax_audit::lint::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pcmax-audit: {e}");
            return ExitCode::from(2);
        }
    };
    for entry in &outcome.stale {
        eprintln!(
            "warning: stale lint.allow entry `{} {}` ({}) suppressed nothing — delete it",
            entry.rule, entry.path, entry.reason
        );
    }
    for v in &outcome.violations {
        println!("{v}");
    }
    if outcome.clean() {
        println!(
            "pcmax-audit lint: {} files scanned, 0 violations",
            outcome.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "pcmax-audit lint: {} files scanned, {} violation(s)",
            outcome.files_scanned,
            outcome.violations.len()
        );
        ExitCode::FAILURE
    }
}

#[cfg(not(feature = "audit"))]
fn run_race(_seeds: Option<&str>) -> ExitCode {
    eprintln!(
        "pcmax-audit: the race explorer needs the instrumented build:\n    \
         cargo run -p pcmax-audit --features audit -- race"
    );
    ExitCode::from(2)
}

#[cfg(feature = "audit")]
fn run_race(seeds: Option<&str>) -> ExitCode {
    use pcmax_parallel::ParallelDp;
    use pcmax_ptas::dp::{DpProblem, DpSolver, IterativeDp};

    let seeds: u64 = match seeds.unwrap_or("64").parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("pcmax-audit: bad seed count: {e}");
            return ExitCode::from(2);
        }
    };
    // The paper's worked example: 2 jobs of size 2 and 3 of size 4 (unit 2),
    // target makespan 30 — small enough that every interleaving finishes in
    // milliseconds, rich enough to exercise multi-entry levels.
    let problem = {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        DpProblem::new(counts, 2, 30, 64)
    };
    let expected = match IterativeDp.solve(&problem) {
        Ok(out) => out.machines,
        Err(e) => {
            eprintln!("pcmax-audit: sequential reference failed: {e}");
            return ExitCode::from(2);
        }
    };
    let report = pcmax_audit::explore::sweep(
        1,
        seeds,
        || {
            ParallelDp::with_threads(3)
                .solve(&problem)
                .map(|out| out.machines)
                .unwrap_or(u32::MAX)
        },
        |seed, &got| {
            if got != expected {
                eprintln!("seed {seed}: OPT {got} != sequential {expected}");
            }
        },
    );
    println!(
        "pcmax-audit race: {} schedules ({} distinct), {} events, {} threads max, {} race(s)",
        report.schedules,
        report.distinct_histories,
        report.events,
        report.max_threads,
        report.races.len()
    );
    for (seed, race) in &report.races {
        println!("  seed {seed}: {race}");
    }
    if report.races.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
