//! Blocking analysis over serialized [`Trace`]s: lock-order cycles
//! (potential deadlocks) and lost-wakeup candidates.
//!
//! Both analyses consume the typed lock/condvar event stream the audit
//! scheduler records, so every schedule the race suite or the DPOR explorer
//! runs is deadlock-checked for free:
//!
//! * **Lock order** — while replaying the trace, each `LockAcquire` taken
//!   with other locks already held adds edges `held → acquired` to a global
//!   order graph. A cycle means two threads can take the same pair of locks
//!   in opposite orders: not necessarily a deadlock *in this schedule*, but
//!   a schedule exists that deadlocks (the classic ABBA argument).
//! * **Lost wakeups** — a `Notify` that woke nobody (`waiters == 0`) is
//!   benign exactly when the would-be waiter cannot miss it: either the
//!   notifier published its predicate under the condvar's mutex *before*
//!   the wait re-checked it (the notifier's last release of that mutex
//!   happens-before the wait), or the notify itself happens-before the
//!   wait. A later wait ordered by neither is a candidate lost wakeup —
//!   the pattern behind "flag set without the lock, then notify".

use crate::race::{event_clocks, ordered};
use pcmax_parallel::sync::audit::{Op, Trace};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One lost-wakeup candidate: `notifier`'s notify at `notify_index` woke
/// nobody, and `waiter`'s later wait at `wait_index` is ordered after
/// neither the notify nor the notifier's predicate publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LostWakeup {
    /// Condvar identity.
    pub cv: usize,
    /// Thread that issued the empty notify.
    pub notifier: usize,
    /// Event index of the `Notify`.
    pub notify_index: usize,
    /// Thread whose wait may sleep through the signal.
    pub waiter: usize,
    /// Event index of the `CondWait`.
    pub wait_index: usize,
}

impl fmt::Display for LostWakeup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "possible lost wakeup on condvar {}: thread {} notified nobody at event {}, \
             and thread {}'s wait at event {} is ordered after neither the notify nor \
             the notifier's predicate publication",
            self.cv, self.notifier, self.notify_index, self.waiter, self.wait_index
        )
    }
}

/// Result of [`analyze`] on one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockingReport {
    /// Lock-order cycles, each a list of lock identities `l0 → l1 → … → l0`
    /// (the closing edge is implicit). Deduplicated up to rotation.
    pub cycles: Vec<Vec<usize>>,
    /// Lost-wakeup candidates in schedule order of the notify.
    pub lost_wakeups: Vec<LostWakeup>,
}

impl BlockingReport {
    /// True when neither analysis found anything.
    pub fn is_clean(&self) -> bool {
        self.cycles.is_empty() && self.lost_wakeups.is_empty()
    }
}

/// Runs both blocking analyses over one trace.
pub fn analyze(trace: &Trace) -> BlockingReport {
    BlockingReport {
        cycles: lock_order_cycles(trace),
        lost_wakeups: lost_wakeups(trace),
    }
}

/// Builds the lock-acquisition order graph and returns its cycles.
fn lock_order_cycles(trace: &Trace) -> Vec<Vec<usize>> {
    // Per-thread stack (really a multiset kept in acquisition order) of
    // locks currently held.
    let mut held: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut edges: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for event in &trace.events {
        match event.op {
            Op::LockAcquire { obj } => {
                let stack = held.entry(event.thread).or_default();
                for &h in stack.iter() {
                    if h != obj {
                        edges.entry(h).or_default().insert(obj);
                    }
                }
                stack.push(obj);
            }
            Op::LockRelease { obj } => {
                let stack = held.entry(event.thread).or_default();
                if let Some(pos) = stack.iter().rposition(|&h| h == obj) {
                    stack.remove(pos);
                }
            }
            _ => {}
        }
    }
    find_cycles(&edges)
}

/// DFS cycle enumeration with on-stack coloring: one representative cycle
/// per back edge, deduplicated by rotating each cycle to start at its
/// smallest lock id. The graphs here are tiny (a handful of locks), so the
/// quadratic worst case is irrelevant.
fn find_cycles(edges: &BTreeMap<usize, BTreeSet<usize>>) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    fn dfs(
        node: usize,
        edges: &BTreeMap<usize, BTreeSet<usize>>,
        color: &mut BTreeMap<usize, Color>,
        path: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        color.insert(node, Color::Gray);
        path.push(node);
        for &next in edges.get(&node).into_iter().flatten() {
            match color.get(&next).copied().unwrap_or(Color::White) {
                Color::Gray => {
                    if let Some(start) = path.iter().position(|&n| n == next) {
                        let mut cycle: Vec<usize> = path[start..].to_vec();
                        // Canonical rotation: start at the smallest id.
                        if let Some(min_at) = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &n)| n)
                            .map(|(i, _)| i)
                        {
                            cycle.rotate_left(min_at);
                        }
                        if !out.contains(&cycle) {
                            out.push(cycle);
                        }
                    }
                }
                Color::White => dfs(next, edges, color, path, out),
                Color::Black => {}
            }
        }
        path.pop();
        color.insert(node, Color::Black);
    }

    let mut color = BTreeMap::new();
    let mut out = Vec::new();
    for &node in edges.keys() {
        if color.get(&node).copied().unwrap_or(Color::White) == Color::White {
            dfs(node, edges, &mut color, &mut Vec::new(), &mut out);
        }
    }
    out
}

/// Flags empty notifies that a later wait could have slept through.
fn lost_wakeups(trace: &Trace) -> Vec<LostWakeup> {
    let events = &trace.events;
    let clocks = event_clocks(trace);
    // Condvar → the mutex its waits release (first binding wins; the seam
    // always pairs one condvar with one mutex).
    let mut cv_lock: BTreeMap<usize, usize> = BTreeMap::new();
    for event in events {
        if let Op::CondWait { cv, lock } = event.op {
            cv_lock.entry(cv).or_insert(lock);
        }
    }
    let mut out = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let Op::Notify { cv, waiters: 0, .. } = event.op else {
            continue;
        };
        let notifier = event.thread;
        // The notifier's predicate publication point: its last release of
        // the condvar's mutex before the notify. A notify issued while
        // still holding the mutex (or without ever taking it) has no such
        // point and relies entirely on the notify→wait order.
        let publish = cv_lock.get(&cv).and_then(|&lock| {
            events[..i]
                .iter()
                .rposition(|e| e.thread == notifier && e.op == (Op::LockRelease { obj: lock }))
        });
        // The first later wait on this condvar; earlier waits were already
        // woken or belong to other signals.
        let Some(k) = (i + 1..events.len())
            .find(|&k| matches!(events[k].op, Op::CondWait { cv: c, .. } if c == cv))
        else {
            continue;
        };
        let safe = publish.is_some_and(|p| ordered(&clocks, events, p, k))
            || ordered(&clocks, events, i, k);
        if !safe {
            out.push(LostWakeup {
                cv,
                notifier,
                notify_index: i,
                waiter: events[k].thread,
                wait_index: k,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_parallel::sync::audit::Event;

    fn trace(threads: usize, events: Vec<Event>) -> Trace {
        let event_decisions = vec![usize::MAX; events.len()];
        Trace {
            events,
            threads,
            seed: 0,
            decisions: Vec::new(),
            event_decisions,
        }
    }

    fn ev(thread: usize, op: Op) -> Event {
        Event { thread, op }
    }

    fn acq(t: usize, obj: usize) -> Event {
        ev(t, Op::LockAcquire { obj })
    }

    fn rel(t: usize, obj: usize) -> Event {
        ev(t, Op::LockRelease { obj })
    }

    #[test]
    fn consistent_nesting_has_no_cycle() {
        let t = trace(
            2,
            vec![
                acq(0, 1),
                acq(0, 2),
                rel(0, 2),
                rel(0, 1),
                acq(1, 1),
                acq(1, 2),
                rel(1, 2),
                rel(1, 1),
            ],
        );
        assert!(analyze(&t).cycles.is_empty());
    }

    #[test]
    fn abba_ordering_is_a_cycle() {
        // Thread 0 takes 1 then 2; thread 1 takes 2 then 1 — the classic
        // potential deadlock, even though this particular schedule got
        // through.
        let t = trace(
            2,
            vec![
                acq(0, 1),
                acq(0, 2),
                rel(0, 2),
                rel(0, 1),
                acq(1, 2),
                acq(1, 1),
                rel(1, 1),
                rel(1, 2),
            ],
        );
        let report = analyze(&t);
        assert_eq!(report.cycles, vec![vec![1, 2]]);
    }

    #[test]
    fn three_lock_rotation_is_a_cycle() {
        let t = trace(
            3,
            vec![
                acq(0, 1),
                acq(0, 2),
                rel(0, 2),
                rel(0, 1),
                acq(1, 2),
                acq(1, 3),
                rel(1, 3),
                rel(1, 2),
                acq(2, 3),
                acq(2, 1),
                rel(2, 1),
                rel(2, 3),
            ],
        );
        assert_eq!(analyze(&t).cycles, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn reentrant_same_lock_is_not_an_edge() {
        let t = trace(1, vec![acq(0, 1), acq(0, 1), rel(0, 1), rel(0, 1)]);
        assert!(analyze(&t).cycles.is_empty());
    }

    #[test]
    fn publish_under_lock_suppresses_empty_notify() {
        // Notifier publishes under the mutex, releases, then notifies into
        // an empty wait-set; the waiter's subsequent wait acquired the same
        // mutex first, so it must have observed the predicate: benign.
        let t = trace(
            2,
            vec![
                acq(0, 9),
                ev(0, Op::Write { loc: 1 }),
                rel(0, 9),
                ev(
                    0,
                    Op::Notify {
                        cv: 5,
                        all: false,
                        waiters: 0,
                    },
                ),
                acq(1, 9),
                ev(1, Op::CondWait { cv: 5, lock: 9 }),
                rel(1, 9),
            ],
        );
        assert!(analyze(&t).lost_wakeups.is_empty());
    }

    #[test]
    fn unguarded_notify_before_wait_is_flagged() {
        // The notifier never held the condvar's mutex (flag set without the
        // lock): nothing orders its empty notify before the later wait, so
        // the waiter can sleep forever.
        let t = trace(
            2,
            vec![
                ev(
                    0,
                    Op::Notify {
                        cv: 5,
                        all: false,
                        waiters: 0,
                    },
                ),
                acq(1, 9),
                ev(1, Op::CondWait { cv: 5, lock: 9 }),
                rel(1, 9),
            ],
        );
        let report = analyze(&t);
        assert_eq!(report.lost_wakeups.len(), 1);
        let lw = &report.lost_wakeups[0];
        assert_eq!((lw.cv, lw.notifier, lw.waiter), (5, 0, 1));
    }

    #[test]
    fn notify_with_waiters_is_never_flagged() {
        let t = trace(
            2,
            vec![
                acq(1, 9),
                ev(1, Op::CondWait { cv: 5, lock: 9 }),
                rel(1, 9),
                ev(
                    0,
                    Op::Notify {
                        cv: 5,
                        all: false,
                        waiters: 1,
                    },
                ),
                ev(1, Op::CondWake { cv: 5 }),
                acq(1, 9),
                rel(1, 9),
            ],
        );
        assert!(analyze(&t).lost_wakeups.is_empty());
    }
}
