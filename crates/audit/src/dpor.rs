//! Dynamic partial-order reduction (DPOR) with sleep sets: systematic
//! schedule exploration on top of the controlled (scripted) mode of
//! `pcmax_parallel::sync::audit`.
//!
//! The explorer runs the workload repeatedly under
//! [`explore_scripted`](pcmax_parallel::sync::audit::explore_scripted),
//! maintaining a stack of decision points. After each run it walks the
//! trace's dependent event pairs: for a pair `(e_j, e_i)` on different
//! threads that could occur in either order (e_j does *not* happen-before
//! `thread(e_i)`'s previous event), it adds `thread(e_i)` to the backtrack
//! set of the decision that granted `e_j` — the classic Flanagan–Godefroid
//! rule. Exploration then resumes from the deepest decision with an
//! untried, non-slept backtrack candidate.
//!
//! **Sleep sets** prune the redundant half of each flip: when the explorer
//! abandons a choice `t` at a decision point, `t` is slept there, and child
//! points inherit the sleep set minus any thread whose next operation
//! depends on the transition just taken. A schedule whose only difference
//! from an explored one is the order of *independent* steps would begin
//! with a slept thread and is never run — so each Mazurkiewicz trace
//! (equivalence class of schedules under commuting adjacent independent
//! steps) is explored essentially once.
//!
//! Every explored schedule is race-checked and blocking-checked. On the
//! first race the explorer shrinks the decision script to a minimal
//! reproducing schedule ([`run_schedule`] of that script deterministically
//! re-raises the race) and stops. Model deadlocks (every live thread
//! blocked on a lock/condvar) are recorded per schedule and exploration
//! continues.

use crate::blocking::{analyze, BlockingReport, LostWakeup};
use crate::race::{detect, event_clocks, ordered, Race};
use pcmax_parallel::sync::audit::{explore_scripted, Op, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// One run of the workload under a schedule script.
pub struct Run<R> {
    /// The workload's return value.
    pub result: R,
    /// The serialized trace.
    pub trace: Trace,
    /// Races found by [`detect`].
    pub races: Vec<Race>,
    /// Lock-order / lost-wakeup analysis of the trace.
    pub blocking: BlockingReport,
}

/// Replays `workload` under the decision script `choices` (off-script
/// decisions fall back to deterministic round-robin) and checks the trace.
/// The deterministic repro primitive: the same schedule always yields the
/// same trace, races included.
///
/// # Panics
/// Propagates workload panics, including the scheduler's
/// `audit model deadlock` panic.
pub fn run_schedule<R>(choices: &[usize], workload: impl FnOnce() -> R) -> Run<R> {
    let (result, trace) = explore_scripted(choices, workload);
    let races = detect(&trace);
    let blocking = analyze(&trace);
    Run {
        result,
        trace,
        races,
        blocking,
    }
}

/// A minimal replayable counterexample: feeding `schedule` to
/// [`run_schedule`] deterministically reproduces `race`.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The shrunk decision script.
    pub schedule: Vec<usize>,
    /// The race it reproduces.
    pub race: Race,
}

/// Coverage report of one exhaustive exploration.
#[derive(Debug, Clone, Default)]
pub struct DporReport {
    /// Schedules actually run.
    pub schedules: usize,
    /// Total events across all runs.
    pub events: usize,
    /// Maximum number of threads seen in a single run.
    pub max_threads: usize,
    /// Deepest decision stack reached.
    pub decision_points: usize,
    /// Backtrack candidates pruned by sleep sets (redundant-interleaving
    /// count the search did not pay for).
    pub sleep_pruned: usize,
    /// Races found, each with the full decision script of the run.
    pub races: Vec<(Vec<usize>, Race)>,
    /// Shrunk repro for the first race found.
    pub counterexample: Option<Counterexample>,
    /// Lock-order cycles, each with the run's decision script.
    pub cycles: Vec<(Vec<usize>, Vec<usize>)>,
    /// Lost-wakeup candidates, each with the run's decision script.
    pub lost_wakeups: Vec<(Vec<usize>, LostWakeup)>,
    /// Schedules that model-deadlocked, with the scheduler's message.
    pub deadlocks: Vec<(Vec<usize>, String)>,
    /// True iff the search space was exhausted (no budget cut-off, no
    /// early stop on a race).
    pub complete: bool,
}

impl DporReport {
    /// True when exploration finished with nothing to report.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
            && self.cycles.is_empty()
            && self.lost_wakeups.is_empty()
            && self.deadlocks.is_empty()
    }
}

/// One decision point on the exploration stack.
struct Point {
    /// Runnable threads at this decision (fixed: a pure function of the
    /// schedule prefix).
    enabled: Vec<usize>,
    /// Choice taken by the run currently being extended.
    chosen: usize,
    /// Choices already explored from here.
    done: BTreeSet<usize>,
    /// Threads some dependent pair wants tried from here.
    backtrack: BTreeSet<usize>,
    /// Threads whose exploration from here is provably redundant.
    sleep: BTreeSet<usize>,
    /// Each enabled thread's next operation from this point (first event it
    /// issued at or after this decision, in the run that created the point).
    next_op: BTreeMap<usize, Op>,
}

/// Exhaustively explores the workload's schedules, up to `budget` runs.
///
/// `check` is invoked with the decision script and result of every
/// race-free schedule; panic inside it to assert schedule-independent
/// postconditions (determinism of the workload's output, say).
///
/// Stops early on the first race (after shrinking a counterexample —
/// `complete` stays false); records model deadlocks and keeps going.
pub fn explore_exhaustive<R>(
    budget: usize,
    workload: impl Fn() -> R,
    mut check: impl FnMut(&[usize], &R),
) -> DporReport {
    let mut report = DporReport::default();
    let mut stack: Vec<Point> = Vec::new();
    let mut script: Vec<usize> = Vec::new();
    loop {
        if report.schedules >= budget {
            return report; // budget exhausted: complete stays false
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_schedule(&script, &workload)
        }));
        report.schedules += 1;
        match outcome {
            Ok(run) => {
                report.events += run.trace.events.len();
                report.max_threads = report.max_threads.max(run.trace.threads);
                let full: Vec<usize> = run.trace.decisions.iter().map(|d| d.chosen).collect();
                if !run.races.is_empty() {
                    let race = run.races[0].clone();
                    for r in run.races {
                        report.races.push((full.clone(), r));
                    }
                    let schedule = shrink_schedule(&full, &workload);
                    report.counterexample = Some(Counterexample { schedule, race });
                    return report;
                }
                check(&full, &run.result);
                for c in &run.blocking.cycles {
                    report.cycles.push((full.clone(), c.clone()));
                }
                for lw in &run.blocking.lost_wakeups {
                    report.lost_wakeups.push((full.clone(), lw.clone()));
                }
                sync_stack(&mut stack, &run.trace);
                report.decision_points = report.decision_points.max(stack.len());
                add_backtracks(&mut stack, &run.trace);
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                if msg.contains("model deadlock") {
                    // The trace is unavailable (the run panicked), so no
                    // backtrack extraction: record and move on.
                    report.deadlocks.push((script.clone(), msg));
                } else {
                    std::panic::resume_unwind(payload);
                }
            }
        }
        // Select the next schedule: the deepest decision point with an
        // unexplored, non-slept backtrack candidate; pop exhausted points.
        loop {
            let Some(point) = stack.last_mut() else {
                report.complete = true;
                return report;
            };
            point.sleep.insert(point.chosen);
            let candidate = point
                .backtrack
                .iter()
                .copied()
                .find(|t| !point.done.contains(t) && !point.sleep.contains(t));
            match candidate {
                Some(t) => {
                    point.done.insert(t);
                    point.chosen = t;
                    script = stack.iter().map(|p| p.chosen).collect();
                    break;
                }
                None => {
                    report.sleep_pruned += point
                        .backtrack
                        .iter()
                        .filter(|t| !point.done.contains(t))
                        .count();
                    stack.pop();
                }
            }
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// `starts[d]` = first event index granted by decision `>= d` (skipping the
/// pre-first-decision sentinel prefix); `starts[decisions.len()]` = end.
fn decision_starts(trace: &Trace) -> Vec<usize> {
    let n = trace.decisions.len();
    let ed = &trace.event_decisions;
    let mut starts = Vec::with_capacity(n + 1);
    let mut e = 0usize;
    for d in 0..=n {
        while e < ed.len() && (ed[e] == usize::MAX || ed[e] < d) {
            e += 1;
        }
        starts.push(e);
    }
    starts
}

/// First op each thread issues at or after decision `d`.
fn next_ops_at(trace: &Trace, d: usize, starts: &[usize]) -> BTreeMap<usize, Op> {
    let mut map = BTreeMap::new();
    for event in &trace.events[starts[d]..] {
        map.entry(event.thread).or_insert(event.op);
    }
    map
}

/// Aligns the stack with a finished run: verifies the replayed prefix and
/// pushes a fresh [`Point`] for every decision beyond it, computing the
/// inherited sleep set.
fn sync_stack(stack: &mut Vec<Point>, trace: &Trace) {
    let starts = decision_starts(trace);
    for (d, decision) in trace.decisions.iter().enumerate() {
        if d < stack.len() {
            debug_assert_eq!(
                stack[d].chosen, decision.chosen,
                "scripted replay diverged from the exploration stack"
            );
            continue;
        }
        // Sleep inheritance: a thread slept at the parent stays slept here
        // iff its next operation is independent of everything the parent's
        // transition executed — running it first would commute to an
        // already-explored schedule. Unknown next ops are (conservatively)
        // woken.
        let sleep = match stack.last() {
            Some(parent) => {
                let lo = starts[d - 1];
                let hi = starts[d];
                let parent_ops = &trace.events[lo..hi];
                parent
                    .sleep
                    .iter()
                    .copied()
                    .filter(|t| match parent.next_op.get(t) {
                        Some(op) => parent_ops.iter().all(|e| !dependent(&e.op, op)),
                        None => false,
                    })
                    .collect()
            }
            None => BTreeSet::new(),
        };
        stack.push(Point {
            enabled: decision.enabled.clone(),
            chosen: decision.chosen,
            done: BTreeSet::from([decision.chosen]),
            backtrack: BTreeSet::from([decision.chosen]),
            sleep,
            next_op: next_ops_at(trace, d, &starts),
        });
    }
}

/// The Flanagan–Godefroid backtrack rule over the run's trace.
fn add_backtracks(stack: &mut [Point], trace: &Trace) {
    let events = &trace.events;
    let ed = &trace.event_decisions;
    let clocks = event_clocks(trace);
    // prev_same[i]: index of thread(i)'s previous event, if any.
    let mut last_of: Vec<Option<usize>> = vec![None; trace.threads];
    let mut prev_same: Vec<Option<usize>> = Vec::with_capacity(events.len());
    for (i, event) in events.iter().enumerate() {
        prev_same.push(last_of[event.thread]);
        last_of[event.thread] = Some(i);
    }
    for i in 0..events.len() {
        let ti = events[i].thread;
        for j in (0..i).rev() {
            if events[j].thread == ti || !dependent(&events[j].op, &events[i].op) {
                continue;
            }
            // The pair is reorderable iff e_j does not happen-before t_i's
            // *previous* event — if it does, t_i could not reach e_i
            // without e_j and no schedule flips them here.
            let flippable = match prev_same[i] {
                Some(p) => !ordered(&clocks, events, j, p),
                None => true,
            };
            if flippable {
                let d = ed[j];
                // Sentinel events (pre-first-decision) have no decision
                // point to backtrack; they are always thread 0's prefix and
                // ordered before everything by the spawn edges anyway.
                if d != usize::MAX {
                    let point = &mut stack[d];
                    if point.enabled.contains(&ti) {
                        point.backtrack.insert(ti);
                    } else {
                        // t_i wasn't runnable at e_j's decision: request
                        // every enabled thread (one of them enables t_i).
                        for &q in &point.enabled {
                            point.backtrack.insert(q);
                        }
                    }
                }
            }
            break; // only the latest dependent predecessor matters
        }
    }
}

/// Semantic dependence of two operations (can their order change the
/// program state or the happens-before relation?). Conservative for
/// condvar ops: all pairs on the same condvar are dependent.
fn dependent(a: &Op, b: &Op) -> bool {
    match (a, b) {
        (
            Op::Read { loc: x } | Op::Write { loc: x },
            Op::Read { loc: y } | Op::Write { loc: y },
        ) => x == y && (matches!(a, Op::Write { .. }) || matches!(b, Op::Write { .. })),
        (
            Op::AtomicLoad { obj: x, .. }
            | Op::AtomicStore { obj: x, .. }
            | Op::AtomicRmw { obj: x, .. },
            Op::AtomicLoad { obj: y, .. }
            | Op::AtomicStore { obj: y, .. }
            | Op::AtomicRmw { obj: y, .. },
        ) => x == y && !(matches!(a, Op::AtomicLoad { .. }) && matches!(b, Op::AtomicLoad { .. })),
        (
            Op::LockAcquire { obj: x } | Op::LockRelease { obj: x },
            Op::LockAcquire { obj: y } | Op::LockRelease { obj: y },
        ) => x == y,
        (
            Op::CondWait { cv: x, .. } | Op::Notify { cv: x, .. } | Op::CondWake { cv: x },
            Op::CondWait { cv: y, .. } | Op::Notify { cv: y, .. } | Op::CondWake { cv: y },
        ) => x == y,
        _ => false,
    }
}

/// Cap on workload replays during shrinking, so pathological schedules
/// cannot stall the explorer.
const SHRINK_RUN_CAP: usize = 256;

/// Shrinks a racy decision script: first the shortest reproducing prefix
/// (the deterministic round-robin fallback completes the run), then greedy
/// single-decision removal. Every candidate is validated by replaying.
pub fn shrink_schedule<R>(full: &[usize], workload: &impl Fn() -> R) -> Vec<usize> {
    let mut runs = 0usize;
    let mut reproduces = |candidate: &[usize]| -> bool {
        if runs >= SHRINK_RUN_CAP {
            return false;
        }
        runs += 1;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (_, trace) = explore_scripted(candidate, workload);
            !detect(&trace).is_empty()
        }))
        .unwrap_or(false)
    };
    let mut best: Vec<usize> = full.to_vec();
    for p in 0..=full.len() {
        if reproduces(&full[..p]) {
            best = full[..p].to_vec();
            break;
        }
    }
    let mut i = 0;
    while i < best.len() {
        let mut candidate = best.clone();
        candidate.remove(i);
        if reproduces(&candidate) {
            best = candidate;
        } else {
            i += 1;
        }
    }
    best
}

/// Deliberately concurrency-buggy and concurrency-clean microworkloads
/// shared by the `pcmax-audit dpor` CLI self-checks and the test suite.
pub mod workloads {
    use pcmax_parallel::sync::{fork, join_with, trace_read, trace_write, AtomicCounter};
    use std::sync::atomic::Ordering;

    /// Hand-derived count of non-equivalent schedules of
    /// [`fork_join_two_workers`]: the only dependent cross-thread pair is
    /// the two AcqRel RMWs on the shared counter, so exactly their two
    /// orders exist.
    pub const FORK_JOIN_TWO_WORKERS_SCHEDULES: usize = 2;

    /// Two workers, each writing a private location and bumping a shared
    /// AcqRel counter; the parent joins both and reads the total.
    pub fn fork_join_two_workers() -> usize {
        let ctr = AtomicCounter::new(0);
        std::thread::scope(|s| {
            let (ta, ia) = fork(|| {
                trace_write(100);
                ctr.fetch_add(1, Ordering::AcqRel);
            });
            let (tb, ib) = fork(|| {
                trace_write(101);
                ctr.fetch_add(1, Ordering::AcqRel);
            });
            let ha = s.spawn(ta);
            let hb = s.spawn(tb);
            join_with(ia, || ha.join()).unwrap_or_else(|p| std::panic::resume_unwind(p));
            join_with(ib, || hb.join()).unwrap_or_else(|p| std::panic::resume_unwind(p));
        });
        ctr.load(Ordering::Acquire)
    }

    /// Hand-derived schedule count for [`triple_rmw_three_workers`]: three
    /// pairwise-dependent RMWs, one per worker — all 3! = 6 orders.
    pub const TRIPLE_RMW_THREE_WORKERS_SCHEDULES: usize = 6;

    /// Three workers, one AcqRel RMW each on a shared counter.
    pub fn triple_rmw_three_workers() -> usize {
        let ctr = AtomicCounter::new(0);
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..3 {
                let (task, id) = fork(|| {
                    ctr.fetch_add(1, Ordering::AcqRel);
                });
                joins.push((s.spawn(task), id));
            }
            for (h, id) in joins {
                join_with(id, || h.join()).unwrap_or_else(|p| std::panic::resume_unwind(p));
            }
        });
        ctr.load(Ordering::Acquire)
    }

    /// An injected *order-dependent* race: worker A increments a relaxed
    /// counter three times and writes location 7 only if it observed the
    /// strict alternation `[1, 3, 5]`; worker B reads location 7 first and
    /// then increments three times. The plain accesses to 7 race (nothing
    /// synchronizes the relaxed counter), but only in the schedule class
    /// where the six RMWs alternate perfectly starting with B — about 1 in
    /// 20 of the interleavings DPOR enumerates, and far rarer under the
    /// geometric coin-flips of the seeded random scheduler.
    pub fn injected_rare_race() -> usize {
        let ctr = AtomicCounter::new(0);
        std::thread::scope(|s| {
            let (ta, ia) = fork(|| {
                let mut seen = [0usize; 3];
                for slot in &mut seen {
                    // audit:allow(relaxed): the injected bug under test —
                    // the gate must NOT publish, so the detector sees no
                    // edge between the racing plain accesses.
                    *slot = ctr.fetch_add(1, Ordering::Relaxed);
                }
                if seen == [1, 3, 5] {
                    trace_write(7);
                }
            });
            let (tb, ib) = fork(|| {
                trace_read(7);
                for _ in 0..3 {
                    // audit:allow(relaxed): see above — deliberately no
                    // release edge.
                    ctr.fetch_add(1, Ordering::Relaxed);
                }
            });
            let ha = s.spawn(ta);
            let hb = s.spawn(tb);
            join_with(ia, || ha.join()).unwrap_or_else(|p| std::panic::resume_unwind(p));
            join_with(ib, || hb.join()).unwrap_or_else(|p| std::panic::resume_unwind(p));
        });
        ctr.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::workloads::*;
    use super::*;

    #[test]
    fn two_worker_fork_join_matches_hand_derived_bound() {
        let report = explore_exhaustive(64, fork_join_two_workers, |_, &total| {
            assert_eq!(total, 2);
        });
        assert!(report.complete, "budget must not cut the search short");
        assert!(report.is_clean());
        assert_eq!(report.schedules, FORK_JOIN_TWO_WORKERS_SCHEDULES);
    }

    #[test]
    fn three_rmw_workers_explore_all_six_orders() {
        let report = explore_exhaustive(256, triple_rmw_three_workers, |_, &total| {
            assert_eq!(total, 3);
        });
        assert!(report.complete);
        assert!(report.is_clean());
        assert_eq!(report.schedules, TRIPLE_RMW_THREE_WORKERS_SCHEDULES);
    }

    #[test]
    fn dpor_finds_the_injected_rare_race() {
        let report = explore_exhaustive(512, injected_rare_race, |_, _| {});
        assert!(
            !report.races.is_empty(),
            "DPOR must reach the alternating schedule class"
        );
        let cx = report
            .counterexample
            .expect("counterexample must be shrunk");
        assert_eq!(cx.race.loc, 7);
    }

    #[test]
    fn shrunk_counterexample_replays_deterministically() {
        let report = explore_exhaustive(512, injected_rare_race, |_, _| {});
        let cx = report.counterexample.expect("race must be found");
        for _ in 0..3 {
            let replay = run_schedule(&cx.schedule, injected_rare_race);
            assert!(
                !replay.races.is_empty(),
                "minimal schedule must reproduce the race on every replay"
            );
            assert_eq!(replay.races[0].loc, cx.race.loc);
        }
    }

    #[test]
    fn clean_workloads_report_no_blocking_findings() {
        let report = explore_exhaustive(64, fork_join_two_workers, |_, _| {});
        assert!(report.cycles.is_empty());
        assert!(report.lost_wakeups.is_empty());
        assert!(report.deadlocks.is_empty());
    }
}
