//! The seeded interleaving explorer: runs a workload under the turn-based
//! scheduler of `pcmax_parallel::sync::audit` once per seed, race-checks
//! every serialized trace, and aggregates the verdict.
//!
//! Each seed drives the scheduler's SplitMix64 differently, so distinct
//! seeds exercise distinct thread interleavings of the *same* workload —
//! a miniature model checker for the wavefront executors' fork/join and
//! scatter/gather structure.

use crate::race::{detect, Race};
use pcmax_parallel::sync::audit::{explore, Trace};

/// The outcome of one explored schedule.
#[derive(Debug)]
pub struct SeedRun<R> {
    /// The schedule seed.
    pub seed: u64,
    /// The workload's return value under this schedule.
    pub result: R,
    /// The serialized event history.
    pub trace: Trace,
    /// Races found in the history (empty = this schedule is clean).
    pub races: Vec<Race>,
}

/// Runs `workload` under the scheduler with `seed` and race-checks the trace.
pub fn run_seed<R>(seed: u64, workload: impl FnOnce() -> R) -> SeedRun<R> {
    let (result, trace) = explore(seed, workload);
    let races = detect(&trace);
    SeedRun {
        seed,
        result,
        trace,
        races,
    }
}

/// Aggregate verdict over a batch of seeds.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of schedules explored.
    pub schedules: usize,
    /// Total events across all traces.
    pub events: usize,
    /// Largest thread count observed in any schedule.
    pub max_threads: usize,
    /// Every race found, tagged with its seed.
    pub races: Vec<(u64, Race)>,
    /// Distinct serialized histories seen (schedule diversity measure).
    pub distinct_histories: usize,
}

/// Explores `seeds` schedules of `workload` (seeds `base..base + seeds`),
/// checking each with [`run_seed`] and verifying every run's result equals
/// `expected` via `check`. Panics (with the offending seed) if a result
/// diverges — schedule-dependent output is as much a bug as a race.
pub fn sweep<R>(
    base: u64,
    seeds: u64,
    workload: impl Fn() -> R,
    mut check: impl FnMut(u64, &R),
) -> Report {
    let mut report = Report::default();
    let mut histories: Vec<Vec<(usize, usize)>> = Vec::new();
    for seed in base..base + seeds {
        let run = run_seed(seed, &workload);
        check(seed, &run.result);
        report.schedules += 1;
        report.events += run.trace.events.len();
        report.max_threads = report.max_threads.max(run.trace.threads);
        // Thread-id sequence is a cheap fingerprint of the interleaving.
        let fingerprint: Vec<(usize, usize)> = run
            .trace
            .events
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.thread))
            .collect();
        if !histories.contains(&fingerprint) {
            histories.push(fingerprint);
        }
        report
            .races
            .extend(run.races.into_iter().map(|r| (seed, r)));
    }
    report.distinct_histories = histories.len();
    report
}
