//! The interleaving explorer: random (seeded) sweeps and the systematic
//! exhaustive mode.
//!
//! The legacy mode runs a workload under the turn-based scheduler of
//! `pcmax_parallel::sync::audit` once per seed — each seed drives the
//! scheduler's SplitMix64 differently, so distinct seeds exercise distinct
//! thread interleavings of the *same* workload. [`sweep_exhaustive`]
//! instead delegates to the DPOR search in [`crate::dpor`], which
//! enumerates all non-equivalent schedules up to a budget. Every explored
//! schedule (in both modes) is race-checked *and* blocking-checked
//! (lock-order cycles, lost wakeups).

use crate::blocking::{analyze, BlockingReport, LostWakeup};
use crate::dpor::{explore_exhaustive, DporReport};
use crate::race::{detect, Race};
use pcmax_parallel::sync::audit::{explore, Trace};

/// The outcome of one explored schedule.
#[derive(Debug)]
pub struct SeedRun<R> {
    /// The schedule seed.
    pub seed: u64,
    /// The workload's return value under this schedule.
    pub result: R,
    /// The serialized event history.
    pub trace: Trace,
    /// Races found in the history (empty = this schedule is clean).
    pub races: Vec<Race>,
    /// Lock-order / lost-wakeup analysis of the history.
    pub blocking: BlockingReport,
}

/// Runs `workload` under the scheduler with `seed` and race-checks the trace.
pub fn run_seed<R>(seed: u64, workload: impl FnOnce() -> R) -> SeedRun<R> {
    let (result, trace) = explore(seed, workload);
    let races = detect(&trace);
    let blocking = analyze(&trace);
    SeedRun {
        seed,
        result,
        trace,
        races,
        blocking,
    }
}

/// Aggregate verdict over a batch of seeds.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of schedules explored.
    pub schedules: usize,
    /// Total events across all traces.
    pub events: usize,
    /// Largest thread count observed in any schedule.
    pub max_threads: usize,
    /// Every race found, tagged with its seed.
    pub races: Vec<(u64, Race)>,
    /// Every lock-order cycle found, tagged with its seed.
    pub lock_cycles: Vec<(u64, Vec<usize>)>,
    /// Every lost-wakeup candidate found, tagged with its seed.
    pub lost_wakeups: Vec<(u64, LostWakeup)>,
    /// Distinct serialized histories seen (schedule diversity measure).
    pub distinct_histories: usize,
}

/// Explores `seeds` schedules of `workload` (seeds `base..base + seeds`),
/// checking each with [`run_seed`] and verifying every run's result equals
/// `expected` via `check`. Panics (with the offending seed) if a result
/// diverges — schedule-dependent output is as much a bug as a race.
pub fn sweep<R>(
    base: u64,
    seeds: u64,
    workload: impl Fn() -> R,
    mut check: impl FnMut(u64, &R),
) -> Report {
    let mut report = Report::default();
    let mut histories: Vec<Vec<(usize, usize)>> = Vec::new();
    for seed in base..base + seeds {
        let run = run_seed(seed, &workload);
        check(seed, &run.result);
        report.schedules += 1;
        report.events += run.trace.events.len();
        report.max_threads = report.max_threads.max(run.trace.threads);
        // Thread-id sequence is a cheap fingerprint of the interleaving.
        let fingerprint: Vec<(usize, usize)> = run
            .trace
            .events
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.thread))
            .collect();
        if !histories.contains(&fingerprint) {
            histories.push(fingerprint);
        }
        report
            .races
            .extend(run.races.into_iter().map(|r| (seed, r)));
        report
            .lock_cycles
            .extend(run.blocking.cycles.into_iter().map(|c| (seed, c)));
        report
            .lost_wakeups
            .extend(run.blocking.lost_wakeups.into_iter().map(|l| (seed, l)));
    }
    report.distinct_histories = histories.len();
    report
}

/// The exhaustive counterpart of [`sweep`]: DPOR enumeration of all
/// non-equivalent schedules up to `budget` runs, with the same
/// result-consistency `check` applied to every race-free schedule. See
/// [`DporReport`] for the coverage verdict (including whether the search
/// space was exhausted within budget).
pub fn sweep_exhaustive<R>(
    budget: usize,
    workload: impl Fn() -> R,
    check: impl FnMut(&[usize], &R),
) -> DporReport {
    explore_exhaustive(budget, workload, check)
}
