//! Happens-before race detection over serialized [`Trace`]s.
//!
//! A FastTrack-style vector-clock pass: every thread carries a clock,
//! spawn/join and release→acquire pairs merge clocks, and every plain
//! `Read`/`Write` event is checked against the location's last write (and,
//! for writes, all unordered reads). The schedule order of the trace is a
//! total order *compatible* with happens-before, but two accesses adjacent
//! in the schedule are only race-free if a chain of synchronization edges
//! orders them — which is exactly what the clocks track.
//!
//! Crucially, `Relaxed` atomics create **no** edges: a payload published
//! under a relaxed flag shows up as a race here (see the cancel-token model
//! tests), while a payload-free monotonic flag is race-free by construction
//! because there is no plain access to order.

use pcmax_parallel::sync::audit::{Event, Op, Trace};
use std::collections::HashMap;
use std::fmt;

/// A vector clock: component `t` is the count of thread `t`'s events known
/// to have happened before.
pub type Clock = Vec<u64>;

fn join_into(dst: &mut Clock, src: &Clock) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// The happens-before machinery shared by the race detector, the blocking
/// analysis and the DPOR explorer: per-thread vector clocks advanced one
/// event at a time, with the synchronization edges of every op class.
pub struct HbState {
    /// Per-thread clocks; `clocks[t][t]` is thread `t`'s own epoch.
    clocks: Vec<Clock>,
    /// Clock published by each sync object's last release-class operation.
    /// Condvars release at `Notify` and acquire at `CondWake` (the modeled
    /// wake); the wait's lock handoff is carried by its paired
    /// `LockRelease`/`LockAcquire` events.
    released: HashMap<usize, Clock>,
}

impl HbState {
    /// Fresh state for a trace with `threads` threads.
    pub fn new(threads: usize) -> Self {
        Self {
            clocks: vec![vec![0; threads]; threads],
            released: HashMap::new(),
        }
    }

    /// The current clock of thread `t`.
    pub fn clock(&self, t: usize) -> &Clock {
        &self.clocks[t]
    }

    fn acquire_from(&mut self, t: usize, obj: usize) {
        if let Some(pub_clock) = self.released.get(&obj) {
            let pub_clock = pub_clock.clone();
            join_into(&mut self.clocks[t], &pub_clock);
        }
    }

    fn release_into(&mut self, t: usize, obj: usize) {
        let snapshot = self.clocks[t].clone();
        self.released
            .entry(obj)
            .and_modify(|c| join_into(c, &snapshot))
            .or_insert(snapshot);
    }

    /// Advances past one event: ticks the thread's epoch, then applies the
    /// op's synchronization edges. `Relaxed` atomics and `CondWait` markers
    /// create no edges.
    pub fn step(&mut self, event: Event) {
        let t = event.thread;
        self.clocks[t][t] += 1;
        match event.op {
            Op::Read { .. } | Op::Write { .. } | Op::CondWait { .. } => {}
            Op::AtomicLoad { obj, acquire } => {
                if acquire {
                    self.acquire_from(t, obj);
                }
            }
            Op::AtomicStore { obj, release } => {
                if release {
                    self.release_into(t, obj);
                }
            }
            Op::AtomicRmw {
                obj,
                acquire,
                release,
            } => {
                if acquire {
                    self.acquire_from(t, obj);
                }
                if release {
                    self.release_into(t, obj);
                }
            }
            Op::LockAcquire { obj } => self.acquire_from(t, obj),
            Op::LockRelease { obj } => self.release_into(t, obj),
            Op::Notify { cv, .. } => self.release_into(t, cv),
            Op::CondWake { cv } => self.acquire_from(t, cv),
            Op::Spawn { child } => {
                let snapshot = self.clocks[t].clone();
                join_into(&mut self.clocks[child], &snapshot);
            }
            Op::Join { child } => {
                let snapshot = self.clocks[child].clone();
                join_into(&mut self.clocks[t], &snapshot);
            }
        }
    }
}

/// Per-event clock snapshots: entry `i` is the issuing thread's clock right
/// *after* stepping past event `i`. Input to [`ordered`].
pub fn event_clocks(trace: &Trace) -> Vec<Clock> {
    let mut hb = HbState::new(trace.threads);
    let mut out = Vec::with_capacity(trace.events.len());
    for &event in &trace.events {
        hb.step(event);
        out.push(hb.clocks[event.thread].clone());
    }
    out
}

/// Whether event `i` happens-before event `j` (callers pass `i < j` in
/// schedule order), given the snapshots from [`event_clocks`]: true iff
/// `j`'s thread had observed `i`'s epoch by the time it issued `j`.
pub fn ordered(clocks: &[Clock], events: &[Event], i: usize, j: usize) -> bool {
    let ti = events[i].thread;
    clocks[j][ti] >= clocks[i][ti]
}

/// One detected data race: two accesses to the same location, at least one a
/// write, with no happens-before path between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The contested logical location (DP table index).
    pub loc: usize,
    /// The earlier (in schedule order) access.
    pub prior: Event,
    /// The later access that was found unordered with `prior`.
    pub current: Event,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "race on loc {}: thread {} {:?} unordered with thread {} {:?}",
            self.loc, self.prior.thread, self.prior.op, self.current.thread, self.current.op
        )
    }
}

/// Per-location access history.
#[derive(Debug, Clone)]
struct LocState {
    /// Last write: `(thread, epoch, event)`.
    write: Option<(usize, u64, Event)>,
    /// Per-thread epoch of the most recent read since the last write
    /// (0 = none; real epochs start at 1), plus the read event for reporting.
    reads: Vec<(u64, Option<Event>)>,
}

/// Runs the detector over one trace and returns every race found, in
/// schedule order of the offending (later) access.
pub fn detect(trace: &Trace) -> Vec<Race> {
    let n = trace.threads;
    let mut hb = HbState::new(n);
    let mut locs: HashMap<usize, LocState> = HashMap::new();
    let mut races = Vec::new();

    for &event in &trace.events {
        hb.step(event);
        let t = event.thread;
        match event.op {
            Op::Read { loc } => {
                let state = locs.entry(loc).or_insert_with(|| LocState {
                    write: None,
                    reads: vec![(0, None); n],
                });
                if let Some((wt, we, wev)) = state.write {
                    if hb.clocks[t][wt] < we {
                        races.push(Race {
                            loc,
                            prior: wev,
                            current: event,
                        });
                    }
                }
                state.reads[t] = (hb.clocks[t][t], Some(event));
            }
            Op::Write { loc } => {
                let state = locs.entry(loc).or_insert_with(|| LocState {
                    write: None,
                    reads: vec![(0, None); n],
                });
                if let Some((wt, we, wev)) = state.write {
                    if hb.clocks[t][wt] < we {
                        races.push(Race {
                            loc,
                            prior: wev,
                            current: event,
                        });
                    }
                }
                for (rt, &(re, rev)) in state.reads.iter().enumerate() {
                    if re > 0 && hb.clocks[t][rt] < re {
                        if let Some(prior) = rev {
                            races.push(Race {
                                loc,
                                prior,
                                current: event,
                            });
                        }
                    }
                }
                state.write = Some((t, hb.clocks[t][t], event));
                state.reads = vec![(0, None); n];
            }
            _ => {}
        }
    }
    races
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(threads: usize, events: Vec<Event>) -> Trace {
        let event_decisions = vec![usize::MAX; events.len()];
        Trace {
            events,
            threads,
            seed: 0,
            decisions: Vec::new(),
            event_decisions,
        }
    }

    fn ev(thread: usize, op: Op) -> Event {
        Event { thread, op }
    }

    #[test]
    fn unsynchronized_write_write_races() {
        let t = trace(
            3,
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(0, Op::Spawn { child: 2 }),
                ev(1, Op::Write { loc: 7 }),
                ev(2, Op::Write { loc: 7 }),
            ],
        );
        let races = detect(&t);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].loc, 7);
    }

    #[test]
    fn spawn_and_join_order_accesses() {
        let t = trace(
            2,
            vec![
                ev(0, Op::Write { loc: 3 }),
                ev(0, Op::Spawn { child: 1 }),
                ev(1, Op::Read { loc: 3 }),
                ev(1, Op::Write { loc: 3 }),
                ev(0, Op::Join { child: 1 }),
                ev(0, Op::Read { loc: 3 }),
            ],
        );
        assert!(detect(&t).is_empty());
    }

    #[test]
    fn read_write_race_without_join() {
        let t = trace(
            2,
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(1, Op::Read { loc: 9 }),
                ev(0, Op::Write { loc: 9 }),
            ],
        );
        let races = detect(&t);
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn release_acquire_publishes() {
        // Thread 1 writes the payload, release-stores a flag; thread 2
        // acquire-loads the flag then reads the payload. No race.
        let t = trace(
            3,
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(0, Op::Spawn { child: 2 }),
                ev(1, Op::Write { loc: 5 }),
                ev(
                    1,
                    Op::AtomicStore {
                        obj: 1,
                        release: true,
                    },
                ),
                ev(
                    2,
                    Op::AtomicLoad {
                        obj: 1,
                        acquire: true,
                    },
                ),
                ev(2, Op::Read { loc: 5 }),
            ],
        );
        assert!(detect(&t).is_empty());
    }

    #[test]
    fn relaxed_flag_does_not_publish() {
        // Same shape but the flag is relaxed on both sides: the payload read
        // is a race — this is the data-publication-via-relaxed-flag bug.
        let t = trace(
            3,
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(0, Op::Spawn { child: 2 }),
                ev(1, Op::Write { loc: 5 }),
                ev(
                    1,
                    Op::AtomicStore {
                        obj: 1,
                        release: false,
                    },
                ),
                ev(
                    2,
                    Op::AtomicLoad {
                        obj: 1,
                        acquire: false,
                    },
                ),
                ev(2, Op::Read { loc: 5 }),
            ],
        );
        let races = detect(&t);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].loc, 5);
    }

    #[test]
    fn lock_protocol_orders_critical_sections() {
        let t = trace(
            3,
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(0, Op::Spawn { child: 2 }),
                ev(1, Op::LockAcquire { obj: 9 }),
                ev(1, Op::Write { loc: 4 }),
                ev(1, Op::LockRelease { obj: 9 }),
                ev(2, Op::LockAcquire { obj: 9 }),
                ev(2, Op::Write { loc: 4 }),
                ev(2, Op::LockRelease { obj: 9 }),
            ],
        );
        assert!(detect(&t).is_empty());
    }

    #[test]
    fn same_thread_never_races_with_itself() {
        let t = trace(
            1,
            vec![
                ev(0, Op::Write { loc: 1 }),
                ev(0, Op::Read { loc: 1 }),
                ev(0, Op::Write { loc: 1 }),
            ],
        );
        assert!(detect(&t).is_empty());
    }

    #[test]
    fn condvar_notify_publishes_to_woken_waiter() {
        // Waiter (1) registers and releases the lock; notifier (2) writes
        // the payload under the lock, notifies, releases; the woken waiter
        // reacquires and reads. The Notify→CondWake edge (and the lock
        // protocol) orders the payload accesses: no race.
        let t = trace(
            3,
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(0, Op::Spawn { child: 2 }),
                ev(1, Op::LockAcquire { obj: 9 }),
                ev(1, Op::CondWait { cv: 5, lock: 9 }),
                ev(1, Op::LockRelease { obj: 9 }),
                ev(2, Op::LockAcquire { obj: 9 }),
                ev(2, Op::Write { loc: 40 }),
                ev(
                    2,
                    Op::Notify {
                        cv: 5,
                        all: false,
                        waiters: 1,
                    },
                ),
                ev(2, Op::LockRelease { obj: 9 }),
                ev(1, Op::CondWake { cv: 5 }),
                ev(1, Op::LockAcquire { obj: 9 }),
                ev(1, Op::Read { loc: 40 }),
                ev(1, Op::LockRelease { obj: 9 }),
            ],
        );
        assert!(detect(&t).is_empty());
    }

    #[test]
    fn cond_wait_marker_alone_creates_no_edge() {
        // Without the CondWake acquire, a notify's publication does not
        // reach the reader: the payload access stays racy.
        let t = trace(
            3,
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(0, Op::Spawn { child: 2 }),
                ev(2, Op::Write { loc: 40 }),
                ev(
                    2,
                    Op::Notify {
                        cv: 5,
                        all: false,
                        waiters: 0,
                    },
                ),
                ev(1, Op::CondWait { cv: 5, lock: 9 }),
                ev(1, Op::Read { loc: 40 }),
            ],
        );
        assert_eq!(detect(&t).len(), 1);
    }

    #[test]
    fn ordered_follows_happens_before_not_schedule_order() {
        let t = trace(
            3,
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(0, Op::Spawn { child: 2 }),
                ev(1, Op::Write { loc: 10 }),
                ev(2, Op::Write { loc: 11 }),
                ev(0, Op::Join { child: 1 }),
                ev(0, Op::Read { loc: 10 }),
            ],
        );
        let clocks = event_clocks(&t);
        // Spawn edge orders the parent's spawn before the child's write...
        assert!(ordered(&clocks, &t.events, 0, 2));
        // ...the join edge orders the child's write before the parent's
        // read...
        assert!(ordered(&clocks, &t.events, 2, 5));
        // ...but the two siblings' writes are concurrent despite their
        // schedule order.
        assert!(!ordered(&clocks, &t.events, 2, 3));
    }

    #[test]
    fn sibling_disjoint_writes_do_not_race() {
        let t = trace(
            3,
            vec![
                ev(0, Op::Spawn { child: 1 }),
                ev(0, Op::Spawn { child: 2 }),
                ev(1, Op::Write { loc: 10 }),
                ev(2, Op::Write { loc: 11 }),
                ev(0, Op::Join { child: 1 }),
                ev(0, Op::Join { child: 2 }),
                ev(0, Op::Read { loc: 10 }),
                ev(0, Op::Read { loc: 11 }),
            ],
        );
        assert!(detect(&t).is_empty());
    }
}
