//! The lint rules and their allowlisting machinery.
//!
//! Seven rules, all driven by the token stream of [`crate::lexer`]:
//!
//! * **`unwrap`** — no `.unwrap()` / `.expect(…)` in non-test library code.
//!   Test modules (`#[cfg(test)]`), `#[test]` functions, and `tests/` /
//!   `benches/` / `examples/` trees are exempt. Doc-comment examples never
//!   trigger (comments are not tokens).
//! * **`relaxed`** — no `Ordering::Relaxed` unless the site carries a
//!   justified `audit:allow(relaxed): <why>` comment **and** the file is
//!   listed in the allowlist. Relaxed atomics are where informal
//!   "it's just a flag" arguments go to die; both halves are mandatory.
//! * **`cast`** — no narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`) in
//!   the DP index-arithmetic files ([`DP_CAST_FILES`]) without a justified
//!   `audit:allow(cast)` comment. Index truncation is precisely the bug
//!   class that silently corrupts a wavefront table.
//! * **`trace-hot`** — no trace hooks *or metric-recording calls* inside
//!   the zero-allocation cell kernel's inner loop. In [`TRACE_HOT_FILES`],
//!   a `for` loop whose body walks `next_in_level` is the per-cell hot
//!   path: even a disabled hook's atomic load there multiplies by the cell
//!   count, and an *enabled* metric's relaxed add is a guaranteed cache
//!   ping on every cell. Spans belong *around* the walk (chunk/level
//!   granularity) and metrics record per-chunk aggregates, never per cell;
//!   override only with a justified `audit:allow(trace-hot)` comment.
//! * **`alloc-hot`** — no allocation in the same inner loop: `.push(…)`,
//!   `.to_vec()`, `.collect()`, `.with_label(…)` (registry mutex +
//!   `Box::leak` on first use), `Vec::new` / `Vec::with_capacity`,
//!   `Box::new`, and the `format!` / `vec!` macros are all per-cell heap
//!   traffic that the kernel's zero-allocation contract (and the
//!   `kernel_allocs` counter the regression suite asserts on) forbids.
//!   Buffers are reserved *outside* the walk (metric family children
//!   resolved once per sweep); override only with a justified
//!   `audit:allow(alloc-hot)` comment.
//! * **`guard-across-park`** — no [`sync::Mutex`] guard binding held
//!   across a condvar wait or a thread park. A `let g = ….lock(…)…;`
//!   binding that is still live (not dropped, not consumed as the wait's
//!   own guard argument) when a `.wait(…)` / `.wait_timeout(…)` /
//!   `.wait_while(…)` / `park(…)` executes is the classic self-deadlock:
//!   the sleeper holds the lock its waker needs. The `crates/parallel`
//!   sync seam itself is exempt — it *implements* the guard handoff.
//! * **`artifacts`** — no build artifacts tracked in git (`target/`
//!   anywhere, `*.profraw`, object/metadata files).
//!
//! A violation is suppressed by a *site directive* (a nearby
//! `audit:allow(<rule>): reason` comment) or — for `unwrap` only — a
//! *file-level allowlist entry* (`lint.allow`), which is how the not-yet
//! burned-down crates are tracked explicitly instead of silently.

use crate::lexer::{lex, AllowDirective, Lexed, Tok};
use std::fmt;

/// Repo-relative files subject to the `cast` rule: everywhere DP table
/// indices are computed or narrowed.
pub const DP_CAST_FILES: &[&str] = &[
    "crates/ptas/src/table.rs",
    "crates/ptas/src/dp.rs",
    "crates/ptas/src/config.rs",
    "crates/ptas/src/uniform.rs",
    "crates/ptas/src/chassis.rs",
    "crates/parallel/src/wavefront.rs",
    "crates/parallel/src/scoped.rs",
    "crates/pram/src/dp.rs",
];

/// Narrowing cast targets the `cast` rule rejects without justification.
const NARROWING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Repo-relative files subject to the `trace-hot` rule: where the
/// zero-allocation cell kernel's `next_in_level` walk lives.
pub const TRACE_HOT_FILES: &[&str] = &[
    "crates/parallel/src/wavefront.rs",
    "crates/ptas/src/table.rs",
    "crates/ptas/src/space.rs",
    "crates/ptas/src/uniform.rs",
    "crates/ptas/src/chassis.rs",
];

/// Identifiers that emit trace events or record metrics — the
/// free-function hooks of `pcmax-trace`, the request-level sinks of
/// `pcmax-core`, and the recording methods of `pcmax-metrics`
/// (`inc` / `inc_by` / `observe`). A metric record is one relaxed atomic
/// add when enabled — cheap per chunk, ruinous per cell.
const TRACE_HOOKS: &[&str] = &[
    "span",
    "span_enter",
    "span_exit",
    "instant",
    "counter",
    "trace_span",
    "trace_instant",
    "trace_counter",
    "inc",
    "inc_by",
    "observe",
];

/// Allocating methods the `alloc-hot` rule rejects in the cell kernel's
/// inner loop. `with_label` is the metric-family child lookup: a registry
/// mutex plus a `Box::leak` on first use — resolve children once per
/// sweep, outside the walk.
const ALLOC_METHODS: &[&str] = &["push", "to_vec", "collect", "with_label"];

/// Allocating macros the `alloc-hot` rule rejects there.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Files exempt from the `guard-across-park` rule: the sync seam itself
/// implements the atomic unlock-and-sleep handoff the rule polices.
const GUARD_PARK_EXEMPT: &[&str] = &["crates/parallel/src/sync.rs"];

/// How many lines above a violation a site directive may sit.
const DIRECTIVE_REACH: u32 = 3;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line (0 for repo-level findings like tracked artifacts).
    pub line: u32,
    /// Rule name (`unwrap`, `relaxed`, `cast`, `trace-hot`, `alloc-hot`,
    /// `guard-across-park`, `artifacts`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the entry applies to.
    pub rule: String,
    /// Repo-relative file path.
    pub path: String,
    /// Mandatory justification.
    pub reason: String,
}

/// The parsed `lint.allow` file.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format: one `rule path reason…` entry per line,
    /// `#` comments and blank lines ignored. Every entry must carry a
    /// non-empty reason — an allowlist without justifications is just a
    /// second place to hide problems.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule = parts.next().unwrap_or_default().to_string();
            let path = parts.next().unwrap_or_default().to_string();
            let reason = parts.next().unwrap_or_default().trim().to_string();
            if rule.is_empty() || path.is_empty() {
                return Err(format!("lint.allow:{}: malformed entry {line:?}", i + 1));
            }
            if reason.is_empty() {
                return Err(format!(
                    "lint.allow:{}: entry for {path} has no justification",
                    i + 1
                ));
            }
            entries.push(AllowEntry { rule, path, reason });
        }
        Ok(Self { entries })
    }

    /// Whether `(rule, path)` is allowlisted.
    pub fn allows(&self, rule: &str, path: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && e.path == path)
    }

    /// Entries that matched no violation in the run (candidates for
    /// deletion — the burn-down made them obsolete).
    pub fn stale<'a>(&'a self, used: &[(String, String)]) -> Vec<&'a AllowEntry> {
        self.entries
            .iter()
            .filter(|e| {
                !used
                    .iter()
                    .any(|(rule, path)| *rule == e.rule && *path == e.path)
            })
            .collect()
    }
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that survive directives and the allowlist.
    pub violations: Vec<Violation>,
    /// `(rule, path)` pairs suppressed by the allowlist (stale-tracking).
    pub allow_hits: Vec<(String, String)>,
}

/// Whether `path` is exempt from source rules altogether (test/bench/
/// example/fixture trees are not library code).
pub fn exempt_path(path: &str) -> bool {
    let parts: Vec<&str> = path.split('/').collect();
    parts.iter().any(|p| {
        matches!(
            *p,
            "tests" | "benches" | "examples" | "fixtures" | "target" | ".git"
        )
    })
}

/// Lints one file's source. `path` must be repo-relative with `/` separators.
pub fn lint_source(path: &str, src: &str, allow: &Allowlist) -> FileReport {
    let mut report = FileReport::default();
    if exempt_path(path) {
        return report;
    }
    let lexed = lex(src);
    let exempt = test_exempt_ranges(&lexed);

    check_unwrap(path, &lexed, &exempt, allow, &mut report);
    check_relaxed(path, &lexed, &exempt, allow, &mut report);
    if DP_CAST_FILES.contains(&path) {
        check_casts(path, &lexed, &exempt, &mut report);
    }
    if TRACE_HOT_FILES.contains(&path) {
        check_trace_hot(path, &lexed, &exempt, &mut report);
        check_alloc_hot(path, &lexed, &exempt, &mut report);
    }
    if !GUARD_PARK_EXEMPT.contains(&path) {
        check_guard_across_park(path, &lexed, &exempt, &mut report);
    }
    report
}

/// True if `line` falls in any exempt `[start, end]` range.
fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(s, e)| s <= line && line <= e)
}

/// Finds a site directive for `rule` within reach of `line`; returns whether
/// one exists and whether it is justified.
fn directive_for(allows: &[AllowDirective], rule: &str, line: u32) -> Option<bool> {
    allows
        .iter()
        .filter(|d| d.rule == rule)
        .filter(|d| d.line <= line && line - d.line <= DIRECTIVE_REACH)
        .map(|d| d.justified)
        .max()
}

/// Computes the line ranges covered by test-only items: any item annotated
/// with an attribute whose token group mentions `test` (and not `not`), i.e.
/// `#[test]`, `#[cfg(test)] mod …`. The range runs from the attribute to the
/// item's closing brace (or terminating semicolon).
fn test_exempt_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_attr_start = toks[i].tok == Tok::Punct('#')
            && i + 1 < toks.len()
            && toks[i + 1].tok == Tok::Punct('[');
        if !is_attr_start {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        // Scan the bracket group.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < toks.len() && depth > 0 {
            match &toks[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(s) if s == "test" => saw_test = true,
                Tok::Ident(s) if s == "not" => saw_not = true,
                _ => {}
            }
            j += 1;
        }
        if !saw_test || saw_not {
            i = j;
            continue;
        }
        // Skip any further attributes, then find the item's `{…}` or `;`.
        let mut k = j;
        while k + 1 < toks.len()
            && toks[k].tok == Tok::Punct('#')
            && toks[k + 1].tok == Tok::Punct('[')
        {
            let mut d = 1i32;
            k += 2;
            while k < toks.len() && d > 0 {
                match toks[k].tok {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        let mut end_line = attr_line;
        while k < toks.len() {
            match toks[k].tok {
                Tok::Punct(';') => {
                    end_line = toks[k].line;
                    k += 1;
                    break;
                }
                Tok::Punct('{') => {
                    let mut d = 1i32;
                    k += 1;
                    while k < toks.len() && d > 0 {
                        match toks[k].tok {
                            Tok::Punct('{') => d += 1,
                            Tok::Punct('}') => d -= 1,
                            _ => {}
                        }
                        end_line = toks[k].line;
                        k += 1;
                    }
                    break;
                }
                _ => {
                    k += 1;
                }
            }
        }
        ranges.push((attr_line, end_line));
        i = k;
    }
    ranges
}

/// Rule `unwrap`: `.unwrap()` / `.expect(` outside tests.
fn check_unwrap(
    path: &str,
    lexed: &Lexed,
    exempt: &[(u32, u32)],
    allow: &Allowlist,
    report: &mut FileReport,
) {
    let toks = &lexed.tokens;
    for w in 0..toks.len().saturating_sub(2) {
        let Tok::Punct('.') = toks[w].tok else {
            continue;
        };
        let Tok::Ident(name) = &toks[w + 1].tok else {
            continue;
        };
        if name != "unwrap" && name != "expect" {
            continue;
        }
        if toks[w + 2].tok != Tok::Punct('(') {
            continue;
        }
        let line = toks[w + 1].line;
        if in_ranges(exempt, line) {
            continue;
        }
        if directive_for(&lexed.allows, "unwrap", line) == Some(true) {
            continue;
        }
        if allow.allows("unwrap", path) {
            report
                .allow_hits
                .push(("unwrap".to_string(), path.to_string()));
            continue;
        }
        report.violations.push(Violation {
            file: path.to_string(),
            line,
            rule: "unwrap",
            message: format!(
                ".{name}() in non-test library code; return a Result (or add the \
                 file to lint.allow with a burn-down note)"
            ),
        });
    }
}

/// Rule `relaxed`: `Ordering::Relaxed` needs a justified site directive AND
/// an allowlist entry.
fn check_relaxed(
    path: &str,
    lexed: &Lexed,
    exempt: &[(u32, u32)],
    allow: &Allowlist,
    report: &mut FileReport,
) {
    let toks = &lexed.tokens;
    for w in 0..toks.len().saturating_sub(3) {
        let Tok::Ident(first) = &toks[w].tok else {
            continue;
        };
        if first != "Ordering" {
            continue;
        }
        if toks[w + 1].tok != Tok::Punct(':') || toks[w + 2].tok != Tok::Punct(':') {
            continue;
        }
        let Tok::Ident(last) = &toks[w + 3].tok else {
            continue;
        };
        if last != "Relaxed" {
            continue;
        }
        let line = toks[w + 3].line;
        if in_ranges(exempt, line) {
            continue;
        }
        let directive = directive_for(&lexed.allows, "relaxed", line);
        let listed = allow.allows("relaxed", path);
        match (directive, listed) {
            (Some(true), true) => {
                report
                    .allow_hits
                    .push(("relaxed".to_string(), path.to_string()));
            }
            (Some(true), false) => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "relaxed",
                message: "Ordering::Relaxed has a site justification but no lint.allow \
                          entry; add one"
                    .to_string(),
            }),
            (Some(false), _) => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "relaxed",
                message: "audit:allow(relaxed) directive lacks a justification after \
                          the colon"
                    .to_string(),
            }),
            (None, _) => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "relaxed",
                message: "Ordering::Relaxed without an audit:allow(relaxed): <why> \
                          comment; justify it or use Acquire/Release"
                    .to_string(),
            }),
        }
    }
}

/// Rule `cast`: narrowing `as` casts in DP index files need a justified
/// site directive.
fn check_casts(path: &str, lexed: &Lexed, exempt: &[(u32, u32)], report: &mut FileReport) {
    let toks = &lexed.tokens;
    for w in 0..toks.len().saturating_sub(1) {
        let Tok::Ident(kw) = &toks[w].tok else {
            continue;
        };
        if kw != "as" {
            continue;
        }
        let Tok::Ident(target) = &toks[w + 1].tok else {
            continue;
        };
        if !NARROWING_TARGETS.contains(&target.as_str()) {
            continue;
        }
        let line = toks[w].line;
        if in_ranges(exempt, line) {
            continue;
        }
        match directive_for(&lexed.allows, "cast", line) {
            Some(true) => {}
            Some(false) => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "cast",
                message: "audit:allow(cast) directive lacks a justification".to_string(),
            }),
            None => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "cast",
                message: format!(
                    "`as {target}` in DP index arithmetic; use a checked conversion or \
                     justify with audit:allow(cast): <why>"
                ),
            }),
        }
    }
}

/// Token-index ranges `(body_open, body_close)` of every `for` loop body.
/// `impl Trait for Type` and `for<'a>` bounds are filtered out by shape: a
/// loop's `for` is never preceded by an identifier and never followed by
/// `<`.
fn for_loop_bodies(toks: &[crate::lexer::Token]) -> Vec<(usize, usize)> {
    let mut bodies = Vec::new();
    for i in 0..toks.len() {
        let Tok::Ident(kw) = &toks[i].tok else {
            continue;
        };
        if kw != "for" {
            continue;
        }
        if i > 0 && matches!(toks[i - 1].tok, Tok::Ident(_)) {
            continue; // `impl Trait for Type`
        }
        if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('<'))) {
            continue; // `for<'a>` higher-ranked bound
        }
        // The iterator expression cannot contain a bare `{` (struct literals
        // need parens there), so the first `{` opens the loop body.
        let Some(open) = (i + 1..toks.len()).find(|&j| toks[j].tok == Tok::Punct('{')) else {
            continue;
        };
        let mut depth = 1i32;
        let mut close = open + 1;
        while close < toks.len() && depth > 0 {
            match toks[close].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                _ => {}
            }
            close += 1;
        }
        bodies.push((open, close));
    }
    bodies
}

/// Rule `trace-hot`: no trace hooks inside a `for` loop that walks
/// `next_in_level` — the per-cell kernel where even a disabled hook's
/// atomic load multiplies by the cell count. A hook is judged against the
/// *innermost* enclosing loop, so chunk/level spans wrapped around the walk
/// stay legal.
fn check_trace_hot(path: &str, lexed: &Lexed, exempt: &[(u32, u32)], report: &mut FileReport) {
    let toks = &lexed.tokens;
    let bodies = for_loop_bodies(toks);
    let body_has = |&(open, close): &(usize, usize), name: &str| {
        toks[open..close]
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
    };
    for w in 0..toks.len() {
        let Tok::Ident(name) = &toks[w].tok else {
            continue;
        };
        if !TRACE_HOOKS.contains(&name.as_str()) {
            continue;
        }
        // Hook *calls* only: `span(…)`, `trace_span(…)`, `pcmax_trace::instant(…)`.
        if toks.get(w + 1).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
            continue;
        }
        // Innermost enclosing for-loop body, by tightest token range.
        let Some(innermost) = bodies
            .iter()
            .filter(|&&(open, close)| open < w && w < close)
            .min_by_key(|&&(open, close)| close - open)
        else {
            continue;
        };
        if !body_has(innermost, "next_in_level") {
            continue;
        }
        let line = toks[w].line;
        if in_ranges(exempt, line) {
            continue;
        }
        match directive_for(&lexed.allows, "trace-hot", line) {
            Some(true) => {}
            Some(false) => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "trace-hot",
                message: "audit:allow(trace-hot) directive lacks a justification".to_string(),
            }),
            None => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "trace-hot",
                message: format!(
                    "trace/metric hook `{name}` inside the `next_in_level` cell-kernel \
                     loop; move it to chunk/level granularity outside the walk"
                ),
            }),
        }
    }
}

/// Rule `alloc-hot`: no heap allocation inside the `next_in_level`
/// cell-kernel loop. Shares the loop scoping of [`check_trace_hot`]: a
/// candidate is judged against its *innermost* enclosing `for` body, so
/// per-level buffer setup outside the walk stays legal.
fn check_alloc_hot(path: &str, lexed: &Lexed, exempt: &[(u32, u32)], report: &mut FileReport) {
    let toks = &lexed.tokens;
    let bodies = for_loop_bodies(toks);
    let body_has = |&(open, close): &(usize, usize), name: &str| {
        toks[open..close]
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == name))
    };
    // (token index, line, human-readable description) of each allocation.
    let mut sites: Vec<(usize, u32, String)> = Vec::new();
    for w in 0..toks.len() {
        match &toks[w].tok {
            // `.push(…)` / `.to_vec()` / `.collect()` (incl. turbofish).
            Tok::Punct('.') => {
                let Some(Tok::Ident(name)) = toks.get(w + 1).map(|t| &t.tok) else {
                    continue;
                };
                if !ALLOC_METHODS.contains(&name.as_str()) {
                    continue;
                }
                let next = toks.get(w + 2).map(|t| &t.tok);
                if next == Some(&Tok::Punct('(')) || next == Some(&Tok::Punct(':')) {
                    sites.push((w + 1, toks[w + 1].line, format!(".{name}(…)")));
                }
            }
            // `Vec::new` / `Vec::with_capacity` / `Box::new`.
            Tok::Ident(head) if head == "Vec" || head == "Box" => {
                if toks.get(w + 1).map(|t| &t.tok) != Some(&Tok::Punct(':'))
                    || toks.get(w + 2).map(|t| &t.tok) != Some(&Tok::Punct(':'))
                {
                    continue;
                }
                let Some(Tok::Ident(ctor)) = toks.get(w + 3).map(|t| &t.tok) else {
                    continue;
                };
                if ctor == "new" || (head == "Vec" && ctor == "with_capacity") {
                    sites.push((w, toks[w].line, format!("{head}::{ctor}")));
                }
            }
            // `format!` / `vec!`.
            Tok::Ident(mac)
                if ALLOC_MACROS.contains(&mac.as_str())
                    && toks.get(w + 1).map(|t| &t.tok) == Some(&Tok::Punct('!')) =>
            {
                sites.push((w, toks[w].line, format!("{mac}!")));
            }
            _ => {}
        }
    }
    for (w, line, what) in sites {
        let Some(innermost) = bodies
            .iter()
            .filter(|&&(open, close)| open < w && w < close)
            .min_by_key(|&&(open, close)| close - open)
        else {
            continue;
        };
        if !body_has(innermost, "next_in_level") {
            continue;
        }
        if in_ranges(exempt, line) {
            continue;
        }
        match directive_for(&lexed.allows, "alloc-hot", line) {
            Some(true) => {}
            Some(false) => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "alloc-hot",
                message: "audit:allow(alloc-hot) directive lacks a justification".to_string(),
            }),
            None => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "alloc-hot",
                message: format!(
                    "`{what}` allocates inside the `next_in_level` cell-kernel loop; \
                     reserve buffers outside the walk (the kernel is zero-allocation \
                     by contract)"
                ),
            }),
        }
    }
}

/// Rule `guard-across-park`: a `MutexGuard` binding live across a condvar
/// wait or thread park. Purely lexical liveness: a guard is born at
/// `let [mut] NAME = ….lock(…)…;`, dies at the end of its block, at
/// `drop(NAME)`, at a shadowing re-`let`, or by being passed as the wait's
/// own first argument (the handoff pattern `guard = cv.wait(guard)`).
fn check_guard_across_park(
    path: &str,
    lexed: &Lexed,
    exempt: &[(u32, u32)],
    report: &mut FileReport,
) {
    let toks = &lexed.tokens;
    let mut depth = 0i32;
    // Live guards as (name, block depth at the binding).
    let mut guards: Vec<(String, i32)> = Vec::new();
    let flag = |line: u32, call: &str, held: &[(String, i32)], report: &mut FileReport| {
        if in_ranges(exempt, line) {
            return;
        }
        match directive_for(&lexed.allows, "guard-across-park", line) {
            Some(true) => {}
            Some(false) => report.violations.push(Violation {
                file: path.to_string(),
                line,
                rule: "guard-across-park",
                message: "audit:allow(guard-across-park) directive lacks a justification"
                    .to_string(),
            }),
            None => {
                let names: Vec<&str> = held.iter().map(|(n, _)| n.as_str()).collect();
                report.violations.push(Violation {
                    file: path.to_string(),
                    line,
                    rule: "guard-across-park",
                    message: format!(
                        "`{call}` while mutex guard(s) {names:?} are live; the sleeper \
                         holds a lock its waker may need — drop the guard first"
                    ),
                });
            }
        }
    };
    let mut w = 0usize;
    while w < toks.len() {
        match &toks[w].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.1 <= depth);
            }
            Tok::Ident(kw) if kw == "let" => {
                // `let [mut] NAME = <expr>;` — a guard binding iff the
                // expression calls `.lock(`. The lookahead only classifies
                // the binding; scanning then continues token-by-token, so
                // waits/parks *inside* the statement are still seen.
                let mut k = w + 1;
                if matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "mut") {
                    k += 1;
                }
                let name = match toks.get(k).map(|t| &t.tok) {
                    Some(Tok::Ident(n))
                        if toks.get(k + 1).map(|t| &t.tok) == Some(&Tok::Punct('=')) =>
                    {
                        n.clone()
                    }
                    _ => {
                        w += 1;
                        continue;
                    }
                };
                let mut j = k + 2;
                let mut d = 0i32;
                let mut locks = false;
                while j < toks.len() {
                    match toks[j].tok {
                        Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => d += 1,
                        Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => d -= 1,
                        Tok::Punct(';') if d == 0 => break,
                        Tok::Punct('.')
                            if matches!(
                                toks.get(j + 1).map(|t| &t.tok),
                                Some(Tok::Ident(m)) if m == "lock"
                            ) && toks.get(j + 2).map(|t| &t.tok) == Some(&Tok::Punct('(')) =>
                        {
                            locks = true;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                guards.retain(|g| g.0 != name); // shadowing kills the old binding
                if locks {
                    guards.push((name, depth));
                }
            }
            Tok::Ident(kw)
                if kw == "drop" && toks.get(w + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) =>
            {
                if let Some(Tok::Ident(name)) = toks.get(w + 2).map(|t| &t.tok) {
                    let name = name.clone();
                    guards.retain(|g| g.0 != name);
                }
            }
            Tok::Ident(kw)
                if (kw == "park" || kw == "park_timeout")
                    && toks.get(w + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
                    && !guards.is_empty() =>
            {
                flag(toks[w].line, kw, &guards, report);
            }
            Tok::Punct('.') => {
                let Some(Tok::Ident(m)) = toks.get(w + 1).map(|t| &t.tok) else {
                    w += 1;
                    continue;
                };
                if matches!(m.as_str(), "wait" | "wait_timeout" | "wait_while")
                    && toks.get(w + 2).map(|t| &t.tok) == Some(&Tok::Punct('('))
                {
                    // The wait's own guard argument is consumed, not held.
                    if let Some(Tok::Ident(arg)) = toks.get(w + 3).map(|t| &t.tok) {
                        let arg = arg.clone();
                        guards.retain(|g| g.0 != arg);
                    }
                    if !guards.is_empty() {
                        flag(toks[w + 1].line, &format!(".{m}(…)"), &guards, report);
                    }
                }
            }
            _ => {}
        }
        w += 1;
    }
}

/// Rule `artifacts`: build artifacts in the tracked-file list.
pub fn check_tracked_artifacts(tracked: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    for path in tracked {
        let in_target = path
            .split('/')
            .any(|component| component == "target" || component == ".git");
        let bad_ext = [".profraw", ".rlib", ".rmeta", ".gcda", ".gcno", ".o"]
            .iter()
            .any(|ext| path.ends_with(ext));
        if in_target || bad_ext {
            out.push(Violation {
                file: path.clone(),
                line: 0,
                rule: "artifacts",
                message: "build artifact tracked in git; add to .gitignore and \
                          `git rm --cached`"
                    .to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_allow() -> Allowlist {
        Allowlist::default()
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "
fn lib() { x.unwrap(); y.expect(\"m\"); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { z.unwrap(); }
}
";
        let rep = lint_source("crates/foo/src/lib.rs", src, &no_allow());
        assert_eq!(rep.violations.len(), 2);
        assert!(rep.violations.iter().all(|v| v.rule == "unwrap"));
        assert_eq!(rep.violations[0].line, 2);
    }

    #[test]
    fn test_fn_attribute_exempts_function_body() {
        let src = "
#[test]
fn check() {
    a.unwrap();
}
fn lib() { b.unwrap(); }
";
        let rep = lint_source("crates/foo/src/lib.rs", src, &no_allow());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].line, 6);
    }

    #[test]
    fn cfg_not_test_does_not_exempt() {
        let src = "
#[cfg(not(test))]
fn lib() { a.unwrap(); }
";
        let rep = lint_source("crates/foo/src/lib.rs", src, &no_allow());
        assert_eq!(rep.violations.len(), 1);
    }

    #[test]
    fn allowlist_suppresses_unwrap_and_records_hit() {
        let allow =
            Allowlist::parse("unwrap crates/foo/src/lib.rs legacy, burn-down in PR 9").unwrap();
        let rep = lint_source("crates/foo/src/lib.rs", "fn f() { x.unwrap(); }", &allow);
        assert!(rep.violations.is_empty());
        assert_eq!(rep.allow_hits.len(), 1);
    }

    #[test]
    fn relaxed_needs_both_halves() {
        let bare = "fn f() { flag.store(true, Ordering::Relaxed); }";
        let rep = lint_source("crates/foo/src/lib.rs", bare, &no_allow());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, "relaxed");

        let with_comment = "
fn f() {
    // audit:allow(relaxed): monotonic flag, no payload
    flag.store(true, Ordering::Relaxed);
}";
        let rep = lint_source("crates/foo/src/lib.rs", with_comment, &no_allow());
        assert_eq!(rep.violations.len(), 1, "directive alone is not enough");

        let allow = Allowlist::parse("relaxed crates/foo/src/lib.rs monotonic flag").unwrap();
        let rep = lint_source("crates/foo/src/lib.rs", with_comment, &allow);
        assert!(rep.violations.is_empty());

        let rep = lint_source("crates/foo/src/lib.rs", bare, &allow);
        assert_eq!(rep.violations.len(), 1, "allowlist alone is not enough");
    }

    #[test]
    fn narrowing_casts_only_checked_in_dp_files() {
        let src = "fn f(x: usize) -> u32 { x as u32 }";
        let rep = lint_source("crates/ptas/src/table.rs", src, &no_allow());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, "cast");

        let rep = lint_source("crates/foo/src/lib.rs", src, &no_allow());
        assert!(rep.violations.is_empty());

        let justified = "
fn f(x: usize) -> u32 {
    // audit:allow(cast): x < 2^20 by the table guard
    x as u32
}";
        let rep = lint_source("crates/ptas/src/table.rs", justified, &no_allow());
        assert!(rep.violations.is_empty());
    }

    #[test]
    fn widening_and_usize_casts_pass() {
        let src = "fn f(x: u16) -> u64 { let a = x as u64; let b = x as usize; a + b as u64 }";
        let rep = lint_source("crates/ptas/src/table.rs", src, &no_allow());
        assert!(rep.violations.is_empty());
    }

    #[test]
    fn trace_hooks_inside_the_cell_kernel_loop_are_flagged() {
        let src = "
fn kernel(lo: usize, hi: usize) {
    for p in lo..hi {
        pcmax_trace::instant(\"cell\", p as u64);
        let q = next_in_level(p);
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", src, &no_allow());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, "trace-hot");
        assert_eq!(rep.violations[0].line, 4);
    }

    #[test]
    fn chunk_spans_around_the_walk_and_other_files_pass() {
        let src = "
fn kernel(w: usize, lo: usize, hi: usize) {
    let _chunk_span = pcmax_trace::span(\"chunk\", w as u64);
    for p in lo..hi {
        let q = next_in_level(p);
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", src, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);

        // Hooks in loops that do not walk next_in_level are fine.
        let cold = "
fn sweep(levels: usize) {
    for l in 1..levels {
        let _level_span = pcmax_trace::span(\"level\", l as u64);
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", cold, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);

        // The same hot pattern outside TRACE_HOT_FILES is not checked.
        let src_elsewhere = "
fn f(lo: usize, hi: usize) {
    for p in lo..hi {
        pcmax_trace::instant(\"cell\", 0);
        next_in_level(p);
    }
}";
        let rep = lint_source("crates/foo/src/lib.rs", src_elsewhere, &no_allow());
        assert!(rep.violations.is_empty());
    }

    #[test]
    fn trace_hot_respects_innermost_loop_and_justified_directives() {
        // Outer loop contains the hot inner loop; a hook between them is
        // judged against the *outer* loop, which has no direct walk tokens
        // outside the inner one — but the walk ident is inside the outer
        // range too, so only innermost-scoping keeps the level span legal.
        let nested = "
fn sweep(levels: usize) {
    for l in 1..levels {
        let _level_span = pcmax_trace::span(\"level\", l as u64);
        for p in 0..10 {
            next_in_level(p);
        }
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", nested, &no_allow());
        assert_eq!(
            rep.violations.len(),
            1,
            "outer-loop hooks still sit on the per-level path when the walk \
             is in the outer range: {:?}",
            rep.violations
        );

        let justified = "
fn kernel(lo: usize, hi: usize) {
    for p in lo..hi {
        // audit:allow(trace-hot): one-shot debug instant, removed before merge
        pcmax_trace::instant(\"cell\", p as u64);
        next_in_level(p);
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", justified, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    }

    #[test]
    fn metric_recording_inside_the_cell_kernel_loop_is_flagged() {
        // `inc` / `inc_by` / `observe` are one relaxed add per call when
        // metrics are enabled — per-cell they dominate the kernel. All
        // three must flag inside the walk.
        let src = "
fn kernel(lo: usize, hi: usize) {
    for p in lo..hi {
        CELLS.inc();
        BYTES.inc_by(8);
        LATENCY.observe(p as u64);
        next_in_level(p);
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", src, &no_allow());
        let rules: Vec<_> = rep.violations.iter().map(|v| v.rule).collect();
        assert_eq!(
            rules, ["trace-hot"; 3],
            "inc/inc_by/observe in the walk must all flag: {:?}",
            rep.violations
        );

        // The sanctioned pattern: aggregate per chunk, record outside the
        // walk — one observe per chunk, not per cell.
        let per_chunk = "
fn kernel(lo: usize, hi: usize) {
    CHUNK_CELLS.observe((hi - lo) as u64);
    for p in lo..hi {
        next_in_level(p);
    }
    CHUNK_DONE.inc();
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", per_chunk, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);

        // Field access without a call (`stats.observe` as a value) and
        // recording in non-hot files stay legal.
        let elsewhere = "
fn f(lo: usize, hi: usize) {
    for p in lo..hi {
        CELLS.inc();
        next_in_level(p);
    }
}";
        let rep = lint_source("crates/foo/src/lib.rs", elsewhere, &no_allow());
        assert!(rep.violations.is_empty());
    }

    #[test]
    fn family_child_lookup_inside_the_cell_kernel_loop_is_flagged() {
        // `.with_label(…)` takes the registry mutex and may Box::leak a new
        // child — allocation plus contention on the per-cell path.
        let src = "
fn kernel(w: usize, lo: usize, hi: usize) {
    for p in lo..hi {
        BUSY.with_label(worker_label(w));
        next_in_level(p);
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", src, &no_allow());
        assert_eq!(rep.violations.len(), 1, "{:?}", rep.violations);
        assert_eq!(rep.violations[0].rule, "alloc-hot");
        assert!(rep.violations[0].message.contains("with_label"));

        // Resolving the child once before the walk is the sanctioned fix.
        let hoisted = "
fn kernel(w: usize, lo: usize, hi: usize) {
    let busy = BUSY.with_label(worker_label(w));
    for p in lo..hi {
        next_in_level(p);
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", hoisted, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        let src = "
impl Walker for Kernel {
    fn visit(&self) {
        pcmax_trace::instant(\"setup\", 0);
        let _ = next_in_level(0);
    }
}
fn hrtb<F: for<'a> Fn(&'a u32)>(f: F) {
    pcmax_trace::instant(\"setup\", 0);
    next_in_level(0);
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", src, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    }

    #[test]
    fn allocation_in_the_cell_kernel_loop_is_flagged() {
        let src = "
fn kernel(lo: usize, hi: usize) {
    let mut out = Vec::new();
    for p in lo..hi {
        out.push(next_in_level(p));
        let copy = scratch.to_vec();
        let s = format!(\"cell {p}\");
        let boxed = Box::new(p);
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", src, &no_allow());
        let rules: Vec<_> = rep.violations.iter().map(|v| v.rule).collect();
        assert_eq!(
            rules, ["alloc-hot"; 4],
            "push/to_vec/format!/Box::new in the walk must all flag: {:?}",
            rep.violations
        );
        // `Vec::new` *outside* the loop (line 3) is the sanctioned pattern.
        assert!(rep.violations.iter().all(|v| v.line >= 5));
    }

    #[test]
    fn alloc_hot_scopes_to_the_innermost_walk_loop_and_other_files() {
        // Allocation in an outer loop whose *inner* loop walks is judged
        // against the outer body — which still contains the walk ident, so
        // per-level setup must sit outside any loop or carry a directive.
        let per_level_setup = "
fn sweep(levels: usize) {
    let mut buf = Vec::with_capacity(64);
    for l in 1..levels {
        buf.clear();
        for p in 0..10 {
            next_in_level(p);
        }
    }
}";
        let rep = lint_source(
            "crates/parallel/src/wavefront.rs",
            per_level_setup,
            &no_allow(),
        );
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);

        // Loops that never walk next_in_level may allocate freely.
        let cold = "
fn collect_levels(levels: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for l in 0..levels {
        out.push(l);
    }
    out
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", cold, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);

        // Files outside TRACE_HOT_FILES are not checked.
        let hot_elsewhere = "
fn f(lo: usize, hi: usize) {
    for p in lo..hi {
        let v = vec![p];
        next_in_level(p);
    }
}";
        let rep = lint_source("crates/foo/src/lib.rs", hot_elsewhere, &no_allow());
        assert!(rep.violations.is_empty());

        // A justified directive overrides.
        let justified = "
fn kernel(lo: usize, hi: usize) {
    for p in lo..hi {
        // audit:allow(alloc-hot): one-shot diagnostic buffer, cold path
        let v = vec![p];
        next_in_level(p);
    }
}";
        let rep = lint_source("crates/parallel/src/wavefront.rs", justified, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    }

    #[test]
    fn guard_live_across_wait_or_park_is_flagged() {
        // Holding guard `a` while waiting on a condvar with guard `b`: the
        // sleeper keeps `a` locked while parked — flagged.
        let two_guards = "
fn f(ma: &Mutex<u32>, mb: &Mutex<u32>, cv: &Condvar) {
    let a = ma.lock();
    let b = mb.lock();
    let b = cv.wait(b);
}";
        let rep = lint_source("crates/foo/src/lib.rs", two_guards, &no_allow());
        assert_eq!(rep.violations.len(), 1, "{:?}", rep.violations);
        assert_eq!(rep.violations[0].rule, "guard-across-park");
        assert!(rep.violations[0].message.contains("\"a\""));

        let parked = "
fn f(m: &Mutex<u32>) {
    let g = m.lock();
    std::thread::park();
}";
        let rep = lint_source("crates/foo/src/lib.rs", parked, &no_allow());
        assert_eq!(rep.violations.len(), 1, "{:?}", rep.violations);
        assert_eq!(rep.violations[0].rule, "guard-across-park");
    }

    #[test]
    fn guard_handoff_drop_and_scope_exit_are_clean() {
        // The pool's actual pattern: the wait consumes its own guard.
        let handoff = "
fn f(m: &Mutex<u32>, cv: &Condvar) {
    let mut ctl = m.lock();
    while !ctl.ready {
        ctl = cv.wait(ctl);
    }
}";
        let rep = lint_source("crates/foo/src/lib.rs", handoff, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);

        // Explicit drop before parking is the sanctioned fix.
        let dropped = "
fn f(m: &Mutex<u32>) {
    let g = m.lock();
    drop(g);
    std::thread::park();
}";
        let rep = lint_source("crates/foo/src/lib.rs", dropped, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);

        // A guard whose block closed before the park is dead.
        let scoped = "
fn f(m: &Mutex<u32>) {
    {
        let g = m.lock();
        *g += 1;
    }
    std::thread::park();
}";
        let rep = lint_source("crates/foo/src/lib.rs", scoped, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);

        // The sync seam itself is exempt: it implements the handoff.
        let seam = "
fn wait_impl(m: &Mutex<u32>, cv: &Condvar) {
    let g = m.lock();
    std::thread::park();
}";
        let rep = lint_source("crates/parallel/src/sync.rs", seam, &no_allow());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    }

    #[test]
    fn artifact_rule_flags_target_and_profraw() {
        let tracked = vec![
            "target/debug/foo.rlib".to_string(),
            "crates/core/src/lib.rs".to_string(),
            "perf/data.profraw".to_string(),
        ];
        let v = check_tracked_artifacts(&tracked);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn allowlist_rejects_reasonless_entries() {
        assert!(Allowlist::parse("unwrap crates/foo/src/lib.rs").is_err());
        assert!(Allowlist::parse("unwrap").is_err());
        assert!(Allowlist::parse("# comment\n\nunwrap a/b.rs why not").is_ok());
    }

    #[test]
    fn stale_entries_detected() {
        let allow = Allowlist::parse("unwrap a.rs x\nunwrap b.rs y").unwrap();
        let used = vec![("unwrap".to_string(), "a.rs".to_string())];
        let stale = allow.stale(&used);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "b.rs");
    }

    #[test]
    fn doc_examples_never_trigger() {
        let src = "
/// ```
/// let x = foo().unwrap();
/// ```
fn documented() {}
";
        let rep = lint_source("crates/foo/src/lib.rs", src, &no_allow());
        assert!(rep.violations.is_empty());
    }
}
