//! Metrics-at-the-sync-seam regression: the pool's park/wake sites now
//! record into the process-wide metrics registry as well as the trace
//! scratch. Under the audit scheduler, every explored interleaving must
//! (a) stay race-free with recording enabled, (b) keep the registry in
//! exact agreement with the scratch counters (the two bookkeeping paths
//! share one seam — divergence means a site records on one path only),
//! and (c) still produce the sequential DP table.
//!
//! Compile with `cargo test -p pcmax-audit --features audit`; the whole
//! file vanishes without the feature.
#![cfg(feature = "audit")]

use pcmax_audit::explore::sweep;
use pcmax_parallel::wavefront::bucketed_sweep;
use pcmax_ptas::dp::DpProblem;
use pcmax_ptas::table::DpScratch;

/// The paper's worked example (Table I): 12 entries over 6 levels.
fn paper_problem() -> DpProblem {
    let mut counts = vec![0u32; 16];
    counts[2] = 2;
    counts[4] = 3;
    DpProblem::new(counts, 2, 30, 64)
}

const PAPER_TABLE: [u16; 12] = [0, 1, 1, 1, 1, 1, 1, 2, 1, 1, 2, 2];

#[test]
fn registry_and_scratch_agree_under_every_explored_schedule() {
    assert!(
        pcmax_metrics::enabled(),
        "recording must be on for the seam to be exercised"
    );
    let report = sweep(
        700,
        64,
        || {
            // Deltas are read inside the session (the explorer's global
            // gate serialises sweeps, so no other test's parks can land
            // in between).
            let parks0 = pcmax_parallel::metrics::POOL_PARKS.get();
            let wakes0 = pcmax_parallel::metrics::POOL_WAKES.get();
            let problem = paper_problem();
            let mut scratch = DpScratch::new();
            let mut table = problem
                .build_level_major_table_in(&mut scratch)
                .expect("paper problem fits");
            let configs = problem.configs_with_offsets(&table);
            table.values[0] = 0;
            bucketed_sweep(&mut table, &configs, 2, &mut scratch);
            let parks = pcmax_parallel::metrics::POOL_PARKS.get() - parks0;
            let wakes = pcmax_parallel::metrics::POOL_WAKES.get() - wakes0;
            (table.values_row_major(), scratch, parks, wakes)
        },
        |seed, (values, scratch, parks, wakes)| {
            assert_eq!(
                values.as_slice(),
                PAPER_TABLE,
                "seed {seed}: table diverged from the sequential DP"
            );
            assert_eq!(
                *parks, scratch.pool_parks,
                "seed {seed}: registry parks diverged from the trace scratch"
            );
            assert_eq!(
                *wakes, scratch.pool_wakes,
                "seed {seed}: registry wakes diverged from the trace scratch"
            );
        },
    );
    assert_eq!(report.schedules, 64);
    assert!(
        report.races.is_empty(),
        "metric recording at the sync seam raced: {:?}",
        report.races
    );
    assert!(
        report.lock_cycles.is_empty() && report.lost_wakeups.is_empty(),
        "blocking findings with metrics recording on: {:?} {:?}",
        report.lock_cycles,
        report.lost_wakeups
    );
}
