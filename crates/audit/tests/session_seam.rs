//! Concurrency regression suite for the session engine: replays ≥64 seeded
//! interleavings of a full `Engine` lifecycle — submit, queue handoff,
//! profile-cache sharing, pre-cancelled admission, shutdown — and asserts
//! (a) no schedule races, (b) every schedule renders bit-identical wire
//! responses (timing zeroed — wall clock is the one field allowed to vary),
//! and (c) concurrent cold solves of the same instance agree on the answer
//! no matter which one wins the memo insert.
//!
//! Compile with `cargo test -p pcmax-audit --features audit`; the whole
//! file vanishes without the feature.
#![cfg(feature = "audit")]

use pcmax_audit::explore::sweep;
use pcmax_core::json::ToJson;
use pcmax_core::wire::{WireOutcome, WireResponse};
use pcmax_core::{CancelToken, Instance, Result, SolveReport};
use pcmax_engine::{Engine, EngineConfig, SolverParams, Submission};
use std::sync::Mutex;

/// Known to drive the rounded DP (LPT does not certify the lower bound), so
/// every probe produces profile-cache traffic.
fn dp_instance() -> Instance {
    Instance::new(vec![19, 17, 16, 12, 11, 10, 9, 7, 5, 3, 23, 29], 4).unwrap()
}

/// A second shape so one submission in the concurrent pair is a guaranteed
/// memo miss.
fn other_instance() -> Instance {
    Instance::new(vec![14, 13, 11, 8, 6, 5, 4, 2, 21], 3).unwrap()
}

fn params() -> SolverParams {
    SolverParams {
        epsilon: 0.4,
        ..SolverParams::default()
    }
}

/// Renders a finished solve exactly as the daemon would put it on the wire,
/// with `wall_micros` zeroed: the wall clock is the only response field
/// whose value legitimately depends on the schedule.
fn frame(id: u64, result: &Result<SolveReport>) -> String {
    let mut resp = WireResponse::from_result(id, result);
    if let WireOutcome::Ok { stats, .. } = &mut resp.outcome {
        stats.wall_micros = 0;
    }
    resp.to_json().to_string_compact()
}

/// One full engine lifecycle, returning every response frame plus the
/// shutdown totals (parks/wakes excluded — handoff traffic is schedule-
/// dependent by design; served/cancelled/cache totals are not).
fn engine_lifecycle() -> Vec<String> {
    // Built inside the workload: the explorer resets sync object ids at the
    // start of every seed, so the engine's queue mutex and condvar must be
    // created under the active exploration session.
    let engine = Engine::with_config(EngineConfig {
        workers: 2,
        capacity: 8,
        cache_capacity: 64,
    });
    let mut frames = Vec::new();

    // Cold solve, waited to completion so the memo is deterministically warm
    // before the concurrent pair below.
    let first = engine
        .submit(Submission::new(dp_instance(), "ptas").with_params(params()))
        .expect("admit cold solve");
    frames.push(frame(1, &first.wait()));

    // A warm duplicate and a distinct cold instance race through the two
    // workers; a queued submission whose token was raised before admission
    // must come back `cancelled` without ever touching a solver.
    let cancel = CancelToken::new();
    cancel.cancel();
    let warm = engine
        .submit(Submission::new(dp_instance(), "ptas").with_params(params()))
        .expect("admit warm solve");
    let cold = engine
        .submit(Submission::new(other_instance(), "ptas").with_params(params()))
        .expect("admit second cold solve");
    let dead = engine
        .submit(
            Submission::new(dp_instance(), "ptas")
                .with_params(params())
                .with_cancel(cancel),
        )
        .expect("admit pre-cancelled solve");
    frames.push(frame(2, &warm.wait()));
    frames.push(frame(3, &cold.wait()));
    frames.push(frame(4, &dead.wait()));

    let totals = engine.shutdown();
    frames.push(format!(
        "served={} cancelled={} cache_hits={} cache_misses={}",
        totals.served, totals.cancelled, totals.cache_hits, totals.cache_misses
    ));
    frames
}

#[test]
fn engine_lifecycle_is_race_free_and_bit_identical_across_64_interleavings() {
    let baseline: Mutex<Option<Vec<String>>> = Mutex::new(None);
    let report = sweep(1100, 64, engine_lifecycle, |seed, frames| {
        assert!(
            frames[0].contains(r#""status":"ok""#) && frames[0].contains(r#""cache_hit":false"#),
            "seed {seed}: cold solve must miss the memo: {}",
            frames[0]
        );
        assert!(
            frames[1].contains(r#""cache_hit":true"#),
            "seed {seed}: warm duplicate must hit the memo: {}",
            frames[1]
        );
        assert!(
            frames[2].contains(r#""cache_hit":false"#),
            "seed {seed}: distinct instance must miss the memo: {}",
            frames[2]
        );
        assert!(
            frames[3].contains(r#""status":"cancelled""#),
            "seed {seed}: pre-cancelled submission must not solve: {}",
            frames[3]
        );
        let mut guard = baseline.lock().unwrap_or_else(|p| p.into_inner());
        match guard.as_ref() {
            None => *guard = Some(frames.clone()),
            Some(expected) => assert_eq!(
                frames, expected,
                "seed {seed}: responses diverged across schedules"
            ),
        }
    });
    assert_eq!(report.schedules, 64);
    assert!(
        report.races.is_empty(),
        "session/cache seam races found: {:?}",
        report.races
    );
    assert!(
        report.lock_cycles.is_empty(),
        "session engine lock-order cycles found: {:?}",
        report.lock_cycles
    );
    assert!(
        report.lost_wakeups.is_empty(),
        "session engine lost-wakeup candidates found: {:?}",
        report.lost_wakeups
    );
    assert!(
        report.max_threads > 1,
        "instrumentation must actually see the engine workers"
    );
    assert!(
        report.distinct_histories > 1,
        "seeds must explore more than one interleaving"
    );
}

#[test]
fn racing_cold_solves_agree_regardless_of_who_wins_the_memo_insert() {
    // Two identical submissions admitted back-to-back with a cold memo: which
    // worker's probe lands in the cache first is schedule-dependent, so the
    // cache_hit flag may vary — but makespan, certified target and assignment
    // must not.
    let report = sweep(
        1300,
        64,
        || {
            let engine = Engine::with_config(EngineConfig {
                workers: 2,
                capacity: 8,
                cache_capacity: 64,
            });
            let a = engine
                .submit(Submission::new(dp_instance(), "ptas").with_params(params()))
                .expect("admit first racer");
            let b = engine
                .submit(Submission::new(dp_instance(), "ptas").with_params(params()))
                .expect("admit second racer");
            let ra = a.wait().expect("first racer solves");
            let rb = b.wait().expect("second racer solves");
            engine.shutdown();
            (ra, rb)
        },
        |seed, (ra, rb)| {
            assert_eq!(ra.makespan, rb.makespan, "seed {seed}: makespan diverged");
            assert_eq!(
                ra.certified_target, rb.certified_target,
                "seed {seed}: certified target diverged"
            );
            assert_eq!(
                ra.schedule, rb.schedule,
                "seed {seed}: schedule diverged between racing duplicates"
            );
        },
    );
    assert_eq!(report.schedules, 64);
    assert!(
        report.races.is_empty(),
        "memo-insert races found: {:?}",
        report.races
    );
    assert!(
        report.lock_cycles.is_empty() && report.lost_wakeups.is_empty(),
        "memo-insert blocking findings: {:?} {:?}",
        report.lock_cycles,
        report.lost_wakeups
    );
    assert!(report.max_threads > 1);
}
