//! Concurrency regression suite: replays ≥64 seeded interleavings of the
//! instrumented wavefront executors and asserts (a) no schedule races and
//! (b) every schedule produces the sequential solver's exact table, plus a
//! sanity check that the detector actually fires on a deliberately racy
//! executor and on the relaxed-flag publication anti-pattern.
//!
//! Compile with `cargo test -p pcmax-audit --features audit`; the whole
//! file vanishes without the feature.
#![cfg(feature = "audit")]

use pcmax_audit::explore::{run_seed, sweep};
use pcmax_parallel::wavefront::{
    bucketed_sweep, bucketed_sweep_space, bucketed_sweep_space_with, spawn_per_level_sweep,
};
use pcmax_parallel::{sync, CellKernel, Chunking, ParallelDp, ScopedDp};
use pcmax_ptas::dp::{DpProblem, DpSolver, IterativeDp};
use pcmax_ptas::space::{serial_sweep, PcmaxSpace, QSpace};
use pcmax_ptas::table::DpScratch;
use std::sync::atomic::Ordering;

/// The paper's worked example: 2 jobs of rounded size 2·2 and 3 of size 4·2,
/// capacity 30 — Table I of the paper, 12 entries over 6 wavefront levels.
fn paper_problem() -> DpProblem {
    let mut counts = vec![0u32; 16];
    counts[2] = 2;
    counts[4] = 3;
    DpProblem::new(counts, 2, 30, 64)
}

/// Table I in row-major order (the sequential DP's exact values).
const PAPER_TABLE: [u16; 12] = [0, 1, 1, 1, 1, 1, 1, 2, 1, 1, 2, 2];

/// Runs the persistent-pool bucketed sweep on a fresh level-major table and
/// returns the filled values (in row-major order) plus the scratch whose
/// counters record the pool's park/wake traffic.
fn sweep_values(threads: usize) -> (Vec<u16>, DpScratch) {
    let problem = paper_problem();
    let mut scratch = DpScratch::new();
    let mut table = problem
        .build_level_major_table_in(&mut scratch)
        .expect("paper problem fits");
    let configs = problem.configs_with_offsets(&table);
    table.values[0] = 0;
    bucketed_sweep(&mut table, &configs, threads, &mut scratch);
    (table.values_row_major(), scratch)
}

#[test]
fn wavefront_is_race_free_across_64_interleavings() {
    let report = sweep(
        1,
        64,
        || sweep_values(3).0,
        |seed, values| {
            assert_eq!(
                values.as_slice(),
                PAPER_TABLE,
                "seed {seed}: table diverged from the sequential DP"
            );
        },
    );
    assert_eq!(report.schedules, 64);
    assert!(
        report.races.is_empty(),
        "wavefront races found: {:?}",
        report.races
    );
    assert!(
        report.lock_cycles.is_empty() && report.lost_wakeups.is_empty(),
        "wavefront blocking findings: {:?} {:?}",
        report.lock_cycles,
        report.lost_wakeups
    );
    assert!(
        report.max_threads > 1,
        "instrumentation must actually see worker threads"
    );
    assert!(
        report.distinct_histories > 1,
        "seeds must explore more than one interleaving"
    );
}

#[test]
fn persistent_pool_park_wake_barrier_is_race_free() {
    // Exercises the pool's condvar handoff path specifically: every seeded
    // schedule must (a) produce the sequential table, (b) balance parks with
    // wakes (every entered wait returns), and (c) across the seed set the
    // barrier must actually park — i.e. the detector has seen the
    // park → notify → wake edge, not just uncontended handoffs.
    let total_parks = std::sync::atomic::AtomicU64::new(0);
    let report = sweep(
        300,
        64,
        || sweep_values(2),
        |seed, (values, scratch)| {
            assert_eq!(
                values.as_slice(),
                PAPER_TABLE,
                "seed {seed}: table diverged from the sequential DP"
            );
            assert_eq!(
                scratch.pool_parks, scratch.pool_wakes,
                "seed {seed}: a condvar wait was entered but never returned"
            );
            assert!(
                scratch.kernel_allocs <= 2,
                "seed {seed}: cell kernel allocated beyond its per-worker buffers"
            );
            total_parks.fetch_add(scratch.pool_parks, Ordering::Relaxed);
        },
    );
    assert_eq!(report.schedules, 64);
    assert!(
        report.races.is_empty(),
        "persistent pool races found: {:?}",
        report.races
    );
    assert!(
        report.lock_cycles.is_empty(),
        "persistent pool lock-order cycles found: {:?}",
        report.lock_cycles
    );
    assert!(
        report.lost_wakeups.is_empty(),
        "persistent pool lost-wakeup candidates found: {:?}",
        report.lost_wakeups
    );
    assert!(
        total_parks.load(Ordering::Relaxed) > 0,
        "64 schedules of a 2-thread pool must park at least once"
    );
    assert!(report.max_threads > 1);
}

/// The bucketed sweep with an explicitly pinned cell kernel. Chunking is
/// requested adaptive (the production default) but the planner pins itself
/// static under `feature = "audit"` so explored schedules stay replayable.
fn kernel_sweep_values(threads: usize, kernel: CellKernel) -> Vec<u16> {
    let problem = paper_problem();
    let mut scratch = DpScratch::new();
    let mut table = problem
        .build_level_major_table_in(&mut scratch)
        .expect("paper problem fits");
    let configs = problem.configs_with_offsets(&table);
    let space = PcmaxSpace::new(&configs);
    table.values[0] = 0;
    bucketed_sweep_space_with(
        &mut table,
        &space,
        threads,
        &mut scratch,
        kernel,
        Chunking::Adaptive,
    );
    table.values_row_major()
}

#[test]
fn strip_kernel_is_race_free_and_matches_scalar_across_64_interleavings() {
    // Pins `CellKernel::Strip` explicitly (the other suites get it only as
    // the default) and cross-checks the scalar kernel under the *same*
    // explored schedule: the batched tile walk must stay race-free and
    // bit-identical regardless of how the pool's handoffs interleave.
    let report = sweep(
        900,
        64,
        || {
            (
                kernel_sweep_values(3, CellKernel::Strip),
                kernel_sweep_values(3, CellKernel::Scalar),
            )
        },
        |seed, (strip, scalar)| {
            assert_eq!(
                strip.as_slice(),
                PAPER_TABLE,
                "seed {seed}: strip kernel diverged from the sequential DP"
            );
            assert_eq!(
                strip, scalar,
                "seed {seed}: strip and scalar kernels disagree under exploration"
            );
        },
    );
    assert_eq!(report.schedules, 64);
    assert!(
        report.races.is_empty(),
        "strip kernel races found: {:?}",
        report.races
    );
    assert!(
        report.lock_cycles.is_empty() && report.lost_wakeups.is_empty(),
        "strip kernel blocking findings: {:?} {:?}",
        report.lock_cycles,
        report.lost_wakeups
    );
    assert!(report.max_threads > 1);
}

/// Non-increasing speed capacities for the Q replay: the fast machine takes
/// the paper's capacity 30, the slow one only 14, so the `step_allowed`
/// filter actually prunes transitions under exploration.
const Q_CAPS: [u64; 2] = [30, 14];

/// The bucketed sweep driven through the generalized `StateSpace` seam with
/// capacity filtering, on a fresh level-major table.
fn q_sweep_values(threads: usize) -> (Vec<u16>, DpScratch) {
    let problem = paper_problem();
    let mut scratch = DpScratch::new();
    let mut table = problem
        .build_level_major_table_in(&mut scratch)
        .expect("paper problem fits");
    let configs = problem.configs_with_offsets(&table);
    let sizes = table.sizes.clone();
    let space = QSpace::new(&configs, &sizes, &Q_CAPS);
    table.values[0] = 0;
    bucketed_sweep_space(&mut table, &space, threads, &mut scratch);
    (table.values_row_major(), scratch)
}

#[test]
fn uniform_capacity_wavefront_is_race_free_across_64_interleavings() {
    // The serial engine on the same capacity-filtered space is the oracle:
    // every explored schedule of the persistent pool must reproduce its
    // table exactly and balance its park/wake traffic.
    let expected = {
        let problem = paper_problem();
        let mut table = problem.build_table().expect("paper problem fits");
        let configs = problem.configs_with_offsets(&table);
        let sizes = table.sizes.clone();
        serial_sweep(&mut table, &QSpace::new(&configs, &sizes, &Q_CAPS));
        table.values_row_major()
    };
    let total_parks = std::sync::atomic::AtomicU64::new(0);
    let report = sweep(
        700,
        64,
        || q_sweep_values(2),
        |seed, (values, scratch)| {
            assert_eq!(
                values, &expected,
                "seed {seed}: Q table diverged from the serial engine"
            );
            assert_eq!(
                scratch.pool_parks, scratch.pool_wakes,
                "seed {seed}: a condvar wait was entered but never returned"
            );
            total_parks.fetch_add(scratch.pool_parks, Ordering::Relaxed);
        },
    );
    assert_eq!(report.schedules, 64);
    assert!(
        report.races.is_empty(),
        "uniform wavefront races found: {:?}",
        report.races
    );
    assert!(
        report.lock_cycles.is_empty() && report.lost_wakeups.is_empty(),
        "uniform wavefront blocking findings: {:?} {:?}",
        report.lock_cycles,
        report.lost_wakeups
    );
    assert!(report.max_threads > 1);
    assert!(
        total_parks.load(Ordering::Relaxed) > 0,
        "64 schedules of a 2-thread pool must park at least once"
    );
}

#[test]
fn spawn_per_level_fallback_is_race_free() {
    // The legacy executor survives as the bench baseline and as the
    // row-major fallback of `bucketed_sweep`; keep it under the detector.
    let report = sweep(
        500,
        32,
        || {
            let problem = paper_problem();
            let mut table = problem.build_table().expect("paper problem fits");
            let configs = problem.configs_with_offsets(&table);
            table.values[0] = 0;
            spawn_per_level_sweep(&mut table, &configs, 3, &mut DpScratch::new());
            table.values
        },
        |seed, values| {
            assert_eq!(values.as_slice(), PAPER_TABLE, "seed {seed}");
        },
    );
    assert!(report.races.is_empty(), "races: {:?}", report.races);
    assert!(report.max_threads > 1);
}

#[test]
fn scoped_round_robin_executor_is_race_free() {
    let expected = IterativeDp
        .solve(&paper_problem())
        .expect("sequential solve");
    let report = sweep(
        100,
        32,
        || {
            ScopedDp::new(2)
                .solve(&paper_problem())
                .expect("scoped solve")
        },
        |seed, out| {
            assert_eq!(out.machines, expected.machines, "seed {seed}");
            assert_eq!(out.schedule, expected.schedule, "seed {seed}");
        },
    );
    assert!(report.races.is_empty(), "races: {:?}", report.races);
    assert!(report.max_threads > 1);
}

#[test]
fn full_parallel_solver_matches_sequential_under_exploration() {
    let expected = IterativeDp
        .solve(&paper_problem())
        .expect("sequential solve");
    let report = sweep(
        200,
        16,
        || {
            ParallelDp::with_threads(2)
                .solve(&paper_problem())
                .expect("parallel solve")
        },
        |seed, out| {
            assert_eq!(out.machines, expected.machines, "seed {seed}");
        },
    );
    assert!(report.races.is_empty(), "races: {:?}", report.races);
}

#[test]
fn injected_racy_executor_is_detected() {
    // Two sibling workers write the same location with no ordering between
    // them — the canonical bug the level barrier prevents. The detector must
    // flag it under every schedule.
    for seed in 0..8 {
        let run = run_seed(seed, || {
            std::thread::scope(|s| {
                let (t1, id1) = sync::fork(|| sync::trace_write(0));
                let (t2, id2) = sync::fork(|| sync::trace_write(0));
                let h1 = s.spawn(t1);
                let h2 = s.spawn(t2);
                sync::join_with(id1, || h1.join()).expect("worker 1");
                sync::join_with(id2, || h2.join()).expect("worker 2");
            });
        });
        assert!(
            !run.races.is_empty(),
            "seed {seed}: sibling same-location writes must race"
        );
        assert!(run.races.iter().all(|r| r.loc == 0));
    }
}

#[test]
fn relaxed_flag_publication_is_detected_release_acquire_is_not() {
    // The cancel-token model: a worker writes a payload, raises a flag; the
    // parent waits on the flag and reads the payload. With Release/Acquire
    // the protocol is sound; with Relaxed the payload read is a data race —
    // exactly why CancelToken (which publishes NO payload) may stay Relaxed
    // but nothing carrying data may.
    fn protocol(store_ord: Ordering, load_ord: Ordering) -> impl Fn() {
        move || {
            let flag = sync::AtomicFlag::new(false);
            std::thread::scope(|s| {
                let flag_ref = &flag;
                let (task, id) = sync::fork(move || {
                    sync::trace_write(42); // the payload
                    flag_ref.store(true, store_ord);
                });
                let h = s.spawn(task);
                while !flag.load(load_ord) {}
                sync::trace_read(42); // consume the payload
                sync::join_with(id, || h.join()).expect("worker");
            });
        }
    }
    for seed in 0..8 {
        let racy = run_seed(seed, protocol(Ordering::Relaxed, Ordering::Relaxed));
        assert!(
            racy.races.iter().any(|r| r.loc == 42),
            "seed {seed}: payload published via relaxed flag must race"
        );
        let sound = run_seed(seed, protocol(Ordering::Release, Ordering::Acquire));
        assert!(
            sound.races.is_empty(),
            "seed {seed}: release/acquire publication must be clean: {:?}",
            sound.races
        );
    }
}

#[test]
fn payload_free_relaxed_flag_is_race_free() {
    // CancelToken's actual shape: the flag itself is the only shared state.
    // No plain accesses exist, so no data race is possible — the justification
    // for keeping Ordering::Relaxed in pcmax_core::engine::CancelToken.
    for seed in 0..8 {
        let run = run_seed(seed, || {
            let flag = sync::AtomicFlag::new(false);
            std::thread::scope(|s| {
                let flag_ref = &flag;
                let (task, id) = sync::fork(move || {
                    flag_ref.store(true, Ordering::Relaxed);
                });
                let h = s.spawn(task);
                while !flag.load(Ordering::Relaxed) {}
                sync::join_with(id, || h.join()).expect("worker");
            });
        });
        assert!(run.races.is_empty(), "seed {seed}: {:?}", run.races);
    }
}
