//! Lint regression suite: the real workspace must be clean, and the seeded
//! violation fixture must fail with exactly the expected findings.

use pcmax_audit::lint;
use pcmax_audit::rules::{lint_source, Allowlist};
use std::collections::BTreeSet;

fn fixture() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/fixtures/violations.rs.fixture"
    ))
    .expect("fixture file present")
}

#[test]
fn workspace_lints_clean() {
    let cwd = std::env::current_dir().expect("cwd");
    let root = lint::workspace_root(&cwd).expect("workspace root");
    let outcome = lint::run(&root).expect("lint run");
    assert!(
        outcome.clean(),
        "workspace must lint clean, found:\n{}",
        outcome
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.stale.is_empty(),
        "stale lint.allow entries: {:?}",
        outcome.stale
    );
    assert!(outcome.files_scanned > 50, "whole workspace scanned");
}

#[test]
fn no_build_artifacts_tracked() {
    let cwd = std::env::current_dir().expect("cwd");
    let root = lint::workspace_root(&cwd).expect("workspace root");
    let tracked = lint::tracked_files(&root).expect("git ls-files");
    let offenders: Vec<&String> = tracked
        .iter()
        .filter(|p| p.split('/').any(|c| c == "target"))
        .collect();
    assert!(offenders.is_empty(), "tracked artifacts: {offenders:?}");
}

#[test]
fn fixture_fails_unwrap_and_relaxed_rules() {
    // Lint the fixture as if it were ordinary library source.
    let report = lint_source("crates/fake/src/lib.rs", &fixture(), &Allowlist::default());
    let rules: BTreeSet<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains("unwrap"), "found: {:?}", report.violations);
    assert!(rules.contains("relaxed"), "found: {:?}", report.violations);
    let unwraps = report
        .violations
        .iter()
        .filter(|v| v.rule == "unwrap")
        .count();
    assert_eq!(
        unwraps, 2,
        "unwrap + expect, but not the test-module unwrap"
    );
    let relaxed = report
        .violations
        .iter()
        .filter(|v| v.rule == "relaxed")
        .count();
    assert_eq!(
        relaxed, 2,
        "bare Relaxed and the unjustified directive both flagged"
    );
}

#[test]
fn fixture_fails_cast_rule_in_dp_files() {
    // Under a DP index-arithmetic path the narrowing cast is also flagged.
    let report = lint_source(
        "crates/ptas/src/table.rs",
        &fixture(),
        &Allowlist::default(),
    );
    assert!(
        report.violations.iter().any(|v| v.rule == "cast"),
        "found: {:?}",
        report.violations
    );
    // Under a non-DP path it is not.
    let report = lint_source("crates/fake/src/lib.rs", &fixture(), &Allowlist::default());
    assert!(report.violations.iter().all(|v| v.rule != "cast"));
}

#[test]
fn fixture_fails_alloc_hot_in_kernel_files_and_guard_rule_everywhere() {
    // `alloc-hot` fires only under TRACE_HOT_FILES paths — the fixture's
    // hot-loop `.push` is flagged there and nowhere else.
    let hot = lint_source(
        "crates/ptas/src/table.rs",
        &fixture(),
        &Allowlist::default(),
    );
    assert!(
        hot.violations.iter().any(|v| v.rule == "alloc-hot"),
        "found: {:?}",
        hot.violations
    );
    let cold = lint_source("crates/fake/src/lib.rs", &fixture(), &Allowlist::default());
    assert!(cold.violations.iter().all(|v| v.rule != "alloc-hot"));

    // `guard-across-park` fires everywhere except the sync seam itself.
    assert!(
        cold.violations
            .iter()
            .any(|v| v.rule == "guard-across-park"),
        "found: {:?}",
        cold.violations
    );
    let seam = lint_source(
        "crates/parallel/src/sync.rs",
        &fixture(),
        &Allowlist::default(),
    );
    assert!(seam
        .violations
        .iter()
        .all(|v| v.rule != "guard-across-park"));
}

#[test]
fn allowlist_downgrades_unwrap_but_not_relaxed() {
    let allow = Allowlist::parse(
        "unwrap crates/fake/src/lib.rs fixture burn-down\n\
         relaxed crates/fake/src/lib.rs fixture justification",
    )
    .expect("parse");
    let report = lint_source("crates/fake/src/lib.rs", &fixture(), &allow);
    // unwrap entries suppress; relaxed still needs a justified site directive.
    assert!(report.violations.iter().all(|v| v.rule != "unwrap"));
    assert_eq!(
        report
            .violations
            .iter()
            .filter(|v| v.rule == "relaxed")
            .count(),
        2,
        "allowlist alone never clears Ordering::Relaxed"
    );
}
