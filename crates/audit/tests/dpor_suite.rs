//! Systematic (DPOR) coverage suite: exhaustively enumerates the
//! non-equivalent schedules of the real executors on a small instance and
//! asserts zero races, zero lock-order cycles, zero lost wakeups, and
//! bit-identical tables — plus the detector-liveness contract that the
//! exhaustive mode finds an injected order-dependent race a fixed
//! 64-seed random sweep provably misses.
//!
//! Compile with `cargo test -p pcmax-audit --features audit`; the whole
//! file vanishes without the feature.
#![cfg(feature = "audit")]

use pcmax_audit::dpor::run_schedule;
use pcmax_audit::dpor::workloads::{
    fork_join_two_workers, injected_rare_race, triple_rmw_three_workers,
    FORK_JOIN_TWO_WORKERS_SCHEDULES, TRIPLE_RMW_THREE_WORKERS_SCHEDULES,
};
use pcmax_audit::explore::{sweep, sweep_exhaustive};
use pcmax_parallel::wavefront::{bucketed_sweep, bucketed_sweep_space_with, spawn_per_level_sweep};
use pcmax_parallel::{CellKernel, Chunking};
use pcmax_ptas::dp::DpProblem;
use pcmax_ptas::space::PcmaxSpace;
use pcmax_ptas::table::DpScratch;

/// A deliberately tiny instance (one job of rounded size 2·2, one of 4·2)
/// so the executors' full schedule space fits in an exhaustive budget:
/// the wavefront has 3 levels and 4 table entries.
fn tiny_problem() -> DpProblem {
    let mut counts = vec![0u32; 16];
    counts[2] = 1;
    counts[4] = 1;
    DpProblem::new(counts, 2, 30, 64)
}

/// The sequential engine's exact table for [`tiny_problem`] — the oracle
/// every explored schedule must reproduce.
fn tiny_oracle() -> Vec<u16> {
    let problem = tiny_problem();
    let mut table = problem.build_table().expect("tiny problem fits");
    let configs = problem.configs_with_offsets(&table);
    pcmax_ptas::space::serial_sweep(&mut table, &pcmax_ptas::space::PcmaxSpace::new(&configs));
    table.values_row_major()
}

/// The persistent-pool bucketed sweep on the tiny instance.
fn pool_values(threads: usize) -> Vec<u16> {
    let problem = tiny_problem();
    let mut scratch = DpScratch::new();
    let mut table = problem
        .build_level_major_table_in(&mut scratch)
        .expect("tiny problem fits");
    let configs = problem.configs_with_offsets(&table);
    table.values[0] = 0;
    bucketed_sweep(&mut table, &configs, threads, &mut scratch);
    table.values_row_major()
}

/// The spawn-per-level fallback executor on the tiny instance.
fn spawn_values(threads: usize) -> Vec<u16> {
    let problem = tiny_problem();
    let mut table = problem.build_table().expect("tiny problem fits");
    let configs = problem.configs_with_offsets(&table);
    table.values[0] = 0;
    spawn_per_level_sweep(&mut table, &configs, threads, &mut DpScratch::new());
    table.values
}

#[test]
fn microworkload_schedule_counts_match_hand_derived_bounds() {
    let two = sweep_exhaustive(64, fork_join_two_workers, |schedule, &total| {
        assert_eq!(total, 2, "schedule {schedule:?} lost an increment");
    });
    assert!(two.complete && two.is_clean());
    assert_eq!(two.schedules, FORK_JOIN_TWO_WORKERS_SCHEDULES);

    let three = sweep_exhaustive(256, triple_rmw_three_workers, |schedule, &total| {
        assert_eq!(total, 3, "schedule {schedule:?} lost an increment");
    });
    assert!(three.complete && three.is_clean());
    assert_eq!(three.schedules, TRIPLE_RMW_THREE_WORKERS_SCHEDULES);
}

#[test]
fn persistent_pool_minimal_instance_is_exhaustively_covered() {
    // One job, two workers: small enough that DPOR provably exhausts the
    // pool's entire schedule space — every non-equivalent interleaving of
    // the park/notify barrier is run, and all are clean.
    let mut counts = vec![0u32; 16];
    counts[2] = 1;
    let problem = DpProblem::new(counts, 2, 30, 64);
    let report = sweep_exhaustive(
        2000,
        || {
            let mut scratch = DpScratch::new();
            let mut table = problem
                .build_level_major_table_in(&mut scratch)
                .expect("minimal problem fits");
            let configs = problem.configs_with_offsets(&table);
            table.values[0] = 0;
            bucketed_sweep(&mut table, &configs, 2, &mut scratch);
            table.values_row_major()
        },
        |schedule, values| {
            assert_eq!(values, &[0, 1], "schedule {schedule:?}: wrong table");
        },
    );
    assert!(
        report.complete,
        "the minimal pool instance must be fully enumerable \
         (ran {} schedules without exhausting the space)",
        report.schedules
    );
    assert!(report.is_clean(), "pool findings: {report:?}");
    assert!(
        report.schedules > 1,
        "the pool handoff must admit more than one schedule class"
    );
    assert!(report.max_threads > 1);
}

#[test]
fn persistent_pool_exhaustive_sweep_is_clean() {
    let expected = tiny_oracle();
    let report = sweep_exhaustive(
        4000,
        || pool_values(2),
        |schedule, values| {
            assert_eq!(
                values, &expected,
                "schedule {schedule:?}: table diverged from the sequential DP"
            );
        },
    );
    assert!(
        report.schedules > 100,
        "budget-bounded coverage must still explore broadly (got {})",
        report.schedules
    );
    assert!(
        report.races.is_empty(),
        "persistent pool races: {:?}",
        report.races
    );
    assert!(
        report.cycles.is_empty(),
        "persistent pool lock-order cycles: {:?}",
        report.cycles
    );
    assert!(
        report.lost_wakeups.is_empty(),
        "persistent pool lost wakeups: {:?}",
        report.lost_wakeups
    );
    assert!(
        report.deadlocks.is_empty(),
        "persistent pool model deadlocks: {:?}",
        report.deadlocks
    );
    assert!(report.max_threads > 1);
}

#[test]
fn strip_kernel_exhaustive_sweep_is_clean() {
    // The batched strip kernel pinned explicitly (not just as the default),
    // under DPOR on the tiny instance: every non-equivalent schedule of the
    // pool must run the tile walk race-free and reproduce the oracle.
    let expected = tiny_oracle();
    let problem = tiny_problem();
    let report = sweep_exhaustive(
        4000,
        || {
            let mut scratch = DpScratch::new();
            let mut table = problem
                .build_level_major_table_in(&mut scratch)
                .expect("tiny problem fits");
            let configs = problem.configs_with_offsets(&table);
            let space = PcmaxSpace::new(&configs);
            table.values[0] = 0;
            bucketed_sweep_space_with(
                &mut table,
                &space,
                2,
                &mut scratch,
                CellKernel::Strip,
                Chunking::Adaptive,
            );
            table.values_row_major()
        },
        |schedule, values| {
            assert_eq!(
                values, &expected,
                "schedule {schedule:?}: strip kernel diverged from the sequential DP"
            );
        },
    );
    assert!(
        report.schedules > 1,
        "the pool handoff must admit more than one schedule class"
    );
    assert!(
        report.races.is_empty(),
        "strip kernel races: {:?}",
        report.races
    );
    assert!(
        report.cycles.is_empty(),
        "strip kernel lock-order cycles: {:?}",
        report.cycles
    );
    assert!(
        report.lost_wakeups.is_empty(),
        "strip kernel lost wakeups: {:?}",
        report.lost_wakeups
    );
    assert!(
        report.deadlocks.is_empty(),
        "strip kernel model deadlocks: {:?}",
        report.deadlocks
    );
    assert!(report.max_threads > 1);
}

#[test]
fn spawn_per_level_exhaustive_sweep_is_clean() {
    let expected = tiny_oracle();
    let report = sweep_exhaustive(
        4000,
        || spawn_values(2),
        |schedule, values| {
            assert_eq!(
                values, &expected,
                "schedule {schedule:?}: table diverged from the sequential DP"
            );
        },
    );
    assert!(
        report.complete,
        "spawn-per-level on the tiny instance must be fully enumerable"
    );
    assert!(report.is_clean(), "spawn-per-level findings: {report:?}");
    assert!(report.max_threads > 1);
}

#[test]
fn dpor_finds_the_race_a_64_seed_random_sweep_misses() {
    // The fixed random sweep — same shape as the regression suite's — sees
    // nothing: the race hides in one schedule class the geometric
    // coin-flips essentially never assemble.
    let random = sweep(0, 64, injected_rare_race, |_, _| {});
    assert_eq!(random.schedules, 64);
    assert!(
        random.races.is_empty(),
        "the injected race must be invisible to the fixed random sweep \
         (otherwise it is not a fair witness for systematic exploration): {:?}",
        random.races
    );

    // The systematic mode enumerates schedule classes and cannot miss it.
    let report = sweep_exhaustive(512, injected_rare_race, |_, _| {});
    assert!(
        !report.races.is_empty(),
        "DPOR must reach the racing schedule class within budget \
         (explored {} schedules)",
        report.schedules
    );
    let cx = report
        .counterexample
        .as_ref()
        .expect("first race must be shrunk to a counterexample");
    assert_eq!(cx.race.loc, 7, "the racing location is the gated write");
    assert!(
        cx.schedule.len() <= 8,
        "shrinking must produce a short script, got {:?}",
        cx.schedule
    );
}

#[test]
fn minimal_schedule_round_trips_through_replay() {
    let report = sweep_exhaustive(512, injected_rare_race, |_, _| {});
    let cx = report.counterexample.expect("race must be found");
    // The shrunk script is a plain `&[usize]` — exactly what a failure
    // message prints and a human pastes back into `run_schedule`.
    for _ in 0..2 {
        let replay = run_schedule(&cx.schedule, injected_rare_race);
        assert!(
            replay.races.iter().any(|r| r.loc == cx.race.loc),
            "replaying the minimal schedule must reproduce the same race"
        );
    }
}
