//! Built-in strategies: integer/float ranges, tuples, `any`, collections.

use crate::{Strategy, TestRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// `strategy.prop_map(f)` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `any::<T>()` — the full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64 - lo as i64) as u64;
                (lo as i64 + rng.below(span.wrapping_add(1)) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        self.start() + u * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// `prop::collection` — collection strategies.
pub mod collection {
    use super::*;

    /// A `Vec` of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_len(),
        }
    }

    /// Length specifications accepted by [`vec`].
    pub trait IntoLen {
        /// Converts to an inclusive `(min, max)` length pair.
        fn into_len(self) -> (usize, usize);
    }

    impl IntoLen for usize {
        fn into_len(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoLen for Range<usize> {
        fn into_len(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLen for RangeInclusive<usize> {
        fn into_len(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: (usize, usize),
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let (lo, hi) = self.len;
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = (1u64..=20).generate(&mut rng);
            assert!((1..=20).contains(&v));
            let w = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        let mut rng = TestRng::new(1);
        let s = collection::vec(1u64..=5, 2..=4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| (1..=5).contains(x)));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = (collection::vec(1u64..=9, 1..=6), 1usize..=4);
        let a = s.generate(&mut TestRng::new(42));
        let b = s.generate(&mut TestRng::new(42));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trips(x in 1u64..=100, ys in prop::collection::vec(0u32..10, 0..=5)) {
            prop_assert!((1..=100).contains(&x));
            prop_assert!(ys.len() <= 5);
            prop_assume!(x != 0);
            prop_assert_ne!(x, 0);
            prop_assert_eq!(x, x, "identity must hold for {}", x);
        }

        #[test]
        fn mapped_strategies_apply(f in (1u64..=3).prop_map(|v| v * 10)) {
            prop_assert!(f == 10 || f == 20 || f == 30);
        }
    }
}
