//! A minimal, dependency-free property-testing harness exposing the subset
//! of the `proptest` crate's API this workspace uses. It exists so the
//! workspace builds in fully offline environments; the test-facing surface
//! (`proptest!`, `prop_assert!`, strategies, `prop::collection::vec`) is
//! source-compatible with upstream for the constructs found in this repo.
//!
//! Differences from upstream: no shrinking (failures report the original
//! case), and `prop_assume!` skips the case instead of retrying it. Case
//! generation is deterministic per test (seeded from the test's name), so
//! failures are reproducible run to run.

pub mod strategy;

/// Failure raised inside a property body by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
    /// The case was rejected by `prop_assume!`.
    Reject(String),
}

/// Result type property bodies are compiled into.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// SplitMix64 — deterministic case-generation stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; the `proptest!` macro derives the seed from the
    /// property's name so distinct tests explore distinct streams.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed derived from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound = 0` yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is negligible for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The strategy trait: a recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { inner: self, f }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
    /// The `prop::` module path used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::strategy::collection;
    }
}

/// Runs one property over `cases` generated inputs. Used by `proptest!`.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::from_name(name);
    let mut executed = 0u32;
    let mut attempts = 0u32;
    // Allow a bounded number of rejections (prop_assume!) beyond `cases`.
    let max_attempts = config.cases.saturating_mul(8).max(64);
    while executed < config.cases && attempts < max_attempts {
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {executed}: {msg}");
            }
        }
    }
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// `prop_assume!(cond)` — skip the case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` properties
/// whose arguments are drawn from strategies (`pattern in strategy`).
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(let $pat = $crate::Strategy::generate(&$strat, rng);)+
                    #[allow(unused_mut)]
                    let mut case = || -> $crate::TestCaseResult { $body Ok(()) };
                    case()
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
