//! Sahni's FPTAS for `P_m||C_max` — minimum-makespan scheduling when the
//! number of machines `m` is a *fixed constant* (Sahni 1976, cited as \[15\]
//! in Ghalami & Grosu's related work).
//!
//! For fixed `m` the problem admits a *fully* polynomial-time approximation
//! scheme, unlike the general problem (strongly NP-hard, PTAS only). The
//! scheme is the classic trim-the-state-space dynamic program:
//!
//! 1. process jobs one at a time; a state is the vector of current machine
//!    loads (sorted, since identical machines make permutations equivalent),
//! 2. after each job, *trim*: quantize loads to a grid of width
//!    `δ = ε·LB/(2n)` and keep one representative per grid cell,
//! 3. the answer is the state minimizing the maximum load; parent pointers
//!    recover the schedule.
//!
//! Grid error accumulates at most `δ` per job per machine, so the final
//! makespan is within `n·δ ≤ ε·LB/2 ≤ ε·OPT` of optimal — a
//! `(1+ε)`-approximation in time `O(n · (n/ε)^{m-1})`, polynomial in both
//! `n` and `1/ε` for fixed `m`.
//!
//! With `epsilon = 0` the trim step is skipped entirely and the algorithm
//! becomes an exact (exponential-state) DP — handy for cross-validation.

use pcmax_core::{
    lower_bound, Error, Instance, Result, Schedule, SolveReport, SolveRequest, SolveStats, Solver,
    Time,
};
use std::collections::HashMap;
use std::time::Instant;

/// Sahni's FPTAS. `epsilon = 0` disables trimming (exact mode).
#[derive(Debug, Clone, Copy)]
pub struct FixedMachinesFptas {
    /// Relative error bound (`≥ 0`; `0` = exact DP).
    pub epsilon: f64,
    /// Safety cap on live states per round (an `Error::BudgetExhausted`
    /// guard against `epsilon = 0` on large instances).
    pub max_states: usize,
}

impl FixedMachinesFptas {
    /// FPTAS with relative error `epsilon`.
    pub fn new(epsilon: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(Error::InvalidEpsilon {
                reason: "epsilon must be a finite non-negative number",
            });
        }
        Ok(Self {
            epsilon,
            max_states: 2_000_000,
        })
    }

    /// Exact mode (no trimming).
    pub fn exact() -> Self {
        Self {
            epsilon: 0.0,
            max_states: 2_000_000,
        }
    }
}

/// One DP state: machine loads sorted non-increasingly, plus the parent
/// pointer `(state index in previous round, machine position chosen)`.
#[derive(Debug, Clone)]
struct State {
    loads: Vec<Time>,
    parent: usize,
    /// Index (in the *sorted parent loads*) of the machine the new job went
    /// to. Reconstruction replays the sort.
    machine_pos: usize,
}

impl FixedMachinesFptas {
    /// The trim-the-state-space DP itself; returns the assignment and the
    /// makespan the DP claims for it.
    fn run_dp(&self, inst: &Instance) -> Result<(Vec<usize>, Time)> {
        let m = inst.machines();
        let n = inst.jobs();
        // Quantization grid; 0 disables trimming.
        let delta = if self.epsilon > 0.0 {
            (self.epsilon * lower_bound(inst) as f64 / (2.0 * n.max(1) as f64)).floor() as Time
        } else {
            0
        };

        // Round r holds the states after scheduling job order[r-1].
        let mut rounds: Vec<Vec<State>> = Vec::with_capacity(n + 1);
        rounds.push(vec![State {
            loads: vec![0; m],
            parent: usize::MAX,
            machine_pos: usize::MAX,
        }]);

        // Processing jobs in decreasing size order makes trimming behave
        // better (big decisions first) and is the customary presentation.
        let order = inst.jobs_by_decreasing_time();

        for &job in order.iter() {
            let t = inst.time(job);
            let Some(prev) = rounds.last() else {
                return Err(Error::InvalidWitness {
                    reason: "FPTAS rounds list lost its initial round".to_string(),
                });
            };
            // Key: quantized sorted loads -> index into `next` (keep the
            // representative with the smallest true max load).
            let mut seen: HashMap<Vec<Time>, usize> = HashMap::new();
            let mut next: Vec<State> = Vec::new();
            for (pi, state) in prev.iter().enumerate() {
                for pos in 0..m {
                    // Identical machines: placing on two equally loaded
                    // machines is the same move.
                    if pos > 0 && state.loads[pos] == state.loads[pos - 1] {
                        continue;
                    }
                    let mut loads = state.loads.clone();
                    loads[pos] += t;
                    loads.sort_unstable_by(|a, b| b.cmp(a));
                    let key: Vec<Time> = if delta > 0 {
                        loads.iter().map(|&w| w / (delta + 1)).collect()
                    } else {
                        loads.clone()
                    };
                    match seen.entry(key) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            let existing = &mut next[*e.get()];
                            if loads[0] < existing.loads[0] {
                                *existing = State {
                                    loads,
                                    parent: pi,
                                    machine_pos: pos,
                                };
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(next.len());
                            next.push(State {
                                loads,
                                parent: pi,
                                machine_pos: pos,
                            });
                        }
                    }
                }
            }
            if next.len() > self.max_states {
                return Err(Error::BudgetExhausted {
                    incumbent: u64::MAX,
                    lower_bound: lower_bound(inst),
                });
            }
            rounds.push(next);
        }

        // Best final state.
        let Some(last) = rounds.last() else {
            return Err(Error::InvalidWitness {
                reason: "FPTAS produced no final round (expected n+1)".to_string(),
            });
        };
        let Some((mut best_idx, best_ms)) = last
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.loads[0]))
            .min_by_key(|&(_, ms)| ms)
        else {
            return Err(Error::InvalidWitness {
                reason: "FPTAS final round is empty (no state survived trimming)".to_string(),
            });
        };

        // Reconstruct by replaying the decisions forward: walk parents back,
        // then re-execute placements against unsorted per-machine loads.
        let mut decisions = vec![usize::MAX; n]; // decisions[r] = machine_pos
        for r in (1..=n).rev() {
            let s = &rounds[r][best_idx];
            decisions[r - 1] = s.machine_pos;
            best_idx = s.parent;
        }
        let mut assignment = vec![usize::MAX; n];
        let mut loads: Vec<(Time, usize)> = (0..m).map(|i| (0, i)).collect();
        for (r, &job) in order.iter().enumerate() {
            // The DP's `machine_pos` indexes the parent's loads sorted
            // non-increasingly; mirror that ordering here.
            loads.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let (load, machine) = loads[decisions[r]];
            assignment[job] = machine;
            loads[decisions[r]] = (load + inst.time(job), machine);
        }
        Ok((assignment, best_ms))
    }
}

impl Solver for FixedMachinesFptas {
    fn solver_name(&self) -> &'static str {
        "Sahni-FPTAS"
    }

    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        req.check_cancelled()?;
        let start = Instant::now();
        let inst = req.instance;
        let mut stats = SolveStats::default();
        if inst.jobs() == 0 {
            let schedule = Schedule::from_assignment(vec![], inst.machines())?;
            stats.wall = start.elapsed();
            return Ok(SolveReport {
                makespan: 0,
                schedule,
                certified_target: Some(0),
                proven_optimal: true,
                stats,
            });
        }
        let dp_span = req.trace_span("dp", inst.jobs() as u64);
        let (assignment, claimed) = self.run_dp(inst)?;
        drop(dp_span);
        let recon_span = req.trace_span("reconstruct", 0);
        let schedule = Schedule::from_assignment(assignment, inst.machines())?;
        drop(recon_span);
        debug_assert_eq!(
            schedule.makespan(inst),
            claimed,
            "reconstruction must reproduce the DP's makespan"
        );
        stats.wall = start.elapsed();
        // epsilon = 0 skips trimming, so the DP is exhaustive and the result
        // is a proven optimum.
        let exact = self.epsilon == 0.0;
        Ok(SolveReport {
            makespan: claimed,
            schedule,
            certified_target: exact.then_some(claimed),
            proven_optimal: exact,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::Scheduler;
    use pcmax_exact::BranchAndBound;

    fn exact_opt(inst: &Instance) -> Time {
        let out = BranchAndBound::default().solve_detailed(inst).unwrap();
        assert!(out.proven);
        out.best
    }

    #[test]
    fn exact_mode_matches_branch_and_bound() {
        for (times, m) in [
            (vec![4u64, 5, 6, 7, 8], 2usize),
            (vec![5, 5, 4, 4, 3, 3, 3], 3),
            (vec![10, 9, 8, 1, 1], 2),
            (vec![7, 7, 7, 7, 6, 6], 3),
        ] {
            let inst = Instance::new(times.clone(), m).unwrap();
            let ms = FixedMachinesFptas::exact().makespan(&inst).unwrap();
            assert_eq!(ms, exact_opt(&inst), "times={times:?} m={m}");
        }
    }

    #[test]
    fn epsilon_guarantee_holds() {
        let inst = Instance::new(
            vec![83, 71, 64, 59, 52, 47, 41, 38, 33, 29, 24, 18, 12, 7],
            3,
        )
        .unwrap();
        let opt = exact_opt(&inst);
        for eps in [0.5, 0.2, 0.1, 0.05] {
            let ms = FixedMachinesFptas::new(eps)
                .unwrap()
                .makespan(&inst)
                .unwrap();
            assert!(
                ms as f64 <= (1.0 + eps) * opt as f64 + 1e-9,
                "eps={eps}: {ms} vs opt {opt}"
            );
        }
    }

    #[test]
    fn tighter_epsilon_is_never_worse_on_this_instance() {
        let inst = Instance::new(vec![40, 31, 30, 23, 17, 12, 9, 5, 5, 2], 2).unwrap();
        let loose = FixedMachinesFptas::new(0.5)
            .unwrap()
            .makespan(&inst)
            .unwrap();
        let tight = FixedMachinesFptas::new(0.05)
            .unwrap()
            .makespan(&inst)
            .unwrap();
        assert!(tight <= loose);
        assert_eq!(tight, exact_opt(&inst));
    }

    #[test]
    fn schedule_is_valid_and_matches_claimed_makespan() {
        let inst = Instance::new(vec![13, 11, 9, 8, 8, 7, 5, 4, 2, 2], 4).unwrap();
        let algo = FixedMachinesFptas::new(0.1).unwrap();
        let s = algo.schedule(&inst).unwrap();
        s.validate(&inst).unwrap();
    }

    #[test]
    fn rejects_negative_epsilon() {
        assert!(FixedMachinesFptas::new(-0.1).is_err());
        assert!(FixedMachinesFptas::new(f64::NAN).is_err());
    }

    #[test]
    fn empty_and_single_job() {
        let empty = Instance::new(vec![], 3).unwrap();
        assert_eq!(FixedMachinesFptas::exact().makespan(&empty).unwrap(), 0);
        let one = Instance::new(vec![9], 3).unwrap();
        assert_eq!(FixedMachinesFptas::exact().makespan(&one).unwrap(), 9);
    }

    #[test]
    fn state_cap_guards_exact_mode() {
        // 40 distinct-ish jobs on 5 machines in exact mode would explode; the
        // guard must fire rather than OOM.
        let times: Vec<u64> = (1..=40).map(|i| 97 * i % 89 + 1).collect();
        let inst = Instance::new(times, 5).unwrap();
        let tiny_cap = FixedMachinesFptas {
            epsilon: 0.0,
            max_states: 1000,
        };
        assert!(matches!(
            tiny_cap.schedule(&inst),
            Err(Error::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn trimming_keeps_state_counts_polynomial() {
        let times: Vec<u64> = (1..=30).map(|i| 173 * i % 97 + 3).collect();
        let inst = Instance::new(times, 3).unwrap();
        // With eps = 0.3 the state space stays tiny; the default cap is far
        // from being hit and the answer is near-optimal.
        let ms = FixedMachinesFptas::new(0.3)
            .unwrap()
            .makespan(&inst)
            .unwrap();
        let opt = exact_opt(&inst);
        assert!(ms as f64 <= 1.3 * opt as f64);
    }
}
