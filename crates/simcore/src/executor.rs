//! Level-synchronized simulation of one DP evaluation.

use pcmax_ptas::DpTrace;

/// Cost-model parameters of the simulated machine, in the same abstract
/// cost units as the trace (≈ one configuration scan each).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Number of processors `P`.
    pub processors: usize,
    /// Cost added to every level for the barrier/fork-join synchronization
    /// (paid once per level regardless of `P`; OpenMP's implicit barrier).
    pub barrier_overhead: u64,
    /// Per-subproblem dispatch overhead paid by the parallel runtime
    /// (scheduling/loop bookkeeping); the sequential DP does not pay it.
    pub dispatch_overhead: u64,
}

impl SimParams {
    /// Cost model with `processors` workers and the default overheads.
    ///
    /// The defaults (barrier 2, dispatch 0) were calibrated so the simulated
    /// 16-core speedups on the paper's `m=20, n=100` families land where the
    /// paper reports them (Fig. 2a: up to 11.7× at 16 cores and 6.5× at 8
    /// cores for `U(1,10)`; this model gives 11.96× and 6.9×). One cost unit
    /// ≈ one machine-configuration scan, which in the paper's
    /// materialize-the-set C++ implementation costs about as much as an
    /// OpenMP barrier's per-level amortized share.
    pub fn with_processors(processors: usize) -> Self {
        Self {
            processors: processors.max(1),
            barrier_overhead: 2,
            dispatch_overhead: 0,
        }
    }
}

/// Result of simulating one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Simulated parallel time (cost units) on `P` processors.
    pub time: u64,
    /// Time of the *sequential* algorithm (total work, no overheads).
    pub sequential_time: u64,
    /// Idealized floor: critical path with infinitely many processors and
    /// zero overheads.
    pub critical_path: u64,
}

impl SimReport {
    /// Speedup of the simulated parallel run over the sequential algorithm.
    pub fn speedup(&self) -> f64 {
        if self.time == 0 {
            return 1.0;
        }
        self.sequential_time as f64 / self.time as f64
    }
}

/// Replays `trace` on the simulated machine: for each level, subproblem `i`
/// goes to processor `i mod P` (the paper's round-robin `parallel for`);
/// the level ends when the most-loaded processor finishes, plus the barrier.
pub fn simulate_trace(trace: &DpTrace, params: &SimParams) -> SimReport {
    let p = params.processors.max(1);
    let mut time = 0u64;
    let mut busy = vec![0u64; p];
    for level in &trace.levels {
        busy.fill(0);
        for (i, &cost) in level.iter().enumerate() {
            busy[i % p] += cost + params.dispatch_overhead;
        }
        time += busy.iter().max().copied().unwrap_or(0) + params.barrier_overhead;
    }
    SimReport {
        time,
        sequential_time: trace.total_work(),
        critical_path: trace.critical_path(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_ptas::DpTrace;

    fn trace(levels: Vec<Vec<u64>>) -> DpTrace {
        DpTrace { levels }
    }

    fn params(p: usize) -> SimParams {
        SimParams {
            processors: p,
            barrier_overhead: 0,
            dispatch_overhead: 0,
        }
    }

    #[test]
    fn single_processor_time_equals_total_work() {
        let t = trace(vec![vec![1], vec![2, 3], vec![4, 5, 6]]);
        let r = simulate_trace(&t, &params(1));
        assert_eq!(r.time, 21);
        assert_eq!(r.sequential_time, 21);
        assert!((r.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unlimited_processors_hit_the_critical_path() {
        let t = trace(vec![vec![1], vec![2, 3], vec![4, 5, 6]]);
        let r = simulate_trace(&t, &params(64));
        assert_eq!(r.time, 1 + 3 + 6);
        assert_eq!(r.time, r.critical_path);
    }

    #[test]
    fn round_robin_assignment_shapes_level_time() {
        // Level [5, 1, 1, 1] on 2 procs: proc0 = 5+1 = 6, proc1 = 1+1 = 2.
        let t = trace(vec![vec![5, 1, 1, 1]]);
        let r = simulate_trace(&t, &params(2));
        assert_eq!(r.time, 6);
    }

    #[test]
    fn barrier_overhead_accumulates_per_level() {
        let t = trace(vec![vec![1], vec![1], vec![1]]);
        let p = SimParams {
            processors: 4,
            barrier_overhead: 10,
            dispatch_overhead: 0,
        };
        let r = simulate_trace(&t, &p);
        assert_eq!(r.time, 3 * (1 + 10));
    }

    #[test]
    fn dispatch_overhead_charges_every_subproblem() {
        let t = trace(vec![vec![1, 1, 1, 1]]);
        let p = SimParams {
            processors: 1,
            barrier_overhead: 0,
            dispatch_overhead: 2,
        };
        let r = simulate_trace(&t, &p);
        assert_eq!(r.time, 4 * 3);
        assert_eq!(r.sequential_time, 4, "sequential pays no dispatch");
    }

    #[test]
    fn speedup_is_monotone_in_processors_without_overheads() {
        let t = trace(vec![
            vec![3; 7],
            vec![2; 13],
            vec![5; 4],
            vec![1; 29],
            vec![4; 10],
        ]);
        let mut last = 0.0;
        for p in [1, 2, 4, 8, 16] {
            let s = simulate_trace(&t, &params(p)).speedup();
            assert!(s >= last - 1e-12, "p={p}: {s} < {last}");
            last = s;
        }
    }

    #[test]
    fn more_processors_than_work_saturate() {
        let t = trace(vec![vec![1, 1]]);
        let a = simulate_trace(&t, &params(2));
        let b = simulate_trace(&t, &params(100));
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn defaults_are_calibrated() {
        let p = SimParams::with_processors(16);
        assert_eq!(p.processors, 16);
        assert!(p.barrier_overhead > 0);
    }

    #[test]
    fn zero_processors_clamps_to_one() {
        let t = trace(vec![vec![1, 2]]);
        let p = SimParams {
            processors: 0,
            barrier_overhead: 0,
            dispatch_overhead: 0,
        };
        assert_eq!(simulate_trace(&t, &p).time, 3);
    }

    #[test]
    fn empty_trace() {
        let t = trace(vec![]);
        let r = simulate_trace(&t, &params(4));
        assert_eq!(r.time, 0);
        assert_eq!(r.speedup(), 1.0);
    }
}
