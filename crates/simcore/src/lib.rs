//! Deterministic simulated `P`-processor shared-memory executor — the
//! hardware substitution of this reproduction (see DESIGN.md §2).
//!
//! The paper measures speedup on a 16-core machine; this repository must
//! reproduce those curves on whatever host it runs on (possibly a single
//! core). The executor replays the *exact* schedule of the paper's parallel
//! DP (Algorithm 3): subproblems on anti-diagonal level `l` are assigned
//! round-robin to `P` processors, every processor's level time is the sum of
//! its subproblems' costs, the level completes at the slowest processor
//! (barrier), and levels run in sequence. Costs are operation counts
//! captured by `pcmax_ptas::dp_trace` (configurations examined per entry),
//! so the whole simulation is deterministic and host-independent.
//!
//! Sub-linear speedup emerges for precisely the reasons the paper cites:
//! narrow anti-diagonals near the table's corners leave processors idle, and
//! every level pays a synchronization cost.

pub mod analysis;
pub mod executor;
pub mod ptas_sim;

pub use analysis::{metric_sweep, metrics, ParallelMetrics};
pub use executor::{simulate_trace, SimParams, SimReport};
pub use ptas_sim::{simulate_ptas, speedup_curve, PtasSimReport};
