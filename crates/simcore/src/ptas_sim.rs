//! End-to-end simulation of the parallel PTAS: run the real bisection once,
//! capture the DP trace of every probe, and replay the whole sequence on the
//! simulated machine.

use crate::executor::{simulate_trace, SimParams, SimReport};
use pcmax_core::{Instance, Result};
use pcmax_ptas::{dp_trace, rounded_problem, DpProblem, EpsilonParams, Ptas};

/// Aggregate simulation of a full PTAS run (all bisection probes).
#[derive(Debug, Clone)]
pub struct PtasSimReport {
    /// Per-probe reports in bisection order.
    pub probes: Vec<SimReport>,
    /// The parameters the simulation used.
    pub params: SimParams,
}

impl PtasSimReport {
    /// Total simulated parallel time across all probes.
    pub fn time(&self) -> u64 {
        self.probes.iter().map(|r| r.time).sum()
    }

    /// Total sequential DP work across all probes.
    pub fn sequential_time(&self) -> u64 {
        self.probes.iter().map(|r| r.sequential_time).sum()
    }

    /// End-to-end speedup over the sequential PTAS (DP-dominated, as the
    /// paper argues in Section III's closing paragraph).
    pub fn speedup(&self) -> f64 {
        let t = self.time();
        if t == 0 {
            return 1.0;
        }
        self.sequential_time() as f64 / t as f64
    }
}

/// Runs the (sequential) PTAS on `inst` to discover the probe sequence, then
/// simulates every probe's DP on a machine with `params`.
pub fn simulate_ptas(inst: &Instance, epsilon: f64, params: SimParams) -> Result<PtasSimReport> {
    let eps = EpsilonParams::new(epsilon)?;
    let driver = Ptas::new(epsilon)?;
    let out = driver.solve_detailed(inst)?;
    let mut probes = Vec::with_capacity(out.log.probes.len());
    for probe in &out.log.probes {
        let (problem, _, _) =
            rounded_problem(inst, &eps, probe.target, DpProblem::DEFAULT_MAX_ENTRIES);
        let trace = dp_trace(&problem)?;
        probes.push(simulate_trace(&trace, &params));
    }
    Ok(PtasSimReport { probes, params })
}

/// Convenience: the speedup curve over a list of processor counts.
pub fn speedup_curve(
    inst: &Instance,
    epsilon: f64,
    processor_counts: &[usize],
) -> Result<Vec<(usize, f64)>> {
    processor_counts
        .iter()
        .map(|&p| {
            let report = simulate_ptas(inst, epsilon, SimParams::with_processors(p))?;
            Ok((p, report.speedup()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::Instance;

    fn instance() -> Instance {
        // Enough long jobs for a non-trivial DP table at ε = 0.3.
        Instance::new(
            vec![
                19, 18, 17, 17, 16, 15, 14, 13, 12, 11, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2,
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn probe_count_matches_bisection_log() {
        let report = simulate_ptas(&instance(), 0.3, SimParams::with_processors(4)).unwrap();
        assert!(!report.probes.is_empty());
        let out = Ptas::new(0.3).unwrap().solve_detailed(&instance()).unwrap();
        assert_eq!(report.probes.len(), out.log.evaluations());
    }

    #[test]
    fn speedup_curve_is_roughly_monotone_and_bounded() {
        let curve = speedup_curve(&instance(), 0.3, &[1, 2, 4, 8, 16]).unwrap();
        for &(p, s) in &curve {
            assert!(s <= p as f64 + 1e-9, "superlinear speedup at P={p}: {s}");
            assert!(s > 0.0);
        }
        // With overheads the curve may flatten but should rise from 1 to 2.
        assert!(curve[1].1 >= curve[0].1 * 0.9);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate_ptas(&instance(), 0.3, SimParams::with_processors(8)).unwrap();
        let b = simulate_ptas(&instance(), 0.3, SimParams::with_processors(8)).unwrap();
        assert_eq!(a.time(), b.time());
        assert_eq!(a.sequential_time(), b.sequential_time());
    }

    #[test]
    fn zero_overhead_single_proc_equals_sequential() {
        let params = SimParams {
            processors: 1,
            barrier_overhead: 0,
            dispatch_overhead: 0,
        };
        let report = simulate_ptas(&instance(), 0.3, params).unwrap();
        assert_eq!(report.time(), report.sequential_time());
        assert!((report.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_simulates_trivially() {
        let inst = Instance::new(vec![], 2).unwrap();
        let report = simulate_ptas(&inst, 0.3, SimParams::with_processors(4)).unwrap();
        assert_eq!(report.probes.len(), 0);
        assert_eq!(report.speedup(), 1.0);
    }
}
