//! Parallel-performance analysis of simulated runs: efficiency, the
//! Karp–Flatt experimentally determined serial fraction, and per-level
//! utilization — the quantities one would use to explain *why* the paper's
//! speedup curves flatten past 8–16 cores.

use crate::executor::{simulate_trace, SimParams, SimReport};
use pcmax_ptas::DpTrace;

/// Derived metrics for one `(trace, P)` pair.
#[derive(Debug, Clone, Copy)]
pub struct ParallelMetrics {
    /// Processor count.
    pub processors: usize,
    /// Speedup over the sequential algorithm.
    pub speedup: f64,
    /// Efficiency `speedup / P` ∈ (0, 1].
    pub efficiency: f64,
    /// Karp–Flatt experimentally determined serial fraction
    /// `(1/s − 1/P) / (1 − 1/P)`; roughly constant in `P` for genuinely
    /// serial-bottlenecked codes, growing in `P` when overhead dominates.
    pub serial_fraction: f64,
    /// Mean processor utilization across levels: the fraction of busy time
    /// summed over processors vs `P ×` level span.
    pub utilization: f64,
}

/// Computes the metric set for `trace` on `P` processors.
pub fn metrics(trace: &DpTrace, params: &SimParams) -> ParallelMetrics {
    let p = params.processors.max(1);
    let report: SimReport = simulate_trace(trace, params);
    let speedup = report.speedup();
    let efficiency = speedup / p as f64;
    let serial_fraction = if p > 1 {
        (1.0 / speedup - 1.0 / p as f64) / (1.0 - 1.0 / p as f64)
    } else {
        0.0
    };
    // Busy work = total work + dispatch; span = simulated time × P.
    let busy = report.sequential_time
        + params.dispatch_overhead * trace.levels.iter().map(Vec::len).sum::<usize>() as u64;
    let span = report.time.saturating_mul(p as u64);
    let utilization = if span == 0 {
        1.0
    } else {
        busy as f64 / span as f64
    };
    ParallelMetrics {
        processors: p,
        speedup,
        efficiency,
        serial_fraction,
        utilization,
    }
}

/// The full metric sweep used by the `core_count_planner` example and the
/// harness diagnostics.
pub fn metric_sweep(trace: &DpTrace, processor_counts: &[usize]) -> Vec<ParallelMetrics> {
    processor_counts
        .iter()
        .map(|&p| metrics(trace, &SimParams::with_processors(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_ptas::DpTrace;

    fn wide_trace() -> DpTrace {
        DpTrace {
            levels: vec![vec![4; 32], vec![4; 48], vec![4; 32], vec![4; 8]],
        }
    }

    fn zero_overhead(p: usize) -> SimParams {
        SimParams {
            processors: p,
            barrier_overhead: 0,
            dispatch_overhead: 0,
        }
    }

    #[test]
    fn single_processor_metrics_are_trivial() {
        let m = metrics(&wide_trace(), &zero_overhead(1));
        assert!((m.speedup - 1.0).abs() < 1e-12);
        assert!((m.efficiency - 1.0).abs() < 1e-12);
        assert_eq!(m.serial_fraction, 0.0);
        assert!((m.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_decreases_with_processors() {
        let sweep = metric_sweep(&wide_trace(), &[1, 2, 4, 8, 16]);
        for w in sweep.windows(2) {
            assert!(w[1].efficiency <= w[0].efficiency + 1e-9);
        }
    }

    #[test]
    fn perfect_divisible_levels_have_unit_efficiency() {
        // 32/48/32/8 tasks of equal cost on 8 procs: every level divides
        // evenly -> speedup 8, efficiency 1 (zero overheads).
        let m = metrics(&wide_trace(), &zero_overhead(8));
        assert!((m.speedup - 8.0).abs() < 1e-9);
        assert!((m.efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serial_fraction_detects_imbalance() {
        // One monster task per level caps speedup at ~1: serial fraction ~1.
        let t = DpTrace {
            levels: vec![vec![1000, 1, 1], vec![1000, 1, 1]],
        };
        let m = metrics(&t, &zero_overhead(4));
        assert!(m.serial_fraction > 0.9, "{}", m.serial_fraction);
    }

    #[test]
    fn utilization_bounded_by_one() {
        for p in [1usize, 3, 7, 64] {
            let m = metrics(&wide_trace(), &SimParams::with_processors(p));
            assert!(m.utilization <= 1.0 + 1e-9);
            assert!(m.utilization > 0.0);
        }
    }
}
