//! Graham's list scheduling (LS).

use crate::assign_in_order;
use pcmax_core::{Result, SolveReport, SolveRequest, SolveStats, Solver};
use std::time::Instant;

/// List scheduling: walk the jobs in their given (arbitrary) order and place
/// each on a currently least-loaded machine.
///
/// Graham (1966) showed LS is a `(2 − 1/m)`-approximation, and Helmbold &
/// Mayr showed computing LS schedules is P-complete — which is why the paper
/// parallelizes the PTAS rather than the greedy algorithms.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ls;

impl Solver for Ls {
    fn solver_name(&self) -> &'static str {
        "LS"
    }

    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        req.check_cancelled()?;
        let start = Instant::now();
        let inst = req.instance;
        let assign_span = req.trace_span("assign", inst.jobs() as u64);
        let order: Vec<usize> = (0..inst.jobs()).collect();
        let schedule = assign_in_order(inst, &order)?;
        drop(assign_span);
        let stats = SolveStats {
            wall: start.elapsed(),
            ..SolveStats::default()
        };
        Ok(SolveReport::heuristic(schedule, inst, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::{lower_bound, Instance, Scheduler};

    #[test]
    fn schedules_all_jobs_validly() {
        let inst = Instance::new(vec![5, 3, 8, 2, 7, 1], 3).unwrap();
        let s = Ls.schedule(&inst).unwrap();
        s.validate(&inst).unwrap();
    }

    #[test]
    fn single_machine_is_total_time() {
        let inst = Instance::new(vec![5, 3, 8], 1).unwrap();
        assert_eq!(Ls.makespan(&inst).unwrap(), 16);
    }

    #[test]
    fn order_sensitivity_is_real() {
        // LS on increasing order can be worse than on decreasing order —
        // the classical motivation for LPT. Jobs {3,3,2,2,2} on 2 machines:
        // arbitrary (given) order {2,2,2,3,3} yields makespan 7, LPT order 6.
        let inst = Instance::new(vec![2, 2, 2, 3, 3], 2).unwrap();
        assert_eq!(Ls.makespan(&inst).unwrap(), 7);
    }

    #[test]
    fn respects_graham_bound() {
        let inst = Instance::new(vec![9, 7, 5, 4, 4, 3, 2, 2, 1], 3).unwrap();
        let ms = Ls.makespan(&inst).unwrap();
        let lb = lower_bound(&inst);
        let m = inst.machines() as f64;
        assert!((ms as f64) <= (2.0 - 1.0 / m) * lb as f64);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 2).unwrap();
        assert_eq!(Ls.makespan(&inst).unwrap(), 0);
    }

    #[test]
    fn report_has_no_certificate() {
        let inst = Instance::new(vec![5, 3, 8], 2).unwrap();
        let report = Ls.solve(&SolveRequest::new(&inst)).unwrap();
        assert_eq!(report.makespan, report.schedule.makespan(&inst));
        assert_eq!(report.certified_target, None);
        assert!(!report.proven_optimal);
    }
}
