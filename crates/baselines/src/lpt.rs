//! Longest processing time first (LPT).

use crate::assign_in_order;
use pcmax_core::{Result, SolveReport, SolveRequest, SolveStats, Solver};
use std::time::Instant;

/// LPT: list scheduling on the jobs sorted by non-increasing processing time.
///
/// Graham (1969) proved the ratio `4/3 − 1/(3m)`; the paper uses LPT both as
/// a baseline and inside the PTAS to place the short jobs (Lines 41–51 of
/// Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Lpt;

impl Solver for Lpt {
    fn solver_name(&self) -> &'static str {
        "LPT"
    }

    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        req.check_cancelled()?;
        let start = Instant::now();
        let inst = req.instance;
        let assign_span = req.trace_span("assign", inst.jobs() as u64);
        let schedule = assign_in_order(inst, &inst.jobs_by_decreasing_time())?;
        drop(assign_span);
        let stats = SolveStats {
            wall: start.elapsed(),
            ..SolveStats::default()
        };
        Ok(SolveReport::heuristic(schedule, inst, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::{lower_bound, Instance, Scheduler};

    #[test]
    fn beats_ls_on_a_separating_example() {
        // In the given order LS ends at 4 (the long job lands on a loaded
        // machine); LPT places the long job first and reaches the optimum 3.
        let inst = Instance::new(vec![1, 1, 1, 3], 2).unwrap();
        assert_eq!(crate::Ls.makespan(&inst).unwrap(), 4);
        assert_eq!(Lpt.makespan(&inst).unwrap(), 3);
    }

    #[test]
    fn achieves_exact_worst_case_ratio_on_grahams_instance() {
        // Jobs {2m−1, 2m−1, ..., m+1, m+1, m, m, m} on m machines: LPT gives
        // 4m−1, the optimum is 3m.
        for m in 2..7usize {
            let inst = pcmax_core::Instance::new(
                {
                    let mut ts = Vec::new();
                    for v in (m + 1)..=(2 * m - 1) {
                        ts.push(v as u64);
                        ts.push(v as u64);
                    }
                    ts.extend_from_slice(&[m as u64; 3]);
                    ts
                },
                m,
            )
            .unwrap();
            assert_eq!(Lpt.makespan(&inst).unwrap(), (4 * m - 1) as u64);
        }
    }

    #[test]
    fn perfectly_packs_equal_jobs() {
        let inst = Instance::new(vec![5; 12], 4).unwrap();
        assert_eq!(Lpt.makespan(&inst).unwrap(), 15);
    }

    #[test]
    fn respects_four_thirds_bound() {
        let inst = Instance::new(vec![7, 6, 6, 5, 4, 4, 3, 2, 1, 1], 3).unwrap();
        let ms = Lpt.makespan(&inst).unwrap() as f64;
        let lb = lower_bound(&inst) as f64;
        let m = inst.machines() as f64;
        assert!(ms <= (4.0 / 3.0 - 1.0 / (3.0 * m)) * lb + 1e-9);
    }

    #[test]
    fn never_worse_than_ls_on_these_instances() {
        use crate::Ls;
        for times in [
            vec![9u64, 8, 7, 1, 1, 1, 1],
            vec![4, 4, 4, 4, 4],
            vec![10, 1, 10, 1, 10, 1],
        ] {
            let inst = Instance::new(times, 3).unwrap();
            assert!(Lpt.makespan(&inst).unwrap() <= Ls.makespan(&inst).unwrap());
        }
    }
}
