//! MULTIFIT (Coffman, Garey & Johnson 1978).
//!
//! MULTIFIT treats `P||Cmax` as the dual of bin packing: bisect on a machine
//! capacity `C` and test whether first-fit-decreasing (FFD) packs all jobs
//! into `m` bins of size `C`. After `k` bisection steps the makespan is within
//! `1.22 + 2^{-k}` of optimal (the tight constant is 13/11).

use pcmax_core::{
    Error, Instance, Result, Schedule, ScheduleBuilder, SolveReport, SolveRequest, SolveStats,
    Solver, Time,
};
use std::time::Instant;

/// MULTIFIT with a configurable number of bisection iterations (the paper's
/// `k`; 7 is the customary default giving `1.22 + 2^{-7} ≈ 1.228`).
#[derive(Debug, Clone, Copy)]
pub struct Multifit {
    /// Number of bisection iterations on the capacity.
    pub iterations: u32,
}

impl Default for Multifit {
    fn default() -> Self {
        Self { iterations: 7 }
    }
}

impl Multifit {
    /// MULTIFIT with `iterations` bisection steps.
    pub fn new(iterations: u32) -> Self {
        Self { iterations }
    }
}

/// First-fit-decreasing packing of `order` (already sorted by decreasing
/// time) into `m` bins of capacity `cap`. Returns the partial builder if all
/// jobs fit, `None` otherwise.
fn ffd_fits<'a>(inst: &'a Instance, order: &[usize], cap: Time) -> Option<ScheduleBuilder<'a>> {
    let mut builder = ScheduleBuilder::new(inst);
    for &j in order {
        let t = inst.time(j);
        let mut placed = false;
        for machine in 0..inst.machines() {
            if builder.load(machine) + t <= cap {
                builder.assign(j, machine);
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(builder)
}

impl Solver for Multifit {
    fn solver_name(&self) -> &'static str {
        "MULTIFIT"
    }

    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        req.check_cancelled()?;
        let start = Instant::now();
        let inst = req.instance;
        let mut stats = SolveStats::default();
        if inst.jobs() == 0 {
            let schedule = Schedule::from_assignment(vec![], inst.machines())?;
            stats.wall = start.elapsed();
            return Ok(SolveReport::heuristic(schedule, inst, stats));
        }
        let search_span = req.trace_span("multifit-search", self.iterations as u64);
        let order = inst.jobs_by_decreasing_time();
        // Classic capacity bracket: FFD provably fits at CU and the optimum
        // cannot beat CL.
        let mean = inst.total_time() as f64 / inst.machines() as f64;
        let max = inst.max_time() as f64;
        let mut lo = mean.max(max).floor() as Time;
        let mut hi = (2.0 * mean).max(max).ceil() as Time;
        let mut best: Option<Schedule> = None;
        for _ in 0..self.iterations {
            if lo >= hi {
                break;
            }
            stats.bisection_probes += 1;
            let cap = (lo + hi) / 2;
            let _probe_span = req.trace_span("probe", cap);
            match ffd_fits(inst, &order, cap) {
                Some(builder) => {
                    best = Some(builder.build()?);
                    hi = cap;
                }
                None => lo = cap + 1,
            }
        }
        let schedule = match best {
            Some(s) => s,
            // Bisection never found a fitting capacity within the iteration
            // budget; the upper end of the bracket always fits.
            None => {
                stats.bisection_probes += 1;
                let _probe_span = req.trace_span("probe", hi);
                let builder = ffd_fits(inst, &order, hi).ok_or_else(|| Error::InvalidWitness {
                    reason: format!("FFD failed at the always-feasible upper capacity {hi}"),
                })?;
                builder.build()?
            }
        };
        drop(search_span);
        stats.wall = start.elapsed();
        Ok(SolveReport::heuristic(schedule, inst, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::{lower_bound, Instance, Scheduler};

    #[test]
    fn packs_equal_jobs_perfectly() {
        let inst = Instance::new(vec![5; 12], 4).unwrap();
        assert_eq!(Multifit::default().makespan(&inst).unwrap(), 15);
    }

    #[test]
    fn valid_schedule_on_mixed_jobs() {
        let inst = Instance::new(vec![9, 7, 6, 5, 4, 3, 2, 1], 3).unwrap();
        let s = Multifit::default().schedule(&inst).unwrap();
        s.validate(&inst).unwrap();
        assert!(s.makespan(&inst) >= lower_bound(&inst));
    }

    #[test]
    fn beats_lpt_on_the_known_separating_instance() {
        // MULTIFIT's signature advantage: FFD considers bins in index order
        // so it can pack instances LPT spreads badly. Known example where
        // MULTIFIT finds 60 and LPT 65 on 3 machines.
        let inst = Instance::new(vec![30, 30, 22, 22, 20, 20, 18, 18], 3).unwrap();
        let mf = Multifit::default().makespan(&inst).unwrap();
        let lpt = crate::Lpt.makespan(&inst).unwrap();
        assert!(mf <= lpt, "MULTIFIT {mf} vs LPT {lpt}");
    }

    #[test]
    fn more_iterations_never_hurt() {
        let inst = Instance::new(vec![13, 11, 9, 8, 8, 7, 5, 4, 2, 2], 3).unwrap();
        let coarse = Multifit::new(2).makespan(&inst).unwrap();
        let fine = Multifit::new(12).makespan(&inst).unwrap();
        assert!(fine <= coarse);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 4).unwrap();
        assert_eq!(Multifit::default().makespan(&inst).unwrap(), 0);
    }

    #[test]
    fn respects_122_bound_against_lower_bound() {
        let inst = Instance::new(vec![17, 16, 14, 12, 11, 10, 9, 7, 6, 5, 3, 2], 4).unwrap();
        let ms = Multifit::default().makespan(&inst).unwrap() as f64;
        let lb = lower_bound(&inst) as f64;
        assert!(ms <= 1.23 * lb);
    }

    #[test]
    fn stats_count_capacity_probes() {
        let inst = Instance::new(vec![13, 11, 9, 8, 8, 7, 5, 4, 2, 2], 3).unwrap();
        let report = Multifit::default()
            .solve(&SolveRequest::new(&inst))
            .unwrap();
        assert!(report.stats.bisection_probes >= 1);
        assert_eq!(report.certified_target, None);
    }
}
