//! Baselines for uniform machines (`Q||Cmax`).
//!
//! The identical-machine greedy rule "place on a least-loaded machine"
//! generalizes to "place on the machine that finishes the job earliest":
//! argmin `(load_i + t) / s_i`. [`SpeedLpt`] applies that rule to the jobs in
//! LPT order; with all speeds 1 it degenerates to exactly [`crate::Lpt`].

use pcmax_core::{Result, ScheduleBuilder, SolveReport, SolveRequest, SolveStats, Solver, Time};
use std::time::Instant;

/// Index of the machine that finishes a job of size `t` earliest under the
/// current `loads`: argmin `(load_i + t) / s_i`, compared exactly by
/// cross-multiplication in `u128` so no rounding is involved. Ties break to
/// the lowest machine index, matching the identical-machine rule. Public so
/// the `Q||Cmax` PTAS can place its short jobs with the same speed-aware
/// greedy its baselines use.
pub fn earliest_finish(loads: &[Time], speeds: &[Time], t: Time) -> usize {
    debug_assert_eq!(loads.len(), speeds.len());
    let mut best = 0;
    for i in 1..loads.len() {
        // (loads[i] + t) / speeds[i] < (loads[best] + t) / speeds[best]
        let lhs = (loads[i] as u128 + t as u128) * speeds[best] as u128;
        let rhs = (loads[best] as u128 + t as u128) * speeds[i] as u128;
        if lhs < rhs {
            best = i;
        }
    }
    best
}

/// LPT generalized to uniform machines: walk the jobs in non-increasing time
/// order and place each on the machine that would finish it earliest.
///
/// For `Q||Cmax` this greedy is a classic 2-approximation (Gonzalez, Ibarra &
/// Sahni give 2 − 2/(m+1) for the LPT order); with all speeds 1 it produces
/// bit-identical schedules to [`crate::Lpt`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SpeedLpt;

impl Solver for SpeedLpt {
    fn solver_name(&self) -> &'static str {
        "LPT-Q"
    }

    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        req.check_cancelled()?;
        let start = Instant::now();
        let inst = req.instance;
        let assign_span = req.trace_span("assign", inst.jobs() as u64);
        let speeds = inst.speeds();
        let mut builder = ScheduleBuilder::new(inst);
        for &j in &inst.jobs_by_decreasing_time() {
            let mach = earliest_finish(builder.loads(), &speeds, inst.time(j));
            builder.assign(j, mach);
        }
        let schedule = builder.build()?;
        drop(assign_span);
        let stats = SolveStats {
            wall: start.elapsed(),
            ..SolveStats::default()
        };
        Ok(SolveReport::heuristic(schedule, inst, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::{lower_bound, Instance, Scheduler};

    #[test]
    fn earliest_finish_prefers_fast_machine() {
        // loads (0, 0), speeds (1, 3): job of 6 finishes at 6 vs 2.
        assert_eq!(earliest_finish(&[0, 0], &[1, 3], 6), 1);
        // Ties break to the lowest index: speeds (2, 2), equal loads.
        assert_eq!(earliest_finish(&[4, 4], &[2, 2], 5), 0);
    }

    #[test]
    fn matches_lpt_on_identical_machines() {
        let inst = Instance::new(vec![9, 7, 6, 5, 4, 3, 2, 1], 3).unwrap();
        let q = SpeedLpt.schedule(&inst).unwrap();
        let p = crate::Lpt.schedule(&inst).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn long_jobs_go_to_the_fast_machine() {
        // One 4x machine and one 1x machine. LPT-Q should pile the long work
        // on the fast machine: completion max(⌈18/4⌉, 2) = 5 beats any split
        // that burdens the slow machine with a long job.
        let inst = Instance::with_speeds(vec![10, 8, 2], vec![4, 1]).unwrap();
        let s = SpeedLpt.schedule(&inst).unwrap();
        assert_eq!(s.machine_of(0), 0);
        assert_eq!(s.machine_of(1), 0);
        assert!(s.makespan(&inst) <= 5);
    }

    #[test]
    fn respects_double_lower_bound() {
        let inst =
            Instance::with_speeds(vec![17, 13, 11, 9, 8, 7, 5, 4, 2], vec![3, 2, 1]).unwrap();
        let ms = SpeedLpt.makespan(&inst).unwrap();
        let lb = lower_bound(&inst);
        assert!(ms <= 2 * lb, "LPT-Q {ms} vs lower bound {lb}");
    }

    #[test]
    fn validates_and_covers_all_jobs() {
        let inst = Instance::with_speeds(vec![5, 3, 8, 2, 7, 1], vec![2, 1, 1]).unwrap();
        let s = SpeedLpt.schedule(&inst).unwrap();
        s.validate(&inst).unwrap();
    }
}
