//! Online list scheduling over streaming arrivals.
//!
//! In the online model jobs arrive one at a time and each must be placed
//! irrevocably before the next is revealed — no sorting, no lookahead.
//! [`OnlineScheduler`] is the streaming core (it never sees an [`Instance`],
//! only a sequence of `arrive` calls); [`LsOnline`] adapts it to the batch
//! [`Solver`] interface by replaying an instance's jobs in index order, which
//! makes the online/offline gap directly measurable with `pcmax compare`.
//!
//! Graham's bound applies verbatim: greedy placement is `(2 − 1/m)`-
//! competitive on identical machines, and the `m(m−1)` unit jobs + one job of
//! size `m` adversary (see `pcmax-workloads`) shows the bound is tight.

use crate::uniform::earliest_finish;
use pcmax_core::{
    Error, MachineId, Result, Schedule, SolveReport, SolveRequest, SolveStats, Solver, Time,
};
use std::time::Instant;

/// Streaming greedy scheduler: feed arrivals one at a time with
/// [`arrive`](OnlineScheduler::arrive); each is committed to the machine that
/// would finish it earliest (`argmin (load_i + t)/s_i`, lowest index on
/// ties — exactly Graham's LS rule when all speeds are 1).
///
/// ```
/// use pcmax_baselines::OnlineScheduler;
///
/// let mut online = OnlineScheduler::new(2).unwrap();
/// assert_eq!(online.arrive(3), 0);
/// assert_eq!(online.arrive(5), 1);
/// assert_eq!(online.arrive(2), 0); // load 3 < 5
/// assert_eq!(online.makespan(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineScheduler {
    speeds: Vec<Time>,
    loads: Vec<Time>,
    assignment: Vec<MachineId>,
}

impl OnlineScheduler {
    /// An online scheduler over `machines` identical machines.
    pub fn new(machines: usize) -> Result<Self> {
        Self::with_speeds(vec![1; machines])
    }

    /// An online scheduler over uniform machines with the given speeds.
    pub fn with_speeds(speeds: Vec<Time>) -> Result<Self> {
        if speeds.is_empty() {
            return Err(Error::NoMachines);
        }
        if let Some(machine) = speeds.iter().position(|&s| s == 0) {
            return Err(Error::BadModel(format!(
                "machine {machine} has zero speed; speeds must be >= 1"
            )));
        }
        let loads = vec![0; speeds.len()];
        Ok(Self {
            speeds,
            loads,
            assignment: Vec::new(),
        })
    }

    /// Irrevocably places the newly arrived job of size `t` and returns the
    /// chosen machine.
    pub fn arrive(&mut self, t: Time) -> MachineId {
        let mach = earliest_finish(&self.loads, &self.speeds, t);
        self.loads[mach] += t;
        self.assignment.push(mach);
        mach
    }

    /// Number of machines.
    #[inline]
    pub fn machines(&self) -> usize {
        self.speeds.len()
    }

    /// Number of jobs placed so far.
    #[inline]
    pub fn jobs(&self) -> usize {
        self.assignment.len()
    }

    /// Current machine loads (raw work, not divided by speed).
    #[inline]
    pub fn loads(&self) -> &[Time] {
        &self.loads
    }

    /// Machine chosen for each arrival, in arrival order.
    #[inline]
    pub fn assignment(&self) -> &[MachineId] {
        &self.assignment
    }

    /// Makespan of the placements so far: `max_i ⌈load_i / s_i⌉`.
    pub fn makespan(&self) -> Time {
        self.loads
            .iter()
            .zip(&self.speeds)
            .map(|(&load, &s)| load.div_ceil(s))
            .max()
            .unwrap_or(0)
    }

    /// Freezes the stream into a [`Schedule`] (jobs numbered in arrival
    /// order).
    pub fn into_schedule(self) -> Result<Schedule> {
        let machines = self.speeds.len();
        Schedule::from_assignment(self.assignment, machines)
    }
}

/// Batch adapter: replays an instance's jobs in index order through an
/// [`OnlineScheduler`], modelling a stream that reveals job `j` at step `j`.
///
/// On identical machines this is bit-identical to [`crate::Ls`]; it also
/// accepts uniform instances, where the greedy rule is speed-aware.
#[derive(Debug, Clone, Copy, Default)]
pub struct LsOnline;

impl Solver for LsOnline {
    fn solver_name(&self) -> &'static str {
        "LS-online"
    }

    fn solve(&self, req: &SolveRequest<'_>) -> Result<SolveReport> {
        req.check_cancelled()?;
        let start = Instant::now();
        let inst = req.instance;
        let stream_span = req.trace_span("stream", inst.jobs() as u64);
        let mut online = OnlineScheduler::with_speeds(inst.speeds())?;
        for j in 0..inst.jobs() {
            online.arrive(inst.time(j));
        }
        let schedule = online.into_schedule()?;
        drop(stream_span);
        let stats = SolveStats {
            wall: start.elapsed(),
            ..SolveStats::default()
        };
        Ok(SolveReport::heuristic(schedule, inst, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::{Instance, Scheduler};

    #[test]
    fn matches_offline_ls_on_identical_machines() {
        let inst = Instance::new(vec![5, 3, 8, 2, 7, 1, 4], 3).unwrap();
        let online = LsOnline.schedule(&inst).unwrap();
        let offline = crate::Ls.schedule(&inst).unwrap();
        assert_eq!(online, offline);
    }

    #[test]
    fn graham_adversary_is_tight() {
        // m(m−1) unit jobs then one job of size m: greedy balances the units
        // to height m−1 everywhere, then the big job lands on top, giving
        // 2m−1 against the optimum m — the tight (2 − 1/m) instance.
        let m = 4u64;
        let mut times = vec![1; (m * (m - 1)) as usize];
        times.push(m);
        let inst = Instance::new(times, m as usize).unwrap();
        assert_eq!(LsOnline.makespan(&inst).unwrap(), 2 * m - 1);
    }

    #[test]
    fn stream_tracks_loads_and_makespan() {
        let mut online = OnlineScheduler::new(2).unwrap();
        for t in [4, 4, 2] {
            online.arrive(t);
        }
        assert_eq!(online.loads(), &[6, 4]);
        assert_eq!(online.makespan(), 6);
        assert_eq!(online.jobs(), 3);
        let s = online.into_schedule().unwrap();
        assert_eq!(s.assignment(), &[0, 1, 0]);
    }

    #[test]
    fn speed_aware_stream_prefers_the_fast_machine() {
        let mut online = OnlineScheduler::with_speeds(vec![1, 4]).unwrap();
        assert_eq!(online.arrive(8), 1, "8/4 = 2 beats 8/1 = 8");
        assert_eq!(online.arrive(2), 0, "2/1 = 2 beats (8+2)/4 = 2.5");
        assert_eq!(online.arrive(6), 1, "(8+6)/4 = 3.5 beats (2+6)/1 = 8");
        assert_eq!(online.makespan(), 4, "⌈14/4⌉ = 4 on the fast machine");
    }

    #[test]
    fn rejects_degenerate_machine_sets() {
        assert!(OnlineScheduler::new(0).is_err());
        assert!(OnlineScheduler::with_speeds(vec![1, 0]).is_err());
    }

    #[test]
    fn uniform_instance_solves_end_to_end() {
        let inst = Instance::with_speeds(vec![6, 5, 4, 3, 2, 1], vec![3, 1]).unwrap();
        let report = LsOnline.solve(&SolveRequest::new(&inst)).unwrap();
        report.schedule.validate(&inst).unwrap();
        assert_eq!(report.makespan, report.schedule.makespan(&inst));
        assert_eq!(report.certified_target, None);
    }
}
