//! Classical approximation algorithms for `P||Cmax`, used as baselines in the
//! paper's evaluation:
//!
//! * [`Ls`] — Graham's list scheduling (2-approximation; `2 − 1/m` exactly),
//! * [`Lpt`] — longest processing time first (4/3-approximation;
//!   `4/3 − 1/(3m)` exactly),
//! * [`Multifit`] — Coffman–Garey–Johnson MULTIFIT, a bin-packing-based
//!   scheme with ratio `1.22 + 2^{-k}` after `k` bisection steps,
//!
//! plus the scenario extensions the chassis refactor opened:
//!
//! * [`SpeedLpt`] — LPT generalized to uniform machines (`Q||Cmax`),
//! * [`LsOnline`] / [`OnlineScheduler`] — Graham list scheduling against a
//!   stream of arrivals (one job at a time, no lookahead).
//!
//! All run in `O(n log n + n·m)` or better and are deterministic.

pub mod lpt;
pub mod ls;
pub mod multifit;
pub mod online;
pub mod uniform;

pub use lpt::Lpt;
pub use ls::Ls;
pub use multifit::Multifit;
pub use online::{LsOnline, OnlineScheduler};
pub use uniform::SpeedLpt;

use pcmax_core::{Instance, MachineId, Result, Schedule, ScheduleBuilder, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Assigns jobs in the given order, each to a currently least-loaded machine
/// (lowest index on ties), using a binary heap over `(load, machine)`.
///
/// This is the core of both LS (arbitrary order) and LPT (decreasing order)
/// and of the short-job completion step of the PTAS (Lines 41–51 of
/// Algorithm 1), so it lives here and is reused by `pcmax-ptas`. Errors if
/// `order` does not cover every job of `inst` exactly once.
pub fn assign_in_order(inst: &Instance, order: &[usize]) -> Result<Schedule> {
    let mut builder = ScheduleBuilder::new(inst);
    greedy_extend(inst, &mut builder, order);
    builder.build()
}

/// Extends a partially built schedule by greedily placing `order`'s jobs on
/// least-loaded machines. Ties break to the lowest machine index, matching
/// the paper's pseudocode (Lines 42–50 scan machines in index order).
pub fn greedy_extend(inst: &Instance, builder: &mut ScheduleBuilder<'_>, order: &[usize]) {
    // (Reverse(load), Reverse(index)) makes the max-heap pop the minimum
    // load with lowest-index tie-break. `Instance` guarantees `m ≥ 1`, so
    // the heap is never empty; the `while let` makes that locally evident.
    let mut heap: BinaryHeap<(Reverse<Time>, Reverse<MachineId>)> = (0..inst.machines())
        .map(|i| (Reverse(builder.load(i)), Reverse(i)))
        .collect();
    let mut jobs = order.iter();
    while let (Some(&j), Some((Reverse(load), Reverse(mach)))) = (jobs.next(), heap.pop()) {
        builder.assign(j, mach);
        heap.push((Reverse(load + inst.time(j)), Reverse(mach)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmax_core::Instance;

    #[test]
    fn assign_in_order_balances_two_machines() {
        let inst = Instance::new(vec![4, 3, 2, 1], 2).unwrap();
        let s = assign_in_order(&inst, &[0, 1, 2, 3]).unwrap();
        // 4 -> m0, 3 -> m1, 2 -> m1 (load 3 < 4)? No: after 3 on m1 loads are
        // (4,3); 2 goes to m1 (5); 1 goes to m0 (5).
        assert_eq!(s.loads(&inst), vec![5, 5]);
    }

    #[test]
    fn ties_break_to_lowest_machine_index() {
        let inst = Instance::new(vec![1, 1, 1], 3).unwrap();
        let s = assign_in_order(&inst, &[0, 1, 2]).unwrap();
        assert_eq!(s.assignment(), &[0, 1, 2]);
    }

    #[test]
    fn greedy_extend_respects_existing_loads() {
        let inst = Instance::new(vec![10, 1, 1], 2).unwrap();
        let mut b = pcmax_core::schedule::ScheduleBuilder::new(&inst);
        b.assign(0, 0); // machine 0 pre-loaded with 10
        greedy_extend(&inst, &mut b, &[1, 2]);
        let s = b.build().unwrap();
        // Both small jobs avoid the loaded machine.
        assert_eq!(s.loads(&inst), vec![10, 2]);
    }
}
