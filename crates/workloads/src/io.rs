//! Plain-text instance formats, so the library interoperates with the
//! scheduling-literature conventions and spreadsheet exports:
//!
//! * **text format** — first line `m n`, second line the `n` processing
//!   times, whitespace-separated (the layout used by classic `P||Cmax`
//!   benchmark sets);
//! * **CSV** — a header line `time` (or `job,time`) then one row per job,
//!   with the machine count passed separately.

use pcmax_core::{Error, Instance, Result};

/// Parses the `m n \n t1 … tn` text format. Tolerates extra whitespace and
/// newlines between numbers; everything after the first `2 + n` numbers is
/// rejected as garbage.
pub fn parse_text(input: &str) -> Result<Instance> {
    let mut numbers = input.split_whitespace().map(|tok| {
        tok.parse::<u64>()
            .map_err(|e| Error::BadModel(format!("bad number {tok:?}: {e}")))
    });
    let m = numbers
        .next()
        .ok_or_else(|| Error::BadModel("empty instance file".into()))?? as usize;
    let n = numbers
        .next()
        .ok_or_else(|| Error::BadModel("missing job count".into()))?? as usize;
    let times: Vec<u64> = numbers.by_ref().take(n).collect::<Result<_>>()?;
    if times.len() != n {
        return Err(Error::BadModel(format!(
            "expected {n} processing times, found {}",
            times.len()
        )));
    }
    if let Some(extra) = numbers.next() {
        return Err(Error::BadModel(format!(
            "trailing data after the {n} processing times: {:?}",
            extra?
        )));
    }
    Instance::new(times, m)
}

/// Serializes an instance in the text format.
pub fn to_text(inst: &Instance) -> String {
    let times: Vec<String> = inst.times().iter().map(|t| t.to_string()).collect();
    format!("{} {}\n{}\n", inst.machines(), inst.jobs(), times.join(" "))
}

/// Parses CSV with either a single `time` column or `job,time` columns
/// (the `job` column is ignored — ids are positional). A header row is
/// required. `machines` is supplied by the caller.
pub fn parse_csv(input: &str, machines: usize) -> Result<Instance> {
    let mut lines = input.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| Error::BadModel("empty CSV".into()))?;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    let time_col = cols
        .iter()
        .position(|&c| c.eq_ignore_ascii_case("time"))
        .ok_or_else(|| Error::BadModel("CSV header must contain a 'time' column".into()))?;
    let mut times = Vec::new();
    for (row, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let field = fields
            .get(time_col)
            .ok_or_else(|| Error::BadModel(format!("row {}: missing time column", row + 2)))?;
        times.push(
            field.parse::<u64>().map_err(|e| {
                Error::BadModel(format!("row {}: bad time {field:?}: {e}", row + 2))
            })?,
        );
    }
    Instance::new(times, machines)
}

/// Serializes an instance as `job,time` CSV.
pub fn to_csv(inst: &Instance) -> String {
    let mut out = String::from("job,time\n");
    for (j, &t) in inst.times().iter().enumerate() {
        out.push_str(&format!("{j},{t}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let inst = Instance::new(vec![5, 3, 8, 1], 2).unwrap();
        let text = to_text(&inst);
        assert_eq!(text, "2 4\n5 3 8 1\n");
        assert_eq!(parse_text(&text).unwrap(), inst);
    }

    #[test]
    fn text_tolerates_odd_whitespace() {
        let inst = parse_text("  3\n5\n 1 2 3\n4 5 ").unwrap();
        assert_eq!(inst.machines(), 3);
        assert_eq!(inst.times(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn text_rejects_short_and_long_inputs() {
        assert!(parse_text("2 3\n1 2").is_err());
        assert!(parse_text("2 2\n1 2 3").is_err());
        assert!(parse_text("").is_err());
        assert!(parse_text("2 1\nxyz").is_err());
    }

    #[test]
    fn text_rejects_zero_time_via_instance_validation() {
        assert!(parse_text("2 2\n3 0").is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let inst = Instance::new(vec![7, 2, 9], 4).unwrap();
        let csv = to_csv(&inst);
        assert_eq!(parse_csv(&csv, 4).unwrap(), inst);
    }

    #[test]
    fn csv_single_column_variant() {
        let inst = parse_csv("time\n10\n20\n30\n", 2).unwrap();
        assert_eq!(inst.times(), &[10, 20, 30]);
    }

    #[test]
    fn csv_finds_time_column_case_insensitively() {
        let inst = parse_csv("Job,Time\n0,4\n1,6\n", 2).unwrap();
        assert_eq!(inst.times(), &[4, 6]);
    }

    #[test]
    fn csv_errors_carry_row_numbers() {
        let err = parse_csv("time\n5\nbogus\n", 2).unwrap_err();
        assert!(err.to_string().contains("row 3"), "{err}");
        assert!(parse_csv("job\n1\n", 2).is_err(), "no time column");
        assert!(parse_csv("", 2).is_err());
    }
}
