//! Arrival-order workloads for the online scheduling experiments.
//!
//! The online solvers consume jobs in index order, so for these generators
//! the job index *is* the arrival time: [`ls_adversarial`] builds the
//! deterministic stream on which greedy placement is exactly
//! `(2 − 1/m)`-competitive, and [`shuffled_arrivals`] turns any seeded
//! family into a random arrival stream by applying an independent
//! Fisher–Yates shuffle to the job order.

use crate::generator::mix;
use crate::Family;
use pcmax_core::rng::SplitMix64;
use pcmax_core::{Instance, Result};

/// Graham's tight adversary for online list scheduling: `m(m−1)` unit jobs
/// arrive first and greedy balances them to height `m−1` on every machine,
/// then a single job of size `m` lands on top for makespan `2m−1` — while the
/// optimum packs the units on `m−1` machines and gives the big job its own,
/// for makespan `m`. The competitive ratio is exactly `2 − 1/m`.
pub fn ls_adversarial(m: usize) -> Instance {
    match try_ls_adversarial(m) {
        Ok(inst) => inst,
        // Unit times and m >= 1 make this unreachable for valid m.
        Err(err) => panic!("LS adversary for m={m} is ill-formed: {err}"),
    }
}

/// Fallible variant of [`ls_adversarial`] (errors on `m = 0`).
pub fn try_ls_adversarial(m: usize) -> Result<Instance> {
    let mut times = vec![1u64; m.saturating_mul(m.saturating_sub(1))];
    times.push(m as u64);
    Instance::new(times, m)
}

/// A seeded family instance whose jobs are re-ordered by an independent
/// Fisher–Yates shuffle: the multiset of sizes equals `generate(family,
/// seed)`'s exactly, only the arrival order differs. Offline solvers are
/// order-insensitive, so comparing them against `ls-online` on this stream
/// isolates the price of arrival order.
pub fn shuffled_arrivals(family: Family, seed: u64) -> Instance {
    match try_shuffled_arrivals(family, seed) {
        Ok(inst) => inst,
        Err(err) => panic!("family {family} cannot be generated: {err}"),
    }
}

/// Fallible variant of [`shuffled_arrivals`].
pub fn try_shuffled_arrivals(family: Family, seed: u64) -> Result<Instance> {
    let base = crate::generator::try_generate(family, seed)?;
    let mut times = base.times().to_vec();
    // Independent stream: re-finalize the family seed with a distinct key so
    // the shuffle never correlates with the sampling stream.
    let mut rng = SplitMix64::seed_from_u64(
        mix(family, seed).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x9E37_79B9_7F4A_7C15,
    );
    for i in (1..times.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        times.swap(i, j);
    }
    Instance::new(times, family.machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Distribution};

    #[test]
    fn adversary_shape_and_total() {
        let inst = ls_adversarial(4);
        assert_eq!(inst.jobs(), 13);
        assert_eq!(inst.machines(), 4);
        assert_eq!(inst.total_time(), 16, "m(m−1) units + one m = m²");
        assert_eq!(inst.time(12), 4, "the big job arrives last");
    }

    #[test]
    fn adversary_optimum_is_m() {
        // m−1 machines hold m units each, the last holds the size-m job.
        let m = 5;
        let inst = ls_adversarial(m);
        assert_eq!(pcmax_core::lower_bound(&inst), m as u64);
    }

    #[test]
    fn single_machine_adversary_degenerates() {
        let inst = ls_adversarial(1);
        assert_eq!(inst.jobs(), 1);
        assert_eq!(inst.total_time(), 1);
    }

    #[test]
    fn shuffle_preserves_the_multiset() {
        let family = Family::new(3, 40, Distribution::U1To100);
        let shuffled = shuffled_arrivals(family, 5);
        let mut a = shuffled.times().to_vec();
        let mut b = generate(family, 5).times().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_actually_reorders() {
        let family = Family::new(3, 40, Distribution::U1To100);
        assert_ne!(
            shuffled_arrivals(family, 5).times(),
            generate(family, 5).times()
        );
    }

    #[test]
    fn shuffle_is_deterministic() {
        let family = Family::new(3, 40, Distribution::U1To10);
        assert_eq!(shuffled_arrivals(family, 8), shuffled_arrivals(family, 8));
    }
}
