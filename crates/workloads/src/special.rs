//! Special instance constructions used in the best/worst-case
//! approximation-ratio analysis (Fig. 5 and Tables II/III of the paper).

use crate::{generate, Distribution, Family};
use pcmax_core::Instance;

/// The near-worst-case family for LPT identified by Graham: `n = 2m + 1` jobs
/// with processing times from `U(m, 2m−1)`. On these instances LPT's ratio
/// approaches its 4/3 bound while the PTAS stays near optimal, which is what
/// makes them the paper's "best case" for the parallel algorithm.
pub fn lpt_adversarial(m: usize, seed: u64) -> Instance {
    let fam = Family::new(m, 2 * m + 1, Distribution::UMTo2MMinus1);
    generate(fam, seed)
}

/// The deterministic textbook LPT worst case: jobs
/// `{2m−1, 2m−1, 2m−2, 2m−2, …, m+1, m+1, m, m, m}` on `m` machines.
/// LPT yields makespan `4m−1` while the optimum is `3m`, i.e. the ratio is
/// exactly `4/3 − 1/(3m)`.
pub fn lpt_worst_case_deterministic(m: usize) -> Instance {
    assert!(m >= 2, "the construction needs at least two machines");
    let mut times = Vec::with_capacity(2 * m + 1);
    for v in (m + 1)..=(2 * m - 1) {
        times.push(v as u64);
        times.push(v as u64);
    }
    times.extend_from_slice(&[m as u64; 3]);
    match Instance::new(times, m) {
        Ok(inst) => inst,
        // All times are >= m >= 2 by construction.
        Err(err) => panic!("deterministic worst case is ill-formed: {err}"),
    }
}

/// Narrow-range instances `U(95, 105)` — the paper's worst-case family for
/// the PTAS's actual approximation ratio (rounding cannot separate jobs whose
/// sizes differ by a few percent).
pub fn narrow_range(m: usize, n: usize, seed: u64) -> Instance {
    generate(Family::new(m, n, Distribution::U95To105), seed)
}

/// The worked example of Section III of the paper: two long jobs of rounded
/// size 6 and three of rounded size 11, with target makespan `T = 30` and
/// `ε = 0.3` (`k = 4`). Returned as raw processing times so the PTAS crates
/// can use it in unit tests against the hand-computed DP table.
pub fn two_long_classes() -> (Vec<u64>, u64, f64) {
    (vec![6, 6, 11, 11, 11], 30, 0.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_shape() {
        let inst = lpt_adversarial(10, 1);
        assert_eq!(inst.jobs(), 21);
        assert_eq!(inst.machines(), 10);
        assert!(inst.times().iter().all(|&t| (10..=19).contains(&t)));
    }

    #[test]
    fn deterministic_worst_case_has_expected_multiset() {
        let inst = lpt_worst_case_deterministic(3);
        let mut ts = inst.times().to_vec();
        ts.sort_unstable();
        assert_eq!(ts, vec![3, 3, 3, 4, 4, 5, 5]);
    }

    #[test]
    fn deterministic_worst_case_area_is_perfectly_divisible() {
        // Total work is 3m^2, so the optimum 3m has zero idle time.
        for m in 2..8 {
            let inst = lpt_worst_case_deterministic(m);
            assert_eq!(inst.total_time(), 3 * (m as u64) * (m as u64));
        }
    }

    #[test]
    fn narrow_range_respects_bounds() {
        let inst = narrow_range(10, 30, 5);
        assert!(inst.times().iter().all(|&t| (95..=105).contains(&t)));
    }

    #[test]
    fn worked_example_shape() {
        let (times, t, eps) = two_long_classes();
        assert_eq!(times.len(), 5);
        assert_eq!(t, 30);
        assert!((eps - 0.3).abs() < 1e-12);
    }
}
