//! The paper's experiment suites: the 24 instance families of Section V and
//! helpers to materialize seeded batches of instances per family.

use crate::{generator::generate_batch, Distribution, Family};
use pcmax_core::Instance;

/// All 24 instance families of Section V:
/// `{m=10,20} × {n=30,50,100} × {U(1,2m−1), U(1,100), U(1,10), U(1,10n)}`.
pub fn paper_families() -> Vec<Family> {
    let mut fams = Vec::with_capacity(24);
    for &m in &[10usize, 20] {
        for &n in &[30usize, 50, 100] {
            for dist in Distribution::figure_families() {
                fams.push(Family::new(m, n, dist));
            }
        }
    }
    fams
}

/// A family together with its materialized seeded instances.
#[derive(Debug, Clone)]
pub struct FamilyInstances {
    /// The family the instances were drawn from.
    pub family: Family,
    /// The materialized instances (`reps` of them).
    pub instances: Vec<Instance>,
}

/// Parameters of an experiment sweep: which `(m, n)` shape, how many seeded
/// repetitions per family, and the base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentSet {
    /// Number of machines `m`.
    pub machines: usize,
    /// Number of jobs `n`.
    pub jobs: usize,
    /// Instances per family (the paper uses 20).
    pub reps: usize,
    /// Base seed; instance `i` of a family uses `base_seed + i`.
    pub base_seed: u64,
}

impl ExperimentSet {
    /// The shape of Figure 2: `m = 20`, `n = 100`.
    pub fn fig2(reps: usize) -> Self {
        Self {
            machines: 20,
            jobs: 100,
            reps,
            base_seed: 0xF162,
        }
    }

    /// The shape of Figure 3: `m = 10`, `n = 50`.
    pub fn fig3(reps: usize) -> Self {
        Self {
            machines: 10,
            jobs: 50,
            reps,
            base_seed: 0xF163,
        }
    }

    /// The shape of Figure 4: `m = 10`, `n = 30`.
    pub fn fig4(reps: usize) -> Self {
        Self {
            machines: 10,
            jobs: 30,
            reps,
            base_seed: 0xF164,
        }
    }

    /// Materializes the four figure families at this shape.
    pub fn materialize(&self) -> Vec<FamilyInstances> {
        Distribution::figure_families()
            .into_iter()
            .map(|dist| {
                let family = Family::new(self.machines, self.jobs, dist);
                FamilyInstances {
                    family,
                    instances: generate_batch(family, self.base_seed, self.reps),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_24_paper_families() {
        let fams = paper_families();
        assert_eq!(fams.len(), 24);
        // All distinct.
        let mut dedup = fams.clone();
        dedup.sort_by_key(|f| format!("{f}"));
        dedup.dedup();
        assert_eq!(dedup.len(), 24);
    }

    #[test]
    fn fig2_shape() {
        let set = ExperimentSet::fig2(3);
        assert_eq!((set.machines, set.jobs, set.reps), (20, 100, 3));
    }

    #[test]
    fn materialize_produces_reps_per_family() {
        let sets = ExperimentSet::fig4(2).materialize();
        assert_eq!(sets.len(), 4);
        for fi in &sets {
            assert_eq!(fi.instances.len(), 2);
            assert_eq!(fi.family.machines, 10);
            assert_eq!(fi.family.jobs, 30);
            for inst in &fi.instances {
                assert_eq!(inst.jobs(), 30);
            }
        }
    }

    #[test]
    fn different_figures_use_disjoint_seeds() {
        // Same (m, n) would still differ because base seeds differ; here we
        // just pin the base seeds so a refactor cannot silently change the
        // published experiment outputs.
        assert_ne!(
            ExperimentSet::fig2(1).base_seed,
            ExperimentSet::fig3(1).base_seed
        );
    }
}
