//! Seeded workload generators for the evaluation of Ghalami & Grosu (2017).
//!
//! Section V of the paper draws processing times from four uniform families —
//! `U(1, 2m−1)`, `U(1, 100)`, `U(1, 10)`, `U(1, 10n)` — crossed with
//! `m ∈ {10, 20}` and `n ∈ {30, 50, 100}` (24 instance types, 20 instances
//! each). The best/worst-case approximation-ratio experiments additionally use
//! the LPT-adversarial family (`n = 2m+1`, times from `U(m, 2m−1)`) and the
//! narrow-range family `U(95, 105)`.
//!
//! All generators are deterministic functions of a `u64` seed so every
//! experiment in this repository is exactly replayable.
//!
//! Beyond the paper's identical-machine families, [`uniform`] generates
//! `Q||Cmax` instances (same job stream, independent speed stream) and
//! [`online`] generates arrival-ordered streams for the online-scheduling
//! experiments.

pub mod family;
pub mod generator;
pub mod io;
pub mod online;
pub mod special;
pub mod suite;
pub mod uniform;

pub use family::{Distribution, Family};
pub use generator::{generate, generate_batch, try_generate};
pub use io::{parse_csv, parse_text, to_csv, to_text};
pub use online::{ls_adversarial, shuffled_arrivals, try_shuffled_arrivals};
pub use special::{lpt_adversarial, narrow_range, two_long_classes};
pub use suite::{paper_families, ExperimentSet, FamilyInstances};
pub use uniform::{generate_uniform, generate_uniform_batch, try_generate_uniform, SpeedFamily};
