//! Uniform-machine (`Q||Cmax`) workload generation.
//!
//! A [`SpeedFamily`] crosses any identical-machine [`Family`] with a speed
//! distribution `U(1, speed_max)`: the processing times come from exactly the
//! same stream as [`generate`](crate::generate) (so a Q instance and its P
//! sibling share job sizes for like-for-like comparisons), while the speeds
//! come from an independently mixed stream so changing `speed_max` never
//! perturbs the job sizes.

use crate::generator::{mix, try_generate};
use crate::Family;
use pcmax_core::rng::SplitMix64;
use pcmax_core::{Instance, Result};
use std::fmt;

/// A `Q||Cmax` instance family: jobs from `base`, one speed per machine from
/// `U(1, speed_max)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpeedFamily {
    /// The identical-machine family supplying `(m, n)` and the job sizes.
    pub base: Family,
    /// Inclusive upper bound of the speed distribution `U(1, speed_max)`;
    /// 1 degenerates to identical machines.
    pub speed_max: u64,
}

impl SpeedFamily {
    /// Shorthand constructor.
    pub fn new(base: Family, speed_max: u64) -> Self {
        Self { base, speed_max }
    }
}

impl fmt::Display for SpeedFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s=U(1,{})", self.base, self.speed_max)
    }
}

/// Generates one uniform-machine instance, deterministically from `seed`.
/// Panics only on a degenerate family (m = 0 or `speed_max` = 0), which is a
/// caller bug; use [`try_generate_uniform`] to treat that as data.
pub fn generate_uniform(family: SpeedFamily, seed: u64) -> Instance {
    match try_generate_uniform(family, seed) {
        Ok(inst) => inst,
        Err(err) => panic!("speed family {family} cannot be generated: {err}"),
    }
}

/// Fallible variant of [`generate_uniform`].
pub fn try_generate_uniform(family: SpeedFamily, seed: u64) -> Result<Instance> {
    let base = try_generate(family.base, seed)?;
    // A second finalizer pass over the job-stream seed keyed by speed_max
    // keeps the speed stream independent of the time stream.
    let speed_seed = mix(family.base, seed).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ family.speed_max.rotate_left(23)
        ^ 0x94D0_49BB_1331_11EB;
    let mut rng = SplitMix64::seed_from_u64(speed_seed);
    let lo = 1;
    let hi = family.speed_max.max(1);
    let speeds = (0..family.base.machines)
        .map(|_| rng.range_inclusive(lo, hi))
        .collect();
    Instance::with_speeds(base.times().to_vec(), speeds)
}

/// Generates `count` uniform instances with consecutive seeds.
pub fn generate_uniform_batch(family: SpeedFamily, base_seed: u64, count: usize) -> Vec<Instance> {
    (0..count as u64)
        .map(|i| generate_uniform(family, base_seed.wrapping_add(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Distribution};

    fn fam() -> SpeedFamily {
        SpeedFamily::new(Family::new(4, 20, Distribution::U1To100), 5)
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(generate_uniform(fam(), 7), generate_uniform(fam(), 7));
    }

    #[test]
    fn shares_job_sizes_with_the_identical_sibling() {
        let q = generate_uniform(fam(), 11);
        let p = generate(fam().base, 11);
        assert_eq!(q.times(), p.times());
    }

    #[test]
    fn speeds_respect_the_interval_and_shape() {
        let inst = generate_uniform(fam(), 3);
        let speeds = inst.speeds();
        assert_eq!(speeds.len(), 4);
        assert!(speeds.iter().all(|&s| (1..=5).contains(&s)));
    }

    #[test]
    fn speed_max_changes_speeds_but_not_times() {
        let a = generate_uniform(fam(), 9);
        let b = generate_uniform(SpeedFamily::new(fam().base, 50), 9);
        assert_eq!(a.times(), b.times());
    }

    #[test]
    fn speed_max_one_degenerates_to_identical() {
        let inst = generate_uniform(SpeedFamily::new(fam().base, 1), 2);
        assert!(!inst.is_uniform());
        assert_eq!(inst, generate(fam().base, 2));
    }

    #[test]
    fn batch_produces_distinct_instances() {
        let batch = generate_uniform_batch(fam(), 40, 4);
        assert_eq!(batch.len(), 4);
        for w in batch.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn display_names_both_streams() {
        assert_eq!(fam().to_string(), "m=4 n=20 U(1,100) s=U(1,5)");
    }
}
