//! Deterministic seeded instance generation.

use crate::Family;
use pcmax_core::rng::SplitMix64;
use pcmax_core::{Instance, Result};

/// Generates one instance of `family`, deterministically from `seed`.
///
/// The same `(family, seed)` pair always yields the same instance, across
/// platforms, because we use a portable self-contained SplitMix64 stream
/// derived from a hash of the family parameters (so adjacent seeds of
/// different families do not alias).
pub fn generate(family: Family, seed: u64) -> Instance {
    match try_generate(family, seed) {
        Ok(inst) => inst,
        // Distributions guarantee times >= 1, so this only trips on a
        // degenerate family (m = 0) — a caller bug, not an input error.
        Err(err) => panic!("family {family} cannot be generated: {err}"),
    }
}

/// Fallible variant of [`generate`] for callers that treat a degenerate
/// family (e.g. zero machines) as data rather than a bug.
pub fn try_generate(family: Family, seed: u64) -> Result<Instance> {
    let mut rng = SplitMix64::seed_from_u64(mix(family, seed));
    let times = (0..family.jobs)
        .map(|_| family.dist.sample(&mut rng, family.machines, family.jobs))
        .collect::<Vec<u64>>();
    Instance::new(times, family.machines)
}

/// Generates `count` instances with consecutive instance indices (the paper's
/// "20 instances of each type").
pub fn generate_batch(family: Family, base_seed: u64, count: usize) -> Vec<Instance> {
    (0..count as u64)
        .map(|i| generate(family, base_seed.wrapping_add(i)))
        .collect()
}

/// SplitMix64-style mixing of the seed with the family parameters so each
/// `(family, seed)` pair addresses an independent RNG stream.
pub(crate) fn mix(family: Family, seed: u64) -> u64 {
    let mut x = seed
        ^ (family.machines as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (family.jobs as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let (lo, hi) = family.dist.interval(family.machines, family.jobs);
    x ^= lo.wrapping_mul(0x94D0_49BB_1331_11EB) ^ hi.rotate_left(17);
    // SplitMix64 finalizer.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distribution;

    fn fam() -> Family {
        Family::new(10, 50, Distribution::U1To100)
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(generate(fam(), 42), generate(fam(), 42));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(generate(fam(), 1), generate(fam(), 2));
    }

    #[test]
    fn different_families_with_same_seed_differ() {
        let a = generate(Family::new(10, 50, Distribution::U1To10), 7);
        let b = generate(Family::new(10, 50, Distribution::U1To100), 7);
        assert_ne!(a.times(), b.times());
    }

    #[test]
    fn times_respect_interval() {
        let inst = generate(Family::new(10, 200, Distribution::U1To10), 3);
        assert!(inst.times().iter().all(|&t| (1..=10).contains(&t)));
    }

    #[test]
    fn shape_matches_family() {
        let inst = generate(fam(), 0);
        assert_eq!(inst.jobs(), 50);
        assert_eq!(inst.machines(), 10);
    }

    #[test]
    fn batch_produces_distinct_instances() {
        let batch = generate_batch(fam(), 100, 5);
        assert_eq!(batch.len(), 5);
        for w in batch.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn u1_10n_scales_with_n() {
        let inst = generate(Family::new(10, 100, Distribution::U1To10N), 9);
        // With 100 samples from U(1, 1000) the max is > 100 with
        // overwhelming probability; a deterministic seed makes this a fact.
        assert!(inst.max_time() > 100);
        assert!(inst.max_time() <= 1000);
    }
}
