//! Instance families: a distribution of processing times plus `(m, n)`.

use pcmax_core::rng::SplitMix64;
use std::fmt;

/// The processing-time distributions used in Section V of the paper.
///
/// The interval bounds of the first and last variants depend on the instance
/// shape (`m` or `n`), mirroring the paper's `U(1, 2m−1)` and `U(1, 10n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// `U(1, 2m−1)` — times scale with the number of machines.
    U1TwoMMinus1,
    /// `U(1, 100)` — the "medium values" family.
    U1To100,
    /// `U(1, 10)` — the "small values" family (best speedups in the paper).
    U1To10,
    /// `U(1, 10n)` — times scale with the number of jobs ("large values").
    U1To10N,
    /// `U(m, 2m−1)` — the LPT-adversarial range used with `n = 2m+1`.
    UMTo2MMinus1,
    /// `U(95, 105)` — the narrow-range worst-case family of Fig. 5(b).
    U95To105,
    /// Arbitrary inclusive interval `U(lo, hi)` for custom experiments.
    Uniform {
        /// Inclusive lower bound (must be ≥ 1).
        lo: u64,
        /// Inclusive upper bound (must be ≥ `lo`).
        hi: u64,
    },
    /// Bimodal workload: mostly short jobs with a heavy-job minority —
    /// the shape of real cluster traces (interactive tasks + batch jobs).
    Bimodal {
        /// Short-job interval.
        short: (u64, u64),
        /// Long-job interval.
        long: (u64, u64),
        /// Probability of drawing a long job, in permille (0..=1000).
        long_permille: u16,
    },
    /// Geometric distribution with the given mean (support `1..`), a
    /// memoryless heavy-ish tail.
    Geometric {
        /// Mean processing time (must be ≥ 1).
        mean: u64,
    },
}

impl Distribution {
    /// Resolves the inclusive sampling interval for an instance with `m`
    /// machines and `n` jobs.
    pub fn interval(&self, m: usize, n: usize) -> (u64, u64) {
        match *self {
            Distribution::U1TwoMMinus1 => (1, (2 * m as u64).saturating_sub(1).max(1)),
            Distribution::U1To100 => (1, 100),
            Distribution::U1To10 => (1, 10),
            Distribution::U1To10N => (1, (10 * n as u64).max(1)),
            Distribution::UMTo2MMinus1 => {
                (m as u64, (2 * m as u64).saturating_sub(1).max(m as u64))
            }
            Distribution::U95To105 => (95, 105),
            Distribution::Uniform { lo, hi } => (lo, hi),
            Distribution::Bimodal { short, long, .. } => (short.0.min(long.0), short.1.max(long.1)),
            // Unbounded support; the hull below covers > 99.99% of the mass.
            Distribution::Geometric { mean } => (1, mean.saturating_mul(12).max(1)),
        }
    }

    /// Draws one processing time. All variants guarantee a result ≥ 1.
    pub fn sample(&self, rng: &mut SplitMix64, m: usize, n: usize) -> u64 {
        match *self {
            Distribution::Bimodal {
                short,
                long,
                long_permille,
            } => {
                assert!(short.0 >= 1 && short.0 <= short.1, "bad short interval");
                assert!(long.0 >= 1 && long.0 <= long.1, "bad long interval");
                if rng.below(1000) < long_permille as u64 {
                    rng.range_inclusive(long.0, long.1)
                } else {
                    rng.range_inclusive(short.0, short.1)
                }
            }
            Distribution::Geometric { mean } => {
                assert!(mean >= 1, "geometric mean must be >= 1");
                // Inverse-CDF sampling of Geometric(p = 1/mean) on {1, 2, …}.
                if mean == 1 {
                    return 1;
                }
                let p = 1.0 / mean as f64;
                let u: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
                let v = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
                v.max(1)
            }
            _ => {
                let (lo, hi) = self.interval(m, n);
                assert!(lo >= 1 && lo <= hi, "invalid interval [{lo}, {hi}]");
                rng.range_inclusive(lo, hi)
            }
        }
    }

    /// The four families of the paper's running-time/speedup experiments
    /// (Figures 2–4), in the order the figures list them.
    pub fn figure_families() -> [Distribution; 4] {
        [
            Distribution::U1TwoMMinus1,
            Distribution::U1To100,
            Distribution::U1To10,
            Distribution::U1To10N,
        ]
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distribution::U1TwoMMinus1 => write!(f, "U(1,2m-1)"),
            Distribution::U1To100 => write!(f, "U(1,100)"),
            Distribution::U1To10 => write!(f, "U(1,10)"),
            Distribution::U1To10N => write!(f, "U(1,10n)"),
            Distribution::UMTo2MMinus1 => write!(f, "U(m,2m-1)"),
            Distribution::U95To105 => write!(f, "U(95,105)"),
            Distribution::Uniform { lo, hi } => write!(f, "U({lo},{hi})"),
            Distribution::Bimodal {
                short,
                long,
                long_permille,
            } => write!(
                f,
                "Bimodal(U({},{}),U({},{}),{}%)",
                short.0,
                short.1,
                long.0,
                long.1,
                *long_permille as f64 / 10.0
            ),
            Distribution::Geometric { mean } => write!(f, "Geom(mean={mean})"),
        }
    }
}

/// An instance family: machine count, job count and a distribution. Every
/// experiment in the harness is defined over families, then averaged over a
/// number of seeded instances per family (20 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Family {
    /// Number of machines `m`.
    pub machines: usize,
    /// Number of jobs `n`.
    pub jobs: usize,
    /// Processing-time distribution.
    pub dist: Distribution,
}

impl Family {
    /// Shorthand constructor.
    pub fn new(machines: usize, jobs: usize, dist: Distribution) -> Self {
        Self {
            machines,
            jobs,
            dist,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m={} n={} {}", self.machines, self.jobs, self.dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_resolve_shape_dependence() {
        assert_eq!(Distribution::U1TwoMMinus1.interval(10, 50), (1, 19));
        assert_eq!(Distribution::U1To10N.interval(10, 50), (1, 500));
        assert_eq!(Distribution::UMTo2MMinus1.interval(10, 21), (10, 19));
        assert_eq!(Distribution::U1To100.interval(99, 99), (1, 100));
        assert_eq!(Distribution::U95To105.interval(3, 3), (95, 105));
    }

    #[test]
    fn degenerate_one_machine_interval_stays_valid() {
        let (lo, hi) = Distribution::U1TwoMMinus1.interval(1, 5);
        assert!(lo >= 1 && lo <= hi);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Distribution::U1To10N.to_string(), "U(1,10n)");
        assert_eq!(
            Family::new(20, 100, Distribution::U1To100).to_string(),
            "m=20 n=100 U(1,100)"
        );
    }

    #[test]
    fn bimodal_samples_stay_in_their_intervals() {
        let d = Distribution::Bimodal {
            short: (1, 10),
            long: (100, 200),
            long_permille: 200,
        };
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut saw_short = false;
        let mut saw_long = false;
        for _ in 0..500 {
            let t = d.sample(&mut rng, 4, 10);
            assert!((1..=10).contains(&t) || (100..=200).contains(&t));
            saw_short |= t <= 10;
            saw_long |= t >= 100;
        }
        assert!(saw_short && saw_long, "both modes must appear");
    }

    #[test]
    fn geometric_mean_is_roughly_right() {
        let d = Distribution::Geometric { mean: 50 };
        let mut rng = SplitMix64::seed_from_u64(2);
        let total: u64 = (0..20_000).map(|_| d.sample(&mut rng, 1, 1)).sum();
        let mean = total as f64 / 20_000.0;
        assert!((40.0..60.0).contains(&mean), "empirical mean {mean}");
    }

    #[test]
    fn geometric_mean_one_is_constant() {
        let d = Distribution::Geometric { mean: 1 };
        let mut rng = SplitMix64::seed_from_u64(3);
        assert!((0..100).all(|_| d.sample(&mut rng, 1, 1) == 1));
    }

    #[test]
    fn display_of_new_variants() {
        let d = Distribution::Bimodal {
            short: (1, 10),
            long: (100, 200),
            long_permille: 150,
        };
        assert_eq!(d.to_string(), "Bimodal(U(1,10),U(100,200),15%)");
        assert_eq!(
            Distribution::Geometric { mean: 9 }.to_string(),
            "Geom(mean=9)"
        );
    }

    #[test]
    fn figure_families_order() {
        let fams = Distribution::figure_families();
        assert_eq!(fams[0], Distribution::U1TwoMMinus1);
        assert_eq!(fams[3], Distribution::U1To10N);
    }
}
