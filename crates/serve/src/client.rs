//! Blocking `pcmax-wire/1` client.

use pcmax_core::json::{FromJson, ToJson};
use pcmax_core::wire::{
    read_frame, write_frame, WireOp, WireOutcome, WireRequest, WireResponse, WireSolve,
};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a [`Server`](crate::Server).
///
/// Requests are pipelined: [`submit`](Client::submit) returns the frame id
/// immediately, and the server answers every outstanding solve in
/// submission order — drain them with [`recv`](Client::recv). For the
/// common one-shot case, [`solve`](Client::solve) submits and waits.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_id", &self.next_id)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    fn send(&mut self, op: WireOp) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let request = WireRequest { id, op };
        write_frame(&mut self.writer, &request.to_json())?;
        Ok(id)
    }

    /// Submits a solve without waiting; returns the frame id the matching
    /// response will carry.
    pub fn submit(&mut self, solve: WireSolve) -> io::Result<u64> {
        self.send(WireOp::Solve(solve))
    }

    /// Reads the next response frame; `Ok(None)` once the server closes
    /// the connection cleanly.
    pub fn recv(&mut self) -> io::Result<Option<WireResponse>> {
        match read_frame(&mut self.reader)? {
            Some(value) => {
                let response = WireResponse::from_json(&value)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                Ok(Some(response))
            }
            None => Ok(None),
        }
    }

    /// Submits a solve and blocks for its response. Only valid when no
    /// other responses are outstanding (responses arrive in submission
    /// order).
    pub fn solve(&mut self, solve: WireSolve) -> io::Result<WireResponse> {
        let id = self.submit(solve)?;
        let response = self
            .recv()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        if response.id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} for request {id}", response.id),
            ));
        }
        Ok(response)
    }

    /// Asks the server to cancel the in-flight request `target`; returns
    /// this cancel frame's own id (its ack arrives via [`recv`]).
    ///
    /// [`recv`]: Client::recv
    pub fn cancel(&mut self, target: u64) -> io::Result<u64> {
        self.send(WireOp::Cancel { target })
    }

    /// Shuts the server down and returns the `bye` frame with its
    /// lifetime totals. Any still-outstanding solve responses are drained
    /// (and discarded) first; the connection is consumed.
    pub fn shutdown(mut self) -> io::Result<WireResponse> {
        let id = self.send(WireOp::Shutdown)?;
        loop {
            let response = self
                .recv()?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no bye frame"))?;
            if response.id == id && matches!(response.outcome, WireOutcome::Bye { .. }) {
                return Ok(response);
            }
        }
    }
}
