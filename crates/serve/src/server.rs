//! The daemon: TCP listener, per-connection reader/responder pair, shared
//! session engine.

use pcmax_core::json::{FromJson, ToJson};
use pcmax_core::wire::{
    error_code, read_frame, write_frame, WireOp, WireRequest, WireResponse, WireSolve,
};
use pcmax_core::{Budget, CancelToken, Error};
use pcmax_engine::{Engine, EngineConfig, EngineTotals, SolveHandle, Submission};
use pcmax_metrics::{family, Counter, Family};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Connections the daemon accepted over its lifetime.
static CONNECTIONS: Counter = Counter::new(
    "pcmax_serve_connections_total",
    "Connections accepted by the pcmax-serve daemon",
);

/// Request frames per operation (`solve` / `cancel` / `shutdown` /
/// `bad-request`).
static REQUESTS: Family<Counter> = family(
    "pcmax_serve_requests_total",
    "Request frames handled by the pcmax-serve daemon, per operation",
    "op",
);

/// How the daemon is built: the listen address and the engine sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port `0` picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Sizing of the shared session engine.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            engine: EngineConfig::default(),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The engine behind a once-latch: `shutdown` consumes the engine exactly
/// once and memoizes the totals; later calls (and late submissions) see
/// the shut-down state.
struct EngineCell {
    engine: Mutex<Option<Engine>>,
    totals: Mutex<Option<EngineTotals>>,
}

impl EngineCell {
    fn new(config: EngineConfig) -> Self {
        Self {
            engine: Mutex::new(Some(Engine::with_config(config))),
            totals: Mutex::new(None),
        }
    }

    fn submit(&self, submission: Submission) -> pcmax_core::Result<SolveHandle> {
        match &*lock(&self.engine) {
            Some(engine) => engine.submit(submission),
            None => Err(Error::BadModel("serve: engine already shut down".into())),
        }
    }

    fn shutdown(&self) -> EngineTotals {
        if let Some(engine) = lock(&self.engine).take() {
            let totals = engine.shutdown();
            *lock(&self.totals) = Some(totals);
        }
        lock(&self.totals).unwrap_or_default()
    }
}

/// The daemon. [`bind`](Server::bind), then [`run`](Server::run) until a
/// client sends `shutdown`.
pub struct Server {
    listener: TcpListener,
    engine: Arc<EngineCell>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and builds the shared engine. Nothing is
    /// accepted until [`run`](Server::run).
    pub fn bind(config: ServerConfig) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(&config.addr)?,
            engine: Arc::new(EngineCell::new(config.engine)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until a `shutdown` frame arrives;
    /// then joins every connection thread and returns the engine totals.
    pub fn run(self) -> io::Result<EngineTotals> {
        let addr = self.listener.local_addr()?;
        let mut connections = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            CONNECTIONS.inc();
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            connections.push(std::thread::spawn(move || {
                // A broken connection only loses that client.
                let _ = handle_connection(stream, &engine, &stop, addr);
            }));
        }
        for conn in connections {
            let _ = conn.join();
        }
        Ok(self.engine.shutdown())
    }
}

/// What the responder thread writes next, in submission order.
enum Pending {
    /// An admitted solve: wait on the handle, then answer.
    Solve { id: u64, handle: SolveHandle },
    /// An immediately-known response (cancel acks, admission errors).
    Ready(WireResponse),
}

fn handle_connection(
    stream: TcpStream,
    engine: &Arc<EngineCell>,
    stop: &Arc<AtomicBool>,
    listener_addr: SocketAddr,
) -> io::Result<()> {
    let writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let cancels: Arc<Mutex<HashMap<u64, CancelToken>>> = Arc::new(Mutex::new(HashMap::new()));
    let (tx, rx) = mpsc::channel::<Pending>();

    let responder_cancels = Arc::clone(&cancels);
    let responder = std::thread::spawn(move || -> io::Result<BufWriter<TcpStream>> {
        let mut writer = BufWriter::new(writer);
        for pending in rx {
            let response = match pending {
                Pending::Ready(response) => response,
                Pending::Solve { id, handle } => {
                    let result = handle.wait();
                    lock(&responder_cancels).remove(&id);
                    WireResponse::from_result(id, &result)
                }
            };
            write_frame(&mut writer, &response.to_json())?;
        }
        Ok(writer)
    });

    let mut shutdown_id = None;
    while let Some(value) = read_frame(&mut reader)? {
        let request = match WireRequest::from_json(&value) {
            Ok(request) => request,
            Err(e) => {
                REQUESTS.with_label("bad-request").inc();
                let _ = tx.send(Pending::Ready(error_response(0, "bad-request", &e)));
                continue;
            }
        };
        match request.op {
            WireOp::Solve(solve) => {
                REQUESTS.with_label("solve").inc();
                let cancel = CancelToken::new();
                match engine.submit(submission_of(solve, cancel.clone())) {
                    Ok(handle) => {
                        lock(&cancels).insert(request.id, cancel);
                        let _ = tx.send(Pending::Solve {
                            id: request.id,
                            handle,
                        });
                    }
                    Err(e) => {
                        let _ = tx.send(Pending::Ready(error_response(
                            request.id,
                            error_code(&e),
                            &e,
                        )));
                    }
                }
            }
            WireOp::Cancel { target } => {
                REQUESTS.with_label("cancel").inc();
                let token = lock(&cancels).get(&target).cloned();
                let response = match token {
                    Some(token) => {
                        token.cancel();
                        WireResponse {
                            id: request.id,
                            outcome: pcmax_core::wire::WireOutcome::Cancelled,
                        }
                    }
                    None => error_response(
                        request.id,
                        "unknown-target",
                        &Error::BadModel(format!("serve: no in-flight request {target}")),
                    ),
                };
                let _ = tx.send(Pending::Ready(response));
            }
            WireOp::Shutdown => {
                REQUESTS.with_label("shutdown").inc();
                shutdown_id = Some(request.id);
                break;
            }
        }
    }

    // Close the channel so the responder drains outstanding solves (in
    // submission order) and hands the writer back.
    drop(tx);
    let mut writer = responder
        .join()
        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))?;

    if let Some(id) = shutdown_id {
        // Tear the engine down *before* reporting totals: joining the
        // workers wakes every parked thread once more, so the park/wake
        // counters the `bye` frame carries balance exactly on a clean
        // shutdown.
        let totals = engine.shutdown();
        let bye = WireResponse {
            id,
            outcome: pcmax_core::wire::WireOutcome::Bye {
                served: totals.served,
                cache_hits: totals.cache_hits,
                cache_misses: totals.cache_misses,
                parks: pcmax_parallel::metrics::POOL_PARKS.get(),
                wakes: pcmax_parallel::metrics::POOL_WAKES.get(),
            },
        };
        write_frame(&mut writer, &bye.to_json())?;
        stop.store(true, Ordering::Release);
        // Unblock the accept loop so `run` can join and return.
        let _ = TcpStream::connect(listener_addr);
    }
    Ok(())
}

/// Maps a wire solve to an engine submission: ε and threads go to the
/// solver params, `timeout_ms` becomes the request budget (the clock
/// starts now, so queue time counts), and the caller's token is attached
/// for `cancel` frames.
fn submission_of(solve: WireSolve, cancel: CancelToken) -> Submission {
    let mut params = pcmax_engine::SolverParams::with_epsilon(solve.eps);
    params.threads = solve.threads;
    let budget = match solve.timeout_ms {
        Some(ms) => Budget::with_timeout(Duration::from_millis(ms)),
        None => Budget::unlimited(),
    };
    Submission::new(solve.instance, solve.solver)
        .with_params(params)
        .with_budget(budget)
        .with_cancel(cancel)
}

fn error_response(id: u64, code: &str, e: &Error) -> WireResponse {
    WireResponse {
        id,
        outcome: pcmax_core::wire::WireOutcome::Error {
            code: code.into(),
            message: e.to_string(),
        },
    }
}
