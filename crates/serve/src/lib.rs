//! `pcmax-serve`: a batched, cancellable scheduling daemon on top of the
//! session engine.
//!
//! The daemon ([`Server`]) listens on TCP and speaks `pcmax-wire/1`
//! ([`pcmax_core::wire`]): length-prefixed compact-JSON frames carrying
//! `solve` / `cancel` / `shutdown` operations. Every connection gets a
//! reader thread (parses frames, submits to the shared
//! [`pcmax_engine::Engine`]) and a responder thread (writes responses in
//! submission order), so one connection can pipeline many concurrent
//! solves — the engine's worker pool multiplexes them, its bounded
//! admission queue sheds load as `overloaded` error responses, and its
//! instance-profile cache memoizes DP verdicts across requests and
//! connections.
//!
//! Cancellation is first-class: a `cancel` frame raises the
//! [`CancelToken`](pcmax_core::CancelToken) of the in-flight request it
//! targets, which the solve observes at its next budget gate; the
//! cancelled request's own response then comes back with status
//! `cancelled`. `shutdown` drains the connection, tears the engine down
//! (joining every worker, so park/wake totals balance) and answers with a
//! `bye` frame carrying the server's lifetime totals.
//!
//! [`Client`] is the matching blocking client, and [`loadtest`] the
//! closed-loop traffic harness behind `pcmax serve-bench`.

pub mod client;
pub mod loadtest;
pub mod server;

pub use client::Client;
pub use loadtest::{run_loadtest, LoadReport, LoadtestConfig};
pub use server::{Server, ServerConfig};
