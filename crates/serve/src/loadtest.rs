//! Closed-loop load-test harness behind `pcmax serve-bench`.
//!
//! Binds an in-process [`Server`] on an ephemeral port, drives it with
//! closed-loop client threads cycling through seeded instances from the
//! paper's 24 workload families (fixed seeds, so repeated passes over the
//! pool exercise the instance-profile cache), and reports latency
//! percentiles, throughput and the server's `bye` totals.

use crate::client::Client;
use crate::server::{Server, ServerConfig};
use pcmax_core::wire::{WireOutcome, WireResponse, WireSolve};
use pcmax_core::Instance;
use pcmax_engine::EngineConfig;
use pcmax_workloads::{generate_batch, paper_families};
use std::io;
use std::time::Instant;

/// How the load test is shaped.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Closed-loop client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Solver name every request uses (registry name or alias).
    pub solver: String,
    /// Accuracy knob forwarded to approximation solvers.
    pub eps: f64,
    /// Base seed for the instance pool; fixed seeds make repeat passes
    /// cache hits.
    pub seed: u64,
    /// Seeded instances generated per workload family.
    pub per_family: usize,
    /// Sizing of the daemon's engine.
    pub engine: EngineConfig,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            requests: 1000,
            solver: "pptas".into(),
            eps: 0.4,
            seed: 7,
            per_family: 2,
            engine: EngineConfig::default(),
        }
    }
}

/// What a load test measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub requests: u64,
    /// Responses with status `ok`.
    pub ok: u64,
    /// Responses with status `error`.
    pub errors: u64,
    /// Responses with status `cancelled`.
    pub cancelled: u64,
    /// `ok` responses whose solve was answered from the profile cache.
    pub cache_hit_responses: u64,
    /// Median request latency, in microseconds.
    pub p50_micros: u64,
    /// 99th-percentile request latency, in microseconds.
    pub p99_micros: u64,
    /// Sustained throughput over the whole run, requests per second.
    pub throughput_rps: f64,
    /// Wall-clock duration of the traffic phase, in milliseconds.
    pub wall_millis: u64,
    /// Solves the engine served, from the `bye` frame.
    pub served: u64,
    /// Profile-cache hits over the server's lifetime, from `bye`.
    pub cache_hits: u64,
    /// Profile-cache misses over the server's lifetime, from `bye`.
    pub cache_misses: u64,
    /// Worker parks over the server's lifetime, from `bye`.
    pub parks: u64,
    /// Worker wakes over the server's lifetime, from `bye`.
    pub wakes: u64,
}

impl LoadReport {
    /// Renders the report as a compact JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests\":{},\"ok\":{},\"errors\":{},\"cancelled\":{},",
                "\"cache_hit_responses\":{},\"p50_micros\":{},\"p99_micros\":{},",
                "\"throughput_rps\":{:.1},\"wall_millis\":{},\"served\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"parks\":{},\"wakes\":{}}}"
            ),
            self.requests,
            self.ok,
            self.errors,
            self.cancelled,
            self.cache_hit_responses,
            self.p50_micros,
            self.p99_micros,
            self.throughput_rps,
            self.wall_millis,
            self.served,
            self.cache_hits,
            self.cache_misses,
            self.parks,
            self.wakes,
        )
    }
}

/// Per-client tallies folded into the final report.
#[derive(Default)]
struct ClientTally {
    ok: u64,
    errors: u64,
    cancelled: u64,
    cache_hit_responses: u64,
    latencies_micros: Vec<u64>,
}

/// The instance pool every client cycles through: `per_family` seeded
/// instances from each of the paper's 24 families.
fn instance_pool(seed: u64, per_family: usize) -> Vec<Instance> {
    paper_families()
        .into_iter()
        .flat_map(|family| generate_batch(family, seed, per_family))
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn tally(tally: &mut ClientTally, response: &WireResponse, micros: u64) {
    tally.latencies_micros.push(micros);
    match &response.outcome {
        WireOutcome::Ok { cache_hit, .. } => {
            tally.ok += 1;
            if *cache_hit {
                tally.cache_hit_responses += 1;
            }
        }
        WireOutcome::Cancelled => tally.cancelled += 1,
        _ => tally.errors += 1,
    }
}

/// Runs the closed-loop load test against an in-process daemon and
/// returns the merged report. The daemon is shut down (and its worker
/// pool joined) before this returns.
pub fn run_loadtest(config: &LoadtestConfig) -> io::Result<LoadReport> {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        engine: config.engine.clone(),
    })?;
    let addr = server.local_addr()?;
    let server_thread = std::thread::spawn(move || server.run());

    let pool = instance_pool(config.seed, config.per_family.max(1));
    let clients = config.clients.max(1);
    let per_client = config.requests.div_ceil(clients);
    let start = Instant::now();
    let mut workers = Vec::new();
    for client_idx in 0..clients {
        let pool = pool.clone();
        let solver = config.solver.clone();
        let eps = config.eps;
        workers.push(std::thread::spawn(move || -> io::Result<ClientTally> {
            let mut client = Client::connect(addr)?;
            let mut out = ClientTally::default();
            for i in 0..per_client {
                // Stride by client so concurrent clients spread over the
                // pool but revisit the same fixed instances on later laps.
                let instance = &pool[(client_idx + i * clients) % pool.len()];
                let sent = Instant::now();
                let response = client.solve(WireSolve {
                    solver: solver.clone(),
                    eps,
                    threads: None,
                    timeout_ms: None,
                    instance: instance.clone(),
                })?;
                tally(&mut out, &response, sent.elapsed().as_micros() as u64);
            }
            Ok(out)
        }));
    }

    let mut report = LoadReport::default();
    let mut latencies = Vec::new();
    for worker in workers {
        let tally = worker
            .join()
            .unwrap_or_else(|panic| std::panic::resume_unwind(panic))?;
        report.ok += tally.ok;
        report.errors += tally.errors;
        report.cancelled += tally.cancelled;
        report.cache_hit_responses += tally.cache_hit_responses;
        latencies.extend(tally.latencies_micros);
    }
    let wall = start.elapsed();
    report.requests = latencies.len() as u64;
    latencies.sort_unstable();
    report.p50_micros = percentile(&latencies, 50.0);
    report.p99_micros = percentile(&latencies, 99.0);
    report.wall_millis = wall.as_millis() as u64;
    report.throughput_rps = if wall.as_secs_f64() > 0.0 {
        report.requests as f64 / wall.as_secs_f64()
    } else {
        0.0
    };

    let control = Client::connect(addr)?;
    let bye = control.shutdown()?;
    if let WireOutcome::Bye {
        served,
        cache_hits,
        cache_misses,
        parks,
        wakes,
    } = bye.outcome
    {
        report.served = served;
        report.cache_hits = cache_hits;
        report.cache_misses = cache_misses;
        report.parks = parks;
        report.wakes = wakes;
    }
    server_thread
        .join()
        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))?;
    Ok(report)
}
