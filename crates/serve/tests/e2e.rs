//! End-to-end daemon tests: real TCP, real frames, real engine.

use pcmax_core::wire::{WireOutcome, WireSolve};
use pcmax_core::{Instance, Time};
use pcmax_engine::EngineConfig;
use pcmax_serve::{run_loadtest, Client, LoadtestConfig, Server, ServerConfig};
use pcmax_workloads::{generate_batch, Distribution, Family};

fn small_server() -> (
    std::thread::JoinHandle<std::io::Result<pcmax_engine::EngineTotals>>,
    std::net::SocketAddr,
) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        engine: EngineConfig {
            workers: 2,
            capacity: 64,
            cache_capacity: 256,
        },
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    (std::thread::spawn(move || server.run()), addr)
}

fn sample_instance() -> Instance {
    generate_batch(Family::new(4, 30, Distribution::U1To100), 11, 1)
        .pop()
        .expect("one instance")
}

fn solve_frame(solver: &str, instance: Instance) -> WireSolve {
    WireSolve {
        solver: solver.into(),
        eps: 0.4,
        threads: None,
        timeout_ms: None,
        instance,
    }
}

fn makespan_of(instance: &Instance, assignment: &[u64]) -> Time {
    let mut loads = vec![0; instance.machines()];
    for (job, &machine) in assignment.iter().enumerate() {
        loads[machine as usize] += instance.times()[job];
    }
    loads.into_iter().max().unwrap_or(0)
}

#[test]
fn solve_roundtrip_and_bye_balance() {
    let (server, addr) = small_server();
    let instance = sample_instance();
    let mut client = Client::connect(addr).expect("connect");
    let response = client
        .solve(solve_frame("lpt", instance.clone()))
        .expect("solve");
    match response.outcome {
        WireOutcome::Ok {
            makespan,
            assignment,
            ..
        } => {
            assert_eq!(assignment.len(), instance.jobs());
            assert_eq!(makespan_of(&instance, &assignment), makespan);
        }
        other => panic!("expected ok, got {other:?}"),
    }
    let bye = client.shutdown().expect("bye");
    match bye.outcome {
        WireOutcome::Bye { served, .. } => assert_eq!(served, 1),
        other => panic!("expected bye, got {other:?}"),
    }
    server.join().expect("server thread").expect("server io");
}

#[test]
fn repeat_solves_report_cache_hits_on_the_wire() {
    let (server, addr) = small_server();
    let instance = sample_instance();
    let mut client = Client::connect(addr).expect("connect");
    let cold = client
        .solve(solve_frame("pptas", instance.clone()))
        .expect("cold solve");
    let warm = client
        .solve(solve_frame("pptas", instance.clone()))
        .expect("warm solve");
    let (cold_hit, cold_makespan) = match cold.outcome {
        WireOutcome::Ok {
            cache_hit,
            makespan,
            ..
        } => (cache_hit, makespan),
        other => panic!("expected ok, got {other:?}"),
    };
    let (warm_hit, warm_makespan) = match warm.outcome {
        WireOutcome::Ok {
            cache_hit,
            makespan,
            ..
        } => (cache_hit, makespan),
        other => panic!("expected ok, got {other:?}"),
    };
    assert!(
        !cold_hit,
        "first solve of an instance cannot be a cache hit"
    );
    assert!(warm_hit, "identical repeat must be served from the cache");
    assert_eq!(
        cold_makespan, warm_makespan,
        "cache must not change answers"
    );
    let bye = client.shutdown().expect("bye");
    match bye.outcome {
        WireOutcome::Bye {
            cache_hits,
            cache_misses,
            ..
        } => {
            assert!(cache_hits > 0, "bye must report the warm solve's hits");
            assert!(cache_misses > 0, "bye must report the cold solve's misses");
        }
        other => panic!("expected bye, got {other:?}"),
    }
    server.join().expect("server thread").expect("server io");
}

#[test]
fn errors_do_not_wedge_the_connection() {
    let (server, addr) = small_server();
    let mut client = Client::connect(addr).expect("connect");
    let bad = client
        .solve(solve_frame("no-such-solver", sample_instance()))
        .expect("bad solve");
    match bad.outcome {
        WireOutcome::Error { code, .. } => assert_eq!(code, "unknown-solver"),
        other => panic!("expected error, got {other:?}"),
    }
    let missing = client.cancel(999).expect("cancel send");
    let ack = client.recv().expect("cancel ack").expect("frame");
    assert_eq!(ack.id, missing);
    match ack.outcome {
        WireOutcome::Error { code, .. } => assert_eq!(code, "unknown-target"),
        other => panic!("expected error, got {other:?}"),
    }
    // The connection still serves real work after both failures.
    let ok = client
        .solve(solve_frame("ls", sample_instance()))
        .expect("good solve");
    assert!(matches!(ok.outcome, WireOutcome::Ok { .. }));
    client.shutdown().expect("bye");
    server.join().expect("server thread").expect("server io");
}

#[test]
fn pipelined_submissions_answer_in_order() {
    let (server, addr) = small_server();
    let instances = generate_batch(Family::new(8, 50, Distribution::U1To10), 3, 6);
    let mut client = Client::connect(addr).expect("connect");
    let ids: Vec<u64> = instances
        .iter()
        .map(|inst| {
            client
                .submit(solve_frame("pptas", inst.clone()))
                .expect("submit")
        })
        .collect();
    for id in ids {
        let response = client.recv().expect("recv").expect("frame");
        assert_eq!(
            response.id, id,
            "responses must come back in submission order"
        );
        assert!(matches!(response.outcome, WireOutcome::Ok { .. }));
    }
    client.shutdown().expect("bye");
    server.join().expect("server thread").expect("server io");
}

#[test]
fn loadtest_smoke_has_zero_dropped_responses() {
    let report = run_loadtest(&LoadtestConfig {
        clients: 3,
        requests: 96,
        solver: "pptas".into(),
        eps: 0.5,
        seed: 5,
        per_family: 1,
        engine: EngineConfig {
            workers: 2,
            capacity: 64,
            cache_capacity: 1024,
        },
    })
    .expect("loadtest");
    assert_eq!(report.requests, 96, "every request must get a response");
    assert_eq!(report.ok, 96, "no request may fail");
    assert_eq!(report.served, 96);
    assert!(
        report.cache_hit_responses > 0,
        "fixed-seed laps over the pool must produce wire-visible cache hits"
    );
    // parks == wakes is asserted in tests/park_balance.rs, which runs as
    // its own binary: the counters are process-global, so any concurrently
    // running test with parked workers would make the check flaky here.
    assert!(report.p99_micros >= report.p50_micros);
}
