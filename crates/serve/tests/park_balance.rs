//! Park/wake balance on clean shutdown.
//!
//! The `bye` frame reports the process-global `POOL_PARKS` / `POOL_WAKES`
//! counters, so this check needs a process with exactly one engine in it —
//! hence its own integration-test binary with a single test (cargo runs
//! test binaries one at a time).

use pcmax_engine::EngineConfig;
use pcmax_serve::{run_loadtest, LoadtestConfig};

#[test]
fn clean_shutdown_balances_parks_and_wakes() {
    let report = run_loadtest(&LoadtestConfig {
        clients: 2,
        requests: 48,
        solver: "pptas".into(),
        eps: 0.5,
        seed: 9,
        per_family: 1,
        engine: EngineConfig {
            workers: 3,
            capacity: 64,
            cache_capacity: 1024,
        },
    })
    .expect("loadtest");
    assert_eq!(report.ok, 48);
    assert!(
        report.parks > 0,
        "a 3-worker engine under 2 clients must actually park"
    );
    assert_eq!(
        report.parks, report.wakes,
        "every parked worker must be woken exactly once more by shutdown"
    );
}
