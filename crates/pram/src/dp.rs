//! The paper's wavefront DP expressed against the PRAM cost model: the same
//! values as `pcmax_ptas::IterativeDp`, but with every parallel step charged
//! its EREW work/depth — so we can report the algorithm's *theoretical*
//! work/depth profile and compare against Mayr's `O(log² n)` depth bound.

use crate::machine::Pram;
use crate::primitives::reduce_min;
use pcmax_core::Result;
use pcmax_ptas::dp::{fits, DpProblem};
use pcmax_ptas::table::INFEASIBLE;

/// The measured cost profile of one PRAM wavefront-DP evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WavefrontCost {
    /// `OPT(N)` computed by the run (matches the CPU solvers).
    pub machines: u32,
    /// PRAM ledger of the whole evaluation.
    pub pram: Pram,
    /// Number of wavefront levels (`n' + 1`).
    pub levels: u64,
}

/// Evaluates the DP on the PRAM: levels are sequential rounds; within a
/// level every entry's candidate values are gathered in parallel (`O(|C|)`
/// work each, constant depth on a CREW read) and minimized with a parallel
/// reduction (`O(log |C|)` depth). The level's depth is the maximum of its
/// entries' depths, charged once — entries on a level are independent.
pub fn wavefront_dp(problem: &DpProblem) -> Result<WavefrontCost> {
    let mut table = problem.build_table()?;
    let configs = problem.configs_with_offsets(&table);
    table.values[0] = 0;
    let mut pram = Pram::new();
    let buckets = table.level_buckets();
    for bucket in buckets.iter().skip(1) {
        let mut level_depth = 0u64;
        let mut level_work = 0u64;
        for &idx in bucket {
            let idx = idx as usize;
            let v = table.decode(idx);
            // Gather applicable candidate values (one parallel round).
            let candidates: Vec<u64> = configs
                .iter()
                .filter(|(c, _)| fits(c, &v))
                .map(|(_, offset)| table.values[idx - offset] as u64)
                .collect();
            level_work += configs.len() as u64; // the fits-filter touches all
            let mut entry_pram = Pram::new();
            let best = reduce_min(&mut entry_pram, &candidates);
            level_work += entry_pram.work;
            level_depth = level_depth.max(1 + entry_pram.depth);
            table.values[idx] = if best == u64::MAX {
                INFEASIBLE
            } else {
                // audit:allow(cast): candidates are u16 table values widened
                // to u64 for the reduction; the min fits back into u16.
                (best as u16).saturating_add(1)
            };
        }
        pram.charge(level_work, level_depth);
    }
    let opt = table.values[table.last_index()];
    Ok(WavefrontCost {
        machines: if opt == INFEASIBLE {
            u32::MAX
        } else {
            // audit:allow(cast): u16 -> u32 widening, lossless.
            opt as u32
        },
        pram,
        levels: buckets.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::brent_time;
    use pcmax_ptas::dp::{DpSolver, IterativeDp};

    fn paper_problem() -> DpProblem {
        let mut counts = vec![0u32; 16];
        counts[2] = 2;
        counts[4] = 3;
        DpProblem::new(counts, 2, 30, 4)
    }

    #[test]
    fn computes_the_same_opt_as_the_cpu_solver() {
        let cpu = IterativeDp.solve(&paper_problem()).unwrap();
        let pram = wavefront_dp(&paper_problem()).unwrap();
        assert_eq!(pram.machines, cpu.machines);
        assert_eq!(pram.machines, 2);
    }

    #[test]
    fn depth_is_far_below_work() {
        let cost = wavefront_dp(&paper_problem()).unwrap();
        assert!(cost.pram.depth < cost.pram.work);
        assert!(
            cost.pram.depth >= cost.levels - 1,
            "each level is ≥ 1 round"
        );
    }

    #[test]
    fn brent_time_saturates_at_depth_scale() {
        let cost = wavefront_dp(&paper_problem()).unwrap();
        let t_many = brent_time(&cost.pram, 1 << 40);
        assert!(t_many >= cost.pram.depth);
        assert!(t_many <= cost.pram.depth + 1);
        // With few processors, work dominates.
        let t_4 = brent_time(&cost.pram, 4);
        assert!(t_4 > t_many);
    }

    #[test]
    fn empty_problem() {
        let problem = DpProblem::new(vec![0; 16], 2, 30, 4);
        let cost = wavefront_dp(&problem).unwrap();
        assert_eq!(cost.machines, 0);
        assert_eq!(cost.levels, 1);
        assert_eq!(cost.pram.depth, 0);
    }

    #[test]
    fn larger_instances_grow_work_much_faster_than_depth() {
        use pcmax_core::lower_bound;
        use pcmax_ptas::{rounded_problem, EpsilonParams};
        let inst = pcmax_workloads::generate(
            pcmax_workloads::Family::new(10, 30, pcmax_workloads::Distribution::U1To100),
            1,
        );
        let eps = EpsilonParams::new(0.3).unwrap();
        let (big, _, _) = rounded_problem(
            &inst,
            &eps,
            lower_bound(&inst),
            DpProblem::DEFAULT_MAX_ENTRIES,
        );
        let small = wavefront_dp(&paper_problem()).unwrap();
        let large = wavefront_dp(&big).unwrap();
        let work_ratio = large.pram.work as f64 / small.pram.work.max(1) as f64;
        let depth_ratio = large.pram.depth as f64 / small.pram.depth.max(1) as f64;
        assert!(
            work_ratio > 4.0 * depth_ratio,
            "work x{work_ratio:.0} vs depth x{depth_ratio:.0}"
        );
    }
}
