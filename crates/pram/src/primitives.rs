//! Instrumented PRAM primitives. Each executes the real computation
//! sequentially (results are exact) while charging the PRAM ledger the
//! canonical EREW work/depth of the parallel version.

use crate::machine::Pram;

/// Parallel sum reduction: work `O(n)`, depth `⌈log₂ n⌉`.
pub fn reduce_sum(pram: &mut Pram, xs: &[u64]) -> u64 {
    pram.charge(xs.len() as u64, Pram::log2_ceil(xs.len()));
    xs.iter().sum()
}

/// Parallel max reduction (0 on empty input): work `O(n)`, depth `⌈log₂ n⌉`.
pub fn reduce_max(pram: &mut Pram, xs: &[u64]) -> u64 {
    pram.charge(xs.len() as u64, Pram::log2_ceil(xs.len()));
    xs.iter().copied().max().unwrap_or(0)
}

/// Parallel min reduction (`u64::MAX` on empty input).
pub fn reduce_min(pram: &mut Pram, xs: &[u64]) -> u64 {
    pram.charge(xs.len() as u64, Pram::log2_ceil(xs.len()));
    xs.iter().copied().min().unwrap_or(u64::MAX)
}

/// Blelloch exclusive prefix scan: work `O(n)` (up-sweep + down-sweep),
/// depth `2⌈log₂ n⌉`.
pub fn prefix_scan(pram: &mut Pram, xs: &[u64]) -> Vec<u64> {
    pram.charge(2 * xs.len() as u64, 2 * Pram::log2_ceil(xs.len()));
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0u64;
    for &x in xs {
        out.push(acc);
        acc += x;
    }
    out
}

/// Parallel pack (stream compaction): keep the elements whose flag is set,
/// preserving order. Work `O(n)` via a scan over the flags, depth
/// `O(log n)`.
pub fn pack<T: Clone>(pram: &mut Pram, xs: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(xs.len(), flags.len());
    // A scan over the flags computes output offsets; one more round writes.
    pram.charge(3 * xs.len() as u64, 2 * Pram::log2_ceil(xs.len()) + 1);
    xs.iter()
        .zip(flags)
        .filter(|(_, &f)| f)
        .map(|(x, _)| x.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_compute_correct_values() {
        let mut pram = Pram::new();
        assert_eq!(reduce_sum(&mut pram, &[1, 2, 3, 4]), 10);
        assert_eq!(reduce_max(&mut pram, &[3, 9, 1]), 9);
        assert_eq!(reduce_min(&mut pram, &[3, 9, 1]), 1);
        assert_eq!(reduce_max(&mut pram, &[]), 0);
    }

    #[test]
    fn reduction_depth_is_logarithmic() {
        let mut pram = Pram::new();
        let xs = vec![1u64; 1024];
        reduce_sum(&mut pram, &xs);
        assert_eq!(pram.work, 1024);
        assert_eq!(pram.depth, 10);
    }

    #[test]
    fn scan_is_exclusive() {
        let mut pram = Pram::new();
        assert_eq!(prefix_scan(&mut pram, &[3, 1, 4, 1]), vec![0, 3, 4, 8]);
        assert_eq!(pram.depth, 4); // 2 * log2(4)
    }

    #[test]
    fn pack_keeps_flagged_elements_in_order() {
        let mut pram = Pram::new();
        let xs = vec!['a', 'b', 'c', 'd'];
        let flags = vec![true, false, true, true];
        assert_eq!(pack(&mut pram, &xs, &flags), vec!['a', 'c', 'd']);
    }

    #[test]
    fn empty_inputs_cost_nothing_in_depth() {
        let mut pram = Pram::new();
        let _ = reduce_sum(&mut pram, &[]);
        let _ = prefix_scan(&mut pram, &[]);
        assert_eq!(pram.depth, 0);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn pack_rejects_mismatched_lengths() {
        let mut pram = Pram::new();
        let _ = pack(&mut pram, &[1, 2], &[true]);
    }
}
