//! A work/depth PRAM cost model with instrumented parallel primitives —
//! the theoretical frame of the paper's related work.
//!
//! Mayr's `O(log² n)` EREW-PRAM `(1+ε)`-approximation (the paper's reference \[7\]) is
//! the only prior parallel algorithm for `P||Cmax`; Ghalami & Grosu dismiss
//! it as impractical because it needs polynomially many processors. This
//! crate makes that comparison concrete: it provides a tiny PRAM whose
//! computations are *executed* (so results are real) while **work** (total
//! operations) and **depth** (longest dependency chain) are tracked, plus
//! the classical primitives — parallel reduce, prefix-scan (Blelloch), and
//! pack — and a PRAM expression of the paper's wavefront DP.
//!
//! With work `W` and depth `D` measured, Brent's theorem gives the
//! achievable time on `p` processors: `T_p ≤ W/p + D`. The
//! [`brent_time`] helper evaluates it, which lets examples and the harness
//! show *why* a polylog-depth PRAM algorithm is uninteresting at
//! multicore scale: for the DP's measured `W` and `D`, `W/p` dominates `D`
//! for every realistic `p`, so depth-optimality buys nothing.

pub mod dp;
pub mod machine;
pub mod primitives;

pub use dp::{wavefront_dp, WavefrontCost};
pub use machine::{brent_time, Pram};
pub use primitives::{pack, prefix_scan, reduce_max, reduce_min, reduce_sum};
